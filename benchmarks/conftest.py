"""Benchmark harness configuration.

Each ``test_bench_*`` regenerates one of the paper's tables or figures:
it runs the corresponding experiment once under ``benchmark.pedantic``
(Monte-Carlo experiments are too heavy for repeated timing rounds),
prints the same rows/series the paper reports, and asserts the shape
properties the reproduction targets.  Run with ``-s`` to see the tables:

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
