"""Perf smoke benchmark for the PR-1 runtime (parallel MC + waveform cache).

Times a fixed 200-frame link sweep in two flavours and writes
``BENCH_PR1.json`` at the repo root; a third timed pass re-runs the
random-payload workload with the PR-2 telemetry registry enabled and
records the overhead comparison to ``BENCH_PR2.json`` (metrics-off must
stay within noise of the PR-1 numbers, metrics-on within the <5% budget
from ISSUE 2 — both asserted softly, with the JSON carrying the data):

* **random-payload** — every trial draws fresh payload bits, so the
  frame-waveform cache never hits; this measures the honest per-trial
  pipeline cost (and is the workload behind the recorded pre-PR
  baseline of 65.34 frames/sec on the 1-CPU reference container).
* **fixed-payload** — every trial resends the same frame (the paper's
  testbed pattern: fixed '01' payloads), so modulation amortizes to a
  cache lookup; pre-PR baseline 60.65 frames/sec on the same container.

The baselines were measured at commit eff6581 (the pre-runtime seed) on
the same machine that runs this benchmark suite; both workloads and
seeds are pinned so the comparison stays apples-to-apples.  Assertions
are deliberately soft (the suite must not fail on a slow or loaded
machine) — the JSON artifact carries the real numbers.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.link import SymBeeLink
from repro.experiments.common import measure_link
from repro.obs import REGISTRY
from repro.runtime import default_jobs
from repro.runtime.timing import StageTimings
from repro.zigbee.waveform_cache import FRAME_WAVEFORM_CACHE

#: Pre-PR throughput on the reference container (frames/sec, 1 CPU),
#: measured at the seed commit with the identical workloads below.
BASELINE_RANDOM_FPS = 65.34
BASELINE_FIXED_FPS = 60.65

N_FRAMES_PER_SNR = 100
BITS_PER_FRAME = 64
SNRS_DB = (0.0, 4.0)


def _link_at_snr(snr_db):
    return SymBeeLink(tx_power_dbm=-95.0 + snr_db)


def _run_random_payload():
    """200 trials with per-trial random payloads (cache-cold workload)."""
    timings = StageTimings()
    frames = 0
    for i, snr in enumerate(SNRS_DB):
        stats = measure_link(
            _link_at_snr(snr),
            np.random.default_rng(20260806 + i),
            n_frames=N_FRAMES_PER_SNR,
            bits_per_frame=BITS_PER_FRAME,
        )
        timings.merge(stats.timings)
        frames += stats.frames
    return frames, timings


def _run_fixed_payload():
    """200 trials resending one frame (cache-hot testbed workload)."""
    bits = np.random.default_rng(99).integers(0, 2, BITS_PER_FRAME)
    timings = StageTimings()
    frames = 0
    for i, snr in enumerate(SNRS_DB):
        link = _link_at_snr(snr)
        for seed in np.random.SeedSequence(20260806 + i).spawn(N_FRAMES_PER_SNR):
            link.timings.reset()
            link.send_bits(bits, np.random.default_rng(seed), mac_sequence=7)
            timings.merge(link.timings)
            frames += 1
    return frames, timings


def _timed(workload):
    FRAME_WAVEFORM_CACHE.clear()
    workload()  # warm-up: JIT-free but fills caches and page-faults
    warm = FRAME_WAVEFORM_CACHE.cache_info()
    t0 = time.perf_counter()
    frames, timings = workload()
    elapsed = time.perf_counter() - t0
    final = FRAME_WAVEFORM_CACHE.cache_info()
    return {
        "frames": frames,
        "elapsed_seconds": round(elapsed, 4),
        "frames_per_sec": round(frames / elapsed, 2),
        "stage_seconds": {
            stage: round(entry["seconds"], 4)
            for stage, entry in timings.as_dict().items()
        },
        # Hit/miss deltas of the *timed* pass only: the warm-up pass has
        # already populated the cache, so a repeated-frame workload must
        # show pure hits here and a random-payload one pure misses.
        "waveform_cache": {
            "hits": final["hits"] - warm["hits"],
            "misses": final["misses"] - warm["misses"],
            "size": final["size"],
            "maxsize": final["maxsize"],
        },
    }


def _previous_bench(path):
    """The committed PR-1 numbers, read before this run overwrites them."""
    try:
        with open(path) as fh:
            report = json.load(fh)
        return {
            name: row["frames_per_sec"]
            for name, row in report.get("workloads", {}).items()
        }
    except (OSError, ValueError, KeyError):
        return {}


def test_bench_runtime_sweep():
    root = Path(__file__).resolve().parent.parent
    pr1_recorded = _previous_bench(root / "BENCH_PR1.json")

    random_payload = _timed(_run_random_payload)
    fixed_payload = _timed(_run_fixed_payload)

    # PR-2 telemetry overhead: the identical random-payload workload with
    # the metrics registry live (counters + histograms firing per frame).
    REGISTRY.enable()
    try:
        metrics_on = _timed(_run_random_payload)
    finally:
        REGISTRY.disable()
        REGISTRY.reset()

    report = {
        "workloads": {
            "random_payload": {
                **random_payload,
                "baseline_frames_per_sec": BASELINE_RANDOM_FPS,
                "speedup": round(
                    random_payload["frames_per_sec"] / BASELINE_RANDOM_FPS, 2
                ),
            },
            "fixed_payload": {
                **fixed_payload,
                "baseline_frames_per_sec": BASELINE_FIXED_FPS,
                "speedup": round(
                    fixed_payload["frames_per_sec"] / BASELINE_FIXED_FPS, 2
                ),
            },
        },
        "jobs": default_jobs(),
        "workload": {
            "snrs_db": list(SNRS_DB),
            "n_frames_per_snr": N_FRAMES_PER_SNR,
            "bits_per_frame": BITS_PER_FRAME,
        },
        "baseline_commit": "eff6581",
    }
    out = root / "BENCH_PR1.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    off_fps = random_payload["frames_per_sec"]
    on_fps = metrics_on["frames_per_sec"]
    pr2 = {
        "pr": 2,
        "workload": "random_payload (200 frames, see BENCH_PR1.json)",
        "metrics_off": random_payload,
        "metrics_on": metrics_on,
        "metrics_overhead_pct": round(100.0 * (off_fps / on_fps - 1.0), 2),
        "pr1_recorded_frames_per_sec": pr1_recorded,
        "metrics_off_vs_pr1_pct": round(
            100.0 * (off_fps / pr1_recorded["random_payload"] - 1.0), 2
        ) if pr1_recorded.get("random_payload") else None,
        "jobs": default_jobs(),
    }
    (root / "BENCH_PR2.json").write_text(json.dumps(pr2, indent=2) + "\n")

    print()
    for name, row in report["workloads"].items():
        print(
            f"{name}: {row['frames_per_sec']:.2f} frames/sec "
            f"({row['speedup']:.2f}x vs pre-PR)"
        )
    print(
        f"telemetry overhead: {off_fps:.2f} -> {on_fps:.2f} frames/sec "
        f"({pr2['metrics_overhead_pct']:+.1f}% when enabled)"
    )

    # Soft sanity floor only — CI machines vary; the JSON has the data.
    assert random_payload["frames"] == fixed_payload["frames"] == 200
    assert metrics_on["frames"] == 200
    # Cache accounting (hard): the fixed-payload timed pass must run
    # entirely out of the warm frame-waveform cache, and the random one
    # must never hit it — otherwise the two workloads aren't measuring
    # what their names claim.
    assert fixed_payload["waveform_cache"]["hits"] == 200
    assert fixed_payload["waveform_cache"]["misses"] == 0
    assert random_payload["waveform_cache"]["hits"] == 0
    assert random_payload["waveform_cache"]["misses"] == 200
    assert random_payload["frames_per_sec"] > 1.0
    assert fixed_payload["frames_per_sec"] >= random_payload["frames_per_sec"] * 0.8
    # Telemetry budget (soft): enabled metrics must not halve throughput.
    assert on_fps >= off_fps * 0.5
