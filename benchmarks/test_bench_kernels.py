"""Microbenchmarks for the exact/fast DSP kernel pairs (PR 5).

Times each kernel pair on the streaming front end's real shapes — one
65536-sample demux block at 20 Msps, lag 16, 21 anti-alias taps,
decimation 4 — and writes ``BENCH_KERNELS.json`` at the repo root.
Each measurement is the best of several repeats with GC paused, the
same protocol as ``BENCH_PR5.json`` (single-CPU container; the minimum
is the least-noisy estimator of the true cost).

The point of the artifact is the exact-vs-fast ratio per kernel: it
shows where the fast mode's end-to-end win actually comes from (the
single-rounding exact ufunc chains cost 3-10x the native fused ops).
Assertions are correctness-only plus a very soft "fast is not slower"
floor — absolute timings belong in the JSON, not in CI pass/fail.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.dsp.kernels import (
    cmul,
    exact_cmul,
    exact_lagged_products,
    fir_exact,
    fir_fast,
    fir_fft,
    lagged_products,
    polyphase_decimate_exact,
    polyphase_decimate_fast,
)
from repro.stream.frontend import design_lowpass

BLOCK = 65536
LAG = 16
NTAPS = 21
DECIMATION = 4
REPEATS = 30


def _best_of(fn, repeats=REPEATS):
    """Minimum wall time of ``repeats`` calls, GC paused (seconds)."""
    fn()  # warm-up: allocator, BLAS thread pools, page faults
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _pair(name, exact_fn, fast_fn, check_close=True, rtol=1e-6):
    """Time one exact/fast pair and sanity-check their agreement."""
    if check_close:
        np.testing.assert_allclose(
            np.asarray(fast_fn(), dtype=np.complex128),
            np.asarray(exact_fn(), dtype=np.complex128),
            rtol=rtol,
            atol=1e-6,
        )
    exact_s = _best_of(exact_fn)
    fast_s = _best_of(fast_fn)
    return {
        "kernel": name,
        "exact_us": round(exact_s * 1e6, 1),
        "fast_us": round(fast_s * 1e6, 1),
        "speedup": round(exact_s / fast_s, 2),
    }


def test_bench_kernels():
    rng = np.random.default_rng(20260806)
    z = rng.standard_normal(BLOCK) + 1j * rng.standard_normal(BLOCK)
    z64 = z.astype(np.complex64)
    taps = design_lowpass(NTAPS, 1.4e6, 20e6)
    taps64 = taps.astype(np.complex64) if np.iscomplexobj(taps) else taps
    long_taps = design_lowpass(129, 1.4e6, 20e6)
    mixer = np.exp(-1j * 2.0 * np.pi * 3e6 * np.arange(BLOCK) / 20e6)

    rows = [
        _pair(
            "lagged_products",
            lambda: exact_lagged_products(z, LAG),
            lambda: lagged_products(z, LAG, mode="fast"),
        ),
        _pair(
            "lagged_products_c64",
            lambda: exact_lagged_products(z, LAG),
            lambda: lagged_products(z64, LAG, mode="fast"),
            rtol=2e-5,
        ),
        _pair(
            "mixer_cmul",
            lambda: exact_cmul(z, mixer),
            lambda: cmul(z, mixer, "fast"),
        ),
        _pair(
            "fir_21tap",
            lambda: fir_exact(z, taps),
            lambda: fir_fast(z, taps),
        ),
        _pair(
            "fir_129tap_fft",
            lambda: fir_exact(z, long_taps),
            lambda: fir_fft(z, long_taps),
        ),
        _pair(
            "polyphase_decimate_d4",
            lambda: polyphase_decimate_exact(z, taps, DECIMATION),
            lambda: polyphase_decimate_fast(z, taps, DECIMATION),
        ),
        _pair(
            "polyphase_decimate_d4_c64",
            lambda: polyphase_decimate_exact(z, taps, DECIMATION),
            lambda: polyphase_decimate_fast(z64, taps64, DECIMATION),
            rtol=2e-4,
        ),
    ]

    report = {
        "pr": 5,
        "protocol": {
            "block_samples": BLOCK,
            "lag": LAG,
            "ntaps": NTAPS,
            "decimation": DECIMATION,
            "repeats": REPEATS,
            "timer": "best-of-N wall time, gc disabled, after warm-up",
        },
        "kernels": rows,
    }
    root = Path(__file__).resolve().parent.parent
    (root / "BENCH_KERNELS.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    print()
    for row in rows:
        print(
            f"{row['kernel']:28s} exact {row['exact_us']:9.1f} us   "
            f"fast {row['fast_us']:9.1f} us   {row['speedup']:.2f}x"
        )

    # Soft floor: on any machine, the fast path of the hot kernels must
    # not lose to the exact path (shapes are large enough that the call
    # overhead is irrelevant; 0.8 absorbs timer noise).
    by_name = {row["kernel"]: row for row in rows}
    for name in ("lagged_products", "polyphase_decimate_d4"):
        assert by_name[name]["speedup"] > 0.8, by_name[name]
