"""Bench: regenerate Fig 19 (impact of transmission power)."""

from repro.experiments import fig19_tx_power as fig19


def test_bench_fig19(run_once, benchmark):
    result = run_once(fig19.run)
    fig19.main()
    benchmark.extra_info["outdoor_ber_minus15dbm"] = result.ber["outdoor"][0]

    # Paper shape: BER falls as TX power rises; outdoor outperforms the
    # indoor office at equal power because of multipath; the -15 dBm
    # point shows real degradation while 0 dBm is clean.
    for env, bers in result.ber.items():
        assert bers[0] >= bers[-1] - 0.02, env
        assert bers[-1] <= 0.05, env
    assert result.ber["outdoor"][0] > 0.02
    assert (
        result.ber["office (midnight)"][0] >= result.ber["outdoor"][0] - 0.05
    )
    for outdoor_snr, office_snr in zip(
        result.snr_db["outdoor"], result.snr_db["office (midnight)"]
    ):
        assert outdoor_snr > office_snr - 1.0
