"""Bench: regenerate Fig 22 (impact of tau and of the preamble)."""

from repro.experiments import fig22_tau_preamble as fig22


def test_bench_fig22a_tau(run_once, benchmark):
    result = run_once(fig22.run_tau_sweep)
    benchmark.extra_info["fn_at_tau10"] = result.false_negative_rate[
        result.taus.index(10)
    ]
    # Paper shape: higher tau misses fewer bits (F/N falls) but fires
    # more often (F/P rises); tau = 10 balances at the knee.
    assert result.false_negative_rate[0] >= result.false_negative_rate[-1]
    assert result.false_positive_rate[-1] >= result.false_positive_rate[0]
    idx10 = result.taus.index(10)
    assert result.false_negative_rate[idx10] < result.false_negative_rate[0]
    assert result.false_positive_rate[idx10] < result.false_positive_rate[-1]


def test_bench_fig22b_preamble(run_once, benchmark):
    result = run_once(fig22.run_preamble_comparison)
    fig22.main()
    benchmark.extra_info["ber_with_pre"] = result.ber_with_preamble
    # Paper shape: the preamble slashes BER (27.4% -> 7.6% at its
    # operating point); at every SNR the with-preamble curve wins.
    for with_pre, without in zip(
        result.ber_with_preamble, result.ber_without_preamble
    ):
        assert with_pre <= without + 0.02
    # Somewhere in the sweep the gain is dramatic (>5x).
    gains = [
        wo / max(w, 1e-6)
        for w, wo in zip(result.ber_with_preamble, result.ber_without_preamble)
        if wo > 0.05
    ]
    assert gains and max(gains) > 5.0
