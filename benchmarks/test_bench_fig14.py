"""Bench: regenerate Fig 14 (BER, six scenarios x 5-25 m)."""

from repro.experiments import fig14_ber_scenarios as fig14


def test_bench_fig14(run_once, benchmark):
    result = run_once(fig14.run)
    fig14.main(result)
    benchmark.extra_info["outdoor_max_ber"] = max(result.ber["outdoor"])

    # Paper shape: outdoor <= 5% at every distance; the clean sites stay
    # below the interfered ones; all BERs bounded well away from coin
    # flipping at the measured operating points.
    assert max(result.ber["outdoor"]) <= 0.05
    assert max(result.ber["classroom"]) <= max(result.ber["mall"]) + 0.02
    for name in result.scenarios:
        assert max(result.ber[name]) < 0.6
