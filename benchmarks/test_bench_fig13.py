"""Bench: regenerate Fig 13 (throughput, six scenarios x 5-25 m)."""

from repro.experiments import fig13_throughput_scenarios as fig13


def test_bench_fig13(run_once, benchmark):
    result = run_once(fig13.run)
    fig13.main(result)
    benchmark.extra_info["outdoor_25m_kbps"] = result.throughput_kbps["outdoor"][-1]
    benchmark.extra_info["mall_25m_kbps"] = result.throughput_kbps["mall"][-1]

    # Paper shape: outdoor reaches the 31.25 kbps raw rate and stays
    # ~30 kbps at 25 m; the mall is the worst site (>= ~21 kbps); the
    # cluttered sites sit below outdoor at range.
    assert result.throughput_kbps["outdoor"][0] > 31.0
    assert result.throughput_kbps["outdoor"][-1] > 29.0
    assert result.throughput_kbps["mall"][-1] > 15.0
    for name in result.scenarios:
        assert (
            result.throughput_kbps["outdoor"][-1]
            >= result.throughput_kbps[name][-1] - 0.5
        )
    assert (
        result.throughput_kbps["mall"][-1]
        <= result.throughput_kbps["classroom"][-1]
    )
