"""Bench: regenerate Fig 16 (SymBee vs packet-level CTC schemes).

Also covers the Section VII text results: the 31.25 kbps raw rate and
the 145.4x speedup over C-Morse.
"""

import pytest

from repro.core.analytics import raw_bit_rate_bps
from repro.experiments import fig16_ctc_comparison as fig16


def test_bench_fig16(run_once, benchmark):
    result = run_once(fig16.run)
    fig16.main()
    benchmark.extra_info["speedup_vs_cmorse"] = result.speedup_vs_cmorse

    rates = dict(result.rows)
    # Paper ordering: FreeBee < A-FreeBee < EMF < DCTC < C-Morse << SymBee.
    ordered = [rates[n] for n in ("FreeBee", "A-FreeBee", "EMF", "DCTC", "C-Morse")]
    assert ordered == sorted(ordered)
    assert rates["C-Morse"] == pytest.approx(215.0, rel=0.05)
    assert raw_bit_rate_bps() == pytest.approx(31_250.0)
    # 145.4x in the paper; the office link at 1.5 m delivers essentially
    # the raw rate, so the measured multiple lands nearby.
    assert result.speedup_vs_cmorse == pytest.approx(145.4, rel=0.10)
