"""CI perf-smoke: the streaming fast path must not silently regress.

Two small guards CI can afford on every push:

* a **throughput floor** — decode a quarter of the BENCH_PR5 workload
  through the PR-10 headline configuration (``decimation=8``, fast
  kernels, complex64, batched scan kernel, 131072-sample blocks) and
  require a conservative Msps floor; and
* a **parallel trend gate** — time the PR-6 comparison configuration
  serial, jobs=2 and jobs=4, plus a **scan-path micro-benchmark**
  (pure-noise capture through the headline configuration, so the scan
  cascade is the whole decode), append the Msps and Msps-per-core
  figures to ``BENCH_SMOKE_TREND.jsonl`` (one JSON line per run,
  rendered by ``python -m repro bench trajectory``), and fail when the
  pooled path is slower than serial *on a machine with the cores to
  win* — single-CPU runners record the numbers but cannot gate on
  them, because process fan-out can only lose there.

The floor is ~2.9x below the ~13 Msps the reference 1-CPU container
measures for the PR-10 configuration (see ``BENCH_PR10.json``), so an
ordinarily loaded CI runner passes with a wide margin while a real
regression — losing the decimating channelizer, the fused kernels,
the bank, or the batched scanner — drops throughput 2-5x past it.
Correctness rides along: the decode must deliver every scheduled
CRC-valid frame.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream import StreamEngine

#: Conservative Msps floor for the fast-path decode.  Raised from 3.0
#: (PR-5 era, 8.4 Msps reference) now that the PR-10 scan engine
#: measures ~13 Msps on the reference container — the same ~2.9x
#: loaded-runner margin, at the new level.
FLOOR_MSPS = 4.5

BLOCK_SIZE = 32768
#: PR-10 headline block depth (block size is a latency knob, not a
#: decision knob — the engine is block-size invariant by construction).
DEEP_BLOCK = 131072

#: The PR-10 headline serial configuration (see BENCH_PR10.json).
FAST_PATH = dict(
    demux=True,
    decimation=8,
    mode="fast",
    working_dtype=np.complex64,
    scan_kernel="batched",
)

TREND_PATH = Path(__file__).resolve().parent.parent / "BENCH_SMOKE_TREND.jsonl"


@pytest.mark.perf_smoke
def test_streaming_fast_path_throughput_floor():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=0.0125)
    samples, truth = traffic.capture(np.random.default_rng(20260806))
    assert truth

    def decode():
        engine = StreamEngine(**FAST_PATH)
        return engine.run(traffic.blocks(samples, DEEP_BLOCK))

    decode()  # warm-up: waveform caches, BLAS pools, page faults
    best = float("inf")
    frames = []
    for _ in range(3):
        t0 = time.perf_counter()
        frames = decode()
        best = min(best, time.perf_counter() - t0)

    crc_ok = sum(1 for f in frames if f.crc_ok)
    msps = samples.size / best / 1e6
    print(f"\nfast-path smoke: {msps:.2f} Msps (floor {FLOOR_MSPS}), "
          f"{crc_ok}/{len(truth)} frames")
    assert crc_ok == len(truth)
    assert msps >= FLOOR_MSPS, (
        f"streaming fast path at {msps:.2f} Msps, floor {FLOOR_MSPS} Msps "
        f"(reference container: ~13; see BENCH_PR10.json)"
    )


@pytest.mark.perf_smoke
def test_parallel_trend_gate():
    cpu_count = os.cpu_count() or 1
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=0.0125)
    samples, truth = traffic.capture(np.random.default_rng(20260806))

    def decode(jobs=None):
        engine = StreamEngine(
            demux=True,
            decimation=4,
            mode="fast",
            working_dtype=np.complex64,
        )
        return engine.run(traffic.blocks(samples, BLOCK_SIZE), jobs=jobs)

    def best_msps(jobs=None, repeats=2):
        decode(jobs)  # warm-up
        best = float("inf")
        frames = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            frames = decode(jobs)
            best = min(best, time.perf_counter() - t0)
        return samples.size / best / 1e6, frames

    serial_msps, serial_frames = best_msps(repeats=3)
    jobs2_msps, jobs2_frames = best_msps(jobs=2)
    jobs4_msps, jobs4_frames = best_msps(jobs=4)

    # Scan-path micro-benchmark: a pure-noise capture makes the
    # idle-listening preamble search the entire decode, so this number
    # isolates the scan cascade (the receiver's dominant cost at
    # 20 Msps) from frame decoding.
    rng = np.random.default_rng(20260806)
    noise = (
        rng.standard_normal(samples.size) + 1j * rng.standard_normal(samples.size)
    ).astype(np.complex64) * 0.01

    def scan_noise():
        engine = StreamEngine(**FAST_PATH)
        frames = []
        for lo in range(0, noise.size, DEEP_BLOCK):
            frames.extend(engine.process_block(noise[lo : lo + DEEP_BLOCK]))
        frames.extend(engine.finish())
        return frames

    assert not [f for f in scan_noise() if f.crc_ok]  # warm-up: noise only
    scan_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        scan_noise()
        scan_best = min(scan_best, time.perf_counter() - t0)
    scan_noise_msps = noise.size / scan_best / 1e6

    # Equivalence rides along with the timing: identical frame lists.
    def fields(frames):
        return [
            (f.zigbee_channel, f.preamble_index, tuple(f.bits), f.crc_ok)
            for f in frames
        ]

    assert fields(jobs2_frames) == fields(serial_frames)
    assert fields(jobs4_frames) == fields(serial_frames)

    gate = cpu_count >= 2
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": cpu_count,
        "serial_msps": round(serial_msps, 3),
        "jobs2_msps": round(jobs2_msps, 3),
        "jobs4_msps": round(jobs4_msps, 3),
        # Msps-per-core is the honest scaling figure: it divides each
        # pooled rate by the workers it consumed.
        "serial_msps_per_core": round(serial_msps, 3),
        "jobs2_msps_per_core": round(jobs2_msps / 2, 3),
        "jobs4_msps_per_core": round(jobs4_msps / 4, 3),
        # Pure-noise decode through the PR-10 headline configuration:
        # the scan cascade with no frames to decode.
        "scan_noise_msps": round(scan_noise_msps, 3),
        "scan_kernel": FAST_PATH["scan_kernel"],
        "gate_applied": gate,
    }
    with TREND_PATH.open("a") as fh:
        fh.write(json.dumps(entry) + "\n")
    print(
        f"\ntrend: serial {serial_msps:.2f} / jobs2 {jobs2_msps:.2f} / "
        f"jobs4 {jobs4_msps:.2f} Msps, scan-only {scan_noise_msps:.2f} "
        f"Msps on {cpu_count} cpu(s), "
        f"gate {'on' if gate else 'off'} -> {TREND_PATH.name}"
    )

    if gate:
        # On real cores the pool must not lose to serial; 10% noise
        # allowance keeps a loaded runner from flaking while a real
        # pool regression (ratio well under 1) still fails.
        assert jobs2_msps >= serial_msps * 0.9, entry
