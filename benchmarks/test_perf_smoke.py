"""CI perf-smoke: the streaming fast path must not silently regress.

A deliberately small, fast guard (one ~300 ms decode, no JSON artifact)
that CI can afford on every push: decode a quarter of the BENCH_PR5
workload through the headline configuration (``decimation=4``, fast
kernels, complex64, shared channel bank) and require a conservative
throughput floor.

The floor is ~2.8x below the 8.4 Msps the reference 1-CPU container
measures (see ``BENCH_PR5.json``), so an ordinarily loaded CI runner
passes with a wide margin while a real regression — losing the
decimating channelizer, the fused kernels, or the bank — drops
throughput 2-5x past it.  Correctness rides along: the decode must
deliver every scheduled CRC-valid frame.
"""

import time

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream import StreamEngine

#: Conservative Msps floor for the fast-path decode (reference: 8.4).
FLOOR_MSPS = 3.0

BLOCK_SIZE = 32768


@pytest.mark.perf_smoke
def test_streaming_fast_path_throughput_floor():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=0.0125)
    samples, truth = traffic.capture(np.random.default_rng(20260806))
    assert truth

    def decode():
        engine = StreamEngine(
            demux=True,
            decimation=4,
            mode="fast",
            working_dtype=np.complex64,
        )
        return engine.run(traffic.blocks(samples, BLOCK_SIZE))

    decode()  # warm-up: waveform caches, BLAS pools, page faults
    best = float("inf")
    frames = []
    for _ in range(3):
        t0 = time.perf_counter()
        frames = decode()
        best = min(best, time.perf_counter() - t0)

    crc_ok = sum(1 for f in frames if f.crc_ok)
    msps = samples.size / best / 1e6
    print(f"\nfast-path smoke: {msps:.2f} Msps (floor {FLOOR_MSPS}), "
          f"{crc_ok}/{len(truth)} frames")
    assert crc_ok == len(truth)
    assert msps >= FLOOR_MSPS, (
        f"streaming fast path at {msps:.2f} Msps, floor {FLOOR_MSPS} Msps "
        f"(reference container: 8.4; see BENCH_PR5.json)"
    )
