"""PR-8 bench: fleet-scale campaign throughput at both fidelities.

The acceptance claim: a 500-sender, >=100k-frame packet-fidelity
campaign completes in under 30 s on a one-CPU container, because the
calibrated delivery table replaces the sample-level PHY (~8 ms/frame)
with a table lookup.  The same engine at ``fidelity="sample"`` runs the
real PHY on a small scene in the same session, so the artifact records
the fast-path speedup as a same-run ratio, plus the one-off calibration
cost it amortizes.  Results land in ``BENCH_PR8.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.sim import CalibrationConfig, DeliveryTable, run_campaign

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: Acceptance ceiling for the fleet campaign (seconds, 1-CPU container).
FLEET_BUDGET_S = 30.0

FLEET_MANIFEST = {
    "name": "fleet-500",
    "seed": 7,
    "duration_s": 170.0,
    "fidelity": "packet",
    "topology": {"kind": "random", "n_nodes": 500, "radius_m": 60.0,
                 "gateways": 4},
    "noise": {"kind": "burst", "interference_duty": 0.15,
              "n_interferers": 2},
    "faults": {"kind": "crash", "mtbf_s": 120.0, "mean_downtime_s": 10.0},
    "traffic": {"interval_s": 0.7, "max_retries": 1},
}

SAMPLE_MANIFEST = {
    "name": "sample-ground-truth",
    "seed": 7,
    "duration_s": 2.0,
    "fidelity": "sample",
    "topology": {"kind": "grid", "n_nodes": 4, "spacing_m": 1e-6},
    "traffic": {"interval_s": 0.25, "max_retries": 0},
    "comm": {"scenario": "office", "snr_margin_db": 4.0,
             "shadowing": False},
}

CALIBRATION = CalibrationConfig(
    snr_grid_db=(-2.0, 2.0, 6.0, 10.0),
    max_interferers=2,
    fec_schemes=("none",),
    frames_per_point=32,
    seed=0x5EEDCA1,
)


@pytest.mark.perf_smoke
def test_bench_sim_fleet_fast_path(tmp_path):
    # One-off calibration cost (cold cache), then the cache hit.
    t0 = time.perf_counter()
    table = DeliveryTable.load_or_calibrate(CALIBRATION, cache_dir=tmp_path)
    calibrate_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    DeliveryTable.load_or_calibrate(CALIBRATION, cache_dir=tmp_path)
    cache_hit_s = time.perf_counter() - t0

    fleet = run_campaign(dict(FLEET_MANIFEST), table=table)
    fleet_fps = fleet.offered / fleet.elapsed_s

    sample = run_campaign(dict(SAMPLE_MANIFEST), table=table)
    sample_fps = sample.offered / sample.elapsed_s

    print("\n== fleet campaign fast path (PR 8) ==")
    print(
        f"  calibration: {CALIBRATION.frames_per_point} frames x "
        f"{len(CALIBRATION.points())} points in {calibrate_s:.1f}s "
        f"(cache hit {cache_hit_s * 1e3:.0f} ms)"
    )
    print(
        f"  packet: {fleet.offered} frames over {fleet.n_nodes} nodes, "
        f"{fleet.elapsed_s:.1f}s wall -> {fleet_fps:.0f} frames/s, "
        f"delivery {fleet.delivery_ratio:.3f}"
    )
    print(
        f"  sample: {sample.offered} frames, {sample.elapsed_s:.1f}s wall "
        f"-> {sample_fps:.0f} frames/s, "
        f"delivery {sample.delivery_ratio:.3f}"
    )
    print(f"  fast-path speedup: {fleet_fps / sample_fps:.0f}x per frame")

    # Acceptance: fleet scale under budget, and the fast path is what
    # makes it possible (orders of magnitude over the sample PHY).
    assert fleet.offered >= 100_000
    assert fleet.elapsed_s < FLEET_BUDGET_S
    assert fleet.n_nodes == 500
    assert 0.5 < fleet.delivery_ratio <= 1.0
    assert sample.offered > 0
    assert fleet_fps > 50 * sample_fps
    # Cache hit must be effectively free next to recalibration.
    assert cache_hit_s < max(0.5, calibrate_s / 5)

    ARTIFACT_PATH.write_text(
        json.dumps(
            {
                "pr": 8,
                "claim": "calibrated packet fast path: 500-sender fleet "
                         "campaign under 30s on one CPU",
                "calibration": {
                    "grid_points": len(CALIBRATION.points()),
                    "frames_per_point": CALIBRATION.frames_per_point,
                    "cold_seconds": round(calibrate_s, 2),
                    "cache_hit_seconds": round(cache_hit_s, 4),
                },
                "packet_fleet": {
                    "nodes": fleet.n_nodes,
                    "frames_offered": fleet.offered,
                    "delivery_ratio": round(fleet.delivery_ratio, 4),
                    "wall_seconds": round(fleet.elapsed_s, 2),
                    "budget_seconds": FLEET_BUDGET_S,
                    "frames_per_sec": round(fleet_fps, 1),
                },
                "sample_ground_truth": {
                    "nodes": sample.n_nodes,
                    "frames_offered": sample.offered,
                    "delivery_ratio": round(sample.delivery_ratio, 4),
                    "wall_seconds": round(sample.elapsed_s, 2),
                    "frames_per_sec": round(sample_fps, 1),
                },
                "fast_path_speedup": round(fleet_fps / sample_fps, 1),
            },
            indent=2,
        )
        + "\n"
    )
