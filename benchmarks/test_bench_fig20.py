"""Bench: regenerate Fig 20 (270 us WiFi burst at 0 dB SINR)."""

from repro.experiments import fig20_interference_example as fig20


def test_bench_fig20(run_once, benchmark):
    result = run_once(fig20.run)
    fig20.main()
    benchmark.extra_info["min_votes_under_burst"] = result.min_votes_under_burst

    # Paper: the stable windows under the burst drop from 84 clean votes
    # to "approximately 60; but being still larger than 42" every bit
    # decodes.  Allow the approximate region around 60.
    assert result.all_bits_correct
    assert result.threshold < result.min_votes_under_burst
    assert 45 <= result.min_votes_under_burst <= 75
    assert max(result.counts) >= result.clean_votes - 5
