"""Ablation: the paper's sign test vs full-template correlation.

SymBee deliberately decodes with 84 sign comparisons per bit so the WiFi
side stays nearly free.  A matched template over the ~378
neighbour-invariant phase positions of the whole 640-sample bit period
is the coherent-optimum alternative.  This bench measures the SNR gap —
the price the paper pays for its near-zero-cost decoder.
"""

import numpy as np

from repro.core.template import TemplateDecoder
from repro.experiments.common import link_at_snr, scaled

SNR_GRID_DB = (-8.0, -6.0, -4.0, -2.0)


def ber_pair(snr_db, n_frames, seed=58):
    rng = np.random.default_rng(seed)
    link = link_at_snr(snr_db)
    template_decoder = TemplateDecoder(link.decoder)
    vote = template = sent = 0
    for _ in range(n_frames):
        bits = rng.integers(0, 2, 48)
        result = link.send_bits(bits, rng, keep_phases=True,
                                decode_synchronized=False)
        vote += result.bit_errors
        decoded = template_decoder.decode_synchronized(
            result.phases, result.true_data_start, len(bits)
        )
        template += sum(a != b for a, b in zip(bits, decoded.bits))
        sent += len(bits)
    return vote / sent, template / sent


def test_bench_ablation_template_decoder(run_once, benchmark):
    n_frames = scaled(10)

    def sweep():
        return {snr: ber_pair(snr, n_frames) for snr in SNR_GRID_DB}

    results = run_once(sweep)
    print("\n== ablation: 84-value sign vote vs full-template correlation ==")
    for snr, (vote, template) in results.items():
        print(f"  SNR {snr:+.0f} dB: vote {vote:.3f} | template {template:.3f}")
    benchmark.extra_info.update(
        {f"snr_{snr}": {"vote": v, "template": t}
         for snr, (v, t) in results.items()}
    )

    # The coherent decoder dominates at every noisy point (several dB of
    # gain); both converge to zero where the link is clean.
    for snr, (vote, template) in results.items():
        assert template <= vote + 0.01, snr
    worst = min(SNR_GRID_DB)
    assert results[worst][0] > 0.05          # vote struggles
    assert results[worst][1] < results[worst][0] / 2
