"""Ablation: the majority-vote threshold (paper Section V, tau_sync=42).

The paper fixes the synchronized decision threshold at half the stable
window ("out of 84 values ... 42 or more above 0 indicates bit 1").
With symmetric noise the centered threshold is optimal; this bench
sweeps it and verifies the paper's choice sits at the BER minimum.
"""

import numpy as np

from repro.core.link import SymBeeLink
from repro.dsp.signal_ops import watts_to_dbm
from repro.experiments.common import scaled


def ber_for_threshold(tau_sync, snr_db, n_frames, seed=88):
    rng = np.random.default_rng(seed)
    probe = SymBeeLink()
    noise_floor = watts_to_dbm(probe.front_end.noise_power_watts)
    link = SymBeeLink(tx_power_dbm=noise_floor + snr_db, tau_sync=tau_sync)
    errors = sent = 0
    for _ in range(n_frames):
        bits = rng.integers(0, 2, 48)
        result = link.send_bits(bits, rng, decode_synchronized=False)
        errors += result.bit_errors
        sent += result.n_bits
    return errors / sent


def test_bench_ablation_decision_boundary(run_once, benchmark):
    n_frames = scaled(10)
    thresholds = (12, 27, 42, 57, 72)

    def sweep():
        return {t: ber_for_threshold(t, snr_db=-4.0, n_frames=n_frames)
                for t in thresholds}

    bers = run_once(sweep)
    print("\n== ablation: BER vs majority-vote threshold (SNR -4 dB) ==")
    for threshold, ber in bers.items():
        print(f"  tau_sync={threshold}: BER {ber:.3f}")
    benchmark.extra_info.update({f"tau_{k}": v for k, v in bers.items()})

    # The centered threshold must beat both extremes (U-shaped curve).
    assert bers[42] <= bers[12] + 0.01
    assert bers[42] <= bers[72] + 0.01
    assert max(bers[12], bers[72]) > bers[42]
