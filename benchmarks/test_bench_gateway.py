"""Perf acceptance benchmark for the multi-tenant gateway (PR 9).

Drives the deterministic :mod:`repro.gateway.loadgen` fleet — N tenants,
each a seeded 2-sender :class:`StreamTraffic` capture — through
:class:`repro.gateway.core.GatewayCore` end to end (admission → bounded
ring → per-tenant engine+reassembler → delivered transport messages)
and writes ``BENCH_GATEWAY.json`` at the repo root.

Headline number: **tenants-per-core at realtime** — how many concurrent
realtime tenant streams one core sustains through the full gateway path,
i.e. aggregate stream-seconds decoded per wall-second, divided by the
cores the backend used.  The serial row must clear >= 1.0 on any
machine (the per-tenant engine is the single-channel decimated fast
path, ~1.5x realtime per stream); the pooled row is recorded, and its
speedup gated, only where the cores exist (cpu-count-conditional, like
BENCH_PR6).

Correctness is asserted harder than speed: the serial and pooled drives
must deliver **byte-identical** per-tenant message sets (payload bytes,
msg ids, channels, fragment counts — everything except wall-clock
latency), and both must match the workloads' ground truth exactly.
"""

import gc
import json
import os
import time
from pathlib import Path

from repro.gateway.core import GatewayCore
from repro.gateway.loadgen import build_workloads, drive_core, verify

TENANTS = 4
SENDERS = 2
SEED = 20260809
DURATION_S = 0.03
BLOCK_SIZE = 16384

#: Floor for the headline serial number, asserted unconditionally.
TARGET_TENANTS_PER_CORE = 1.0

#: Per-tenant engine: single decimated channel, fast kernels — the
#: multi-tenant serving configuration (a wideband engine cannot
#: decimate and would not clear realtime for even one tenant).
ENGINE_KWARGS = {
    "demux": True,
    "zigbee_channels": [13],
    "decimation": 4,
    "mode": "fast",
    "working_dtype": "complex64",
}


def _fresh(workloads):
    """Same samples and ground truth, empty delivery ledgers."""
    for workload in workloads:
        workload.delivered = []
        workload.shed_blocks = 0
    return workloads


def _drive(workloads, jobs):
    with GatewayCore(
        engine=ENGINE_KWARGS, max_tenants=TENANTS, jobs=jobs
    ) as core:
        return drive_core(core, _fresh(workloads), block_size=BLOCK_SIZE)


def _best_timed(workloads, jobs, repeats):
    """Best wall seconds over ``repeats`` drives, GC paused; keeps the
    delivery ledger of the *last* drive (they are all byte-identical —
    asserted below)."""
    _drive(workloads, jobs)  # warm-up: waveform caches, worker spawn
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            best = min(best, _drive(workloads, jobs))
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _delivery_identity(workloads):
    """Per-tenant delivered messages minus wall-clock fields."""
    return {
        w.tenant_id: sorted(
            (
                m["zigbee_channel"],
                m["msg_id"],
                m["frag_count"],
                m["duplicates"],
                m["data"],
            )
            for m in w.delivered
        )
        for w in workloads
    }


def _row(elapsed, workloads, cores_used, **extra):
    total_samples = sum(w.samples.size for w in workloads)
    stream_seconds = sum(w.stream_seconds for w in workloads)
    x_realtime = stream_seconds / elapsed
    return {
        "tenants": len(workloads),
        "elapsed_seconds": round(elapsed, 4),
        "effective_msps": round(total_samples / elapsed / 1e6, 3),
        "x_realtime": round(x_realtime, 4),
        "cores_used": cores_used,
        "tenants_per_core_at_realtime": round(x_realtime / cores_used, 4),
        "messages_delivered": sum(len(w.delivered) for w in workloads),
        "block_size": BLOCK_SIZE,
        **extra,
    }


def test_bench_gateway():
    root = Path(__file__).resolve().parent.parent
    cpu_count = os.cpu_count() or 1
    workloads = build_workloads(
        TENANTS,
        SENDERS,
        SEED,
        duration_s=DURATION_S,
        engine=ENGINE_KWARGS,
        dtype="complex64",
    )
    assert all(w.expected for w in workloads), "seed must air full messages"

    serial_s = _best_timed(workloads, jobs=1, repeats=3)
    serial_rows, serial_exact = verify(workloads)
    serial_identity = _delivery_identity(workloads)
    assert serial_exact, serial_rows
    assert any(serial_identity.values())

    pooled_jobs = min(2, cpu_count) if cpu_count >= 2 else 2
    pooled_s = _best_timed(workloads, jobs=pooled_jobs, repeats=2)
    pooled_rows, pooled_exact = verify(workloads)
    pooled_identity = _delivery_identity(workloads)
    assert pooled_exact, pooled_rows

    # The acceptance contract: the gateway path is deterministic across
    # backends — pooled delivery is byte-identical to serial, per tenant.
    assert pooled_identity == serial_identity

    serial_row = _row(serial_s, workloads, cores_used=1)
    pooled_row = _row(
        pooled_s,
        workloads,
        cores_used=pooled_jobs,
        jobs=pooled_jobs,
        speedup_vs_serial=round(serial_s / pooled_s, 2),
    )
    gate_pooled = cpu_count >= 2

    report = {
        "pr": 9,
        "workload": {
            "tenants": TENANTS,
            "senders_per_tenant": SENDERS,
            "duration_s": DURATION_S,
            "seed": SEED,
            "samples_per_tenant": int(workloads[0].samples.size),
            "expected_messages": sum(len(w.expected) for w in workloads),
            "engine": {
                k: str(v) if not isinstance(v, (int, bool)) else v
                for k, v in ENGINE_KWARGS.items()
            },
        },
        "protocol": (
            "best-of-N wall time over full gateway drives (admit -> ring "
            "-> decode -> reassemble -> finish), gc disabled, after one "
            "warm-up drive; serial and pooled delivery ledgers asserted "
            "byte-identical; the pooled speed gate is cpu-count-"
            "conditional, the serial tenants-per-core floor is not"
        ),
        "cpu_count": cpu_count,
        "serial": serial_row,
        "pooled": pooled_row,
        "delivery": serial_rows,
        "gates": {
            "target_tenants_per_core": TARGET_TENANTS_PER_CORE,
            "serial_gate_applied": True,
            "pooled_gate_applied": gate_pooled,
            "byte_identity": "asserted (serial == pooled, per tenant)",
        },
    }
    (root / "BENCH_GATEWAY.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    print()
    for name in ("serial", "pooled"):
        row = report[name]
        print(
            f"{name:7s} {row['elapsed_seconds']:7.4f} s  "
            f"{row['effective_msps']:6.2f} Msps  "
            f"{row['x_realtime']:5.2f}x realtime  "
            f"{row['tenants_per_core_at_realtime']:5.2f} tenants/core  "
            f"{row['messages_delivered']} msgs"
        )
    print(
        f"cpus={cpu_count}  pooled jobs={pooled_jobs} "
        f"speedup {pooled_row['speedup_vs_serial']:.2f}x "
        f"(gate {'on' if gate_pooled else 'off'})"
    )

    # The headline gate: one core must carry at least one realtime
    # tenant through the whole gateway path.
    assert (
        serial_row["tenants_per_core_at_realtime"]
        >= TARGET_TENANTS_PER_CORE
    ), serial_row
    if gate_pooled:
        # On real cores the pooled backend must at least hold serial's
        # aggregate rate to within IPC noise (the per-block decode here
        # is light, so fan-out wins are modest; the identity assert is
        # the hard contract).
        assert pooled_row["x_realtime"] >= serial_row["x_realtime"] * 0.5, (
            pooled_row
        )
