"""Bench: regenerate Fig 12 (BER vs SNR, analytic Eq. 2 + simulation)."""

from repro.experiments import fig12_ber_vs_snr as fig12


def test_bench_fig12(run_once, benchmark):
    result = run_once(fig12.run)
    fig12.main()
    benchmark.extra_info["ber_at_minus5"] = result.ber_analytic[
        result.snr_db.index(-5)
    ]
    # Shape targets: BER monotone nonincreasing in SNR, sub-10% by -5 dB
    # (our wideband per-sample axis; see EXPERIMENTS.md), error-free at
    # the top of the sweep, and the simulation tracking Eq. 2.
    assert all(
        a >= b - 0.02 for a, b in zip(result.ber_analytic, result.ber_analytic[1:])
    )
    assert result.ber_analytic[result.snr_db.index(-5)] < 0.12
    assert result.ber_analytic[-1] < 1e-4
    for analytic, simulated in zip(result.ber_analytic, result.ber_simulated):
        assert abs(analytic - simulated) < 0.12
