"""Perf acceptance benchmark for the PR-10 serial scan engine.

Decodes the BENCH_PR6 workload (3 senders, 1 M samples, seed 20260806,
4-session demux) through the PR-6 headline serial configuration and the
PR-10 fast path, and writes ``BENCH_PR10.json`` at the repo root:

* **serial_grouped_d4** — the PR-6 configuration re-measured in this
  same run (``decimation=4, mode="fast"``, complex64, grouped scanner,
  32768-sample blocks).  Every ratio below uses this same-run baseline;
  shared-host drift between recording sessions routinely exceeds 20%.
* **batched_d4** — the batched scan kernel alone, same product domain.
* **batched_d8** — batched kernel + the decimation-8 product domain at
  the PR-6 block size.
* **batched_d8_deep** — the headline: batched kernel, decimation 8,
  131072-sample blocks.  Block size is a latency/throughput knob, not a
  decision knob — the engine is block-size invariant by construction —
  so the fast path may legitimately run deeper blocks than the PR-6
  baseline config pinned for comparability (6.5 ms of stream per block
  at 20 Msps, still far below a frame's own duration).
* **fft_d8** — the overlap-save FFT fold kernel, head-to-head.
* **pooled_jobs2_d8** — the headline config through the persistent
  worker pool, asserted bit-identical to its serial run.

Equivalence asserted here, not just speed:

* grouped and batched frame lists are **bit-identical** per
  configuration (same frames, order, payloads, band powers);
* the CRC-valid frame multiset — ``(channel, payload bits)`` — is
  identical across exact mode, fast d4, fast d8, the fft kernel, and
  the pooled run, and matches the scheduled traffic.

The headline speed gate (batched d8 deep >= 1.5x the same-run PR-6
baseline) is asserted with the PR-6 noise floor convention: the JSON
records the exact measured ratio, the hard assert sits at 0.85x the
target so a loaded shared host cannot flake CI, and a fast path that
genuinely regressed still fails loudly.  Timing is interleaved
round-robin (baseline and contenders alternate every iteration) so
slow-host drift hits all configurations alike instead of biasing the
ratio.
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream import StreamEngine

DURATION_S = 0.05
SEED = 20260806
SAMPLE_RATE = 20e6
BASE_BLOCK = 32768
DEEP_BLOCK = 131072
REPEATS = 7

#: Headline acceptance: batched d8 deep vs same-run PR-6 baseline.
TARGET_RATIO = 1.5
#: Noise floor applied to the hard assert (PR-6 convention): the exact
#: ratio is recorded, CI tolerates a loaded host, real regressions fail.
RATIO_FLOOR = TARGET_RATIO * 0.85

BASELINE = dict(
    demux=True,
    decimation=4,
    mode="fast",
    working_dtype=np.complex64,
    scan_kernel="grouped",
)


def _capture():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=DURATION_S)
    samples, truth = traffic.capture(np.random.default_rng(SEED))
    return traffic, samples, truth


def _frame_fields(frames):
    """Full per-frame identity: equality here is bit-identity."""
    return [
        (
            f.zigbee_channel,
            f.preamble_index,
            tuple(f.bits),
            f.crc_ok,
            f.band_power,
        )
        for f in frames
    ]


def _crc_multiset(frames):
    """Decode-equivalence across product domains: channel + payload."""
    return sorted(
        (f.zigbee_channel, tuple(f.bits)) for f in frames if f.crc_ok
    )


def _interleaved_best(runners, repeats):
    """Best wall seconds per runner, round-robin, GC paused.

    Interleaving matters more than repeat count here: the headline
    number is a *ratio*, and alternating configurations every
    iteration turns slow-host drift into common-mode noise.
    """
    frames = {}
    for key, run in runners.items():
        run()  # warm-up: waveform caches, page faults, branch history
        frames[key] = run()  # second warm-up; keep the decode output
    best = {key: float("inf") for key in runners}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for key, run in runners.items():
                t0 = time.perf_counter()
                run()
                best[key] = min(best[key], time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return frames, best


def _row(n_samples, frames, elapsed, block_size, **extra):
    return {
        "frames": len(frames),
        "crc_ok_frames": sum(1 for f in frames if f.crc_ok),
        "elapsed_seconds": round(elapsed, 4),
        "effective_msps": round(n_samples / elapsed / 1e6, 3),
        "x_realtime": round(n_samples / elapsed / SAMPLE_RATE, 4),
        "block_size": block_size,
        **extra,
    }


def test_bench_stream_pr10():
    root = Path(__file__).resolve().parent.parent
    traffic, samples, truth = _capture()
    n = samples.size
    cpu_count = os.cpu_count() or 1

    def make(block_size, jobs=None, **overrides):
        kwargs = {**BASELINE, **overrides}

        def run():
            engine = StreamEngine(**kwargs)
            return engine.run(traffic.blocks(samples, block_size), jobs=jobs)

        return run

    configs = {
        "serial_grouped_d4": (make(BASE_BLOCK), BASE_BLOCK),
        "batched_d4": (make(BASE_BLOCK, scan_kernel="batched"), BASE_BLOCK),
        "batched_d8": (
            make(BASE_BLOCK, scan_kernel="batched", decimation=8),
            BASE_BLOCK,
        ),
        "batched_d8_deep": (
            make(DEEP_BLOCK, scan_kernel="batched", decimation=8),
            DEEP_BLOCK,
        ),
        "fft_d8": (
            make(BASE_BLOCK, scan_kernel="fft", decimation=8),
            BASE_BLOCK,
        ),
    }
    frames, best = _interleaved_best(
        {key: run for key, (run, _) in configs.items()}, REPEATS
    )

    # -- equivalence before speed ------------------------------------
    base_fields = _frame_fields(frames["serial_grouped_d4"])
    assert base_fields, "baseline decode produced no frames"
    # Same product domain => bit-identical frames, not just same CRCs.
    assert _frame_fields(frames["batched_d4"]) == base_fields
    d8_fields = _frame_fields(frames["batched_d8"])
    assert _frame_fields(frames["batched_d8_deep"]) == d8_fields

    # Across product domains and fold kernels: identical CRC-valid
    # payload multisets, all matching the scheduled traffic.
    crc_ref = _crc_multiset(frames["serial_grouped_d4"])
    exact_engine = StreamEngine(demux=True, decimation=4, mode="exact")
    exact_frames = exact_engine.run(traffic.blocks(samples, BASE_BLOCK))
    assert _crc_multiset(exact_frames) == crc_ref
    for key in ("batched_d4", "batched_d8", "batched_d8_deep", "fft_d8"):
        assert _crc_multiset(frames[key]) == crc_ref, key
    assert len(crc_ref) == len(truth)

    # Pooled headline config: bit-identical to its own serial run.
    pooled_run = make(DEEP_BLOCK, scan_kernel="batched", decimation=8, jobs=2)
    t0 = time.perf_counter()
    pooled_frames = pooled_run()
    pooled_s = time.perf_counter() - t0
    assert _frame_fields(pooled_frames) == _frame_fields(
        frames["batched_d8_deep"]
    )

    ratio_deep = best["serial_grouped_d4"] / best["batched_d8_deep"]
    ratio_d8 = best["serial_grouped_d4"] / best["batched_d8"]
    best_msps = n / min(best.values()) / 1e6

    report = {
        "pr": 10,
        "workload": {
            "senders": 3,
            "duration_s": DURATION_S,
            "samples": int(n),
            "scheduled_frames": len(truth),
            "crc_ok_frames": len(crc_ref),
            "seed": SEED,
            "mode": "demux (4 sessions)",
        },
        "protocol": (
            "interleaved round-robin best-of-N wall time, gc disabled, "
            "after two warm-up decodes per configuration; ratios use "
            "the same-run PR-6 baseline (grouped scanner, decimation 4, "
            "32768-sample blocks) because shared-host speed drifts >20% "
            "between recording sessions; the headline assert applies "
            "the 0.85x noise floor recorded under 'gates'"
        ),
        "cpu_count": cpu_count,
    }
    for key, (_, block_size) in configs.items():
        extra = {}
        if key == "batched_d8_deep":
            extra = {
                "ratio_vs_baseline": round(ratio_deep, 3),
                "target_ratio": TARGET_RATIO,
            }
        elif key != "serial_grouped_d4":
            extra = {
                "ratio_vs_baseline": round(
                    best["serial_grouped_d4"] / best[key], 3
                )
            }
        report[key] = _row(n, frames[key], best[key], block_size, **extra)
    report["pooled_jobs2_d8"] = _row(
        n, pooled_frames, pooled_s, DEEP_BLOCK, jobs=2
    )
    report["gates"] = {
        "headline_ratio": round(ratio_deep, 3),
        "target_ratio": TARGET_RATIO,
        "assert_floor": round(RATIO_FLOOR, 3),
        "best_effective_msps": round(best_msps, 3),
        "previous_serial_record_msps": 7.208,
        "note": (
            "serial-vs-serial ratio, so no cpu-count condition; the "
            "floor absorbs shared-host noise, the JSON records the "
            "exact measured ratio"
        ),
    }
    (root / "BENCH_PR10.json").write_text(json.dumps(report, indent=2) + "\n")

    print()
    for key in (*configs, "pooled_jobs2_d8"):
        row = report[key]
        print(
            f"{key:18s} {row['elapsed_seconds']:7.4f} s  "
            f"{row['effective_msps']:6.2f} Msps  "
            f"{row['crc_ok_frames']} crc_ok"
        )
    print(
        f"headline ratio {ratio_deep:.3f}x (target {TARGET_RATIO}, "
        f"floor {RATIO_FLOOR:.3f})  d8@32k {ratio_d8:.3f}x  "
        f"best {best_msps:.2f} Msps"
    )

    assert ratio_deep >= RATIO_FLOOR, (
        f"batched d8 deep ratio {ratio_deep:.3f}x fell below the "
        f"{RATIO_FLOOR:.3f}x floor (target {TARGET_RATIO}x)"
    )
    # The kernel alone must never lose to the grouped scanner on the
    # same product domain (it is the same cascade with cheaper gates).
    assert best["batched_d4"] <= best["serial_grouped_d4"] * 1.10
