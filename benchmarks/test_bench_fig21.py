"""Bench: regenerate Fig 21 (BER vs SINR with/without Hamming coding)."""

from repro.experiments import fig21_hamming as fig21


def test_bench_fig21(run_once, benchmark):
    result = run_once(fig21.run)
    fig21.main()
    low = result.sinr_db.index(min(result.sinr_db))
    benchmark.extra_info["uncoded_ber_lowest_sinr"] = result.ber_uncoded[low]

    # Paper shape: about 19.5% uncoded BER at -10 dB SINR, coding
    # roughly halving BER in the moderate-SINR region, both curves
    # falling to zero by +6 dB.
    assert 0.10 <= result.ber_uncoded[low] <= 0.40
    mid = result.sinr_db.index(-6)
    assert result.ber_coded[mid] <= 0.7 * result.ber_uncoded[mid] + 0.01
    top = result.sinr_db.index(max(result.sinr_db))
    assert result.ber_uncoded[top] < 0.01
    assert result.ber_coded[top] < 0.01
