"""Bench: regenerate Fig 6/7/8 (stable phases and pair optimality)."""

import numpy as np

from repro.experiments import fig07_stable_phase as fig07


def test_bench_fig07(run_once, benchmark):
    result = run_once(fig07.run)
    fig07.main()
    benchmark.extra_info["bit1_run"] = result.bit1_run
    benchmark.extra_info["best_other_run"] = result.best_other_run
    # Paper: 84 stable values (4.2 us), longest over all combinations,
    # with maximal 8pi/5 separation between the two bit levels.
    assert result.bit1_run >= 84
    assert result.bit0_run >= 84
    assert result.best_other_run < result.bit1_run
    assert result.separation_rad == np.pi * 1.6
