"""Extension bench: sender energy per delivered bit (CC2420 model)."""

from repro.experiments import ext_energy


def test_bench_ext_energy(run_once, benchmark):
    result = run_once(ext_energy.run)
    ext_energy.main()
    benchmark.extra_info["symbee_uj_per_bit"] = result.symbee_uj_per_bit
    benchmark.extra_info["advantage"] = result.advantage

    # The throughput advantage translates into an order-of-magnitude
    # energy-per-bit advantage on the sender.
    assert result.symbee_uj_per_bit < 5.0
    assert result.advantage > 5.0
    schemes = {row[0] for row in result.rows}
    assert "SymBee" in schemes and "C-Morse" in schemes
