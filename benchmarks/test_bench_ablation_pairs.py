"""Ablation: the symbol-pair choice (paper Section IV-A).

Validates the paper's optimality claim exhaustively and quantifies what
the extra plateau length buys: the majority vote over the (6,7)/(E,F)
84-sample window versus the window the runner-up pair would give.
"""

import numpy as np

from repro.core.analytics import ber_from_phase_error, phase_error_probability
from repro.experiments import fig07_stable_phase as fig07
from repro.experiments.common import scaled


def test_bench_ablation_symbol_pairs(run_once, benchmark):
    result = run_once(fig07.run)
    rng = np.random.default_rng(44)

    best_window = result.bit1_run - 1        # 84 usable stable values
    runner_up_window = result.best_other_run - 1

    print("\n== ablation: what the optimal pair buys ==")
    rows = []
    for snr in (-6.0, -4.0, -2.0):
        p = phase_error_probability(snr, rng, n_samples=scaled(100_000))
        ber_best = ber_from_phase_error(p, window=best_window)
        ber_alt = ber_from_phase_error(p, window=runner_up_window)
        rows.append((snr, ber_best, ber_alt))
        print(
            f"  SNR {snr:+.0f} dB: window {best_window} -> BER {ber_best:.4f} | "
            f"window {runner_up_window} -> BER {ber_alt:.4f}"
        )
    benchmark.extra_info["best_window"] = best_window
    benchmark.extra_info["runner_up_window"] = runner_up_window

    # Exhaustive optimality (Fig 7) and a strictly better vote at every
    # noisy operating point.
    assert result.best_other_run < result.bit1_run
    for _, ber_best, ber_alt in rows:
        assert ber_best <= ber_alt
    assert any(ber_alt > ber_best * 1.2 for _, ber_best, ber_alt in rows)
