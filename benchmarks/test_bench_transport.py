"""Goodput benchmark for the PR-4 transport subsystem -> BENCH_PR4.json.

Sweeps session goodput over an SNR grid for each fixed FEC scheme and
for the adaptive policy.  Each grid point runs warmed-up sessions: a
handful of seeded :class:`TransportSession` objects each delivering
several messages back-to-back, so the adaptive policy's cold-start
(first message on the robustness-first conv prior) is amortized the way
a long-lived sender would amortize it.  Goodput counts only byte-exact
deliveries over total simulated link time.

What the sweep shows — and the JSON records — is a real property of
this PHY, worth stating plainly: transport frames carry 50 payload bits
uncoded but only 18 (Hamming) or 8 (conv) coded, at nearly identical
air time, so uncoded + selective-repeat ARQ dominates raw goodput
wherever the link delivers frames at all, and the informed adaptive
policy correctly *converges to uncoded* there.  The acceptance bar for
adaptation is therefore against the fixed *coded* provisioning you
would deploy without channel knowledge: at the low-SNR end adaptive
must beat both fixed-Hamming and fixed-conv, while matching fixed-
uncoded's delivery reliability.
"""

import json
import time
from pathlib import Path

from repro.runtime import run_trials
from repro.transport import TransportSession

SNR_GRID_DB = (1.0, 1.5, 2.0, 3.0, 6.0)
MODES = ("none", "hamming", "conv", "adaptive")
SEEDS = (1, 2)
MESSAGES_PER_SESSION = 4
MESSAGE = bytes(range(40))
#: Grid points considered "low SNR" (raw uncoded frame loss >= ~37%).
LOW_SNR_DB = (1.0, 1.5)


def _session_point(task):
    """One (snr, fec, seed) warmed-up session; module-level for pickling."""
    snr_db, fec, seed = task
    session = TransportSession(snr_db=snr_db, seed=seed, fec=fec)
    delivered_bytes = 0
    elapsed_s = 0.0
    delivered = 0
    n_tx = retransmits = fec_switches = 0
    for _ in range(MESSAGES_PER_SESSION):
        result = session.send(MESSAGE)
        if result.byte_exact:
            delivered += 1
            delivered_bytes += len(MESSAGE)
        elapsed_s += result.elapsed_s
        n_tx += result.n_tx
        retransmits += result.retransmits
        fec_switches += result.fec_switches
    return {
        "snr_db": snr_db,
        "fec": fec,
        "seed": seed,
        "goodput_bps": 8.0 * delivered_bytes / elapsed_s,
        "delivered": delivered,
        "messages": MESSAGES_PER_SESSION,
        "n_tx": n_tx,
        "retransmits": retransmits,
        "fec_switches": fec_switches,
    }


def test_bench_transport_goodput():
    root = Path(__file__).resolve().parent.parent
    tasks = [
        (snr, fec, seed)
        for snr in SNR_GRID_DB
        for fec in MODES
        for seed in SEEDS
    ]
    t0 = time.perf_counter()
    rows = run_trials(_session_point, tasks)
    elapsed = time.perf_counter() - t0

    series = {}
    for fec in MODES:
        points = []
        for snr in SNR_GRID_DB:
            cell = [
                r for r in rows if r["fec"] == fec and r["snr_db"] == snr
            ]
            messages = sum(r["messages"] for r in cell)
            points.append(
                {
                    "snr_db": snr,
                    "goodput_bps": round(
                        sum(r["goodput_bps"] for r in cell) / len(cell), 2
                    ),
                    "delivery_rate": sum(r["delivered"] for r in cell)
                    / messages,
                    "mean_tx_per_message": round(
                        sum(r["n_tx"] for r in cell) / messages, 1
                    ),
                }
            )
        series[fec] = points

    def point(fec, snr):
        return next(p for p in series[fec] if p["snr_db"] == snr)

    report = {
        "pr": 4,
        "workload": {
            "message_bytes": len(MESSAGE),
            "messages_per_session": MESSAGES_PER_SESSION,
            "snr_grid_db": list(SNR_GRID_DB),
            "seeds": list(SEEDS),
            "sessions": len(tasks),
            "wall_seconds": round(elapsed, 2),
        },
        "goodput_bps": series,
        "acceptance": {
            "low_snr_db": list(LOW_SNR_DB),
            "adaptive_vs_fixed_coded": {
                f"{snr:g}dB": {
                    "adaptive": point("adaptive", snr)["goodput_bps"],
                    "hamming": point("hamming", snr)["goodput_bps"],
                    "conv": point("conv", snr)["goodput_bps"],
                }
                for snr in LOW_SNR_DB
            },
            "note": (
                "uncoded+ARQ dominates raw goodput on this PHY (50 vs "
                "18/8 payload bits at ~equal airtime); the informed "
                "adaptive policy converges to it, and beats every fixed "
                "coded scheme at the low-SNR end"
            ),
        },
    }
    (root / "BENCH_PR4.json").write_text(json.dumps(report, indent=2) + "\n")

    print()
    for fec in MODES:
        line = "  ".join(
            f"{p['snr_db']:g}dB:{p['goodput_bps']:8.1f}"
            for p in series[fec]
        )
        print(f"{fec:>8}  {line}")

    # Acceptance: at the low-SNR end, adaptation beats both fixed coded
    # provisionings...
    for snr in LOW_SNR_DB:
        adaptive_bps = point("adaptive", snr)["goodput_bps"]
        assert adaptive_bps >= point("hamming", snr)["goodput_bps"]
        assert adaptive_bps >= point("conv", snr)["goodput_bps"]
        # ... without giving up fixed-uncoded's delivery reliability.
        assert (
            point("adaptive", snr)["delivery_rate"]
            >= point("none", snr)["delivery_rate"]
        )
    # Everyone delivers everything on the benign end of the grid.
    for fec in MODES:
        assert point(fec, SNR_GRID_DB[-1])["delivery_rate"] == 1.0
    # And the adaptive sessions really adapted somewhere on the grid.
    assert any(
        r["fec"] == "adaptive" and r["fec_switches"] > 0 for r in rows
    )
