"""Ablation: 20 vs 40 MHz WiFi receiver (paper Section VI-B).

"Overall, doubled stable phase values improves the robustness with the
capacity to tolerate twice the errors."  This bench measures BER at both
receiver bandwidths over the same AWGN operating points.
"""

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ, WIFI_SAMPLE_RATE_40MHZ
from repro.experiments.common import link_at_snr, scaled


def ber_at(sample_rate, snr_db, n_frames, seed=99):
    rng = np.random.default_rng(seed)
    link = link_at_snr(snr_db, sample_rate=sample_rate)
    errors = sent = 0
    for _ in range(n_frames):
        bits = rng.integers(0, 2, 40)
        result = link.send_bits(bits, rng, decode_synchronized=False)
        errors += result.bit_errors
        sent += result.n_bits
    return errors / sent


def test_bench_ablation_wideband(run_once, benchmark):
    n_frames = scaled(8)
    grid = (-6.0, -4.0, -2.0)

    def sweep():
        out = {}
        for snr in grid:
            out[snr] = (
                ber_at(WIFI_SAMPLE_RATE_20MHZ, snr, n_frames),
                ber_at(WIFI_SAMPLE_RATE_40MHZ, snr, n_frames),
            )
        return out

    results = run_once(sweep)
    print("\n== ablation: BER at 20 vs 40 Msps receivers ==")
    for snr, (narrow, wide) in results.items():
        print(f"  SNR {snr:+.0f} dB: 20 MHz {narrow:.3f} | 40 MHz {wide:.3f}")
    benchmark.extra_info.update(
        {f"snr_{snr}": {"20mhz": n, "40mhz": w} for snr, (n, w) in results.items()}
    )

    # The doubled window must never be meaningfully worse.
    for snr, (narrow, wide) in results.items():
        assert wide <= narrow + 0.05, snr
