"""Bench: regenerate Fig 3/5 (cross-observation of ZigBee symbol 6)."""

import numpy as np

from repro.experiments import fig05_cross_observation as fig05


def test_bench_fig05(run_once, benchmark):
    result = run_once(fig05.run, symbol=6)
    fig05.main()
    benchmark.extra_info["stable_run_samples"] = result.stable_run_samples
    # The paper's Figure 5 gray region: a multi-us stable stretch at a
    # +-4pi/5 level inside a single symbol.
    assert result.stable_run_samples >= 30
    assert abs(result.stable_level) == np.pi * 0.8
