"""Runnable wrapper for the BENCH_* artifact aggregator.

    PYTHONPATH=src python benchmarks/trajectory.py [--root DIR]

The implementation lives in :mod:`repro.bench.trajectory` so the CLI
(``python -m repro bench trajectory``) shares it.
"""

from repro.bench.trajectory import main

if __name__ == "__main__":
    raise SystemExit(main())
