"""Bench: regenerate Appendices A/B (phase levels, CFO compensation)."""

from repro.experiments import appendix_phase_values as appendix


def test_bench_appendix(run_once, benchmark):
    result = run_once(appendix.run)
    appendix.main()
    benchmark.extra_info["n_levels"] = len(result.observed_levels)

    # Appendix A: all 17 derived +-i*pi/10 levels occur and the extremes
    # are exactly -+4pi/5 (the bit-separation property).
    assert result.derived_levels_present
    assert result.extremes_are_stable_phase
    assert result.on_pi_over_20_grid
    # Appendix B: one constant +4pi/5 correction for every overlapping
    # WiFi/ZigBee channel pair.
    assert result.correction_constant
    assert len(result.cfo_rows) >= 40
