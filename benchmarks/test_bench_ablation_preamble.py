"""Ablation: preamble repetition count (paper Section V).

The paper states "preamble can be further protected by increasing the
repetitions, where four offered reliable capturing".  This bench sweeps
the number of folds used by the capture stage — sending extra leading
zero bits so longer preambles exist on air — and measures capture
accuracy at a noisy operating point.
"""

import numpy as np

from repro.core.preamble import capture_preamble
from repro.experiments.common import link_at_snr, scaled


def capture_accuracy(folds, snr_db, n_frames, seed=77):
    """Fraction of frames whose preamble is captured within tolerance."""
    rng = np.random.default_rng(seed)
    link = link_at_snr(snr_db)
    extra_zeros = max(0, folds - 4)
    hits = 0
    for _ in range(n_frames):
        message = list(rng.integers(0, 2, 24))
        bits = [0] * extra_zeros + message
        result = link.send_bits(bits, rng, keep_phases=True)
        pre = capture_preamble(result.phases, link.decoder, folds=folds)
        if pre is None:
            continue
        # n0 may anchor on any of the leading zero bits; accept captures
        # aligned to the bit grid within the preamble region.
        expected_n0 = result.true_data_start - (4 + extra_zeros) * link.decoder.bit_period
        offset = pre.index - expected_n0
        on_grid = abs(offset % link.decoder.bit_period) <= 16 or (
            link.decoder.bit_period - (offset % link.decoder.bit_period) <= 16
        )
        if on_grid and -16 <= offset <= (4 + extra_zeros) * link.decoder.bit_period:
            hits += 1
    return hits / n_frames


def test_bench_ablation_preamble_folds(run_once, benchmark):
    n_frames = scaled(10)

    def sweep():
        return {
            folds: capture_accuracy(folds, snr_db=5.0, n_frames=n_frames)
            for folds in (2, 4, 8)
        }

    rates = run_once(sweep)
    print("\n== ablation: capture accuracy vs preamble folds (SNR +5 dB) ==")
    for folds, rate in rates.items():
        print(f"  folds={folds}: capture accuracy {rate:.2f}")
    benchmark.extra_info.update({f"folds_{k}": v for k, v in rates.items()})

    # More repetitions must not hurt, and the paper's choice of four
    # must already be reliable at the operating SNR.
    assert rates[4] >= rates[2] - 0.15
    assert rates[4] >= 0.8
