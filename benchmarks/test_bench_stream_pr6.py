"""Perf acceptance benchmark for the PR-6 persistent worker pool.

Decodes the BENCH_PR5 workload (3 senders, 1 M samples, seed 20260806,
4-session demux) through the headline serial fast path and the
persistent per-channel :class:`repro.runtime.workerpool.BlockWorkerPool`
fan-out, and writes ``BENCH_PR6.json`` at the repo root:

* **serial_fast_f32** — ``decimation=4, mode="fast"``, complex64: the
  PR-5 headline configuration re-measured in this same run (now faster
  than the recorded PR-5 number thanks to the fused streaming
  lag-product kernel and the channelizer defer/flush fast path).  Every
  ratio below uses this same-run baseline; shared-host drift between
  recording sessions routinely exceeds 20%.
* **pooled_jobs2 / pooled_jobs4** — the same configuration through
  ``engine.run(blocks, jobs=N)``: workers spawned once, each block
  published once into shared memory while workers chew on earlier
  blocks.

Frame lists are asserted **bit-identical** between serial and pooled
runs — same frames, same order, same payloads — not merely
CRC-equivalent.

The speed gates are cpu-count-conditional and recorded honestly: the
reference container has a single CPU, where process fan-out cannot beat
the serial path (the pool only adds publish/IPC overhead), so the
multi-core targets (jobs=2 at >= 1.2x serial; best config at >= 1.0x
realtime, i.e. 20 Msps) are asserted only when the cores exist, and the
artifact records ``cpu_count`` plus which gates applied so a reader
knows what the numbers mean.
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream import StreamEngine

DURATION_S = 0.05
SEED = 20260806
BLOCK_SIZE = 32768
SAMPLE_RATE = 20e6

#: Multi-core targets (asserted only when the cores exist).
TARGET_JOBS2_SPEEDUP = 1.2
TARGET_REALTIME_MSPS = 20.0

ENGINE_KWARGS = dict(
    demux=True, decimation=4, mode="fast", working_dtype=np.complex64
)


def _capture():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=DURATION_S)
    samples, truth = traffic.capture(np.random.default_rng(SEED))
    return traffic, samples, truth


def _frame_fields(frames):
    """Full per-frame identity: equality here is bit-identity."""
    return [
        (
            f.zigbee_channel,
            f.preamble_index,
            tuple(f.bits),
            f.crc_ok,
            f.band_power,
        )
        for f in frames
    ]


def _best_timed(decode, repeats):
    """(frames, best wall seconds) over ``repeats`` runs, GC paused."""
    decode()  # warm-up: waveform caches, page faults, branch history
    decode()  # second warm-up: allocator and BLAS pools settle
    best = float("inf")
    frames = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            frames = decode()
            best = min(best, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return frames, best


def _row(n_samples, frames, elapsed, **extra):
    return {
        "frames": len(frames),
        "crc_ok_frames": sum(1 for f in frames if f.crc_ok),
        "elapsed_seconds": round(elapsed, 4),
        "effective_msps": round(n_samples / elapsed / 1e6, 3),
        "x_realtime": round(n_samples / elapsed / SAMPLE_RATE, 4),
        "block_size": BLOCK_SIZE,
        **extra,
    }


def test_bench_stream_pr6():
    root = Path(__file__).resolve().parent.parent
    traffic, samples, truth = _capture()
    n = samples.size
    cpu_count = os.cpu_count() or 1

    def run(jobs=None):
        def decode():
            engine = StreamEngine(**ENGINE_KWARGS)
            return engine.run(traffic.blocks(samples, BLOCK_SIZE), jobs=jobs)

        return decode

    serial_frames, serial_s = _best_timed(run(), repeats=5)
    jobs2_frames, jobs2_s = _best_timed(run(jobs=2), repeats=2)
    jobs4_frames, jobs4_s = _best_timed(run(jobs=4), repeats=2)

    # Pool stats from one more instrumented jobs=2 run (stats are per
    # engine instance, and the timed closures rebuild the engine).
    engine = StreamEngine(**ENGINE_KWARGS)
    engine.run(traffic.blocks(samples, BLOCK_SIZE), jobs=2)
    pool_stats = dict(engine.pool_stats or {})

    # Hard equivalence: the pooled runs reproduce the serial frame list
    # exactly — payloads, order, indices, powers.
    ref = _frame_fields(serial_frames)
    assert ref, "serial decode produced no frames"
    assert _frame_fields(jobs2_frames) == ref
    assert _frame_fields(jobs4_frames) == ref

    jobs2_speedup = serial_s / jobs2_s
    jobs4_speedup = serial_s / jobs4_s
    best_msps = n / min(serial_s, jobs2_s, jobs4_s) / 1e6
    gate_jobs2 = cpu_count >= 2
    gate_realtime = cpu_count >= 4

    report = {
        "pr": 6,
        "workload": {
            "senders": 3,
            "duration_s": DURATION_S,
            "samples": int(n),
            "scheduled_frames": len(truth),
            "crc_ok_frames": sum(1 for f in serial_frames if f.crc_ok),
            "seed": SEED,
            "mode": "demux (4 sessions)",
        },
        "protocol": (
            "best-of-N wall time, gc disabled, after two warm-up decodes; "
            "ratios use the same-run serial baseline because shared-host "
            "speed drifts >20% between recording sessions; speed gates "
            "are cpu-count-conditional and recorded under 'gates'"
        ),
        "cpu_count": cpu_count,
        "serial_fast_f32": _row(n, serial_frames, serial_s),
        "pooled_jobs2": _row(
            n,
            jobs2_frames,
            jobs2_s,
            speedup_vs_serial=round(jobs2_speedup, 2),
            target_speedup=TARGET_JOBS2_SPEEDUP,
        ),
        "pooled_jobs4": _row(
            n,
            jobs4_frames,
            jobs4_s,
            speedup_vs_serial=round(jobs4_speedup, 2),
        ),
        "pool_stats_jobs2": pool_stats,
        "gates": {
            "jobs2_speedup_gate_applied": gate_jobs2,
            "realtime_gate_applied": gate_realtime,
            "best_effective_msps": round(best_msps, 3),
            "target_realtime_msps": TARGET_REALTIME_MSPS,
            "note": (
                "single-CPU containers cannot win from process fan-out; "
                "gates assert only where the cores exist"
            ),
        },
    }
    (root / "BENCH_PR6.json").write_text(json.dumps(report, indent=2) + "\n")

    print()
    for name in ("serial_fast_f32", "pooled_jobs2", "pooled_jobs4"):
        row = report[name]
        print(
            f"{name:16s} {row['elapsed_seconds']:7.4f} s  "
            f"{row['effective_msps']:6.2f} Msps  "
            f"{row['crc_ok_frames']} crc_ok"
        )
    print(
        f"cpus={cpu_count}  jobs2 speedup {jobs2_speedup:.2f}x "
        f"(gate {'on' if gate_jobs2 else 'off'})  best {best_msps:.2f} Msps "
        f"(realtime gate {'on' if gate_realtime else 'off'})"
    )

    # Transport sanity regardless of core count: every block was
    # published exactly once and every shared segment came back.
    blocks = -(-n // BLOCK_SIZE)
    assert pool_stats["blocks_published"] == blocks
    assert pool_stats["samples_published"] == n
    assert pool_stats["inflight_segments"] == 0

    if gate_jobs2:
        # Noise-tolerant hard floor below the recorded target: the JSON
        # carries the exact ratio, CI must not flake on a loaded host,
        # but a pool that fails to beat serial on real cores must fail.
        floor = TARGET_JOBS2_SPEEDUP * 0.85 if cpu_count >= 4 else 1.0
        assert jobs2_speedup >= floor, report["pooled_jobs2"]
    if gate_realtime:
        assert best_msps >= TARGET_REALTIME_MSPS * 0.85, report["gates"]
