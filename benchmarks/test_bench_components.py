"""Component micro-benchmarks: the hot paths of the pipeline.

These are classic repeated-timing benchmarks (unlike the experiment
benches, which run once): modulation, the idle-listening phase stream,
folding, synchronized decoding, and a full end-to-end frame.
"""

import numpy as np
import pytest

from repro.core.decoder import SymBeeDecoder
from repro.core.link import SymBeeLink
from repro.dsp.folding import circular_folded_profile
from repro.wifi.idle_listening import phase_differences
from repro.zigbee.oqpsk import OqpskModulator


@pytest.fixture(scope="module")
def sample_symbols():
    rng = np.random.default_rng(1)
    return list(rng.integers(0, 16, 262))  # one max-size PPDU


@pytest.fixture(scope="module")
def sample_capture():
    link = SymBeeLink()
    rng = np.random.default_rng(2)
    result = link.send_bits([1, 0] * 30, rng, keep_phases=True)
    return link, result


def test_bench_component_modulator(benchmark, sample_symbols):
    mod = OqpskModulator(20e6)
    waveform = benchmark(mod.modulate_symbols, sample_symbols)
    assert waveform.size > 80_000


def test_bench_component_phase_stream(benchmark, sample_capture):
    link, result = sample_capture
    rng = np.random.default_rng(3)
    samples = rng.standard_normal(100_000) + 1j * rng.standard_normal(100_000)
    phases = benchmark(phase_differences, samples, 16)
    assert phases.size == 100_000 - 16


def test_bench_component_folding(benchmark, sample_capture):
    _, result = sample_capture
    profile = benchmark(circular_folded_profile, result.phases, 640, 4)
    assert profile.size > 0


def test_bench_component_sync_decode(benchmark, sample_capture):
    link, result = sample_capture
    decoded = benchmark(
        link.decoder.decode_synchronized,
        result.phases,
        result.true_data_start,
        60,
    )
    assert len(decoded.bits) == 60


def test_bench_component_unsync_detect(benchmark, sample_capture):
    link, result = sample_capture
    detections = benchmark(link.decoder.detect_bits, result.phases)
    assert detections


def test_bench_component_end_to_end_frame(benchmark):
    link = SymBeeLink()
    rng = np.random.default_rng(4)

    def send():
        return link.send_bits([1, 0, 1, 1, 0, 0, 1, 0], rng)

    result = benchmark(send)
    assert result.preamble_captured


def test_bench_component_decoder_realtime_margin(benchmark, sample_capture):
    """The decoder must keep up with the stream it recycles.

    One SymBee bit spans 32 us of air time; decoding it must take far
    less than that for the light-weight-decoding claim to hold.
    """
    link, result = sample_capture
    n_bits = 60

    def decode():
        return link.decoder.decode_synchronized(
            result.phases, result.true_data_start, n_bits
        )

    benchmark(decode)
    per_bit_seconds = benchmark.stats.stats.mean / n_bits
    assert per_bit_seconds < 32e-6  # faster than real time
