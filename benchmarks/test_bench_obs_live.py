"""Perf gate: the live collector must be invisible in the hot path.

The PR-7 acceptance criterion: a metered streaming decode with a
:class:`~repro.obs.live.LiveCollector` attached (JSONL sink, aggressive
0.05 s interval) must stay within noise of the same metered decode
without one — the gate allows 3% Msps.  Best-of-3 on both sides so a
scheduler hiccup cannot fail the build, and the exact-totals contract is
asserted on the same run the timing came from.  Results land in
``BENCH_PR7.json`` next to the other per-PR artifacts.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.obs import REGISTRY, JsonlSink, LiveCollector, read_metrics_stream
from repro.stream import StreamEngine

BLOCK_SIZE = 32768

#: Msps with the collector must be >= this fraction of Msps without it.
OVERHEAD_FLOOR = 0.97

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"


def _workload():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=0.0125)
    samples, truth = traffic.capture(np.random.default_rng(20260806))
    assert truth
    return traffic, samples


def _engine():
    return StreamEngine(
        demux=True,
        decimation=4,
        mode="fast",
        working_dtype=np.complex64,
    )


@pytest.mark.perf_smoke
def test_live_collector_overhead_within_noise(tmp_path):
    traffic, samples = _workload()

    def metered_decode(collector=None):
        engine = _engine()
        REGISTRY.enable()
        REGISTRY.reset()
        try:
            t0 = time.perf_counter()
            frames = engine.run(
                traffic.blocks(samples, BLOCK_SIZE), collector=collector
            )
            if collector is not None:
                collector.finalize()
            elapsed = time.perf_counter() - t0
            snapshot = REGISTRY.snapshot()
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        return frames, elapsed, snapshot

    metered_decode()  # warm-up: waveform caches, BLAS pools, page faults

    plain_best = float("inf")
    for _ in range(3):
        _frames, elapsed, _snapshot = metered_decode()
        plain_best = min(plain_best, elapsed)

    live_best = float("inf")
    final_totals = None
    snapshot = None
    for index in range(3):
        path = tmp_path / f"live_{index}.jsonl"
        sink = JsonlSink(str(path))
        collector = LiveCollector(interval_s=0.05, sinks=[sink])
        _frames, elapsed, snapshot = metered_decode(collector)
        sink.close()
        live_best = min(live_best, elapsed)
        final_totals = read_metrics_stream(str(path))[-1]

    # Exact-totals contract on the very run that was timed.
    assert final_totals["final"] is True
    assert final_totals["counters"] == snapshot["counters"]
    assert final_totals["histograms"] == {
        name: {"count": data["count"], "total": data["total"]}
        for name, data in snapshot["histograms"].items()
    }

    plain_msps = samples.size / plain_best / 1e6
    live_msps = samples.size / live_best / 1e6
    ratio = live_msps / plain_msps

    ARTIFACT_PATH.write_text(
        json.dumps(
            {
                "pr": 7,
                "claim": "live collector overhead within noise",
                "workload": {
                    "senders": 3,
                    "duration_s": 0.0125,
                    "block_size": BLOCK_SIZE,
                    "config": "demux decimation=4 fast complex64",
                },
                "collector": {"interval_s": 0.05, "sink": "jsonl"},
                "streaming": {
                    "plain_metered": {
                        "effective_msps": round(plain_msps, 3),
                    },
                    "with_live_collector": {
                        "effective_msps": round(live_msps, 3),
                    },
                },
                "msps_ratio": round(ratio, 4),
                "overhead_floor": OVERHEAD_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nlive-collector smoke: plain {plain_msps:.2f} Msps, "
        f"live {live_msps:.2f} Msps (ratio {ratio:.3f}, "
        f"floor {OVERHEAD_FLOOR}) -> {ARTIFACT_PATH.name}"
    )
    assert live_msps >= plain_msps * OVERHEAD_FLOOR, (
        f"live collector cost {100 * (1 - ratio):.1f}% Msps "
        f"(allowed {100 * (1 - OVERHEAD_FLOOR):.0f}%)"
    )
