"""Ablation/extension: residual carrier offset tolerance and tracking.

The paper's CFO story (Appendix B) ends at channel-grid offsets; real
crystals add +-40 ppm (+-100 kHz at 2.44 GHz).  This bench maps BER vs
residual offset with and without preamble-based offset tracking — the
natural robustness extension a deployment needs.
"""

import numpy as np

from repro.core.link import SymBeeLink
from repro.experiments.common import scaled

CFO_GRID_HZ = (0.0, 30e3, 60e3, 80e3)


def ber_at(cfo_hz, track, n_frames, seed=55):
    rng = np.random.default_rng(seed)
    link = SymBeeLink(
        tx_power_dbm=-89.0, residual_cfo_hz=cfo_hz, track_residual_cfo=track
    )
    errors = sent = 0
    for _ in range(n_frames):
        result = link.send_bits(rng.integers(0, 2, 48), rng)
        errors += result.n_bits - result.delivered_bits
        sent += result.n_bits
    return errors / sent


def test_bench_ablation_residual_cfo(run_once, benchmark):
    n_frames = scaled(10)

    def sweep():
        return {
            cfo: (ber_at(cfo, False, n_frames), ber_at(cfo, True, n_frames))
            for cfo in CFO_GRID_HZ
        }

    results = run_once(sweep)
    print("\n== ablation: BER vs residual CFO (SNR ~6 dB) ==")
    for cfo, (plain, tracked) in results.items():
        print(f"  {cfo / 1e3:5.0f} kHz: untracked {plain:.3f} | tracked {tracked:.3f}")
    benchmark.extra_info.update(
        {f"cfo_{int(k / 1e3)}k": {"plain": p, "tracked": t}
         for k, (p, t) in results.items()}
    )

    # Zero-offset behaviour must be unaffected by tracking; at the top of
    # the crystal range tracking must not hurt and should help when the
    # untracked link degrades.
    assert results[0.0][0] < 0.02 and results[0.0][1] < 0.02
    for cfo, (plain, tracked) in results.items():
        assert tracked <= plain + 0.02, cfo
    worst_plain = results[max(CFO_GRID_HZ)][0]
    worst_tracked = results[max(CFO_GRID_HZ)][1]
    if worst_plain > 0.05:
        assert worst_tracked < worst_plain
