"""Bench: regenerate Fig 18 (NLOS office deployment)."""

from repro.experiments import fig18_nlos as fig18


def test_bench_fig18(run_once, benchmark):
    result = run_once(fig18.run)
    fig18.main()
    throughput = {row[0]: row[3] for row in result.rows}
    benchmark.extra_info.update(
        {pos: round(kbps, 2) for pos, kbps in throughput.items()}
    )

    # Paper shape: S2 beats the closer-but-more-walled S3, and S4
    # (farthest, two walls) is the weakest position.
    assert result.wall_effect_ok
    assert throughput["S4"] <= min(throughput["S1"], throughput["S2"]) + 0.5
    assert throughput["S1"] >= throughput["S4"]
