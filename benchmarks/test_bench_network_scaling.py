"""Extension bench: convergecast scaling (beyond the paper's figures).

The paper evaluates single links; its motivating deployment is a sensor
cluster converging on WiFi.  This bench measures how delivery, latency
and goodput scale with cluster size under CSMA-CA contention — the
obvious next experiment a follow-up paper would run.
"""

import numpy as np

from repro.channel.scenarios import get_scenario
from repro.experiments.common import scaled
from repro.network import ConvergecastNetwork, NodeConfig


def run_scaling(duration_s, seed=6):
    scenario = get_scenario("office")
    results = {}
    for n_nodes in (2, 6, 12):
        rng = np.random.default_rng(seed)
        nodes = [
            NodeConfig(
                node_id=i,
                distance_m=float(rng.uniform(4.0, 18.0)),
                reading_interval_s=0.2,
            )
            for i in range(n_nodes)
        ]
        network = ConvergecastNetwork(
            nodes, scenario, sim_duration_s=duration_s, seed=seed
        )
        results[n_nodes] = network.run()
    return results


def test_bench_network_scaling(run_once, benchmark):
    duration = 1.0 * min(scaled(2), 4)
    results = run_once(run_scaling, duration)

    print("\n== convergecast scaling (office) ==")
    for n_nodes, result in results.items():
        print(
            f"  {n_nodes:2d} nodes: delivery {result.delivery_ratio:.2f}, "
            f"collisions {result.collision_rate:.2f}, "
            f"latency {result.mean_latency_s * 1000:.1f} ms, "
            f"airtime {result.channel_utilization:.3f}, "
            f"goodput {result.goodput_bps(16):.0f} bps"
        )
    benchmark.extra_info.update(
        {str(k): round(v.delivery_ratio, 3) for k, v in results.items()}
    )

    small, large = results[2], results[12]
    # Aggregate goodput grows with offered load while per-channel airtime
    # stays modest; delivery holds up under light contention.
    assert large.goodput_bps(16) > small.goodput_bps(16)
    assert small.delivery_ratio > 0.7
    assert large.channel_utilization < 0.5
