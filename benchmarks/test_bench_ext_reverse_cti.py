"""Extension bench: WiFi link under ZigBee interference (reverse CTI)."""

from repro.experiments import ext_reverse_cti


def test_bench_ext_reverse_cti(run_once, benchmark):
    result = run_once(ext_reverse_cti.run)
    ext_reverse_cti.main()
    benchmark.extra_info["detection"] = dict(
        zip(result.sir_db, result.detection_rate)
    )

    # Weak ZigBee is harmless; strong in-band ZigBee kills WiFi packet
    # *detection* (the Schmidl-Cox plateau) before data errors dominate.
    assert result.detection_rate[0] >= 0.9          # SIR 30 dB
    assert result.ber_when_detected[0] < 0.01
    assert result.detection_rate[-1] <= 0.3         # SIR 0 dB
    # Monotone-ish degradation with falling SIR.
    assert result.detection_rate[0] >= result.detection_rate[-1]
