"""Ablation/extension: interleaving under bursty WiFi interference.

The paper's Figure 21 notes Hamming(7,4) "can only correct one bit out
of 7"; a WiFi burst covers ~8 consecutive SymBee bits, overwhelming
single-error correction.  A block interleaver (depth 12 over the 84-bit
codeword) maps consecutive on-air errors onto *distinct* codewords —
this bench replays the Figure-20 single-burst setup at hostile SINRs and
shows interleaving erasing the burst entirely.
"""

import numpy as np

from repro.core.coding import (
    deinterleave,
    hamming74_decode,
    hamming74_encode,
    interleave,
)
from repro.experiments.common import link_at_snr, scaled
from repro.experiments.fig20_interference_example import SingleBurst

DEPTH = 12
DATA_BITS = 48


def ber_with_scheme(sinr_db, use_interleaving, n_frames, seed=67, snr_db=25.0):
    rng = np.random.default_rng(seed)
    errors = sent = 0
    for _ in range(n_frames):
        link = link_at_snr(snr_db)
        burst_anchor = link.true_bit_positions(84)[30] - 100
        link.interference = SingleBurst(burst_anchor, 270e-6, sinr_db)
        data = rng.integers(0, 2, DATA_BITS)
        coded = hamming74_encode(data)
        on_air = interleave(coded, DEPTH) if use_interleaving else coded
        result = link.send_bits(on_air, rng, decode_synchronized=False)
        if len(result.decoded_bits) == len(on_air):
            received = np.array(result.decoded_bits, dtype=np.int8)
            if use_interleaving:
                received = deinterleave(received, DEPTH)
            decoded, _ = hamming74_decode(received)
            errors += int(np.sum(decoded != data))
        else:
            errors += DATA_BITS
        sent += DATA_BITS
    return errors / sent


def test_bench_ablation_interleaving(run_once, benchmark):
    n_frames = scaled(12)
    grid = (-6.0, -10.0, -15.0)

    def sweep():
        return {
            sinr: (
                ber_with_scheme(sinr, False, n_frames),
                ber_with_scheme(sinr, True, n_frames),
            )
            for sinr in grid
        }

    results = run_once(sweep)
    print("\n== ablation: one 270 us burst — Hamming(7,4) vs + interleaving ==")
    for sinr, (plain, interleaved) in results.items():
        print(f"  SINR {sinr:+.0f} dB: coded {plain:.3f} | "
              f"coded+interleaved {interleaved:.3f}")
    benchmark.extra_info.update(
        {f"sinr_{sinr}": {"coded": p, "interleaved": i}
         for sinr, (p, i) in results.items()}
    )

    # The burst defeats plain Hamming at hostile SINR; interleaving maps
    # its consecutive errors one-per-codeword, all correctable.
    worst = min(grid)
    plain, interleaved = results[worst]
    assert plain > 0.01
    assert interleaved < plain / 2
    for sinr, (p, i) in results.items():
        assert i <= p + 0.01, sinr
