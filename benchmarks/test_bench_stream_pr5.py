"""Perf acceptance benchmark for the PR-5 streaming optimizations.

Decodes the exact BENCH_PR3 workload (3 senders, 1 M samples, seed
20260806, 4-session demux) through the engine's new performance
controls and writes ``BENCH_PR5.json`` at the repo root:

* **baseline_full_rate_exact** — the PR-3 configuration re-measured in
  this same run, so the headline speedup is computed on one machine
  under one load.  The recorded ``BENCH_PR3.json`` number is carried
  alongside for reference: shared-host drift between recording sessions
  routinely exceeds 20%, which is exactly why the acceptance ratio must
  not straddle two sessions.
* **decimated_exact** — ``decimation=4``, still the bit-reproducible
  exact kernels.
* **decimated_fast** — ``decimation=4, mode="fast"``: native complex
  kernels, mixer folded into the channelizer taps, shared
  :class:`FastChannelBank` filtering for all four sessions.
* **decimated_fast_f32** — the headline: all of the above plus a
  complex64 working dtype.  Target: >= 5x the full-rate exact engine.
* **decimated_fast_f32_jobs2** — the same config through the parallel
  per-channel path (process-pool overhead dominates on the 1-CPU
  reference container; the row documents that honestly).

Timing protocol: best-of-N wall time with GC paused after a warm-up
decode — on a shared single-CPU host the minimum is the least-noisy
estimator.  Delivery is asserted hard: every configuration must produce
the identical multiset of CRC-valid payload bits as the full-rate exact
engine (bits only — channel attribution of leak-arbitrated duplicate
frames legitimately differs between product rates).
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream import StreamEngine

DURATION_S = 0.05
SEED = 20260806
BASELINE_BLOCK_SIZE = 16384  # the PR-3 default block size
BLOCK_SIZE = 32768  # PR-5 sweet spot: fits the fast path's working set
TARGET_SPEEDUP = 5.0


def _capture():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=DURATION_S)
    samples, truth = traffic.capture(np.random.default_rng(SEED))
    return traffic, samples, truth


def _crc_ok_bits(frames):
    return sorted(tuple(frame.bits) for frame in frames if frame.crc_ok)


def _best_timed(decode, repeats):
    """(frames, best wall seconds) over ``repeats`` runs, GC paused."""
    decode()  # warm-up: waveform caches, page faults, branch history
    decode()  # second warm-up: allocator and BLAS pools settle
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            frames = decode()
            best = min(best, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return frames, best


def _row(n_samples, frames, elapsed, block_size, **extra):
    return {
        "frames": len(frames),
        "crc_ok_frames": sum(1 for f in frames if f.crc_ok),
        "elapsed_seconds": round(elapsed, 4),
        "effective_msps": round(n_samples / elapsed / 1e6, 3),
        "x_realtime": round(n_samples / elapsed / 20e6, 4),
        "block_size": block_size,
        **extra,
    }


def _recorded_pr3(root):
    try:
        with open(root / "BENCH_PR3.json") as fh:
            streaming = json.load(fh)["streaming"]
        return {
            "elapsed_seconds": streaming["elapsed_seconds"],
            "effective_msps": streaming["effective_msps"],
        }
    except (OSError, ValueError, KeyError):
        return None


def test_bench_stream_pr5():
    root = Path(__file__).resolve().parent.parent
    traffic, samples, truth = _capture()
    n = samples.size

    def run(block_size=BLOCK_SIZE, jobs=None, **kwargs):
        def decode():
            engine = StreamEngine(demux=True, **kwargs)
            return engine.run(traffic.blocks(samples, block_size), jobs=jobs)

        return decode

    baseline_frames, baseline_s = _best_timed(
        run(block_size=BASELINE_BLOCK_SIZE), repeats=3
    )
    exact_d4_frames, exact_d4_s = _best_timed(run(decimation=4), repeats=3)
    fast_frames, fast_s = _best_timed(
        run(decimation=4, mode="fast"), repeats=3
    )
    f32_frames, f32_s = _best_timed(
        run(decimation=4, mode="fast", working_dtype=np.complex64), repeats=7
    )
    jobs2_frames, jobs2_s = _best_timed(
        run(decimation=4, mode="fast", working_dtype=np.complex64, jobs=2),
        repeats=2,
    )

    # Hard delivery guarantee: identical CRC-valid payloads everywhere.
    ref_bits = _crc_ok_bits(baseline_frames)
    assert ref_bits
    for frames in (exact_d4_frames, fast_frames, f32_frames, jobs2_frames):
        assert _crc_ok_bits(frames) == ref_bits

    recorded = _recorded_pr3(root)
    speedup = baseline_s / f32_s
    report = {
        "pr": 5,
        "workload": {
            "senders": 3,
            "duration_s": DURATION_S,
            "samples": int(n),
            "scheduled_frames": len(truth),
            "crc_ok_frames": sum(1 for f in baseline_frames if f.crc_ok),
            "seed": SEED,
            "mode": "demux (4 sessions)",
        },
        "protocol": (
            "best-of-N wall time, gc disabled, after two warm-up decodes; "
            "headline ratio uses the same-run baseline because shared-host "
            "speed drifts >20% between recording sessions"
        ),
        "baseline_full_rate_exact": _row(
            n, baseline_frames, baseline_s, BASELINE_BLOCK_SIZE
        ),
        "decimated_exact": _row(n, exact_d4_frames, exact_d4_s, BLOCK_SIZE),
        "decimated_fast": _row(n, fast_frames, fast_s, BLOCK_SIZE),
        "decimated_fast_f32": _row(
            n,
            f32_frames,
            f32_s,
            BLOCK_SIZE,
            speedup_vs_baseline=round(speedup, 2),
            speedup_vs_recorded_pr3=(
                round(recorded["elapsed_seconds"] / f32_s, 2)
                if recorded
                else None
            ),
            target_speedup=TARGET_SPEEDUP,
        ),
        "decimated_fast_f32_jobs2": _row(
            n, jobs2_frames, jobs2_s, BLOCK_SIZE
        ),
        "recorded_pr3_streaming": recorded,
    }
    (root / "BENCH_PR5.json").write_text(json.dumps(report, indent=2) + "\n")

    print()
    for name in (
        "baseline_full_rate_exact",
        "decimated_exact",
        "decimated_fast",
        "decimated_fast_f32",
        "decimated_fast_f32_jobs2",
    ):
        row = report[name]
        print(
            f"{name:26s} {row['elapsed_seconds']:7.4f} s  "
            f"{row['effective_msps']:6.2f} Msps  "
            f"{row['crc_ok_frames']} crc_ok"
        )
    print(f"headline speedup vs same-run baseline: {speedup:.2f}x "
          f"(target {TARGET_SPEEDUP}x)")

    # The acceptance ratio, with a noise-tolerant hard floor below it:
    # the JSON carries the exact number, CI must not flake on a loaded
    # host, but a real regression (ratio collapsing toward 1) must fail.
    assert speedup >= TARGET_SPEEDUP * 0.8, report["decimated_fast_f32"]
