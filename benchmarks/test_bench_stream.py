"""Perf smoke benchmark for the PR-3 streaming engine.

Times one seeded multi-sender capture decoded three ways and writes
``BENCH_PR3.json`` at the repo root:

* **batch** — :func:`repro.stream.batch_decode_stream`, the whole
  capture in one call (the reference the invariance tests compare
  against);
* **streaming** — the same capture through
  :class:`repro.stream.StreamEngine` in 16384-sample blocks, the
  ``repro listen`` default;
* **streaming_small** — 4096-sample blocks, the worst realistic case
  (more tail-state stitching and per-block scan overhead).

The ISSUE-3 acceptance target is streaming within 1.5x of batch at the
default block size.  Assertions are deliberately soft (the suite must
not fail on a slow or loaded machine) — the JSON artifact carries the
real numbers; the hard guarantee (bit-identical frames) is asserted
here too, since it costs nothing once the decodes have run.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream import StreamEngine, batch_decode_stream

DURATION_S = 0.05
SEED = 20260806
BLOCK_SIZE = 16384
SMALL_BLOCK_SIZE = 4096
TARGET_RATIO = 1.5


def _capture():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.008),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.008),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.008),
    ]
    traffic = StreamTraffic(senders, duration_s=DURATION_S)
    samples, truth = traffic.capture(np.random.default_rng(SEED))
    return traffic, samples, truth


def _timed(decode):
    decode()  # warm-up: waveform caches, page faults, branch history
    t0 = time.perf_counter()
    frames = decode()
    elapsed = time.perf_counter() - t0
    return frames, elapsed


def _row(n_samples, n_frames, elapsed):
    return {
        "frames": n_frames,
        "elapsed_seconds": round(elapsed, 4),
        "effective_msps": round(n_samples / elapsed / 1e6, 3),
        "x_realtime": round(n_samples / elapsed / 20e6, 4),
    }


def test_bench_stream_throughput():
    root = Path(__file__).resolve().parent.parent
    traffic, samples, truth = _capture()

    batch_frames, batch_s = _timed(
        lambda: batch_decode_stream(samples, demux=True)
    )
    stream_frames, stream_s = _timed(
        lambda: StreamEngine(demux=True).run(
            traffic.blocks(samples, BLOCK_SIZE)
        )
    )
    small_frames, small_s = _timed(
        lambda: StreamEngine(demux=True).run(
            traffic.blocks(samples, SMALL_BLOCK_SIZE)
        )
    )

    # The invariance guarantee, re-checked on the benchmark workload.
    ref = [f.decode_fields() for f in batch_frames]
    assert [f.decode_fields() for f in stream_frames] == ref
    assert [f.decode_fields() for f in small_frames] == ref

    ratio = stream_s / batch_s
    report = {
        "pr": 3,
        "workload": {
            "senders": 3,
            "duration_s": DURATION_S,
            "samples": int(samples.size),
            "scheduled_frames": len(truth),
            "decoded_frames": len(batch_frames),
            "crc_ok_frames": sum(1 for f in batch_frames if f.crc_ok),
            "seed": SEED,
            "mode": "demux (4 sessions)",
        },
        "batch": _row(samples.size, len(batch_frames), batch_s),
        "streaming": {
            **_row(samples.size, len(stream_frames), stream_s),
            "block_size": BLOCK_SIZE,
            "ratio_vs_batch": round(ratio, 3),
            "target_ratio": TARGET_RATIO,
        },
        "streaming_small_blocks": {
            **_row(samples.size, len(small_frames), small_s),
            "block_size": SMALL_BLOCK_SIZE,
            "ratio_vs_batch": round(small_s / batch_s, 3),
        },
    }
    (root / "BENCH_PR3.json").write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"batch: {report['batch']['effective_msps']:.2f} Msps, "
        f"streaming@{BLOCK_SIZE}: "
        f"{report['streaming']['effective_msps']:.2f} Msps "
        f"({ratio:.2f}x batch time, target <= {TARGET_RATIO}x)"
    )

    # Soft sanity floor only — CI machines vary; the JSON has the data.
    assert len(truth) > 0 and len(batch_frames) >= len(truth)
    assert report["streaming"]["effective_msps"] > 0.05
    assert ratio < TARGET_RATIO * 2.0
