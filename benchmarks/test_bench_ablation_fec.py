"""Ablation/extension: which FEC earns its rate on a SymBee link.

Three schemes over the real AWGN link at matched data payloads:
uncoded, the paper's Hamming(7,4) (rate 4/7), and the 802.11-standard
K=7 convolutional code (rate 1/2).  Reported as *frame* goodput — data
bits of CRC-clean frames per on-air bit — because frames are
all-or-nothing: per-bit accounting can never justify a rate-1/2 code,
but frame survival can (and does, in the noisy regime).
"""

import numpy as np

from repro.core.coding import hamming74_decode, hamming74_encode
from repro.core.convolutional import conv_encode, viterbi_decode
from repro.experiments.common import link_at_snr, scaled

DATA_BITS = 48


def goodput_fraction(scheme, snr_db, n_frames, seed=77):
    """Data bits of bit-exact frames delivered per on-air bit spent."""
    rng = np.random.default_rng(seed)
    link = link_at_snr(snr_db)
    delivered = airtime = 0
    for _ in range(n_frames):
        data = rng.integers(0, 2, DATA_BITS)
        if scheme == "uncoded":
            on_air = data
        elif scheme == "hamming":
            on_air = hamming74_encode(data)
        elif scheme == "conv":
            on_air = conv_encode(data)
        else:
            raise ValueError(scheme)
        result = link.send_bits(on_air, rng, decode_synchronized=False)
        airtime += len(on_air)
        if len(result.decoded_bits) != len(on_air):
            continue
        received = np.array(result.decoded_bits, dtype=np.int8)
        if scheme == "uncoded":
            decoded = received
        elif scheme == "hamming":
            decoded, _ = hamming74_decode(received)
        else:
            decoded = viterbi_decode(received)
        if np.array_equal(decoded, data):
            delivered += DATA_BITS
    return delivered / airtime


def test_bench_ablation_fec(run_once, benchmark):
    n_frames = scaled(10)
    grid = (-7.0, -5.0, -2.0, 2.0)
    schemes = ("uncoded", "hamming", "conv")

    def sweep():
        return {
            snr: {s: goodput_fraction(s, snr, n_frames) for s in schemes}
            for snr in grid
        }

    results = run_once(sweep)
    print("\n== ablation: FEC goodput fraction (data bits per on-air bit) ==")
    for snr, row in results.items():
        cells = " | ".join(f"{s} {v:.3f}" for s, v in row.items())
        print(f"  SNR {snr:+.0f} dB: {cells}")
    benchmark.extra_info.update(
        {f"snr_{snr}": row for snr, row in results.items()}
    )

    # Clean link: uncoded wins (no rate tax).  In the noisy transition
    # region the convolutional code delivers frames the others lose.
    clean = results[max(grid)]
    assert clean["uncoded"] >= clean["hamming"] >= clean["conv"] - 0.02
    transition = results[-5.0]
    assert transition["conv"] >= transition["uncoded"]
    assert transition["conv"] >= transition["hamming"] - 0.02
