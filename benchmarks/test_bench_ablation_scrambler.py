"""Ablation/extension: PRBS whitening vs pathological payloads.

Four consecutive message zeros are indistinguishable from the SymBee
preamble (DESIGN.md Section 4b); a constant all-zero payload is the
worst case, repeating the hazard deterministically.  This bench measures
capture/decode accuracy on such payloads with and without the PRBS-7
scrambler, under enough noise that the capture stage actually has to
choose between candidates.
"""

import numpy as np

from repro.core.scrambler import descramble, scramble
from repro.experiments.common import link_at_snr, scaled


def run_case(whiten, snr_db, n_frames, seed=66, data_bits=48):
    rng = np.random.default_rng(seed)
    link = link_at_snr(snr_db)
    data = [0] * data_bits           # pathological constant payload
    correct = 0
    for _ in range(n_frames):
        sent = list(scramble(data)) if whiten else list(data)
        result = link.send_bits(sent, rng)
        if not result.preamble_captured or len(result.decoded_bits) != data_bits:
            continue
        got = (
            list(descramble(list(result.decoded_bits)))
            if whiten
            else list(result.decoded_bits)
        )
        correct += sum(1 for a, b in zip(got, data) if a == b)
    return correct / (n_frames * data_bits)


def test_bench_ablation_scrambler(run_once, benchmark):
    n_frames = scaled(12)

    def sweep():
        return {
            snr: (run_case(False, snr, n_frames), run_case(True, snr, n_frames))
            for snr in (6.0, 10.0)
        }

    results = run_once(sweep)
    print("\n== ablation: all-zero payload, plain vs PRBS-whitened ==")
    for snr, (plain, whitened) in results.items():
        print(f"  SNR {snr:+.0f} dB: plain {plain:.3f} | whitened {whitened:.3f}")
    benchmark.extra_info.update(
        {f"snr_{snr}": {"plain": p, "whitened": w}
         for snr, (p, w) in results.items()}
    )

    # Whitening must deliver the pathological payload reliably and never
    # do worse than sending the raw constant pattern.
    for snr, (plain, whitened) in results.items():
        assert whitened >= 0.95, snr
        assert whitened >= plain - 0.02, snr
