"""Bench: regenerate Table I (symbol-to-chip mapping)."""

from repro.experiments import table1_symbol_chips as table1


def test_bench_table1(run_once, benchmark):
    result = run_once(table1.run)
    table1.main()
    benchmark.extra_info["cyclic_ok"] = result.cyclic_structure_ok
    assert result.cyclic_structure_ok
    assert result.conjugate_structure_ok
    assert len(result.rows) == 16
