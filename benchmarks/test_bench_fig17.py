"""Bench: regenerate Fig 17 (vote-count constellation, outdoor 15 m)."""

from repro.experiments import fig17_constellation as fig17


def test_bench_fig17(run_once, benchmark):
    result = run_once(fig17.run)
    fig17.main()
    benchmark.extra_info["decode_success"] = result.decode_success_rate

    # Paper: >= 98% of the dots land on the correct side of the
    # 42-vote boundary, with the two clusters far apart.
    assert result.decode_success_rate >= 0.98
    assert result.bit0_counts and result.bit1_counts
    assert max(result.bit0_counts) < result.threshold
    assert min(result.bit1_counts) > result.threshold
