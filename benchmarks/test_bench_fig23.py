"""Bench: regenerate Fig 23 (mobility on the track & field)."""

from repro.experiments import fig23_mobility as fig23


def test_bench_fig23(run_once, benchmark):
    result = run_once(fig23.run)
    fig23.main()
    bers = {row[0]: row[2] for row in result.rows}
    benchmark.extra_info.update({k: round(v, 4) for k, v in bers.items()})

    # Paper shape: mobile BER is nonzero (7-9% on their testbed, from
    # body blockage + Doppler) and does not collapse with speed; the
    # fastest mode is at least as bad as the slowest within slack.
    assert max(bers.values()) > 0.0
    assert all(v < 0.5 for v in bers.values())
    assert bers["bicycle"] >= bers["walking"] - 0.03
