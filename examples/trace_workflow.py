"""Trace-driven evaluation, the paper's §VIII-E workflow.

The paper validates interference robustness by recording a clean SymBee
capture and a WiFi capture on a USRP, then mixing them at controlled
SINR offline.  This example runs the identical workflow on simulated
traces: record → save to disk → reload → mix at a SINR sweep → decode —
the loop a researcher extending SymBee would actually run.

    python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import SymBeeLink, capture_preamble
from repro.dsp import load_capture, mix_at_sinr, save_capture
from repro.experiments.common import print_table
from repro.wifi import OfdmTransmitter


def record_clean_trace(path, bits, seed=3):
    """'Record' one clean SymBee capture and archive it with metadata."""
    link = SymBeeLink(include_noise=False)
    payload = link.encoder.encode_message(bits)
    frame = link.transmitter.build_frame(payload)
    waveform = link.transmitter.transmit_frame(frame)
    baseband = link.front_end.downconvert(
        waveform, link.transmitter.center_frequency
    )
    save_capture(
        path,
        baseband,
        20e6,
        metadata={
            "system": "SymBee",
            "bits": list(map(int, bits)),
            "zigbee_channel": 13,
            "wifi_channel": 1,
            "seed": seed,
        },
    )
    return link


def main():
    rng = np.random.default_rng(3)
    bits = list(rng.integers(0, 2, 40))

    with tempfile.TemporaryDirectory() as workdir:
        trace_path = Path(workdir) / "symbee_clean.npz"
        link = record_clean_trace(trace_path, bits)
        print(f"recorded clean trace: {trace_path.name} "
              f"({trace_path.stat().st_size / 1024:.0f} KiB)")

        samples, rate, meta = load_capture(trace_path)
        print(f"reloaded: {samples.size} samples @ {rate / 1e6:.0f} Msps, "
              f"{len(meta['bits'])} bits of ground truth")

        wifi_trace = OfdmTransmitter().burst(400e-6, rng)
        rows = []
        for sinr_db in (10.0, 3.0, 0.0, -3.0, -6.0):
            mixed = mix_at_sinr(samples, wifi_trace, sinr_db, offset=14_000)
            phases = link.decoder.phases(mixed)
            pre = capture_preamble(phases, link.decoder)
            if pre is None:
                rows.append((f"{sinr_db:+.0f}", "capture failed", "-"))
                continue
            decoded = link.decoder.decode_synchronized(
                phases, pre.data_start, len(meta["bits"])
            )
            errors = sum(
                a != b for a, b in zip(decoded.bits, meta["bits"])
            )
            rows.append(
                (f"{sinr_db:+.0f}", "ok", f"{errors}/{len(meta['bits'])}")
            )
        print_table(
            ("SINR dB", "capture", "bit errors"),
            rows,
            title="trace-driven SINR sweep (one 400 us WiFi burst)",
        )
    print("\nSame method as the paper's Section VIII-E — reproducible from "
          "archived traces without re-running the PHY.")


if __name__ == "__main__":
    main()
