"""IoT sensor upstream: reliable sensor readings over SymBee frames.

The paper motivates SymBee with upstream/convergecast IoT traffic —
"IoT devices deliver data (e.g., sensing info.) directly to WiFi (i.e.,
to the Internet and cloud)".  This example runs a temperature sensor in
the office scenario that packs readings into SymBee frames (header,
sequence number, CRC-16), sends them over the full PHY simulation, and
retransmits on CRC failure — a realistic little transport on top of the
public API.

    python examples/sensor_upstream.py
"""

import numpy as np

from repro.channel.scenarios import get_scenario
from repro.core import SymBeeLink
from repro.core.analytics import raw_bit_rate_bps


def reading_to_bits(reading_centi_celsius):
    """A 16-bit signed fixed-point temperature reading."""
    value = int(reading_centi_celsius) & 0xFFFF
    return [(value >> (15 - i)) & 1 for i in range(16)]


def bits_to_reading(bits):
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    if value >= 0x8000:
        value -= 0x10000
    return value


def main():
    rng = np.random.default_rng(7)
    scenario = get_scenario("office")
    distance_m = 18.0
    link = SymBeeLink(
        link_channel=scenario.link(distance_m),
        interference=scenario.interference(),
    )
    print(f"sensor -> WiFi AP, {scenario.name} scenario, {distance_m:.0f} m")

    true_temps = 2150 + np.cumsum(rng.integers(-15, 16, 20))  # centi-degC walk
    max_retries = 3

    delivered, transmissions = [], 0
    for seq, temp in enumerate(true_temps):
        bits = reading_to_bits(temp)
        for attempt in range(1 + max_retries):
            transmissions += 1
            result, frame = link.send_frame(bits, sequence=seq & 0xFF, rng=rng)
            if frame is not None and frame.crc_ok:
                delivered.append((seq, bits_to_reading(list(frame.data_bits))))
                break
        else:
            print(f"  reading {seq}: LOST after {1 + max_retries} attempts")

    correct = sum(
        1 for seq, value in delivered if value == int(true_temps[seq])
    )
    print(f"delivered readings:  {len(delivered)}/{len(true_temps)} "
          f"({correct} bit-exact)")
    print(f"transmissions used:  {transmissions} "
          f"(retransmission overhead {transmissions / len(true_temps) - 1:.0%})")

    frame_bits = 16 + 40  # data + SymBee frame overhead
    goodput = correct * 16 / (transmissions * (frame_bits + 4) / raw_bit_rate_bps())
    print(f"application goodput: {goodput / 1000:.2f} kbps "
          f"(raw symbol rate {raw_bit_rate_bps() / 1000:.2f} kbps)")

    for seq, value in delivered[:5]:
        print(f"  reading {seq}: {value / 100:.2f} C")


if __name__ == "__main__":
    main()
