"""Many sensors, one sink: convergecast over SymBee.

The paper positions SymBee for "upstream (or convergecast) which takes
majority portion of IoT traffic".  This example runs a whole sensor
cluster — CSMA-CA contention, collisions, MAC retries, and per-frame
delivery decided by the full PHY simulation — and shows how the shared
channel behaves as the cluster grows.

    python examples/sensor_network.py
"""

import numpy as np

from repro.channel.scenarios import get_scenario
from repro.experiments.common import print_table
from repro.network import ConvergecastNetwork, NodeConfig


def run_cluster(n_nodes, scenario, duration_s=3.0, seed=2):
    rng = np.random.default_rng(seed)
    nodes = [
        NodeConfig(
            node_id=i,
            distance_m=float(rng.uniform(4.0, 20.0)),
            reading_interval_s=0.25,
            data_bits=16,
        )
        for i in range(n_nodes)
    ]
    network = ConvergecastNetwork(
        nodes, scenario, sim_duration_s=duration_s, seed=seed
    )
    return network.run()


def main():
    scenario = get_scenario("office")
    rows = []
    for n_nodes in (2, 4, 8, 16):
        result = run_cluster(n_nodes, scenario)
        rows.append(
            (
                n_nodes,
                result.readings_generated,
                f"{result.delivery_ratio:.2f}",
                f"{result.collision_rate:.2f}",
                f"{result.mean_latency_s * 1000:.1f}",
                f"{result.channel_utilization:.3f}",
                f"{result.goodput_bps(16):.0f}",
            )
        )
    print_table(
        ("nodes", "readings", "delivery", "collisions", "latency ms",
         "airtime", "goodput bps"),
        rows,
        title="convergecast cluster scaling (office scenario)",
    )
    print(
        "\nCSMA-CA keeps collisions low while airtime is light; delivery "
        "is then set by the SymBee PHY at each node's distance — the same "
        "trade the paper's deployment faces."
    )


if __name__ == "__main__":
    main()
