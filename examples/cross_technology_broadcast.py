"""Cross-technology broadcast: one packet, two technologies (paper §VI-A).

A SymBee message is carried by an ordinary ZigBee packet, so a single
transmission reaches a WiFi receiver (through idle-listening phase
patterns) *and* any ZigBee node (through normal packet reception plus an
application-layer byte lookup).  The paper proposes using this for
explicit channel coordination; here a coordinator broadcasts a channel
reservation and both receiver types independently decode it.

    python examples/cross_technology_broadcast.py
"""

import numpy as np

from repro.core import SymBeeLink
from repro.zigbee.receiver import ZigBeeReceiver


def encode_reservation(channel, slots):
    """A toy coordination message: 4-bit channel + 8-bit slot count."""
    bits = [(channel >> (3 - i)) & 1 for i in range(4)]
    bits += [(slots >> (7 - i)) & 1 for i in range(8)]
    return bits


def decode_reservation(bits):
    channel = int("".join(map(str, bits[:4])), 2)
    slots = int("".join(map(str, bits[4:12])), 2)
    return channel, slots


def main():
    rng = np.random.default_rng(11)
    link = SymBeeLink(tx_power_dbm=-70.0)

    reservation = encode_reservation(channel=13, slots=200)
    print("coordinator broadcasts: reserve ZigBee channel 13 for 200 slots")

    # Build the single on-air packet once, so both receivers observe the
    # very same transmission.
    payload = link.encoder.encode_message(reservation)
    frame = link.transmitter.build_frame(payload)
    waveform = link.transmitter.transmit_frame(frame)

    # --- WiFi side: idle-listening phase patterns --------------------------
    wifi_result = link.send_bits(reservation, rng)
    assert wifi_result.preamble_captured
    wifi_channel, wifi_slots = decode_reservation(list(wifi_result.decoded_bits))
    print(f"WiFi decoded:   channel {wifi_channel}, {wifi_slots} slots "
          f"({wifi_result.bit_errors} bit errors)")

    # --- ZigBee side: normal reception + application-layer lookup ----------
    receiver = ZigBeeReceiver(sample_rate=link.transmitter.sample_rate)
    capture = np.concatenate(
        [np.zeros(500, complex), waveform, np.zeros(500, complex)]
    )
    reception = receiver.receive(capture)
    assert reception is not None and reception.fcs_ok
    start = link.encoder.find_preamble(reception.frame.payload)
    zigbee_bits = link.encoder.decode_payload(reception.frame.payload[start:])
    zigbee_channel, zigbee_slots = decode_reservation(zigbee_bits)
    print(f"ZigBee decoded: channel {zigbee_channel}, {zigbee_slots} slots "
          "(via FCS-checked packet reception)")

    assert (wifi_channel, wifi_slots) == (zigbee_channel, zigbee_slots) == (13, 200)
    print("\nOK: both technologies agree on the reservation — "
          "explicit coordination without a gateway.")


if __name__ == "__main__":
    main()
