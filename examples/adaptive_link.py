"""Adaptive link: vote-count telemetry drives coding decisions.

SymBee's majority-vote decoder produces a free quality signal — how far
each bit's vote count sits from the 42-vote boundary.  This example runs
a link whose SNR drifts over time (a sensor on someone's desk as the
office fills up), feeds the counts into the
:class:`repro.core.LinkQualityEstimator`, and lets
:class:`repro.core.AdaptiveCoding` switch Hamming(7,4) on only when the
estimated BER says frames would otherwise start dying.

    python examples/adaptive_link.py
"""

import numpy as np

from repro.core import (
    AdaptiveCoding,
    LinkQualityEstimator,
    hamming74_decode,
    hamming74_encode,
)
from repro.experiments.common import link_at_snr, print_table


def run_epoch(snr_db, use_coding, rng, n_frames=6, data_bits=48):
    """Send frames at one SNR; returns (delivered_data_bits, airtime_bits, counts)."""
    link = link_at_snr(snr_db)
    delivered = airtime = 0
    observations = []
    for _ in range(n_frames):
        data = rng.integers(0, 2, data_bits)
        on_air = hamming74_encode(data) if use_coding else data
        result = link.send_bits(on_air, rng, decode_synchronized=False)
        observations.append((result.decoded_bits, result.counts))
        airtime += len(on_air)
        if len(result.decoded_bits) == len(on_air):
            if use_coding:
                decoded, _ = hamming74_decode(np.array(result.decoded_bits))
            else:
                decoded = np.array(result.decoded_bits)
            if np.array_equal(decoded, data):
                delivered += data_bits
    return delivered, airtime, observations


def main():
    rng = np.random.default_rng(12)
    estimator = LinkQualityEstimator()
    policy = AdaptiveCoding(frame_bits=48, min_samples=84 * 4)

    # The day at the office: clean morning, noisy midday, cleaner evening.
    snr_schedule = [12.0, 8.0, 2.0, -4.0, -4.5, -4.0, 0.0, 8.0, 12.0]

    rows = []
    total_adaptive = total_airtime = 0
    for epoch, snr in enumerate(snr_schedule):
        decision = policy.decide(estimator)
        delivered, airtime, observations = run_epoch(
            snr, decision.use_coding, rng
        )
        estimator.reset()  # track the *current* channel, not history
        for decoded_bits, counts in observations:
            estimator.observe(decoded_bits, counts)
        total_adaptive += delivered
        total_airtime += airtime
        rows.append(
            (
                epoch,
                f"{snr:+.0f}",
                "Hamming(7,4)" if decision.use_coding else "uncoded",
                f"{decision.estimated_ber:.3f}",
                f"{delivered}/{airtime}",
            )
        )
    print_table(
        ("epoch", "SNR dB", "mode chosen", "est. BER (prior)", "data/airtime bits"),
        rows,
        title="adaptive coding over a drifting channel",
    )

    # Fixed policies over the same schedule, for comparison.
    for label, coded in (("always uncoded", False), ("always coded", True)):
        rng_fixed = np.random.default_rng(12)
        delivered = airtime = 0
        for snr in snr_schedule:
            d, a, _ = run_epoch(snr, coded, rng_fixed)
            delivered += d
            airtime += a
        print(f"{label:15s}: {delivered} data bits over {airtime} airtime bits "
              f"({delivered / airtime:.2f})")
    print(f"{'adaptive':15s}: {total_adaptive} data bits over {total_airtime} "
          f"airtime bits ({total_adaptive / total_airtime:.2f})")


if __name__ == "__main__":
    main()
