"""Quickstart: send bits from ZigBee to WiFi through the full pipeline.

Runs the complete SymBee path — payload encoding into a legitimate
802.15.4 packet, O-QPSK modulation, an AWGN channel, the WiFi front end,
idle-listening phase recycling, folding preamble capture, and majority-
vote decoding — and prints what happened at each stage.

    python examples/quickstart.py
"""

import numpy as np

from repro.core import SymBeeEncoder, SymBeeLink


def text_to_bits(text):
    return [int(b) for byte in text.encode() for b in f"{byte:08b}"]


def bits_to_text(bits):
    data = bytearray()
    for start in range(0, len(bits) - 7, 8):
        data.append(int("".join(map(str, bits[start : start + 8])), 2))
    return data.decode(errors="replace")


def main():
    rng = np.random.default_rng(2024)
    message = "SymBee!"
    bits = text_to_bits(message)
    print(f"message: {message!r} -> {len(bits)} SymBee bits")

    # What actually goes in the ZigBee payload: one byte per bit.
    encoder = SymBeeEncoder()
    payload = encoder.encode_message(bits)
    print(f"ZigBee payload ({len(payload)} bytes): {payload[:10].hex()}...")

    # A link with 20 dB of SNR headroom (about 12 m outdoors at 0 dBm).
    link = SymBeeLink(tx_power_dbm=-75.0)  # noise floor is ~-95 dBm
    result = link.send_bits(bits, rng)

    print(f"received SNR:        {result.snr_db:.1f} dB")
    print(f"preamble captured:   {result.preamble_captured}")
    print(
        "timing error:        "
        f"{result.captured_data_start - result.true_data_start} samples"
    )
    print(f"bit errors:          {result.bit_errors} / {result.n_bits}")
    print(f"decoded message:     {bits_to_text(list(result.decoded_bits))!r}")

    assert result.bit_errors == 0, "expected clean decode at this SNR"
    print("\nOK: ZigBee spoke, WiFi listened.")


if __name__ == "__main__":
    main()
