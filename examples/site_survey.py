"""Site survey: predicted SymBee performance across deployment sites.

Plays the role of a deployment tool: given the calibrated scenario
presets, it sweeps sender distance in each environment and reports
throughput, BER and capture rate — the numbers an installer would use
to place sensors (a miniature of the paper's Figures 13/14).

    python examples/site_survey.py            # quick survey
    REPRO_SCALE=5 python examples/site_survey.py   # tighter statistics
"""

import numpy as np

from repro.channel.scenarios import SCENARIOS
from repro.core import SymBeeLink
from repro.experiments.common import measure_link, print_table, scaled


def survey(distances=(5, 15, 25), n_frames=None, seed=31):
    rng = np.random.default_rng(seed)
    n_frames = scaled(15) if n_frames is None else n_frames
    rows = []
    for name, scenario in SCENARIOS.items():
        for distance in distances:
            link = SymBeeLink(
                link_channel=scenario.link(distance),
                interference=scenario.interference(),
            )
            stats = measure_link(link, rng, n_frames=n_frames, bits_per_frame=64)
            rows.append(
                (
                    name,
                    f"{distance} m",
                    f"{stats.throughput_bps / 1000:.2f}",
                    f"{stats.ber:.3f}",
                    f"{stats.capture_rate:.2f}",
                    f"{stats.mean_snr_db:.1f}",
                )
            )
    return rows


def main():
    rows = survey()
    print_table(
        ("site", "distance", "kbps", "BER", "capture", "SNR dB"),
        rows,
        title="SymBee site survey",
    )
    usable = [r for r in rows if float(r[2]) > 20.0]
    print(f"\n{len(usable)}/{len(rows)} site/distance combinations sustain "
          ">20 kbps — compare with the 215 bps packet-level state of the art.")


if __name__ == "__main__":
    main()
