"""Explicit cross-technology channel coordination (paper §II-A, §VI-A).

The paper argues CTC enables "explicit coordination among IoT devices
using cross-technology RTS/CTS instead of implicit CSMA/CA".  This
example quantifies that: a ZigBee sensor cluster shares a channel with
a WiFi AP, and we compare

* **implicit coexistence** — WiFi transmits whenever its own traffic
  arrives, colliding with ongoing ZigBee packets it cannot decode, vs.
* **SymBee coordination** — the ZigBee coordinator broadcasts its
  upcoming transmission window over SymBee; the WiFi AP (which decodes
  it straight from idle listening) defers inside that window.

The airtime model is a simple slotted simulation on top of one *real*
SymBee coordination exchange run through the full PHY.

    python examples/channel_coordination.py
"""

import numpy as np

from repro.core import SymBeeLink


def run_coordination_exchange(rng):
    """One real SymBee broadcast of a reservation (window length in ms)."""
    link = SymBeeLink(tx_power_dbm=-70.0)
    window_ms = 40
    bits = [(window_ms >> (7 - i)) & 1 for i in range(8)]
    result = link.send_bits(bits, rng)
    decoded = int("".join(map(str, result.decoded_bits)), 2)
    return result, window_ms, decoded


def airtime_simulation(rng, coordinated, n_ms=10_000, zigbee_duty=0.25,
                       wifi_duty=0.30, reservation_ms=40):
    """Slotted (1 ms) coexistence model; returns ZigBee packet loss.

    ZigBee transmits 4 ms packets; WiFi transmits 2 ms bursts whenever
    its backlog says so.  Uncoordinated WiFi starts regardless of ZigBee
    (it cannot decode ZigBee, so carrier sense fails on weak signals —
    the classic CTI asymmetry the paper cites).  Coordinated WiFi defers
    during reserved windows.
    """
    zigbee_loss = zigbee_total = 0
    t = 0
    while t < n_ms:
        if rng.random() < zigbee_duty / 4:
            # A reservation covers the next `reservation_ms`; ZigBee
            # sends a burst of packets inside it.
            window_end = min(t + reservation_ms, n_ms)
            u = t
            while u < window_end:
                zigbee_total += 1
                collided = False
                for _ in range(4):  # 4 ms packet
                    if rng.random() < wifi_duty / 2 and not coordinated:
                        collided = True
                    u += 1
                zigbee_loss += int(collided)
                u += int(rng.integers(1, 4))
            t = window_end
        else:
            t += 1
    return zigbee_loss, zigbee_total


def main():
    rng = np.random.default_rng(42)

    result, sent_window, decoded_window = run_coordination_exchange(rng)
    print("SymBee coordination exchange over the real PHY:")
    print(f"  reservation sent: {sent_window} ms, decoded: {decoded_window} ms, "
          f"bit errors: {result.bit_errors}")
    assert decoded_window == sent_window

    loss_implicit, total_implicit = airtime_simulation(rng, coordinated=False)
    loss_coord, total_coord = airtime_simulation(rng, coordinated=True)
    rate_implicit = loss_implicit / max(total_implicit, 1)
    rate_coord = loss_coord / max(total_coord, 1)

    print("\ncoexistence over 10 s of shared channel time:")
    print(f"  implicit CSMA/CA : {rate_implicit:.1%} ZigBee packet loss "
          f"({loss_implicit}/{total_implicit})")
    print(f"  SymBee coordinated: {rate_coord:.1%} ZigBee packet loss "
          f"({loss_coord}/{total_coord})")
    print("\nThe paper cites up to 50% ZigBee loss under WiFi interference; "
          "explicit cross-technology reservations remove the collisions "
          "inside reserved windows entirely.")


if __name__ == "__main__":
    main()
