"""Unit and property tests for DSSS spreading/despreading."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.zigbee.dsss import despread, min_intercode_distance, spread
from repro.zigbee.symbols import CHIP_TABLE


class TestSpread:
    def test_single_symbol(self):
        assert np.array_equal(spread([0]), np.array(CHIP_TABLE[0]))

    def test_concatenation(self):
        chips = spread([3, 9])
        assert chips.size == 64
        assert tuple(chips[:32]) == CHIP_TABLE[3]
        assert tuple(chips[32:]) == CHIP_TABLE[9]

    def test_empty(self):
        assert spread([]).size == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            spread([16])


class TestDespreadHard:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_clean_roundtrip(self, symbols):
        decoded, distances = despread(spread(symbols))
        assert decoded == symbols
        assert np.all(distances == 0)

    def test_corrects_chip_errors(self, rng):
        # The code's minimum distance supports correcting several flips.
        symbols = [5, 12, 0]
        chips = spread(symbols).copy()
        flip = rng.choice(chips.size, size=6, replace=False)
        chips[flip] ^= 1
        decoded, _ = despread(chips)
        assert decoded == symbols

    def test_distance_reported(self):
        chips = spread([7]).copy()
        chips[0] ^= 1
        decoded, distances = despread(chips)
        assert decoded == [7]
        assert distances[0] == 1

    def test_bad_length_raises(self):
        with pytest.raises(ValueError):
            despread(np.zeros(31))

    def test_empty(self):
        decoded, distances = despread(np.zeros(0))
        assert decoded == []
        assert distances.size == 0


class TestDespreadSoft:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_clean_soft_roundtrip(self, symbols):
        chips = spread(symbols)
        soft = np.where(chips == 0, 1.0, -1.0)
        decoded, _ = despread(soft, soft=True)
        assert decoded == symbols

    def test_soft_beats_hard_under_noise(self, rng):
        # With attenuated-but-informative soft values the correlator
        # still decodes where hard slicing at zero would be random.
        symbols = [4] * 20
        chips = spread(symbols)
        soft = np.where(chips == 0, 1.0, -1.0) + 1.2 * rng.standard_normal(
            chips.size
        )
        decoded, _ = despread(soft, soft=True)
        errors = sum(1 for got in decoded if got != 4)
        assert errors <= 2


class TestCodeProperties:
    def test_min_intercode_distance(self):
        # The 802.15.4 near-orthogonal code family keeps pairwise
        # Hamming distances large; its minimum is well above 0.
        assert min_intercode_distance() >= 12
