"""Unit tests for the coherent ZigBee receiver."""

import numpy as np
import pytest

from repro.dsp.noise import awgn
from repro.zigbee.receiver import ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter


@pytest.fixture(scope="module")
def radio():
    return ZigBeeTransmitter(), ZigBeeReceiver()


def _padded(wf, lead=300, tail=300):
    return np.concatenate(
        [np.zeros(lead, complex), wf, np.zeros(tail, complex)]
    )


class TestSynchronize:
    def test_finds_packet_offset(self, radio):
        tx, rx = radio
        _, wf = tx.transmit(b"sync test")
        sync = rx.synchronize(_padded(wf, lead=777))
        assert sync is not None
        start, _ = sync
        assert abs(start - 777) <= 1

    def test_no_packet_in_noise(self, radio, rng):
        _, rx = radio
        noise = 0.01 * (rng.standard_normal(5000) + 1j * rng.standard_normal(5000))
        assert rx.synchronize(noise) is None

    def test_too_short_input(self, radio):
        _, rx = radio
        assert rx.synchronize(np.zeros(10, complex)) is None

    def test_recovers_carrier_phase(self, radio):
        tx, rx = radio
        _, wf = tx.transmit(b"phase")
        rotated = _padded(wf) * np.exp(1j * 1.1)
        sync = rx.synchronize(rotated)
        assert sync is not None
        assert sync[1] == pytest.approx(1.1, abs=0.05)


class TestReceive:
    def test_clean_roundtrip(self, radio):
        tx, rx = radio
        frame, wf = tx.transmit(b"hello zigbee world")
        reception = rx.receive(_padded(wf))
        assert reception is not None
        assert reception.fcs_ok
        assert reception.frame.payload == b"hello zigbee world"
        assert reception.frame.sequence == frame.sequence

    def test_roundtrip_with_rotation_and_noise(self, radio, rng):
        tx, rx = radio
        _, wf = tx.transmit(b"noisy")
        capture = awgn(_padded(wf) * np.exp(1j * 0.4), 32.0, rng,
                       reference_power=np.mean(np.abs(wf) ** 2))
        reception = rx.receive(capture)
        assert reception is not None and reception.fcs_ok
        assert reception.frame.payload == b"noisy"

    def test_truncated_capture_returns_none(self, radio):
        tx, rx = radio
        _, wf = tx.transmit(b"truncated payload here")
        reception = rx.receive(_padded(wf)[: wf.size // 2])
        assert reception is None or not reception.fcs_ok

    def test_corrupted_payload_fails_fcs(self, radio, rng):
        tx, rx = radio
        _, wf = tx.transmit(b"corrupt me")
        capture = _padded(wf)
        # Smash a mid-payload region hard enough to break symbols.
        capture[8000:8600] = 0
        reception = rx.receive(capture)
        if reception is not None:
            assert not reception.fcs_ok or reception.frame.payload != b"corrupt me"

    def test_no_reception_in_pure_noise(self, radio, rng):
        _, rx = radio
        noise = 0.01 * (rng.standard_normal(20000) + 1j * rng.standard_normal(20000))
        assert rx.receive(noise) is None
