"""Frame-waveform LRU cache and the O-QPSK segment-table fast path.

Both layers are pure optimizations: everything here asserts exact
sample-level equality against the uncached / chip-by-chip reference.
"""

import numpy as np
import pytest

from repro.zigbee.dsss import spread
from repro.zigbee.oqpsk import OqpskModulator
from repro.zigbee.transmitter import ZigBeeTransmitter
from repro.zigbee.waveform_cache import (
    FRAME_WAVEFORM_CACHE,
    LruWaveformCache,
)


@pytest.fixture(autouse=True)
def _clean_frame_cache():
    FRAME_WAVEFORM_CACHE.clear()
    yield
    FRAME_WAVEFORM_CACHE.clear()


class TestLruWaveformCache:
    def test_miss_then_hit(self):
        cache = LruWaveformCache(maxsize=4)
        calls = []
        compute = lambda: calls.append(1) or np.arange(3.0)
        a = cache.get_or_compute("k", compute)
        b = cache.get_or_compute("k", compute)
        assert len(calls) == 1
        assert a is b
        assert cache.cache_info() == {
            "hits": 1, "misses": 1, "size": 1, "maxsize": 4,
        }

    def test_entries_are_read_only(self):
        cache = LruWaveformCache(maxsize=2)
        entry = cache.get_or_compute("k", lambda: np.zeros(4))
        with pytest.raises(ValueError):
            entry[0] = 1.0

    def test_lru_eviction_order(self):
        cache = LruWaveformCache(maxsize=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.zeros(1))
        cache.get("a")          # 'b' is now least recently used
        cache.put("c", np.zeros(1))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_maxsize_zero_disables_caching(self):
        cache = LruWaveformCache(maxsize=0)
        calls = []
        compute = lambda: calls.append(1) or np.zeros(2)
        cache.get_or_compute("k", compute)
        cache.get_or_compute("k", compute)
        assert len(calls) == 2
        assert len(cache) == 0

    def test_size_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WAVEFORM_CACHE_SIZE", "5")
        assert LruWaveformCache().maxsize == 5
        monkeypatch.setenv("REPRO_WAVEFORM_CACHE_SIZE", "nonsense")
        assert LruWaveformCache().maxsize == 64


class TestTransmitterFrameCache:
    def test_cached_frame_equals_fresh_render(self):
        tx = ZigBeeTransmitter(tx_power_dbm=-10.0)
        psdu = bytes(range(12))
        cached = tx.waveform_for_psdu(psdu)      # populates the cache
        hit = tx.waveform_for_psdu(psdu)         # served from the cache
        FRAME_WAVEFORM_CACHE.clear()
        fresh = tx.waveform_for_psdu(psdu)       # full re-render
        assert hit is cached
        assert np.array_equal(fresh, cached)

    def test_key_separates_power_and_channel(self):
        psdu = b"\x01\x02\x03"
        quiet = ZigBeeTransmitter(tx_power_dbm=-30.0).waveform_for_psdu(psdu)
        loud = ZigBeeTransmitter(tx_power_dbm=0.0).waveform_for_psdu(psdu)
        assert not np.array_equal(quiet, loud)
        assert FRAME_WAVEFORM_CACHE.cache_info()["size"] == 2

    def test_transmit_reuses_cache_for_repeated_frames(self):
        tx = ZigBeeTransmitter()
        tx.transmit(b"\xAA\xBB", sequence=7)
        before = FRAME_WAVEFORM_CACHE.cache_info()["hits"]
        tx.transmit(b"\xAA\xBB", sequence=7)
        assert FRAME_WAVEFORM_CACHE.cache_info()["hits"] == before + 1


class TestSegmentTableEquivalence:
    @pytest.mark.parametrize("sample_rate", [2e6, 20e6])
    def test_modulate_symbols_matches_chip_reference(self, sample_rate, rng):
        mod = OqpskModulator(sample_rate)
        symbols = rng.integers(0, 16, 40)
        fast = mod.modulate_symbols(symbols)
        reference = mod.modulate_chips(spread(symbols))
        assert np.array_equal(fast, reference)  # sample-exact, not approx

    def test_every_single_symbol_matches(self):
        mod = OqpskModulator(20e6)
        for s in range(16):
            assert np.array_equal(
                mod.modulate_symbols([s]), mod.modulate_chips(spread([s]))
            )

    def test_quadrature_tail_overlap_add(self):
        # The half-chip quadrature spill from symbol k lands inside
        # symbol k+1's block; adjacent pairs exercise every junction.
        mod = OqpskModulator(20e6)
        for a in range(0, 16, 5):
            for b in range(0, 16, 3):
                assert np.array_equal(
                    mod.modulate_symbols([a, b]),
                    mod.modulate_chips(spread([a, b])),
                )
