"""Unit tests for the O-QPSK half-sine modulator/demodulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import (
    SYMBEE_STABLE_PHASE,
    WIFI_SAMPLE_RATE_20MHZ,
    WIFI_SAMPLE_RATE_40MHZ,
)
from repro.zigbee.oqpsk import OqpskDemodulator, OqpskModulator


@pytest.fixture(scope="module")
def mod20():
    return OqpskModulator(WIFI_SAMPLE_RATE_20MHZ)


class TestModulatorConstruction:
    def test_samples_per_pulse_20msps(self, mod20):
        assert mod20.samples_per_pulse == 20
        assert mod20.quadrature_offset == 10

    def test_samples_per_pulse_40msps(self):
        mod = OqpskModulator(WIFI_SAMPLE_RATE_40MHZ)
        assert mod.samples_per_pulse == 40

    def test_non_integer_rate_rejected(self):
        with pytest.raises(ValueError):
            OqpskModulator(3.7e6)

    def test_pulse_is_half_sine(self, mod20):
        assert mod20.pulse[0] == pytest.approx(0.0)
        assert mod20.pulse.max() == pytest.approx(1.0, abs=0.02)
        assert np.all(mod20.pulse >= 0)


class TestModulateChips:
    def test_length(self, mod20):
        wf = mod20.modulate_chips([0, 1] * 16)
        assert wf.size == mod20.waveform_length(32)

    def test_empty(self, mod20):
        assert mod20.modulate_chips([]).size == 0

    def test_odd_chip_count_rejected(self, mod20):
        with pytest.raises(ValueError):
            mod20.modulate_chips([0, 1, 0])

    def test_chip0_gives_positive_pulse(self, mod20):
        wf = mod20.modulate_chips([0, 0])
        assert wf.real[: mod20.samples_per_pulse].max() > 0.9

    def test_chip1_gives_negative_pulse(self, mod20):
        wf = mod20.modulate_chips([1, 1])
        assert wf.real[: mod20.samples_per_pulse].min() < -0.9

    def test_even_chips_drive_in_phase(self, mod20):
        wf = mod20.modulate_chips([0, 1])
        # In-phase pulse starts at sample 0; quadrature is delayed.
        assert abs(wf.real[5]) > 0.5
        assert wf.imag[5] == pytest.approx(0.0)

    def test_quadrature_offset_half_pulse(self, mod20):
        wf = mod20.modulate_chips([0, 0])
        off = mod20.quadrature_offset
        assert np.allclose(wf.imag[:off], 0.0)
        assert abs(wf.imag[off + 5]) > 0.5

    def test_unit_envelope_in_continuous_region(self, mod20):
        # Alternating-sign pulse trains make I and Q quadrature
        # sinusoids, so |x| = 1 once both branches are active.
        wf = mod20.modulate_chips([0, 0, 1, 1] * 8)
        interior = wf[mod20.samples_per_pulse : -mod20.samples_per_pulse]
        assert np.allclose(np.abs(interior), 1.0, atol=1e-9)


class TestStablePhasePhysics:
    """The paper's Section IV-B derivation, verified sample-exactly."""

    def test_pair_67_plateau(self, mod20):
        wf = mod20.modulate_symbols([0x6, 0x7])
        dp = np.angle(wf[:-16] * np.conj(wf[16:]))
        plateau = np.abs(dp - SYMBEE_STABLE_PHASE) < 1e-9
        best = max(
            np.diff(np.flatnonzero(np.diff(np.concatenate(([0], plateau, [0])))))[::2],
            default=0,
        )
        assert best >= 84

    def test_pair_ef_plateau_is_conjugate(self, mod20):
        wf67 = mod20.modulate_symbols([0x6, 0x7])
        wfef = mod20.modulate_symbols([0xE, 0xF])
        assert np.allclose(wfef, np.conj(wf67))

    def test_plateau_doubles_at_40msps(self):
        mod = OqpskModulator(WIFI_SAMPLE_RATE_40MHZ)
        wf = mod.modulate_symbols([0x6, 0x7])
        dp = np.angle(wf[:-32] * np.conj(wf[32:]))
        count = int(np.sum(np.abs(dp - SYMBEE_STABLE_PHASE) < 1e-9))
        assert count >= 168


class TestDemodulator:
    @given(st.lists(st.integers(0, 15), min_size=2, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_clean_roundtrip(self, symbols):
        mod = OqpskModulator(WIFI_SAMPLE_RATE_20MHZ)
        demod = OqpskDemodulator(WIFI_SAMPLE_RATE_20MHZ)
        wf = mod.modulate_symbols(symbols)
        decoded, _ = demod.demodulate_symbols(wf, len(symbols))
        assert decoded == symbols

    def test_roundtrip_with_carrier_phase(self, mod20):
        demod = OqpskDemodulator(WIFI_SAMPLE_RATE_20MHZ)
        symbols = [1, 14, 7, 0]
        wf = mod20.modulate_symbols(symbols) * np.exp(1j * 0.7)
        decoded, _ = demod.demodulate_symbols(wf, 4, carrier_phase=0.7)
        assert decoded == symbols

    def test_roundtrip_under_noise(self, mod20, rng):
        from repro.dsp.noise import awgn

        demod = OqpskDemodulator(WIFI_SAMPLE_RATE_20MHZ)
        symbols = [9, 2, 13, 6, 0, 15]
        wf = awgn(mod20.modulate_symbols(symbols), 3.0, rng)
        decoded, _ = demod.demodulate_symbols(wf, 6)
        assert decoded == symbols

    def test_short_waveform_rejected(self):
        demod = OqpskDemodulator(WIFI_SAMPLE_RATE_20MHZ)
        with pytest.raises(ValueError):
            demod.soft_chips(np.zeros(10, dtype=complex), 32)

    def test_odd_chip_count_rejected(self):
        demod = OqpskDemodulator(WIFI_SAMPLE_RATE_20MHZ)
        with pytest.raises(ValueError):
            demod.soft_chips(np.zeros(1000, dtype=complex), 31)
