"""Unit and property tests for the 802.15.4 FCS (CRC-16 ITU-T)."""

import pytest
from hypothesis import given, strategies as st

from repro.zigbee.crc import append_fcs, check_fcs, crc16_itut


class TestCrc16:
    def test_empty_input(self):
        assert crc16_itut(b"") == 0x0000

    def test_known_vector_123456789(self):
        # CRC-16/KERMIT check value for the classic test string.
        assert crc16_itut(b"123456789") == 0x2189

    def test_fits_sixteen_bits(self):
        assert 0 <= crc16_itut(b"\xff" * 300) <= 0xFFFF

    def test_sensitive_to_single_bit(self):
        assert crc16_itut(b"\x00\x00") != crc16_itut(b"\x00\x01")

    def test_order_sensitive(self):
        assert crc16_itut(b"\x01\x02") != crc16_itut(b"\x02\x01")


class TestFcs:
    def test_append_adds_two_bytes(self):
        framed = append_fcs(b"hello")
        assert len(framed) == 7
        assert framed[:5] == b"hello"

    def test_check_passes_for_valid_frame(self):
        assert check_fcs(append_fcs(b"payload"))

    def test_check_fails_for_corrupt_body(self):
        frame = bytearray(append_fcs(b"payload"))
        frame[0] ^= 0x01
        assert not check_fcs(bytes(frame))

    def test_check_fails_for_corrupt_fcs(self):
        frame = bytearray(append_fcs(b"payload"))
        frame[-1] ^= 0x80
        assert not check_fcs(bytes(frame))

    def test_short_frames_invalid(self):
        assert not check_fcs(b"")
        assert not check_fcs(b"\x00")

    def test_fcs_low_byte_first(self):
        crc = crc16_itut(b"x")
        framed = append_fcs(b"x")
        assert framed[-2] == crc & 0xFF
        assert framed[-1] == crc >> 8

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, payload):
        assert check_fcs(append_fcs(payload))

    @given(st.binary(min_size=1, max_size=100), st.data())
    def test_any_single_bit_flip_detected(self, payload, data):
        frame = bytearray(append_fcs(payload))
        bit = data.draw(st.integers(0, len(frame) * 8 - 1))
        frame[bit // 8] ^= 1 << (bit % 8)
        assert not check_fcs(bytes(frame))
