"""Unit tests for 802.15.4 PHY framing."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import ZIGBEE_MAX_PSDU
from repro.zigbee.frame import (
    PHY_OVERHEAD_BYTES,
    PhyFrame,
    SHR_SYMBOLS,
    build_ppdu_symbols,
    parse_ppdu_symbols,
    ppdu_duration_seconds,
)


class TestPhyFrame:
    def test_length(self):
        assert PhyFrame(b"abc").length == 3

    def test_max_psdu_enforced(self):
        PhyFrame(bytes(ZIGBEE_MAX_PSDU))  # fine
        with pytest.raises(ValueError):
            PhyFrame(bytes(ZIGBEE_MAX_PSDU + 1))


class TestShr:
    def test_shr_is_ten_symbols(self):
        # 4 preamble bytes + SFD = 5 bytes = 10 symbols.
        assert len(SHR_SYMBOLS) == 10

    def test_preamble_symbols_are_zero(self):
        assert SHR_SYMBOLS[:8] == (0,) * 8

    def test_sfd_symbols(self):
        # SFD 0xA7, low nibble first: (7, A).
        assert SHR_SYMBOLS[8:] == (0x7, 0xA)

    def test_phy_overhead(self):
        assert PHY_OVERHEAD_BYTES == 6


class TestBuildParse:
    @given(st.binary(min_size=1, max_size=ZIGBEE_MAX_PSDU))
    def test_roundtrip(self, psdu):
        symbols = build_ppdu_symbols(psdu)
        frame = parse_ppdu_symbols(symbols)
        assert frame.psdu == psdu

    def test_symbol_count(self):
        symbols = build_ppdu_symbols(b"\x11\x22\x33")
        assert len(symbols) == 2 * (PHY_OVERHEAD_BYTES + 3)

    def test_bad_shr_rejected(self):
        symbols = list(build_ppdu_symbols(b"x"))
        symbols[0] = 5
        with pytest.raises(ValueError, match="synchronization"):
            parse_ppdu_symbols(symbols)

    def test_truncated_stream_rejected(self):
        symbols = build_ppdu_symbols(b"hello")
        with pytest.raises(ValueError, match="truncated"):
            parse_ppdu_symbols(symbols[:-2])

    def test_too_short_for_header(self):
        with pytest.raises(ValueError, match="too short"):
            parse_ppdu_symbols([0] * 5)

    def test_nibble_order_applies_to_payload_only(self):
        symbols_std = build_ppdu_symbols(b"\x67")
        symbols_hi = build_ppdu_symbols(b"\x67", nibble_order="high-first")
        # Header identical, payload nibble-swapped.
        assert symbols_std[:12] == symbols_hi[:12]
        assert symbols_std[12:] == [7, 6]
        assert symbols_hi[12:] == [6, 7]

    def test_parse_with_matching_nibble_order(self):
        symbols = build_ppdu_symbols(b"\x12\x34", nibble_order="high-first")
        frame = parse_ppdu_symbols(symbols, nibble_order="high-first")
        assert frame.psdu == b"\x12\x34"


class TestDuration:
    def test_minimal_packet_is_576us(self):
        # The paper's Section II-B: an 18-byte packet lasts 576 us.
        assert ppdu_duration_seconds(12) == pytest.approx(576e-6)

    def test_max_packet(self):
        assert ppdu_duration_seconds(127) == pytest.approx((127 + 6) * 32e-6)
