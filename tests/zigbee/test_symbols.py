"""Unit and property tests for repro.zigbee.symbols (paper Table I)."""

import pytest
from hypothesis import given, strategies as st

from repro.zigbee.symbols import (
    CHIP_MATRIX,
    CHIP_MATRIX_ANTIPODAL,
    CHIP_TABLE,
    bytes_to_symbols,
    chips_for_symbol,
    symbol_for_chips,
    symbols_to_bytes,
)


class TestChipTable:
    def test_symbol_0_matches_paper_table1(self):
        expected = "11011001110000110101001000101110"
        assert "".join(map(str, CHIP_TABLE[0])) == expected

    def test_symbol_f_matches_paper_table1(self):
        expected = "11001001011000000111011110111000"
        assert "".join(map(str, CHIP_TABLE[0xF])) == expected

    def test_sixteen_sequences_of_32_chips(self):
        assert len(CHIP_TABLE) == 16
        assert all(len(seq) == 32 for seq in CHIP_TABLE)

    def test_all_sequences_distinct(self):
        assert len(set(CHIP_TABLE)) == 16

    @pytest.mark.parametrize("symbol", range(1, 8))
    def test_cyclic_shift_structure(self, symbol):
        base = CHIP_TABLE[0]
        shifted = base[-4 * symbol :] + base[: -4 * symbol]
        assert CHIP_TABLE[symbol] == shifted

    @pytest.mark.parametrize("symbol", range(8))
    def test_conjugate_structure(self, symbol):
        # Symbols 8-15 invert exactly the odd-indexed (quadrature) chips.
        low, high = CHIP_TABLE[symbol], CHIP_TABLE[symbol + 8]
        for i in range(32):
            if i % 2 == 0:
                assert low[i] == high[i]
            else:
                assert low[i] != high[i]

    def test_balanced_chips(self):
        # Each PN sequence has equal numbers of 0s and 1s.
        for seq in CHIP_TABLE:
            assert sum(seq) == 16

    def test_chip_matrix_consistent(self):
        assert CHIP_MATRIX.shape == (16, 32)
        for s in range(16):
            assert tuple(CHIP_MATRIX[s]) == CHIP_TABLE[s]

    def test_antipodal_mapping(self):
        # Chip 0 -> +1, chip 1 -> -1 (the paper's pulse polarity).
        assert set(CHIP_MATRIX_ANTIPODAL.ravel().tolist()) == {-1, 1}
        assert all(
            (CHIP_MATRIX[s][i] == 0) == (CHIP_MATRIX_ANTIPODAL[s][i] == 1)
            for s in range(16)
            for i in range(32)
        )


class TestLookups:
    @given(st.integers(0, 15))
    def test_roundtrip(self, symbol):
        assert symbol_for_chips(chips_for_symbol(symbol)) == symbol

    @pytest.mark.parametrize("bad", [-1, 16, 255])
    def test_out_of_range_symbol(self, bad):
        with pytest.raises(ValueError):
            chips_for_symbol(bad)

    def test_unknown_chips_raise(self):
        with pytest.raises(KeyError):
            symbol_for_chips((0,) * 32)


class TestNibbleConversion:
    def test_low_first_order(self):
        # 802.15.4 sends the low nibble first: 0x76 -> symbols (6, 7).
        assert bytes_to_symbols(b"\x76") == [6, 7]

    def test_high_first_order(self):
        # The paper's printed byte values: 0x67 -> symbols (6, 7).
        assert bytes_to_symbols(b"\x67", nibble_order="high-first") == [6, 7]

    def test_multibyte(self):
        assert bytes_to_symbols(b"\x10\x32") == [0, 1, 2, 3]

    def test_empty(self):
        assert bytes_to_symbols(b"") == []

    def test_unknown_order_raises(self):
        with pytest.raises(ValueError):
            bytes_to_symbols(b"\x00", nibble_order="middle-endian")

    def test_symbols_to_bytes_inverse(self):
        assert symbols_to_bytes([6, 7]) == b"\x76"
        assert symbols_to_bytes([6, 7], nibble_order="high-first") == b"\x67"

    def test_odd_symbol_count_raises(self):
        with pytest.raises(ValueError):
            symbols_to_bytes([1, 2, 3])

    def test_symbol_out_of_range_raises(self):
        with pytest.raises(ValueError):
            symbols_to_bytes([1, 17])

    @given(st.binary(max_size=64), st.sampled_from(["low-first", "high-first"]))
    def test_roundtrip_property(self, payload, order):
        symbols = bytes_to_symbols(payload, order)
        assert symbols_to_bytes(symbols, order) == payload
