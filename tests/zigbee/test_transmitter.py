"""Unit tests for the end-to-end ZigBee transmitter."""

import numpy as np
import pytest

from repro.dsp.signal_ops import dbm_to_watts, signal_power
from repro.zigbee.frame import parse_ppdu_symbols
from repro.zigbee.oqpsk import OqpskDemodulator
from repro.zigbee.transmitter import ZigBeeTransmitter


class TestTransmitter:
    def test_power_convention(self):
        tx = ZigBeeTransmitter(tx_power_dbm=0.0)
        _, wf = tx.transmit(b"some payload")
        assert signal_power(wf) == pytest.approx(dbm_to_watts(0.0))

    def test_power_scaling(self):
        tx = ZigBeeTransmitter(tx_power_dbm=-15.0)
        _, wf = tx.transmit(b"x")
        assert signal_power(wf) == pytest.approx(dbm_to_watts(-15.0))

    def test_center_frequency_follows_channel(self):
        assert ZigBeeTransmitter(channel=13).center_frequency == 2.415e9
        assert ZigBeeTransmitter(channel=26).center_frequency == 2.480e9

    def test_sequence_increments_and_wraps(self):
        tx = ZigBeeTransmitter()
        tx._sequence = 254
        f1, _ = tx.transmit(b"a")
        f2, _ = tx.transmit(b"b")
        f3, _ = tx.transmit(b"c")
        assert (f1.sequence, f2.sequence, f3.sequence) == (254, 255, 0)

    def test_waveform_demodulates_back_to_frame(self):
        tx = ZigBeeTransmitter()
        frame, wf = tx.transmit(b"roundtrip")
        demod = OqpskDemodulator(tx.sample_rate)
        n_symbols = 2 * (6 + len(frame.to_psdu()))
        symbols, _ = demod.demodulate_symbols(wf, n_symbols)
        parsed = parse_ppdu_symbols(symbols)
        assert parsed.psdu == frame.to_psdu()

    def test_packet_duration_matches_paper_minimum(self):
        tx = ZigBeeTransmitter()
        # 18-byte packet = 12 PSDU + 6 PHY overhead = 576 us, but with the
        # 11-byte MAC overhead a 1-byte payload already exceeds it.
        assert tx.packet_duration(1) == pytest.approx((6 + 12) * 32e-6)

    def test_silence(self):
        silence = ZigBeeTransmitter.silence(100)
        assert silence.size == 100
        assert np.all(silence == 0)
        assert silence.dtype == np.complex128

    def test_mac_fields_forwarded(self):
        tx = ZigBeeTransmitter()
        frame, _ = tx.transmit(b"x", destination=0x1234, pan_id=0x9)
        assert frame.destination == 0x1234
        assert frame.pan_id == 0x9
