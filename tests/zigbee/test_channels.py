"""Unit tests for the ZigBee/WiFi channel maps and their overlap."""

import pytest

from repro.zigbee.channels import (
    ZIGBEE_CHANNELS,
    frequency_offset_hz,
    overlapping_wifi_channels,
    zigbee_channel_frequency,
)


class TestChannelMap:
    def test_channel_11_is_2405(self):
        assert zigbee_channel_frequency(11) == 2.405e9

    def test_channel_26_is_2480(self):
        assert zigbee_channel_frequency(26) == 2.480e9

    def test_five_mhz_spacing(self):
        freqs = [ZIGBEE_CHANNELS[k] for k in sorted(ZIGBEE_CHANNELS)]
        assert all(b - a == 5e6 for a, b in zip(freqs, freqs[1:]))

    @pytest.mark.parametrize("bad", [10, 27, 0])
    def test_invalid_channel(self, bad):
        with pytest.raises(ValueError):
            zigbee_channel_frequency(bad)


class TestOverlap:
    def test_channel_13_overlaps_wifi_1(self):
        assert 1 in overlapping_wifi_channels(13)

    def test_each_wifi_channel_covers_four_zigbee(self):
        covered = [
            z for z in ZIGBEE_CHANNELS if 1 in overlapping_wifi_channels(z)
        ]
        assert len(covered) == 4

    def test_offsets_follow_appendix_b(self):
        # The distance from a WiFi channel to any overlapping ZigBee
        # channel is (3 + 5m) MHz, m in {-2, -1, 0, 1} (paper Appendix B).
        allowed = {(3 + 5 * m) * 1e6 for m in (-2, -1, 0, 1)}
        for z_ch in ZIGBEE_CHANNELS:
            for w_ch in overlapping_wifi_channels(z_ch):
                assert frequency_offset_hz(z_ch, w_ch) in allowed

    def test_paper_example_zigbee12_wifi1(self):
        # "e.g., ZigBee Ch.12 (2.410 GHz) and WiFi Ch.1 (2.412 GHz)" = -2 MHz.
        assert frequency_offset_hz(12, 1) == -2e6
