"""Unit tests for the minimal 802.15.4 MAC codec."""

import pytest
from hypothesis import given, strategies as st

from repro.zigbee.mac import (
    BROADCAST_ADDRESS,
    FCF_DATA_SHORT,
    MAC_OVERHEAD_BYTES,
    MAX_MAC_PAYLOAD,
    MacFrame,
)


class TestMacFrame:
    def test_defaults(self):
        frame = MacFrame(payload=b"data")
        assert frame.frame_control == FCF_DATA_SHORT
        assert frame.destination == BROADCAST_ADDRESS

    def test_psdu_length(self):
        frame = MacFrame(payload=b"12345")
        assert len(frame.to_psdu()) == MAC_OVERHEAD_BYTES + 5

    def test_max_payload(self):
        MacFrame(payload=bytes(MAX_MAC_PAYLOAD))  # fine
        with pytest.raises(ValueError):
            MacFrame(payload=bytes(MAX_MAC_PAYLOAD + 1))

    def test_sequence_range(self):
        with pytest.raises(ValueError):
            MacFrame(payload=b"", sequence=256)

    def test_address_range(self):
        with pytest.raises(ValueError):
            MacFrame(payload=b"", destination=0x1_0000)

    @given(
        st.binary(max_size=MAX_MAC_PAYLOAD),
        st.integers(0, 255),
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
    )
    def test_roundtrip(self, payload, seq, pan, dest, src):
        frame = MacFrame(
            payload=payload, sequence=seq, pan_id=pan, destination=dest, source=src
        )
        parsed = MacFrame.from_psdu(frame.to_psdu())
        assert parsed == frame

    def test_corrupt_psdu_rejected(self):
        psdu = bytearray(MacFrame(payload=b"abc").to_psdu())
        psdu[3] ^= 0xFF
        with pytest.raises(ValueError, match="FCS"):
            MacFrame.from_psdu(bytes(psdu))

    def test_short_psdu_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            MacFrame.from_psdu(b"\x00" * 5)

    def test_header_layout_little_endian(self):
        frame = MacFrame(
            payload=b"", sequence=0x42, pan_id=0x1234, destination=0xAABB,
            source=0xCCDD,
        )
        psdu = frame.to_psdu()
        assert psdu[0:2] == FCF_DATA_SHORT.to_bytes(2, "little")
        assert psdu[2] == 0x42
        assert psdu[3:5] == b"\x34\x12"
        assert psdu[5:7] == b"\xbb\xaa"
        assert psdu[7:9] == b"\xdd\xcc"
