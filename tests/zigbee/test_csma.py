"""Unit tests for unslotted CSMA-CA."""

import numpy as np
import pytest

from repro.zigbee.csma import CCA_DURATION_S, UNIT_BACKOFF_S, CsmaCa


def always_idle(_start, _duration):
    return False


def always_busy(_start, _duration):
    return True


class TestParameters:
    def test_unit_backoff_is_320us(self):
        assert UNIT_BACKOFF_S == pytest.approx(320e-6)

    def test_cca_is_128us(self):
        assert CCA_DURATION_S == pytest.approx(128e-6)

    def test_invalid_be_ordering(self):
        with pytest.raises(ValueError):
            CsmaCa(min_be=5, max_be=3)

    def test_negative_backoffs(self):
        with pytest.raises(ValueError):
            CsmaCa(max_backoffs=-1)


class TestAttempt:
    def test_idle_channel_succeeds(self, rng):
        outcome = CsmaCa().attempt(0.0, always_idle, rng)
        assert outcome.success
        assert outcome.backoffs_used == 0
        assert outcome.tx_time_s >= CCA_DURATION_S

    def test_busy_channel_gives_up(self, rng):
        csma = CsmaCa(max_backoffs=4)
        outcome = csma.attempt(0.0, always_busy, rng)
        assert not outcome.success
        assert outcome.backoffs_used == 5

    def test_backoff_within_bounds(self, rng):
        csma = CsmaCa(min_be=3, max_be=3, max_backoffs=0)
        for _ in range(50):
            outcome = csma.attempt(0.0, always_idle, rng)
            slots = (outcome.tx_time_s - CCA_DURATION_S) / UNIT_BACKOFF_S
            assert 0 <= round(slots) <= 7
            assert abs(slots - round(slots)) < 1e-9

    def test_waits_out_a_transient_busy_period(self, rng):
        # Channel busy until t = 5 ms, idle after.
        def busy_until_5ms(start, duration):
            return start < 5e-3

        csma = CsmaCa()
        successes = 0
        for _ in range(40):
            outcome = csma.attempt(0.0, busy_until_5ms, rng)
            if outcome.success:
                successes += 1
                assert outcome.tx_time_s >= 5e-3
        # Exponential backoff frequently stretches past the busy period.
        assert successes > 10

    def test_time_spent_accounting(self, rng):
        outcome = CsmaCa().attempt(2.0, always_idle, rng)
        assert outcome.time_spent_s == pytest.approx(outcome.tx_time_s - 2.0)

    def test_deterministic_given_seed(self):
        a = CsmaCa().attempt(0.0, always_idle, np.random.default_rng(3))
        b = CsmaCa().attempt(0.0, always_idle, np.random.default_rng(3))
        assert a == b

    def test_exponential_backoff_grows(self):
        # With a busy channel the expected per-round wait grows with BE;
        # verify the mean drawn slots increase round over round.
        rng = np.random.default_rng(10)
        csma = CsmaCa(min_be=2, max_be=5, max_backoffs=3)
        outcome = csma.attempt(0.0, always_busy, rng)
        total_slots = (
            outcome.time_spent_s - 4 * CCA_DURATION_S
        ) / UNIT_BACKOFF_S
        # 4 rounds with BE = 2,3,4,5: max 3+7+15+31 = 56 slots.
        assert 0 <= total_slots <= 56 + 1e-9
