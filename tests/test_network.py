"""Integration tests for the convergecast network simulator."""

import numpy as np
import pytest

from repro.channel.scenarios import get_scenario
from repro.network import ConvergecastNetwork, NetworkResult, NodeConfig
from repro.network.simulator import TransmissionRecord


def small_network(n_nodes=3, interval=0.4, duration=2.0, seed=5,
                  scenario="office"):
    nodes = [
        NodeConfig(node_id=i, distance_m=5.0 + 4.0 * i,
                   reading_interval_s=interval)
        for i in range(n_nodes)
    ]
    return ConvergecastNetwork(
        nodes, get_scenario(scenario), sim_duration_s=duration, seed=seed
    )


class TestSimulator:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            ConvergecastNetwork([], get_scenario("office"))

    def test_delivery_in_light_traffic(self):
        result = small_network().run()
        assert result.readings_generated > 0
        assert result.delivery_ratio > 0.8

    def test_latency_reasonable(self):
        result = small_network().run()
        # One frame is ~2 ms on air; with light contention latency stays
        # within a few tens of ms.
        assert result.mean_latency_s < 0.05

    def test_deterministic(self):
        a = small_network(seed=9).run()
        b = small_network(seed=9).run()
        assert a.delivery_ratio == b.delivery_ratio
        assert len(a.records) == len(b.records)

    def test_no_committed_overlap_without_collision_flag(self):
        result = small_network(n_nodes=5, interval=0.1).run()
        clean = sorted(
            (r for r in result.records if not r.collided),
            key=lambda r: r.start_s,
        )
        for first, second in zip(clean, clean[1:]):
            # Non-collided transmissions never overlap each other.
            if second.start_s < first.end_s:
                pytest.fail("undetected overlap between clean transmissions")

    def test_contention_grows_with_load(self):
        light = small_network(n_nodes=2, interval=0.5, seed=3).run()
        heavy = small_network(n_nodes=8, interval=0.05, seed=3).run()
        assert heavy.channel_utilization > light.channel_utilization
        assert heavy.collision_rate >= light.collision_rate

    def test_goodput_accounting(self):
        result = small_network().run()
        goodput = result.goodput_bps(16)
        delivered = len({(r.node_id, r.sequence) for r in result.delivered})
        assert goodput == pytest.approx(
            delivered * 16 / result.sim_duration_s
        )

    def test_retries_extend_attempt_counter(self):
        result = small_network(n_nodes=6, interval=0.08, seed=17).run()
        assert any(r.attempt > 0 for r in result.records) or (
            result.collision_rate == 0.0
        )


class TestResultObject:
    def test_empty_result(self):
        result = NetworkResult()
        assert result.delivery_ratio == 0.0
        assert result.collision_rate == 0.0
        assert result.channel_utilization == 0.0
        assert np.isnan(result.mean_latency_s)

    def test_record_properties(self):
        record = TransmissionRecord(
            node_id=1, sequence=2, created_s=1.0, start_s=1.01,
            duration_s=0.002, attempt=0,
        )
        assert record.end_s == pytest.approx(1.012)
        assert record.latency_s == pytest.approx(0.012)


class TestHiddenTerminals:
    def _two_node_network(self, carrier_sense_range_m, seed=4):
        nodes = [
            NodeConfig(node_id=0, position=(15.0, 0.0), reading_interval_s=0.04),
            NodeConfig(node_id=1, position=(-15.0, 0.0), reading_interval_s=0.04),
        ]
        return ConvergecastNetwork(
            nodes,
            get_scenario("outdoor"),
            sim_duration_s=2.0,
            seed=seed,
            carrier_sense_range_m=carrier_sense_range_m,
        )

    def test_position_derives_distance(self):
        node = NodeConfig(node_id=0, position=(3.0, 4.0))
        assert node.distance_m == pytest.approx(5.0)

    def test_pairwise_distance(self):
        a = NodeConfig(node_id=0, position=(15.0, 0.0))
        b = NodeConfig(node_id=1, position=(-15.0, 0.0))
        assert a.distance_to(b) == pytest.approx(30.0)

    def test_pairwise_distance_requires_positions(self):
        a = NodeConfig(node_id=0, distance_m=5.0)
        b = NodeConfig(node_id=1, position=(1.0, 0.0))
        with pytest.raises(ValueError):
            a.distance_to(b)

    def test_missing_placement_rejected(self):
        with pytest.raises(ValueError):
            NodeConfig(node_id=0)

    def test_sensing_range_requires_positions(self):
        nodes = [NodeConfig(node_id=0, distance_m=5.0)]
        with pytest.raises(ValueError):
            ConvergecastNetwork(
                nodes, get_scenario("office"), carrier_sense_range_m=10.0
            )

    def test_hidden_terminals_collide_more(self):
        audible = self._two_node_network(carrier_sense_range_m=50.0).run()
        hidden = self._two_node_network(carrier_sense_range_m=20.0).run()
        assert hidden.collision_rate > audible.collision_rate
        assert hidden.delivery_ratio <= audible.delivery_ratio + 0.02

    def test_collisions_revoke_both_frames(self):
        result = self._two_node_network(carrier_sense_range_m=20.0).run()
        for record in result.records:
            if record.collided:
                assert not record.delivered


class TestStreamTraffic:
    """Multi-sender traffic synthesis feeding the streaming engine."""

    def _traffic(self, **kwargs):
        from repro.network.traffic import StreamSender, StreamTraffic

        senders = [
            StreamSender(0, zigbee_channel=13, reading_interval_s=0.003),
            StreamSender(1, zigbee_channel=14, reading_interval_s=0.003),
        ]
        kwargs.setdefault("duration_s", 0.02)
        return StreamTraffic(senders, **kwargs)

    def test_schedule_is_seed_deterministic(self):
        import numpy as np

        a, _ = self._traffic().schedule(np.random.default_rng(3))
        b, _ = self._traffic().schedule(np.random.default_rng(3))
        assert a == b

    def test_capture_immune_to_global_numpy_seed(self):
        """The seeded-RNG contract: only the passed generator matters.

        Re-seeding the *global* numpy state differently between two
        identically seeded captures must not change a single sample —
        any global draw sneaking into scheduling, fading or front-end
        noise would break this.
        """
        import numpy as np

        np.random.seed(1111)
        samples_a, truth_a = self._traffic().capture(
            np.random.default_rng(3)
        )
        np.random.seed(2222)
        samples_b, truth_b = self._traffic().capture(
            np.random.default_rng(3)
        )
        assert truth_a == truth_b
        assert np.array_equal(samples_a, samples_b)

    def test_same_channel_transmissions_never_overlap(self):
        import numpy as np

        from repro.network.traffic import StreamSender, StreamTraffic

        senders = [
            StreamSender(i, zigbee_channel=13, reading_interval_s=0.002)
            for i in range(3)
        ]
        traffic = StreamTraffic(senders, duration_s=0.03)
        transmissions, _ = traffic.schedule(np.random.default_rng(5))
        ordered = sorted(transmissions, key=lambda t: t.start_sample)
        for first, second in zip(ordered, ordered[1:]):
            assert second.start_sample >= first.end_sample

    def test_frames_fit_inside_capture(self):
        import numpy as np

        traffic = self._traffic()
        transmissions, _ = traffic.schedule(np.random.default_rng(7))
        assert transmissions
        for t in transmissions:
            assert t.start_sample >= traffic.lead_in_samples
            assert t.end_sample + traffic.guard_samples <= traffic.total_samples

    def test_capture_length_and_truth(self):
        import numpy as np

        traffic = self._traffic()
        samples, truth = traffic.capture(np.random.default_rng(9))
        assert samples.size == traffic.total_samples
        assert samples.dtype == np.complex128
        for t in truth:
            assert len(t.frame_bits) >= len(t.data_bits) + 40

    def test_blocks_cover_capture_exactly(self):
        import numpy as np

        traffic = self._traffic()
        samples, _ = traffic.capture(np.random.default_rng(9))
        blocks = list(traffic.blocks(samples, 7000))
        assert sum(b.size for b in blocks) == samples.size
        assert all(b.size == 7000 for b in blocks[:-1])
        with pytest.raises(ValueError):
            next(traffic.blocks(samples, 0))

    def test_requires_a_sender(self):
        from repro.network.traffic import StreamTraffic

        with pytest.raises(ValueError):
            StreamTraffic([])
