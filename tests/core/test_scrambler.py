"""Unit and property tests for PRBS whitening."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.scrambler import (
    descramble,
    longest_same_bit_run,
    prbs7,
    scramble,
)


class TestPrbs7:
    def test_period_127(self):
        stream = prbs7(254)
        assert np.array_equal(stream[:127], stream[127:254])
        # No shorter period.
        for candidate in (7, 31, 63):
            assert not np.array_equal(stream[:candidate], stream[candidate:2 * candidate])

    def test_balanced(self):
        stream = prbs7(127)
        assert stream.sum() == 64  # PRBS-7: 64 ones, 63 zeros per period

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            prbs7(10, seed=0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            prbs7(-1)

    def test_different_seeds_differ(self):
        assert not np.array_equal(prbs7(64, seed=0x5B), prbs7(64, seed=0x13))


class TestScramble:
    @given(st.lists(st.integers(0, 1), max_size=300))
    def test_self_inverse(self, bits):
        assert list(descramble(scramble(bits))) == bits

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            scramble([0, 2])

    def test_kills_constant_runs(self):
        # The pathological payload: all zeros (mimics the preamble).
        scrambled = scramble([0] * 112)
        assert longest_same_bit_run(scrambled) < 8

    def test_all_ones_also_whitened(self):
        scrambled = scramble([1] * 112)
        assert longest_same_bit_run(scrambled) < 8

    def test_seed_mismatch_garbles(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 8
        wrong = descramble(scramble(bits, seed=0x5B), seed=0x2A)
        assert list(wrong) != bits


class TestRunDiagnostic:
    def test_empty(self):
        assert longest_same_bit_run([]) == 0

    def test_single(self):
        assert longest_same_bit_run([1]) == 1

    def test_mixed(self):
        assert longest_same_bit_run([0, 0, 1, 1, 1, 0]) == 3


class TestEndToEndWithLink:
    def test_scrambled_constant_payload_survives_the_link(self, rng):
        """All-zero data + scrambling decodes over the real PHY.

        Without whitening, a constant all-zero payload extends the
        preamble pattern through the whole frame; with it the capture
        anchors correctly and the data descrambles back.
        """
        from repro.core.link import SymBeeLink

        link = SymBeeLink()
        data = [0] * 48
        sent = list(scramble(data))
        result = link.send_bits(sent, rng)
        assert result.preamble_captured
        recovered = list(descramble(list(result.decoded_bits)))
        assert recovered == data
