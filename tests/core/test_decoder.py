"""Unit tests for the SymBee decoder (sliding window + synchronized)."""

import numpy as np
import pytest

from repro.constants import (
    SYMBEE_STABLE_PHASE,
    WIFI_SAMPLE_RATE_20MHZ,
    WIFI_SAMPLE_RATE_40MHZ,
)
from repro.core.decoder import SymBeeDecoder
from repro.core.encoder import SymBeeEncoder
from repro.zigbee.oqpsk import OqpskModulator


def phases_for_bits(bits, sample_rate=WIFI_SAMPLE_RATE_20MHZ):
    """Noiseless baseband phase stream for a raw SymBee bit sequence."""
    enc = SymBeeEncoder()
    mod = OqpskModulator(sample_rate)
    symbols = []
    for bit in bits:
        symbols.extend(enc.symbols_for_bit(bit))
    wf = mod.modulate_symbols(symbols)
    decoder = SymBeeDecoder(sample_rate=sample_rate, cfo_correction=None)
    return decoder.phases(wf), decoder


class TestConstruction:
    def test_20msps_geometry(self):
        d = SymBeeDecoder()
        assert (d.lag, d.window, d.bit_period) == (16, 84, 640)
        assert d.tau == 10 and d.tau_sync == 42

    def test_40msps_geometry(self):
        d = SymBeeDecoder(sample_rate=WIFI_SAMPLE_RATE_40MHZ)
        assert (d.lag, d.window, d.bit_period) == (32, 168, 1280)
        assert d.tau == 20 and d.tau_sync == 84

    def test_custom_tau(self):
        assert SymBeeDecoder(tau=5).tau == 5

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            SymBeeDecoder(tau=42)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SymBeeDecoder(sample_rate=30e6)


class TestPhases:
    def test_cfo_correction_applied(self):
        d = SymBeeDecoder(cfo_correction=SYMBEE_STABLE_PHASE)
        tone = np.exp(-1j * 2 * np.pi * 0.5e6 * np.arange(200) / 20e6)
        # Raw dp would be +4pi/5; with correction it wraps to -2pi/5.
        out = d.phases(tone)
        assert np.allclose(out, SYMBEE_STABLE_PHASE * 2 - 2 * np.pi)

    def test_no_correction(self):
        d = SymBeeDecoder(cfo_correction=None)
        tone = np.exp(-1j * 2 * np.pi * 0.5e6 * np.arange(200) / 20e6)
        assert np.allclose(d.phases(tone), SYMBEE_STABLE_PHASE)


class TestUnsynchronizedDetection:
    def test_detects_single_bit1(self):
        phases, decoder = phases_for_bits([1])
        detections = decoder.detect_bits(phases)
        assert any(d.bit == 1 for d in detections)

    def test_detects_single_bit0(self):
        phases, decoder = phases_for_bits([0])
        detections = decoder.detect_bits(phases)
        assert any(d.bit == 0 for d in detections)

    def test_alternating_sequence_order(self):
        phases, decoder = phases_for_bits([0, 1, 0, 1])
        bits = decoder.decode_unsynchronized(phases)
        # All four bits appear, in order (extra junction detections may
        # interleave — the paper's F/P phenomenon — but subsequence holds).
        it = iter(bits)
        assert all(b in it for b in [0, 1, 0, 1])

    def test_empty_phase_stream(self):
        decoder = SymBeeDecoder()
        assert decoder.detect_bits(np.array([])) == []

    def test_pure_noise_rarely_fires(self, rng):
        decoder = SymBeeDecoder()
        phases = rng.uniform(-np.pi, np.pi, 50_000)
        assert len(decoder.detect_bits(phases)) == 0

    def test_tau_zero_needs_perfect_window(self):
        phases, decoder = phases_for_bits([1])
        flipped = phases.copy()
        # Corrupt one sample inside every window of the plateau.
        plateau = np.flatnonzero(np.abs(phases - SYMBEE_STABLE_PHASE) < 1e-9)
        flipped[plateau[::40]] = -0.1
        strict = decoder.detect_bits(flipped, tau=0)
        tolerant = decoder.detect_bits(flipped, tau=10)
        assert len(tolerant) >= len(strict)

    def test_detection_index_near_plateau(self):
        from repro.core.link import stable_window_offset

        phases, decoder = phases_for_bits([1])
        detections = [d for d in decoder.detect_bits(phases) if d.bit == 1]
        plateau_start = stable_window_offset(decoder.sample_rate)
        assert any(abs(d.index - plateau_start) < 40 for d in detections)


class TestSynchronizedDecoding:
    def test_clean_roundtrip(self):
        from repro.core.link import stable_window_offset

        bits = [1, 0, 0, 1, 1, 0, 1, 0]
        phases, decoder = phases_for_bits(bits)
        start = stable_window_offset(decoder.sample_rate)
        result = decoder.decode_synchronized(phases, start, len(bits))
        assert list(result.bits) == bits

    def test_counts_reflect_bits(self):
        from repro.core.link import stable_window_offset

        bits = [1, 0]
        phases, decoder = phases_for_bits(bits)
        result = decoder.decode_synchronized(
            phases, stable_window_offset(decoder.sample_rate), 2
        )
        assert result.counts[0] > decoder.tau_sync
        assert result.counts[1] < decoder.tau_sync

    def test_truncated_stream_drops_tail_bits(self):
        bits = [1, 0, 1]
        phases, decoder = phases_for_bits(bits)
        result = decoder.decode_synchronized(phases[:900], 270, 3)
        assert len(result.bits) < 3

    def test_negative_start_rejected_gracefully(self):
        phases, decoder = phases_for_bits([1])
        result = decoder.decode_synchronized(phases, -5, 1)
        assert result.bits == ()

    def test_positions_spaced_by_bit_period(self):
        bits = [1, 1, 1]
        phases, decoder = phases_for_bits(bits)
        result = decoder.decode_synchronized(phases, 270, 3)
        assert np.all(np.diff(result.positions) == decoder.bit_period)

    def test_timing_slop_tolerated(self):
        # The capture anchor can be off by several samples; the sign run
        # (~100 samples) absorbs a +-8 sample offset.
        from repro.core.link import stable_window_offset

        bits = [1, 0, 1, 0, 1]
        phases, decoder = phases_for_bits(bits)
        plateau0 = stable_window_offset(decoder.sample_rate)
        for offset in (-8, -4, 4, 8):
            result = decoder.decode_synchronized(
                phases, plateau0 + offset, len(bits)
            )
            assert list(result.bits) == bits


class TestPhasorPathEquivalence:
    """The phasor-domain fast path must decide exactly like the angle path."""

    def _noisy_capture(self, rng, cfo=0.8 * np.pi):
        decoder = SymBeeDecoder(cfo_correction=cfo)
        x = rng.standard_normal(4000) + 1j * rng.standard_normal(4000)
        return decoder, x

    def test_phasor_angle_matches_phases(self, rng):
        decoder, x = self._noisy_capture(rng)
        phases = decoder.phases(x)
        angles = np.angle(decoder.phasor_stream(x))
        # Identical up to the wrap convention at exactly +-pi.
        delta = np.abs(np.mod(angles - phases + np.pi, 2 * np.pi) - np.pi)
        assert np.max(delta) < 1e-9

    def test_imag_sign_matches_nonnegative_phase(self, rng):
        decoder, x = self._noisy_capture(rng)
        phases = decoder.phases(x)
        phasors = decoder.phasor_stream(x)
        assert np.array_equal(phasors.imag >= 0.0, phases >= 0.0)

    def test_unit_phasors_match_exp_of_phases(self, rng):
        decoder, x = self._noisy_capture(rng)
        unit = decoder.unit_phasors(decoder.phasor_stream(x))
        assert np.allclose(np.abs(unit), 1.0)
        assert np.allclose(unit, np.exp(1j * decoder.phases(x)), atol=1e-9)

    def test_unit_phasors_fill_exact_silence(self):
        decoder = SymBeeDecoder(cfo_correction=0.8 * np.pi)
        x = np.zeros(100, dtype=np.complex128)
        unit = decoder.unit_phasors(decoder.phasor_stream(x))
        # exp(j * phases) at zero amplitude is exp(j * cfo_correction).
        assert np.allclose(unit, np.exp(1j * decoder.phases(x)))

    def test_mask_decode_matches_phase_decode(self, rng):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        phases, decoder = phases_for_bits(bits)
        phases = phases + 0.3 * rng.standard_normal(phases.size)
        from_phases = decoder.decode_synchronized(phases, 270, len(bits))
        from_mask = decoder.decode_synchronized_mask(phases >= 0, 270, len(bits))
        assert from_phases == from_mask

    def test_mask_decode_gather_matches_cumsum_fallback(self, rng):
        # Few bits in a long stream uses the gather path; many bits in a
        # short stream takes the cumulative-sum fallback.  Same counts.
        bits = [1, 0] * 4
        phases, decoder = phases_for_bits(bits)
        mask = rng.standard_normal(phases.size) >= -0.2
        sparse = decoder.decode_synchronized_mask(mask, 100, 2)
        positions = sparse.positions
        dense = decoder.decode_synchronized_mask(mask, 100, len(bits))
        assert dense.bits[:2] == sparse.bits
        assert dense.counts[:2] == sparse.counts
        assert dense.positions[:2] == positions
