"""Unit and property tests for Hamming(7,4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.coding import code_rate, hamming74_decode, hamming74_encode


class TestEncode:
    def test_rate(self):
        assert code_rate() == pytest.approx(4 / 7)

    def test_expansion(self):
        assert hamming74_encode([0, 1, 0, 1]).size == 7

    def test_all_zero_codeword(self):
        assert np.all(hamming74_encode([0, 0, 0, 0]) == 0)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            hamming74_encode([1, 0, 1])

    def test_non_binary(self):
        with pytest.raises(ValueError):
            hamming74_encode([0, 1, 2, 0])

    def test_known_codeword(self):
        # d = 1011: p1 = 1^0^1 = 0, p2 = 1^1^1 = 1, p3 = 0^1^1 = 0.
        assert list(hamming74_encode([1, 0, 1, 1])) == [0, 1, 1, 0, 0, 1, 1]


class TestDecode:
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=48).filter(
        lambda b: len(b) % 4 == 0))
    def test_clean_roundtrip(self, bits):
        decoded, corrections = hamming74_decode(hamming74_encode(bits))
        assert list(decoded) == bits
        assert corrections == 0

    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=4),
        st.integers(0, 6),
    )
    def test_any_single_error_corrected(self, data, error_position):
        codeword = hamming74_encode(data).copy()
        codeword[error_position] ^= 1
        decoded, corrections = hamming74_decode(codeword)
        assert list(decoded) == data
        assert corrections == 1

    def test_independent_blocks(self):
        data = [1, 0, 1, 1, 0, 1, 0, 0]
        codeword = hamming74_encode(data).copy()
        codeword[2] ^= 1   # block 0
        codeword[12] ^= 1  # block 1
        decoded, corrections = hamming74_decode(codeword)
        assert list(decoded) == data
        assert corrections == 2

    def test_double_error_not_corrected(self):
        data = [1, 1, 0, 0]
        codeword = hamming74_encode(data).copy()
        codeword[0] ^= 1
        codeword[3] ^= 1
        decoded, _ = hamming74_decode(codeword)
        assert list(decoded) != data  # (7,4) cannot fix 2 errors

    def test_bad_length(self):
        with pytest.raises(ValueError):
            hamming74_decode([0] * 6)

    def test_non_binary(self):
        with pytest.raises(ValueError):
            hamming74_decode([0, 1, 0, 1, 0, 1, 3])


class TestErrorRateImprovement:
    def test_coding_halves_moderate_ber(self, rng):
        # The paper's Figure 21 point: coding roughly halves BER when
        # channel errors are moderate and scattered.
        n = 40_000
        data = rng.integers(0, 2, n)
        coded = hamming74_encode(data).copy()
        flip = rng.random(coded.size) < 0.02
        coded[flip] ^= 1
        decoded, _ = hamming74_decode(coded)
        coded_ber = np.mean(decoded != data)
        assert coded_ber < 0.01


class TestNdarrayFastPath:
    def test_int8_ndarray_encodes_without_copy_semantics(self):
        # The transport hot path hands numpy buffers straight in; the
        # converter must not round-trip them through a Python list.
        data = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int8)
        from repro.core.coding import _as_bit_array

        assert _as_bit_array(data) is data  # astype(copy=False) no-op
        other = _as_bit_array(np.array([1, 0], dtype=np.int64))
        assert other.dtype == np.int8

    def test_array_and_list_inputs_agree(self, rng):
        data = rng.integers(0, 2, 32)
        from_array = hamming74_encode(np.asarray(data, dtype=np.int8))
        from_list = hamming74_encode(list(int(b) for b in data))
        assert np.array_equal(from_array, from_list)
        decoded_a, _ = hamming74_decode(from_array)
        decoded_l, _ = hamming74_decode(list(int(b) for b in from_list))
        assert np.array_equal(decoded_a, decoded_l)

    def test_decode_does_not_mutate_input(self):
        coded = hamming74_encode([1, 0, 1, 1])
        coded[2] ^= 1  # inject an error
        snapshot = coded.copy()
        hamming74_decode(coded)
        assert np.array_equal(coded, snapshot)


class TestCodewordProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 16))
    def test_random_multiblock_roundtrip(self, seed, n_blocks):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 4 * n_blocks).astype(np.int8)
        decoded, corrections = hamming74_decode(hamming74_encode(data))
        assert np.array_equal(decoded, data)
        assert corrections == 0

    @given(st.integers(0, 2**32 - 1), st.integers(1, 8), st.data())
    def test_single_error_in_random_codeword_corrected(
        self, seed, n_blocks, drawn
    ):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 4 * n_blocks).astype(np.int8)
        coded = hamming74_encode(data)
        position = drawn.draw(st.integers(0, int(coded.size) - 1))
        coded[position] ^= 1
        decoded, corrections = hamming74_decode(coded)
        assert np.array_equal(decoded, data)
        assert corrections == 1
