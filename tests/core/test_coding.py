"""Unit and property tests for Hamming(7,4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.coding import code_rate, hamming74_decode, hamming74_encode


class TestEncode:
    def test_rate(self):
        assert code_rate() == pytest.approx(4 / 7)

    def test_expansion(self):
        assert hamming74_encode([0, 1, 0, 1]).size == 7

    def test_all_zero_codeword(self):
        assert np.all(hamming74_encode([0, 0, 0, 0]) == 0)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            hamming74_encode([1, 0, 1])

    def test_non_binary(self):
        with pytest.raises(ValueError):
            hamming74_encode([0, 1, 2, 0])

    def test_known_codeword(self):
        # d = 1011: p1 = 1^0^1 = 0, p2 = 1^1^1 = 1, p3 = 0^1^1 = 0.
        assert list(hamming74_encode([1, 0, 1, 1])) == [0, 1, 1, 0, 0, 1, 1]


class TestDecode:
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=48).filter(
        lambda b: len(b) % 4 == 0))
    def test_clean_roundtrip(self, bits):
        decoded, corrections = hamming74_decode(hamming74_encode(bits))
        assert list(decoded) == bits
        assert corrections == 0

    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=4),
        st.integers(0, 6),
    )
    def test_any_single_error_corrected(self, data, error_position):
        codeword = hamming74_encode(data).copy()
        codeword[error_position] ^= 1
        decoded, corrections = hamming74_decode(codeword)
        assert list(decoded) == data
        assert corrections == 1

    def test_independent_blocks(self):
        data = [1, 0, 1, 1, 0, 1, 0, 0]
        codeword = hamming74_encode(data).copy()
        codeword[2] ^= 1   # block 0
        codeword[12] ^= 1  # block 1
        decoded, corrections = hamming74_decode(codeword)
        assert list(decoded) == data
        assert corrections == 2

    def test_double_error_not_corrected(self):
        data = [1, 1, 0, 0]
        codeword = hamming74_encode(data).copy()
        codeword[0] ^= 1
        codeword[3] ^= 1
        decoded, _ = hamming74_decode(codeword)
        assert list(decoded) != data  # (7,4) cannot fix 2 errors

    def test_bad_length(self):
        with pytest.raises(ValueError):
            hamming74_decode([0] * 6)

    def test_non_binary(self):
        with pytest.raises(ValueError):
            hamming74_decode([0, 1, 0, 1, 0, 1, 3])


class TestErrorRateImprovement:
    def test_coding_halves_moderate_ber(self, rng):
        # The paper's Figure 21 point: coding roughly halves BER when
        # channel errors are moderate and scattered.
        n = 40_000
        data = rng.integers(0, 2, n)
        coded = hamming74_encode(data).copy()
        flip = rng.random(coded.size) < 0.02
        coded[flip] ^= 1
        decoded, _ = hamming74_decode(coded)
        coded_ber = np.mean(decoded != data)
        assert coded_ber < 0.01
