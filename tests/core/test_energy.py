"""Unit tests for the sender energy model."""

import numpy as np
import pytest

from repro.baselines import CMorse, FreeBee
from repro.core.energy import (
    CC2420_TX_CURRENT_A,
    EnergyBudget,
    SUPPLY_VOLTAGE_V,
    energy_comparison,
    packet_level_budget,
    symbee_budget,
    tx_current_a,
)


class TestRadioModel:
    def test_datasheet_points_exact(self):
        assert tx_current_a(0) == pytest.approx(17.4e-3)
        assert tx_current_a(-25) == pytest.approx(8.5e-3)

    def test_interpolation_monotone(self):
        currents = [tx_current_a(p) for p in (-25, -12, -8, -4, -2, 0)]
        assert currents == sorted(currents)

    def test_clamping_outside_range(self):
        assert tx_current_a(5) == CC2420_TX_CURRENT_A[0]
        assert tx_current_a(-40) == CC2420_TX_CURRENT_A[-25]


class TestBudgets:
    def test_symbee_airtime_scales_with_bits(self):
        small = symbee_budget(64)
        large = symbee_budget(512)
        assert large.on_air_s > small.on_air_s
        # Overhead amortizes: per-bit energy falls with message size.
        assert large.energy_per_bit_j < small.energy_per_bit_j

    def test_energy_formula(self):
        budget = EnergyBudget(
            scheme="x", bits=100, on_air_s=1.0, idle_s=0.0, tx_power_dbm=0.0
        )
        assert budget.tx_energy_j == pytest.approx(17.4e-3 * SUPPLY_VOLTAGE_V)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            symbee_budget(0)
        with pytest.raises(ValueError):
            packet_level_budget(CMorse(), 0, np.random.default_rng(0))

    def test_packet_level_charges_idle_gaps(self, rng):
        budget = packet_level_budget(FreeBee(), 64, rng)
        assert budget.idle_s > budget.on_air_s  # beacons are mostly gaps

    def test_lower_power_cheaper(self):
        assert (
            symbee_budget(128, tx_power_dbm=-10).total_energy_j
            < symbee_budget(128, tx_power_dbm=0).total_energy_j
        )


class TestComparison:
    def test_symbee_wins_by_an_order_of_magnitude(self, rng):
        budgets = energy_comparison(256, rng)
        symbee = next(b for b in budgets if b.scheme == "SymBee")
        for budget in budgets:
            if budget.scheme == "SymBee":
                continue
            assert budget.energy_per_bit_j > 5 * symbee.energy_per_bit_j, (
                budget.scheme
            )

    def test_all_schemes_present(self, rng):
        names = {b.scheme for b in energy_comparison(64, rng)}
        assert names == {
            "SymBee", "FreeBee", "A-FreeBee", "EMF", "DCTC", "C-Morse"
        }
