"""Unit tests for the template-correlation decoder."""

import numpy as np
import pytest

from repro.core.decoder import SymBeeDecoder
from repro.core.template import TemplateDecoder, bit_templates
from repro.experiments.common import link_at_snr


class TestTemplates:
    def test_mask_is_substantial(self):
        templates, mask = bit_templates()
        # More than half the bit period is neighbour-invariant.
        assert mask.sum() > 300
        assert templates.shape == (2, 640)

    def test_templates_differ_inside_mask(self):
        templates, mask = bit_templates()
        delta = np.abs(
            np.angle(np.exp(1j * (templates[0] - templates[1])))
        )[mask]
        # The stable plateau region separates by 8pi/5 (wrapped: 2pi/5).
        assert delta.max() > 1.0

    def test_stable_window_inside_mask(self):
        _, mask = bit_templates()
        # The decoder's 84-sample window (starting at offset 0 of the
        # template) must be neighbour-invariant.
        assert mask[:84].all()

    def test_cached(self):
        a = bit_templates()
        b = bit_templates()
        assert a[0] is b[0]


class TestDecoding:
    def test_clean_roundtrip(self, rng):
        link = link_at_snr(15.0)
        template_decoder = TemplateDecoder(link.decoder)
        bits = list(rng.integers(0, 2, 32))
        result = link.send_bits(bits, rng, keep_phases=True,
                                decode_synchronized=False)
        decoded = template_decoder.decode_synchronized(
            result.phases, result.true_data_start, len(bits)
        )
        assert list(decoded.bits) == bits

    def test_beats_vote_decoder_at_low_snr(self, rng):
        link = link_at_snr(-7.0)
        template_decoder = TemplateDecoder(link.decoder)
        vote_errors = template_errors = sent = 0
        for _ in range(8):
            bits = rng.integers(0, 2, 48)
            result = link.send_bits(bits, rng, keep_phases=True,
                                    decode_synchronized=False)
            vote_errors += result.bit_errors
            decoded = template_decoder.decode_synchronized(
                result.phases, result.true_data_start, len(bits)
            )
            template_errors += sum(
                a != b for a, b in zip(bits, decoded.bits)
            )
            sent += len(bits)
        assert template_errors < vote_errors
        assert template_errors / sent < 0.08

    def test_margin_reported(self, rng):
        link = link_at_snr(15.0)
        template_decoder = TemplateDecoder(link.decoder)
        result = link.send_bits([1, 0], rng, keep_phases=True,
                                decode_synchronized=False)
        decoded = template_decoder.decode_synchronized(
            result.phases, result.true_data_start, 2
        )
        assert all(margin > 50 for margin in decoded.counts)

    def test_truncated_stream(self, rng):
        link = link_at_snr(15.0)
        template_decoder = TemplateDecoder(link.decoder)
        result = link.send_bits([1, 0, 1], rng, keep_phases=True,
                                decode_synchronized=False)
        decoded = template_decoder.decode_synchronized(
            result.phases[: result.true_data_start + 700],
            result.true_data_start,
            3,
        )
        assert len(decoded.bits) < 3

    def test_api_mirrors_vote_decoder(self):
        decoder = SymBeeDecoder()
        template_decoder = TemplateDecoder(decoder)
        empty = template_decoder.decode_synchronized(np.zeros(10), -1, 1)
        assert empty.bits == ()
