"""Unit and property tests for the K=7 convolutional code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.convolutional import (
    CONSTRAINT_LENGTH,
    conv_code_rate,
    conv_encode,
    viterbi_decode,
)


class TestEncoder:
    def test_rate_and_tail(self):
        assert conv_code_rate() == 0.5
        coded = conv_encode([1, 0, 1])
        assert coded.size == 2 * (3 + CONSTRAINT_LENGTH - 1)

    def test_all_zero_input_gives_all_zero_output(self):
        assert np.all(conv_encode([0] * 20) == 0)

    def test_linear_code(self, rng):
        a = rng.integers(0, 2, 40)
        b = rng.integers(0, 2, 40)
        assert np.array_equal(
            conv_encode(a) ^ conv_encode(b), conv_encode(a ^ b)
        )

    def test_impulse_response_is_generators(self):
        # A single 1 produces the generator taps 133/171 (octal), MSB first.
        coded = conv_encode([1])
        g0_bits = coded[0::2][:7]
        g1_bits = coded[1::2][:7]
        g0 = int("".join(map(str, g0_bits)), 2)
        g1 = int("".join(map(str, g1_bits)), 2)
        assert g0 == 0o133 and g1 == 0o171

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            conv_encode([0, 2])


class TestViterbi:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_clean_roundtrip(self, bits):
        decoded = viterbi_decode(conv_encode(bits))
        assert list(decoded) == bits

    def test_corrects_scattered_errors(self, rng):
        bits = rng.integers(0, 2, 120)
        coded = conv_encode(bits).copy()
        # Flip well-separated bits (beyond ~5 constraint lengths apart).
        for position in range(5, coded.size - 5, 40):
            coded[position] ^= 1
        assert np.array_equal(viterbi_decode(coded), bits)

    def test_corrects_short_bursts(self, rng):
        bits = rng.integers(0, 2, 80)
        coded = conv_encode(bits).copy()
        coded[40:44] ^= 1
        assert np.array_equal(viterbi_decode(coded), bits)

    def test_survives_5_percent_channel(self, rng):
        bits = rng.integers(0, 2, 400)
        coded = conv_encode(bits)
        noisy = coded ^ (rng.random(coded.size) < 0.05).astype(np.int8)
        errors = int(np.sum(viterbi_decode(noisy) != bits))
        assert errors <= 4

    def test_beats_hamming_at_matched_channel(self, rng):
        from repro.core.coding import hamming74_decode, hamming74_encode

        bits = rng.integers(0, 2, 2000)
        p = 0.04
        conv_coded = conv_encode(bits)
        conv_noisy = conv_coded ^ (rng.random(conv_coded.size) < p).astype(np.int8)
        conv_errors = int(np.sum(viterbi_decode(conv_noisy) != bits))

        hamming_coded = hamming74_encode(bits)
        hamming_noisy = hamming_coded ^ (
            rng.random(hamming_coded.size) < p
        ).astype(np.int8)
        hamming_decoded, _ = hamming74_decode(hamming_noisy)
        hamming_errors = int(np.sum(hamming_decoded != bits))
        assert conv_errors < hamming_errors

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            viterbi_decode([0, 1, 0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            viterbi_decode([0, 0])

    def test_explicit_n_bits(self):
        coded = conv_encode([1, 0, 1, 1])
        assert list(viterbi_decode(coded, n_bits=2)) == [1, 0]

    def test_n_bits_out_of_range(self):
        coded = conv_encode([1])
        with pytest.raises(ValueError):
            viterbi_decode(coded, n_bits=100)
