"""Unit tests for block interleaving and its burst-protection effect."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.coding import (
    deinterleave,
    hamming74_decode,
    hamming74_encode,
    interleave,
)


class TestPermutation:
    @given(st.lists(st.integers(0, 1), min_size=12, max_size=120).filter(
        lambda b: len(b) % 12 == 0))
    def test_roundtrip(self, bits):
        assert list(deinterleave(interleave(bits, 12), 12)) == bits

    def test_depth_one_is_identity(self):
        bits = [1, 0, 1, 1]
        assert list(interleave(bits, 1)) == bits

    def test_full_depth_is_identity(self):
        # depth == length: the matrix is one column; read-out preserves order.
        bits = [1, 0, 1, 1]
        assert list(interleave(bits, 4)) == bits

    def test_known_permutation(self):
        # 2 rows of 3: [a b c / d e f] read column-wise -> a d b e c f.
        assert list(interleave([0, 1, 2, 3, 4, 5], 2)) == [0, 3, 1, 4, 2, 5]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            interleave([1, 0, 1], 2)
        with pytest.raises(ValueError):
            deinterleave([1, 0, 1], 2)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            interleave([1, 0], 0)


class TestBurstProtection:
    def test_burst_spread_across_codewords(self, rng):
        data = rng.integers(0, 2, 48)
        coded = hamming74_encode(data)          # 84 bits = 12 codewords
        depth = 12
        on_air = interleave(coded, depth)

        # A contiguous burst of `depth` errors lands one error per
        # codeword after deinterleaving — all correctable.
        for start in range(0, on_air.size - depth, 13):
            damaged = on_air.copy()
            damaged[start : start + depth] ^= 1
            decoded, corrections = hamming74_decode(
                deinterleave(damaged, depth)
            )
            assert np.array_equal(decoded, data), start
            assert corrections == depth

    def test_without_interleaving_burst_defeats_hamming(self, rng):
        data = rng.integers(0, 2, 48)
        coded = hamming74_encode(data).copy()
        coded[30:38] ^= 1                       # 8-bit burst
        decoded, _ = hamming74_decode(coded)
        assert not np.array_equal(decoded, data)

    def test_burst_longer_than_depth_still_partially_helped(self, rng):
        data = rng.integers(0, 2, 48)
        depth = 12
        on_air = interleave(hamming74_encode(data), depth)
        damaged = on_air.copy()
        damaged[10 : 10 + 2 * depth] ^= 1       # two errors per codeword
        decoded, _ = hamming74_decode(deinterleave(damaged, depth))
        # Double errors per codeword are uncorrectable, but errors stay
        # bounded instead of catastrophic.
        assert 0 < np.sum(decoded != data) <= 48
