"""Property-based tests on the end-to-end link (hypothesis).

Full-PHY rounds are expensive, so example counts stay small; the
properties themselves are the strongest in the suite — arbitrary
payloads and channel pairs must round-trip bit-exactly on a clean link.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.link import SymBeeLink
from repro.zigbee.channels import overlapping_wifi_channels

_LINK = SymBeeLink(include_noise=False)


class TestRoundtripProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_payload_roundtrips_noiselessly(self, bits):
        result = _LINK.send_bits(bits, np.random.default_rng(1))
        assert result.preamble_captured
        assert list(result.decoded_bits) == bits

    @given(
        st.integers(11, 26).flatmap(
            lambda z: st.sampled_from(
                [(z, w) for w in overlapping_wifi_channels(z)] or [(13, 1)]
            )
        )
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_overlapping_channel_pair_works(self, pair):
        zigbee_channel, wifi_channel = pair
        link = SymBeeLink(
            zigbee_channel=zigbee_channel,
            wifi_channel=wifi_channel,
            include_noise=False,
        )
        bits = [1, 0, 1, 1, 0]
        result = link.send_bits(bits, np.random.default_rng(2))
        assert list(result.decoded_bits) == bits, pair

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_frame_sequence_and_data_survive(self, seq, data_byte):
        data = [(data_byte >> (7 - i)) & 1 for i in range(8)]
        result, frame = _LINK.send_frame(
            data, sequence=seq, rng=np.random.default_rng(3)
        )
        assert frame is not None and frame.crc_ok
        assert frame.sequence == seq
        assert list(frame.data_bits) == data

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=24))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_decoded_length_never_exceeds_sent(self, bits):
        result = _LINK.send_bits(bits, np.random.default_rng(4))
        assert len(result.decoded_bits) <= len(bits)
        assert 0 <= result.bit_errors <= len(bits)
        assert 0.0 <= result.ber <= 1.0
