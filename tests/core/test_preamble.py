"""Unit tests for folding-based preamble capture."""

import numpy as np
import pytest

from repro.core.link import SymBeeLink
from repro.core.preamble import capture_preamble


class TestCaptureOnRealFrames:
    def test_clean_capture_near_truth(self, clean_capture):
        link, bits, result = clean_capture
        pre = capture_preamble(result.phases, link.decoder)
        assert pre is not None
        assert abs(pre.data_start - result.true_data_start) <= 16

    def test_capture_has_full_count_when_clean(self, clean_capture):
        link, _, result = clean_capture
        pre = capture_preamble(result.phases, link.decoder)
        assert pre.negative_count >= link.decoder.window - 2
        assert pre.coherence > 0.95

    def test_rejects_header_ghosts(self, clean_capture):
        # The 802.15.4 header precedes the payload; capture must not
        # anchor before the true preamble even though the header folds
        # to near-threshold windows (see module docstring).
        link, _, result = clean_capture
        pre = capture_preamble(result.phases, link.decoder)
        assert pre.index >= result.true_data_start - 5 * link.decoder.bit_period

    def test_sum_mode_available(self, clean_capture):
        link, _, result = clean_capture
        pre = capture_preamble(result.phases, link.decoder, mode="sum")
        assert pre is not None  # literal mode works on clean input

    def test_unknown_mode(self, clean_capture):
        link, _, result = clean_capture
        with pytest.raises(ValueError):
            capture_preamble(result.phases, link.decoder, mode="fourier")


class TestCaptureEdgeCases:
    def test_no_capture_in_pure_noise(self, rng):
        link = SymBeeLink()
        phases = rng.uniform(-np.pi, np.pi, 30_000)
        assert capture_preamble(phases, link.decoder) is None

    def test_too_short_stream(self):
        link = SymBeeLink()
        assert capture_preamble(np.zeros(100), link.decoder) is None

    def test_capture_under_noise(self, rng):
        # At 10 dB per-sample SNR capture must be essentially certain.
        from repro.experiments.common import link_at_snr

        link = link_at_snr(10.0)
        hits = 0
        for _ in range(10):
            result = link.send_bits([1, 0] * 10, rng, keep_phases=True)
            pre = capture_preamble(result.phases, link.decoder)
            if pre and abs(pre.data_start - result.true_data_start) <= 16:
                hits += 1
        assert hits >= 9

    def test_more_folds_requires_longer_preamble(self, clean_capture):
        # Folding 8 times over a 4-bit preamble mixes in message bits;
        # capture may still fire but the API must not crash.
        link, _, result = clean_capture
        capture_preamble(result.phases, link.decoder, folds=8)

    def test_stricter_tau(self, clean_capture):
        link, _, result = clean_capture
        pre = capture_preamble(result.phases, link.decoder, tau=0)
        assert pre is not None  # clean stream passes even tau = 0


class TestUnitPhasorInput:
    """capture_preamble accepts precomputed unit phasors (fast path)."""

    def test_unit_phasors_equal_angle_input(self, clean_capture):
        link, _, result = clean_capture
        from_phases = capture_preamble(result.phases, link.decoder)
        from_phasors = capture_preamble(
            None, link.decoder, unit_phasors=np.exp(1j * result.phases)
        )
        assert from_phasors == from_phases

    def test_unit_phasors_equal_angle_input_noisy(self, rng):
        link = SymBeeLink(tx_power_dbm=-90.0)
        for _ in range(5):
            res = link.send_bits(rng.integers(0, 2, 16), rng, keep_phases=True)
            a = capture_preamble(res.phases, link.decoder)
            b = capture_preamble(
                None, link.decoder, unit_phasors=np.exp(1j * res.phases)
            )
            assert a == b
