"""40 MHz WiFi receiver variant (paper Section VI-B)."""

import numpy as np
import pytest

from repro.constants import WIFI_SAMPLE_RATE_40MHZ
from repro.core.link import SymBeeLink
from repro.experiments.common import link_at_snr


@pytest.fixture(scope="module")
def wide_link():
    return SymBeeLink(sample_rate=WIFI_SAMPLE_RATE_40MHZ)


class TestWidebandGeometry:
    def test_decoder_scaling(self, wide_link):
        decoder = wide_link.decoder
        assert decoder.lag == 32          # dp over 32 samples
        assert decoder.window == 168      # doubled stable window
        assert decoder.bit_period == 1280 # doubled bit spacing
        assert decoder.tau_sync == 84     # "84 of 168 indicate bit 1"

    def test_preamble_skip_is_5120(self, wide_link):
        # Section VI-B: 640 * 4 * 2 = 5120 phase values after capture.
        assert 4 * wide_link.decoder.bit_period == 5120


class TestWidebandLink:
    def test_clean_roundtrip(self, wide_link, rng):
        bits = list(rng.integers(0, 2, 40))
        result = wide_link.send_bits(bits, rng)
        assert result.preamble_captured
        assert result.bit_errors == 0

    def test_sender_side_unchanged(self, wide_link):
        # The ZigBee encoder is identical at both receiver bandwidths.
        narrow = SymBeeLink()
        assert (
            wide_link.encoder.encode_bits([1, 0])
            == narrow.encoder.encode_bits([1, 0])
        )

    def test_capture_near_truth(self, wide_link, rng):
        result = wide_link.send_bits([1, 0, 1], rng)
        assert abs(result.captured_data_start - result.true_data_start) <= 32

    def test_wideband_tolerates_more_errors(self, rng):
        # Doubled window doubles the error capacity: at a low SNR the
        # 40 MHz receiver's BER must not exceed the 20 MHz receiver's
        # by more than noise wiggle.
        errors = {}
        for rate in (20e6, 40e6):
            link = link_at_snr(-3.0, sample_rate=rate)
            errs = sent = 0
            for _ in range(8):
                bits = rng.integers(0, 2, 32)
                result = link.send_bits(bits, rng, decode_synchronized=False)
                errs += result.bit_errors
                sent += result.n_bits
            errors[rate] = errs / sent
        assert errors[40e6] <= errors[20e6] + 0.05
