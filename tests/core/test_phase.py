"""Unit tests for phase extraction and CFO compensation."""

import numpy as np
import pytest

from repro.constants import SYMBEE_STABLE_PHASE
from repro.core.phase import (
    cfo_compensation_phase,
    compensate_cfo,
    cross_observed_phases,
    discrete_phase_levels,
    pair_phase_stream,
    sign_run_lengths,
    stable_run_lengths,
)


class TestCfoCompensation:
    @pytest.mark.parametrize("offset_mhz", [-7, -2, 3, 8])
    def test_all_valid_offsets_need_same_correction(self, offset_mhz):
        # Paper Appendix B: every overlapping channel pair compensates
        # with the same +4pi/5 constant.
        corr = cfo_compensation_phase(offset_mhz * 1e6, 16, 20e6)
        assert corr == pytest.approx(SYMBEE_STABLE_PHASE)

    def test_40mhz_same_correction(self):
        corr = cfo_compensation_phase(3e6, 32, 40e6)
        assert corr == pytest.approx(SYMBEE_STABLE_PHASE)

    def test_zero_offset_zero_correction(self):
        assert cfo_compensation_phase(0.0, 16, 20e6) == pytest.approx(0.0)

    def test_compensation_restores_baseband_phase(self, rng):
        # Mix a (6,7) waveform by +3 MHz, observe, compensate: the
        # plateau must sit at +4pi/5 again.
        from repro.dsp.signal_ops import mix
        from repro.zigbee.oqpsk import OqpskModulator

        wf = OqpskModulator(20e6).modulate_symbols([0x6, 0x7])
        shifted = mix(wf, 3e6, 20e6)
        dp = cross_observed_phases(shifted, 16)
        compensated = compensate_cfo(dp)
        plateau = np.abs(compensated - SYMBEE_STABLE_PHASE) < 1e-6
        assert plateau.sum() >= 84

    def test_compensate_wraps(self):
        out = compensate_cfo(np.array([np.pi - 0.1]))
        assert -np.pi < out[0] <= np.pi


class TestStableRuns:
    def test_pair_67(self):
        neg, pos = stable_run_lengths((0x6, 0x7))
        assert pos >= 84 and neg < 84

    def test_pair_ef(self):
        neg, pos = stable_run_lengths((0xE, 0xF))
        assert neg >= 84 and pos < 84

    def test_symmetry_of_conjugate_pairs(self):
        neg67, pos67 = stable_run_lengths((0x6, 0x7))
        negef, posef = stable_run_lengths((0xE, 0xF))
        assert (neg67, pos67) == (posef, negef)

    def test_optimality_over_all_pairs(self):
        # Paper Section IV-A: the longest stable phase among any
        # combination belongs to (6,7) and (E,F).
        best = max(
            max(stable_run_lengths((a, b)))
            for a in range(16)
            for b in range(16)
            if (a, b) not in ((0x6, 0x7), (0xE, 0xF))
        )
        assert max(stable_run_lengths((0x6, 0x7))) > best

    def test_sign_runs_longer_than_plateaus(self):
        neg_sign, pos_sign = sign_run_lengths((0x6, 0x7))
        neg_plateau, pos_plateau = stable_run_lengths((0x6, 0x7))
        assert pos_sign >= pos_plateau

    def test_pair_stream_length(self):
        dp = pair_phase_stream((0, 0))
        # Two symbols = 640 samples + Q tail, minus the lag.
        assert dp.size == 650 - 16


class TestDiscreteLevels:
    def test_extremes_are_4pi5(self):
        levels = discrete_phase_levels()
        assert min(levels) == pytest.approx(-SYMBEE_STABLE_PHASE, abs=1e-6)
        assert max(levels) == pytest.approx(SYMBEE_STABLE_PHASE, abs=1e-6)

    def test_contains_derived_17_levels(self):
        levels = {round(v, 6) for v in discrete_phase_levels()}
        for i in range(-8, 9):
            assert round(np.pi / 10 * i, 6) in levels or round(
                -np.pi / 10 * -i, 6
            ) in levels

    def test_levels_on_pi_over_20_grid(self):
        for v in discrete_phase_levels():
            ratio = v / (np.pi / 20)
            assert abs(ratio - round(ratio)) < 1e-4
