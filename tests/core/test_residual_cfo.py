"""Residual carrier offset: impairment and tracking (extension).

The paper's Appendix B only compensates channel-grid offsets; real
crystals add up to tens of kHz more.  These tests pin the reproduction's
tolerance envelope and the preamble-based tracking extension.
"""

import numpy as np
import pytest

from repro.core.link import SymBeeLink
from repro.core.preamble import capture_preamble


class TestImpairmentModel:
    def test_zero_offset_is_default(self):
        assert SymBeeLink().residual_cfo_hz == 0.0

    def test_plateau_shift_matches_theory(self, rng):
        # dp shifts by -2*pi*f*lag/fs: +50 kHz -> -0.251 rad.
        link = SymBeeLink(include_noise=False, residual_cfo_hz=50e3)
        result = link.send_bits([0, 0, 0, 0], rng, keep_phases=True)
        position = link.true_bit_positions(1)[0]
        plateau = result.phases[position + 20 : position + 60]
        expected = -0.8 * np.pi - 2 * np.pi * 50e3 * 16 / 20e6
        assert np.median(plateau) == pytest.approx(expected, abs=0.02)

    @pytest.mark.parametrize("cfo_hz", [-60e3, -25e3, 25e3, 60e3])
    def test_crystal_range_tolerated(self, cfo_hz, rng):
        # +-25 ppm crystals (~+-60 kHz at 2.44 GHz) must decode cleanly
        # at a healthy SNR even without tracking.
        link = SymBeeLink(tx_power_dbm=-85.0, residual_cfo_hz=cfo_hz)
        bits = list(rng.integers(0, 2, 40))
        result = link.send_bits(bits, rng)
        assert result.preamble_captured
        assert result.bit_errors == 0

    def test_extreme_offset_breaks_the_link(self, rng):
        # Near +-100 kHz the bit-0 plateau reaches the +-pi wrap and the
        # absolute sign test fails — the documented limitation.
        link = SymBeeLink(tx_power_dbm=-85.0, residual_cfo_hz=140e3)
        errors = 0
        for _ in range(4):
            result = link.send_bits([1, 0] * 12, rng)
            errors += result.n_bits - result.delivered_bits
        assert errors > 0


class TestTracking:
    def test_mean_angle_estimates_deviation(self, rng):
        link = SymBeeLink(include_noise=False, residual_cfo_hz=40e3)
        result = link.send_bits([1, 0, 1], rng, keep_phases=True)
        pre = capture_preamble(result.phases, link.decoder)
        expected = -0.8 * np.pi - 2 * np.pi * 40e3 * 16 / 20e6
        assert pre.mean_angle == pytest.approx(expected, abs=0.05)

    def test_clean_preamble_mean_angle_at_level(self, clean_capture):
        link, _, result = clean_capture
        pre = capture_preamble(result.phases, link.decoder)
        assert pre.mean_angle == pytest.approx(-0.8 * np.pi, abs=0.03)

    def test_tracking_recovers_wrapped_bit_one_plateau(self, rng):
        # -140 kHz shifts dp by +0.70 rad: the bit-1 plateau (+4pi/5)
        # crosses the +pi wrap and reads negative, so untracked decoding
        # misreads most 1-bits, while the preamble (bit 0s, now at
        # -1.81 rad) still captures.  De-rotation restores the link.
        # (The old operating point — 60 kHz at ~6 dB SNR — compared two
        # noise-dominated error counts and was a coin flip at any trial
        # count; this point separates the two decoders deterministically.)
        errors = {}
        for track in (False, True):
            link = SymBeeLink(
                tx_power_dbm=-85.0, residual_cfo_hz=-140e3,
                track_residual_cfo=track,
            )
            total = 0
            for _ in range(10):
                result = link.send_bits(rng.integers(0, 2, 48), rng)
                total += result.n_bits - result.delivered_bits
            errors[track] = total
        assert errors[False] > 50      # untracked: ~every 1-bit flips
        assert errors[True] < 5        # tracked: clean link
        assert errors[True] < 0.75 * errors[False] + 5

    def test_tracking_harmless_without_offset(self, rng):
        link = SymBeeLink(track_residual_cfo=True)
        result = link.send_bits([1, 0, 1, 1, 0], rng)
        assert result.bit_errors == 0

    def test_header_ghosts_rejected_under_cfo(self, rng):
        # The rotation-invariant concentration gate must keep capture
        # anchored on the real preamble even when the offset pushes the
        # PHY-preamble fold over the count floor.
        link = SymBeeLink(tx_power_dbm=-85.0, residual_cfo_hz=60e3)
        for _ in range(5):
            result = link.send_bits(rng.integers(0, 2, 40), rng)
            assert result.preamble_captured
            assert (
                abs(result.captured_data_start - result.true_data_start) <= 20
            )
