"""Cross-technology broadcast (paper Section VI-A).

The same SymBee packet is an ordinary ZigBee packet, so a standard
ZigBee receiver decodes it at the application layer while the WiFi side
reads the phase patterns — one transmission, two technologies.
"""

import numpy as np
import pytest

from repro.core.encoder import SymBeeEncoder
from repro.core.link import SymBeeLink
from repro.zigbee.receiver import ZigBeeReceiver


class TestCrossTechnologyBroadcast:
    @pytest.fixture(scope="class")
    def broadcast(self):
        link = SymBeeLink(include_noise=False)
        bits = [1, 0, 0, 1, 1, 1, 0, 1]
        rng = np.random.default_rng(5)
        payload = link.encoder.encode_message(bits)
        frame = link.transmitter.build_frame(payload)
        waveform = link.transmitter.transmit_frame(frame)
        return link, bits, frame, waveform

    def test_wifi_side_decodes(self, broadcast, rng):
        link, bits, _, _ = broadcast
        result = link.send_bits(bits, rng)
        assert result.bit_errors == 0

    def test_zigbee_side_decodes_same_packet(self, broadcast):
        link, bits, frame, waveform = broadcast
        receiver = ZigBeeReceiver(sample_rate=link.transmitter.sample_rate)
        capture = np.concatenate(
            [np.zeros(400, complex), waveform, np.zeros(400, complex)]
        )
        reception = receiver.receive(capture)
        assert reception is not None and reception.fcs_ok
        # Application-layer decode per Section VI-A: find the preamble
        # (four bit-0 bytes) then map bytes to bits.
        encoder = link.encoder
        start = encoder.find_preamble(reception.frame.payload)
        assert start is not None
        assert encoder.decode_payload(reception.frame.payload[start:]) == bits

    def test_zigbee_side_decodes_under_noise(self, broadcast, rng):
        from repro.dsp.noise import awgn
        from repro.dsp.signal_ops import signal_power

        link, bits, frame, waveform = broadcast
        receiver = ZigBeeReceiver(sample_rate=link.transmitter.sample_rate)
        capture = np.concatenate(
            [np.zeros(400, complex), waveform, np.zeros(400, complex)]
        )
        noisy = awgn(capture, 6.0, rng, reference_power=signal_power(waveform))
        reception = receiver.receive(noisy)
        assert reception is not None and reception.fcs_ok
        encoder = link.encoder
        start = encoder.find_preamble(reception.frame.payload)
        assert encoder.decode_payload(reception.frame.payload[start:]) == bits

    def test_broadcast_address_default(self, broadcast):
        _, _, frame, _ = broadcast
        from repro.zigbee.mac import BROADCAST_ADDRESS

        assert frame.destination == BROADCAST_ADDRESS

    def test_paper_byte_values_with_high_first_order(self):
        # With the paper's nibble convention the payload literally reads
        # 0xEF / 0x67 as printed in Section VI-A.
        encoder = SymBeeEncoder(nibble_order="high-first")
        payload = encoder.encode_message([1, 0])
        assert payload == bytes([0xEF] * 4 + [0x67, 0xEF])
