"""Integration tests for the end-to-end SymBee link."""

import numpy as np
import pytest

from repro.channel.scenarios import get_scenario
from repro.core.link import LinkResult, SymBeeLink, stable_window_offset


class TestStableWindowOffset:
    def test_offset_at_20msps(self):
        # Measured property of the (E,F) waveform; regression-pinned.
        assert stable_window_offset(20e6) == 270

    def test_offset_scales_at_40msps(self):
        assert stable_window_offset(40e6) == 2 * stable_window_offset(20e6)


class TestIdealChannel:
    def test_perfect_delivery(self, ideal_link, rng):
        bits = list(rng.integers(0, 2, 80))
        result = ideal_link.send_bits(bits, rng)
        assert result.preamble_captured
        assert result.bit_errors == 0
        assert list(result.decoded_bits) == bits

    def test_capture_matches_truth(self, ideal_link, rng):
        result = ideal_link.send_bits([1, 0, 1], rng)
        assert abs(result.captured_data_start - result.true_data_start) <= 16

    def test_empty_message(self, ideal_link, rng):
        result = ideal_link.send_bits([], rng)
        assert result.n_bits == 0
        assert result.ber == 0.0

    def test_all_zero_message(self, ideal_link, rng):
        # All-zero data extends the preamble pattern; earliest-capture
        # semantics must still anchor on the true preamble.
        bits = [0] * 24
        result = ideal_link.send_bits(bits, rng)
        assert result.bit_errors == 0

    def test_all_one_message(self, ideal_link, rng):
        result = ideal_link.send_bits([1] * 24, rng)
        assert result.bit_errors == 0

    def test_counts_cover_all_bits(self, ideal_link, rng):
        bits = [1, 0] * 8
        result = ideal_link.send_bits(bits, rng)
        assert len(result.counts) == len(bits)

    def test_ground_truth_decoding_mode(self, ideal_link, rng):
        result = ideal_link.send_bits([1, 0, 1, 1], rng, decode_synchronized=False)
        assert result.preamble_captured
        assert result.bit_errors == 0

    def test_phases_kept_on_request(self, ideal_link, rng):
        result = ideal_link.send_bits([1], rng, keep_phases=True)
        assert result.phases is not None
        result2 = ideal_link.send_bits([1], rng)
        assert result2.phases is None

    def test_max_frame_fills_zigbee_payload(self, rng):
        link = SymBeeLink()
        bits = list(rng.integers(0, 2, 112))  # + 4 preamble = 116 bytes
        result = link.send_bits(bits, rng)
        assert result.bit_errors == 0

    def test_oversized_message_rejected(self, ideal_link, rng):
        with pytest.raises(ValueError):
            ideal_link.send_bits([0] * 120, rng)


class TestLinkResultProperties:
    def test_ber_of_lost_frame_is_one(self):
        result = LinkResult(
            sent_bits=(1, 0), decoded_bits=(), preamble_captured=False,
            bit_errors=2, counts=(), rx_power_dbm=-80.0, snr_db=5.0,
            captured_data_start=None, true_data_start=0,
        )
        assert result.ber == 1.0
        assert result.delivered_bits == 0

    def test_partial_errors(self):
        result = LinkResult(
            sent_bits=(1, 0, 1, 1), decoded_bits=(1, 1, 1, 1),
            preamble_captured=True, bit_errors=1, counts=(80, 60, 80, 80),
            rx_power_dbm=-60.0, snr_db=30.0, captured_data_start=100,
            true_data_start=100,
        )
        assert result.ber == 0.25
        assert result.delivered_bits == 3


class TestChannelIntegration:
    def test_power_accounting(self, rng):
        scenario = get_scenario("outdoor")
        link = SymBeeLink(link_channel=scenario.link(10.0))
        result = link.send_bits([1, 0], rng)
        expected = link.link_channel.mean_received_power_dbm(0.0)
        assert result.rx_power_dbm == pytest.approx(expected, abs=10.0)

    def test_snr_reported(self, rng):
        link = SymBeeLink(tx_power_dbm=-90.0)
        result = link.send_bits([1], rng)
        # Noise floor is about -95 dBm at 20 MHz / NF 6.
        assert result.snr_db == pytest.approx(5.0, abs=1.0)

    def test_interference_injected(self, rng):
        scenario = get_scenario("mall")
        link = SymBeeLink(
            link_channel=scenario.link(20.0),
            interference=scenario.interference(),
        )
        result = link.send_bits([1, 0] * 20, rng)
        assert isinstance(result.preamble_captured, bool)

    def test_different_channel_pairs_work(self, rng):
        # Any overlapping ZigBee/WiFi pair must decode identically
        # thanks to the constant CFO compensation (Appendix B).
        for z_ch, w_ch in ((11, 1), (12, 1), (14, 2), (18, 6)):
            link = SymBeeLink(zigbee_channel=z_ch, wifi_channel=w_ch)
            result = link.send_bits([1, 0, 1, 0], rng)
            assert result.bit_errors == 0, (z_ch, w_ch)


class TestSendFrame:
    def test_frame_roundtrip(self, rng):
        link = SymBeeLink()
        result, frame = link.send_frame([1, 0, 1, 1, 0], sequence=7, rng=rng)
        assert result.bit_errors == 0
        assert frame is not None
        assert frame.crc_ok
        assert list(frame.data_bits) == [1, 0, 1, 1, 0]
        assert frame.sequence == 7

    def test_frame_requires_rng(self):
        with pytest.raises(ValueError):
            SymBeeLink().send_frame([1], rng=None)
