"""Unit tests for link-quality estimation and adaptive coding."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveCoding, LinkQualityEstimator
from repro.experiments.common import link_at_snr


class TestLinkQualityEstimator:
    def test_prior_is_half(self):
        assert LinkQualityEstimator().phase_error_probability == 0.5

    def test_clean_frame_gives_zero(self):
        estimator = LinkQualityEstimator()
        estimator.observe([1, 0, 1], [84, 0, 84])
        assert estimator.phase_error_probability == 0.0
        assert estimator.estimated_ber == 0.0

    def test_symmetric_error_accounting(self):
        estimator = LinkQualityEstimator()
        # bit 1 with 74 votes: 10 errors; bit 0 with 10 votes: 10 errors.
        estimator.observe([1, 0], [74, 10])
        assert estimator.phase_error_probability == pytest.approx(20 / 168)

    def test_reset(self):
        estimator = LinkQualityEstimator()
        estimator.observe([1], [50])
        estimator.reset()
        assert estimator.samples == 0

    def test_confidence_interval_shrinks(self):
        estimator = LinkQualityEstimator()
        estimator.observe([1], [74])
        wide = estimator.confidence_interval()
        for _ in range(50):
            estimator.observe([1] * 10, [74] * 10)
        narrow = estimator.confidence_interval()
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])
        assert narrow[0] <= estimator.phase_error_probability <= narrow[1]

    def test_tracks_real_link_quality(self, rng):
        clean, noisy = LinkQualityEstimator(), LinkQualityEstimator()
        for estimator, snr in ((clean, 15.0), (noisy, -4.0)):
            link = link_at_snr(snr)
            for _ in range(3):
                result = link.send_bits(
                    rng.integers(0, 2, 32), rng, decode_synchronized=False
                )
                estimator.observe(result.decoded_bits, result.counts)
        assert clean.estimated_ber < 0.01
        assert noisy.phase_error_probability > clean.phase_error_probability


class TestAdaptiveCoding:
    def test_defaults_to_coding_without_evidence(self):
        decision = AdaptiveCoding().decide(LinkQualityEstimator())
        assert decision.use_coding

    def test_clean_link_disables_coding(self):
        estimator = LinkQualityEstimator()
        estimator.observe([1] * 20, [84] * 20)
        decision = AdaptiveCoding(min_samples=84).decide(estimator)
        assert not decision.use_coding
        assert decision.goodput_uncoded > decision.goodput_coded

    def test_bad_link_enables_coding(self):
        estimator = LinkQualityEstimator()
        # Votes hovering near the boundary: high Pr_eps.
        estimator.observe([1] * 20, [46] * 20)
        decision = AdaptiveCoding(min_samples=84).decide(estimator)
        assert decision.use_coding
        assert decision.estimated_ber > 0.1

    def test_goodput_model_consistency(self):
        policy = AdaptiveCoding()
        # At BER 0 the uncoded frame always survives; coded pays the rate.
        assert policy._uncoded_goodput(0.0) == pytest.approx(1.0)
        assert policy._coded_goodput(0.0) == pytest.approx(4 / 7)
        # At moderate BER the frame-level picture flips: a 2% BER kills
        # most 48-bit uncoded frames while coded blocks mostly survive.
        assert policy._coded_goodput(0.02) > policy._uncoded_goodput(0.02)
        # At terrible BER everything collapses.
        assert policy._coded_goodput(0.5) < 0.01

    def test_crossover_is_where_frames_start_dying(self):
        policy = AdaptiveCoding(frame_bits=48)
        coding_better = [
            policy._coded_goodput(b) > policy._uncoded_goodput(b)
            for b in (0.001, 0.005, 0.02, 0.1)
        ]
        # Monotone switch from 'uncoded wins' to 'coded wins'.
        assert coding_better == sorted(coding_better)
        assert not coding_better[0] and coding_better[-1]


class TestAdaptiveFec:
    def _estimator_with_counts(self, count, n=20):
        from repro.core.adaptive import LinkQualityEstimator

        estimator = LinkQualityEstimator()
        estimator.observe([1] * n, [count] * n)
        return estimator

    def test_robust_default_is_conv(self):
        from repro.core.adaptive import AdaptiveFec, LinkQualityEstimator

        decision = AdaptiveFec().decide(LinkQualityEstimator())
        assert decision.scheme == "conv"
        assert decision.use_coding

    def test_clean_link_uncoded(self):
        from repro.core.adaptive import AdaptiveFec

        policy = AdaptiveFec(min_samples=84)
        decision = policy.decide(self._estimator_with_counts(84))
        assert decision.scheme == "uncoded"
        assert not decision.use_coding

    def test_moderate_ber_selects_conv(self):
        from repro.core.adaptive import AdaptiveFec

        policy = AdaptiveFec(frame_bits=48, min_samples=84)
        # Counts near 50/84: Pr_eps ~0.4, vote BER a few percent — the
        # convolutional code's sweet spot.
        decision = policy.decide(self._estimator_with_counts(50))
        assert 0.01 < decision.estimated_ber < 0.12
        assert decision.scheme == "conv"

    def test_heavy_ber_prefers_some_coding(self):
        from repro.core.adaptive import AdaptiveFec

        policy = AdaptiveFec(frame_bits=48, min_samples=84)
        decision = policy.decide(self._estimator_with_counts(45))
        assert decision.scheme in ("hamming", "conv")

    def test_goodput_models_ordering_sane(self):
        from repro.core.adaptive import AdaptiveFec

        policy = AdaptiveFec(frame_bits=48)
        # At zero BER: uncoded 1.0 > hamming 4/7 > conv 1/2.
        assert policy._uncoded_goodput(0.0) == pytest.approx(1.0)
        assert policy._coded_goodput(0.0) == pytest.approx(4 / 7)
        assert policy._conv_goodput(0.0) == pytest.approx(0.5)
        # In the conv sweet spot it dominates.
        assert policy._conv_goodput(0.05) > policy._coded_goodput(0.05)
        assert policy._conv_goodput(0.05) > policy._uncoded_goodput(0.05)


def _observe_reference(window, decoded_bits, counts):
    """Per-bit loop the vectorized ``observe`` must agree with."""
    errors = values = 0
    for bit, count in zip(decoded_bits, counts):
        errors += window - count if bit == 1 else count
        values += window
    return errors, values


class TestVectorizedObserve:
    def test_matches_per_bit_reference(self, rng):
        window = 84
        for _ in range(20):
            n = int(rng.integers(1, 200))
            bits = rng.integers(0, 2, n)
            counts = rng.integers(0, window + 1, n)
            reference = LinkQualityEstimator(window=window)
            re, rv = _observe_reference(window, bits, counts)
            reference.observe(bits, counts)
            assert reference._errors == re
            assert reference._values == rv

    def test_accepts_mismatched_lengths(self):
        # A truncated decode can yield fewer counts than bits (or vice
        # versa); only the overlapping prefix is pooled.
        estimator = LinkQualityEstimator(window=84)
        estimator.observe([1, 0, 1], [84, 0])
        assert estimator.samples == 2 * 84
        estimator.observe([], [])
        assert estimator.samples == 2 * 84

    def test_accepts_tuples_lists_and_arrays(self):
        for bits, counts in (
            ((1, 0), (84, 0)),
            ([1, 0], [84, 0]),
            (np.array([1, 0]), np.array([84, 0])),
        ):
            estimator = LinkQualityEstimator()
            estimator.observe(bits, counts)
            assert estimator.phase_error_probability == 0.0


class TestWindowedLinkQuality:
    def test_is_pooled_estimator_until_window_fills(self):
        from repro.core.adaptive import WindowedLinkQuality

        windowed = WindowedLinkQuality(max_frames=8)
        pooled = LinkQualityEstimator()
        for _ in range(5):
            windowed.observe([1, 0], [74, 10])
            pooled.observe([1, 0], [74, 10])
        assert windowed.frames == 5
        assert (
            windowed.phase_error_probability
            == pooled.phase_error_probability
        )

    def test_old_frames_are_evicted(self):
        from repro.core.adaptive import WindowedLinkQuality

        estimator = WindowedLinkQuality(max_frames=3)
        # Three noisy frames, then three clean ones: the noisy evidence
        # must age out entirely.
        for _ in range(3):
            estimator.observe([1], [44])
        assert estimator.phase_error_probability > 0.4
        for _ in range(3):
            estimator.observe([1], [84])
        assert estimator.frames == 3
        assert estimator.phase_error_probability == 0.0

    def test_tracks_degradation_faster_than_pooled(self):
        from repro.core.adaptive import WindowedLinkQuality

        windowed = WindowedLinkQuality(max_frames=4)
        pooled = LinkQualityEstimator()
        for estimator in (windowed, pooled):
            for _ in range(40):
                estimator.observe([1] * 8, [84] * 8)   # long clean spell
            for _ in range(4):
                estimator.observe([1] * 8, [50] * 8)   # sudden fade
        assert windowed.phase_error_probability > 0.3
        assert pooled.phase_error_probability < 0.1

    def test_reset_clears_window(self):
        from repro.core.adaptive import WindowedLinkQuality

        estimator = WindowedLinkQuality(max_frames=4)
        estimator.observe([1], [44])
        estimator.reset()
        assert estimator.frames == 0
        assert estimator.samples == 0
        assert estimator.phase_error_probability == 0.5

    def test_max_frames_validation(self):
        from repro.core.adaptive import WindowedLinkQuality

        with pytest.raises(ValueError, match="positive"):
            WindowedLinkQuality(max_frames=0)
