"""Unit and property tests for SymBee payload encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoder import PREAMBLE_BITS, SymBeeEncoder


class TestByteMapping:
    def test_low_first_bytes(self):
        enc = SymBeeEncoder()
        assert enc.byte_for_bit(1) == 0x76   # symbols (6,7) on air
        assert enc.byte_for_bit(0) == 0xFE   # symbols (E,F) on air

    def test_high_first_bytes_match_paper(self):
        enc = SymBeeEncoder(nibble_order="high-first")
        assert enc.byte_for_bit(1) == 0x67
        assert enc.byte_for_bit(0) == 0xEF

    def test_on_air_symbols_identical_for_both_orders(self):
        for order in ("low-first", "high-first"):
            enc = SymBeeEncoder(nibble_order=order)
            assert enc.symbols_for_bit(1) == (0x6, 0x7)
            assert enc.symbols_for_bit(0) == (0xE, 0xF)

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            SymBeeEncoder().byte_for_bit(2)

    def test_invalid_nibble_order(self):
        with pytest.raises(ValueError):
            SymBeeEncoder(nibble_order="sideways")


class TestEncoding:
    def test_one_byte_per_bit(self):
        payload = SymBeeEncoder().encode_bits([0, 1, 1, 0])
        assert len(payload) == 4

    def test_preamble_prepended(self):
        enc = SymBeeEncoder()
        payload = enc.encode_message([1])
        assert payload[: len(PREAMBLE_BITS)] == bytes(
            [enc.byte_for_bit(0)] * len(PREAMBLE_BITS)
        )
        assert payload[-1] == enc.byte_for_bit(1)

    def test_preamble_is_four_zeros(self):
        assert PREAMBLE_BITS == (0, 0, 0, 0)

    def test_no_preamble_option(self):
        payload = SymBeeEncoder().encode_message([1, 0], include_preamble=False)
        assert len(payload) == 2

    @given(st.lists(st.integers(0, 1), max_size=100))
    def test_roundtrip_via_payload_decode(self, bits):
        enc = SymBeeEncoder()
        assert enc.decode_payload(enc.encode_bits(bits)) == bits


class TestZigBeeSideDecode:
    def test_non_codeword_byte_gives_none(self):
        assert SymBeeEncoder().decode_payload(b"\x76\x00") is None

    def test_find_preamble(self):
        enc = SymBeeEncoder()
        payload = enc.encode_message([1, 0, 1])
        start = enc.find_preamble(payload)
        assert start == len(PREAMBLE_BITS)
        assert enc.decode_payload(payload[start:]) == [1, 0, 1]

    def test_find_preamble_with_junk_prefix(self):
        enc = SymBeeEncoder()
        payload = b"\x01\x02" + enc.encode_message([1, 1])
        start = enc.find_preamble(payload)
        assert enc.decode_payload(payload[start:]) == [1, 1]

    def test_find_preamble_absent(self):
        assert SymBeeEncoder().find_preamble(b"\x76\x76\x76") is None

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
    def test_message_recovered_after_preamble(self, bits):
        enc = SymBeeEncoder()
        payload = enc.encode_message(bits)
        start = enc.find_preamble(payload)
        assert start is not None
        assert enc.decode_payload(payload[start:]) == bits
