"""Unit tests for the analytical models (paper Sections II-B, VII)."""

import numpy as np
import pytest

from repro.core.analytics import (
    analytic_ber_curve,
    ber_from_phase_error,
    bit_airtime_seconds,
    packet_level_bandwidth_hz,
    phase_error_probability,
    phase_error_probability_gaussian,
    raw_bit_rate_bps,
    shannon_gain_factor,
    speedup_versus,
    symbol_level_bandwidth_hz,
)


class TestRates:
    def test_raw_rate_is_31250(self):
        assert raw_bit_rate_bps() == pytest.approx(31_250.0)

    def test_bit_airtime(self):
        assert bit_airtime_seconds() == pytest.approx(32e-6)

    def test_packet_level_bandwidth(self):
        # Paper Section II-B: 1/576us = 1.736 kHz.
        assert packet_level_bandwidth_hz() == pytest.approx(1736.1, rel=1e-3)

    def test_symbol_level_bandwidth(self):
        assert symbol_level_bandwidth_hz() == pytest.approx(62_500.0)

    def test_shannon_gain_36x(self):
        assert shannon_gain_factor() == pytest.approx(36.0)

    def test_speedup_vs_cmorse(self):
        assert speedup_versus(215.0) == pytest.approx(145.35, rel=1e-3)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            speedup_versus(0.0)


class TestPhaseErrorProbability:
    def test_monotone_in_snr(self, rng):
        values = [
            phase_error_probability(snr, rng, n_samples=40_000)
            for snr in (-10, -5, 0, 5, 10)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_small_at_high_snr(self, rng):
        assert phase_error_probability(15.0, rng, n_samples=40_000) < 0.01

    def test_near_half_at_terrible_snr(self, rng):
        p = phase_error_probability(-25.0, rng, n_samples=40_000)
        assert 0.4 < p < 0.55

    def test_gaussian_approximation_tracks_mc(self, rng):
        for snr in (3.0, 6.0, 10.0):
            mc = phase_error_probability(snr, rng, n_samples=300_000)
            approx = phase_error_probability_gaussian(snr)
            assert approx == pytest.approx(mc, abs=0.05)


class TestBerFormula:
    def test_zero_error_probability(self):
        assert ber_from_phase_error(0.0) == 0.0

    def test_certain_error(self):
        assert ber_from_phase_error(1.0) == pytest.approx(1.0)

    def test_half_is_half(self):
        # With p = 0.5, the majority vote is a coin flip (threshold 42/84
        # slightly overshoots half, so a bit above 0.5 by symmetry).
        assert ber_from_phase_error(0.5) == pytest.approx(0.5, abs=0.05)

    def test_majority_vote_suppresses_moderate_errors(self):
        assert ber_from_phase_error(0.2) < 1e-5

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ber_from_phase_error(1.5)

    def test_binomial_tail_matches_direct_sum(self):
        from math import comb

        p = 0.35
        direct = sum(
            comb(84, l) * p**l * (1 - p) ** (84 - l) for l in range(42, 85)
        )
        assert ber_from_phase_error(p) == pytest.approx(direct, rel=1e-9)

    def test_curve_shape(self, rng):
        curve = analytic_ber_curve((-8, -4, 0), rng, n_samples=30_000)
        assert curve[0] > curve[1] > curve[2]


class TestEffectiveThroughput:
    def test_overheads_reduce_raw_rate(self):
        from repro.core.analytics import effective_throughput_bps

        assert effective_throughput_bps(72) < raw_bit_rate_bps()

    def test_bigger_frames_amortize_overhead(self):
        from repro.core.analytics import effective_throughput_bps

        assert effective_throughput_bps(72) > effective_throughput_bps(16)

    def test_mac_overhead_costs_airtime(self):
        from repro.core.analytics import effective_throughput_bps

        assert effective_throughput_bps(48, include_mac=False) > (
            effective_throughput_bps(48, include_mac=True)
        )

    def test_invalid_data_bits(self):
        from repro.core.analytics import effective_throughput_bps

        with pytest.raises(ValueError):
            effective_throughput_bps(0)
