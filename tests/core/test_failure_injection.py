"""Failure injection: what breaks SymBee decoding, and what doesn't.

Each test corrupts a real capture in a specific way and checks the
decoder's response — robustness where the physics says it should be
robust, graceful degradation where it can't be.
"""

import numpy as np
import pytest

from repro.core.link import SymBeeLink
from repro.core.preamble import capture_preamble
from repro.dsp.signal_ops import signal_power
from repro.wifi.impairments import (
    apply_dc_offset,
    apply_iq_imbalance,
    clip_magnitude,
    image_rejection_ratio_db,
    quantize,
)


@pytest.fixture(scope="module")
def reference():
    """One good capture at a healthy SNR, regenerated from scratch."""
    link = SymBeeLink(tx_power_dbm=-80.0)
    rng = np.random.default_rng(99)
    bits = list(rng.integers(0, 2, 48))

    payload = link.encoder.encode_message(bits)
    frame = link.transmitter.build_frame(payload)
    waveform = link.transmitter.transmit_frame(frame)
    total = link.lead_in_samples + waveform.size + link.tail_samples
    capture = link.front_end.capture(
        [(waveform, link.lead_in_samples, link.transmitter.center_frequency)],
        total,
        rng=rng,
    )
    return link, bits, capture


def decode(link, capture, n_bits):
    phases = link.decoder.phases(capture)
    pre = capture_preamble(phases, link.decoder)
    if pre is None:
        return None
    return link.decoder.decode_synchronized(phases, pre.data_start, n_bits)


class TestBaseline:
    def test_reference_decodes_clean(self, reference):
        link, bits, capture = reference
        result = decode(link, capture, len(bits))
        assert result is not None
        assert list(result.bits) == bits


class TestAnalogImpairments:
    def test_mild_dc_offset_tolerated(self, reference):
        link, bits, capture = reference
        rms = np.sqrt(signal_power(capture))
        corrupted = apply_dc_offset(capture, 0.1 * rms)
        result = decode(link, corrupted, len(bits))
        assert result is not None and list(result.bits) == bits

    def test_strong_dc_offset_degrades(self, reference):
        # DC comparable to the signal drags every product's angle toward
        # the DC term's self-correlation (zero phase) — decoding breaks.
        link, bits, capture = reference
        rms = np.sqrt(signal_power(capture))
        corrupted = apply_dc_offset(capture, 30.0 * rms)
        result = decode(link, corrupted, len(bits))
        assert result is None or list(result.bits) != bits

    def test_typical_iq_imbalance_tolerated(self, reference):
        link, bits, capture = reference
        corrupted = apply_iq_imbalance(capture, amplitude_db=0.5, phase_deg=2.0)
        result = decode(link, corrupted, len(bits))
        assert result is not None and list(result.bits) == bits

    def test_irr_diagnostic(self):
        assert image_rejection_ratio_db(0.5, 2.0) == pytest.approx(29.8, abs=2.0)
        assert image_rejection_ratio_db(0.0, 0.0) == float("inf")

    def test_hard_clipping_tolerated(self, reference):
        # A limiter preserves phase; SymBee reads only phase.
        link, bits, capture = reference
        rms = np.sqrt(signal_power(capture))
        corrupted = clip_magnitude(capture, 0.5 * rms)
        result = decode(link, corrupted, len(bits))
        assert result is not None and list(result.bits) == bits

    def test_clip_validation(self):
        with pytest.raises(ValueError):
            clip_magnitude(np.ones(4, complex), 0.0)


class TestQuantization:
    @pytest.mark.parametrize("bits_per_sample", [8, 6, 4])
    def test_low_resolution_adc_suffices(self, reference, bits_per_sample):
        link, bits, capture = reference
        full_scale = 4.0 * np.sqrt(signal_power(capture))
        corrupted = quantize(capture, bits_per_sample, full_scale)
        result = decode(link, corrupted, len(bits))
        assert result is not None and list(result.bits) == bits, bits_per_sample

    def test_one_bit_adc_fails_gracefully(self, reference):
        link, bits, capture = reference
        full_scale = 4.0 * np.sqrt(signal_power(capture))
        corrupted = quantize(capture, 1, full_scale)
        result = decode(link, corrupted, len(bits))
        # Either capture fails or errors appear; no crash.
        if result is not None:
            assert len(result.bits) <= len(bits)

    def test_quantize_validation(self):
        with pytest.raises(ValueError):
            quantize(np.ones(4, complex), 0, 1.0)
        with pytest.raises(ValueError):
            quantize(np.ones(4, complex), 8, -1.0)


class TestStructuralDamage:
    def test_truncated_capture_drops_tail_bits(self, reference):
        link, bits, capture = reference
        phases = link.decoder.phases(capture)
        pre = capture_preamble(phases, link.decoder)
        cut = pre.data_start + 10 * link.decoder.bit_period
        result = decode(link, capture[: cut + link.decoder.lag], len(bits))
        assert result is not None
        assert len(result.bits) < len(bits)
        assert list(result.bits) == bits[: len(result.bits)]

    def test_zeroed_gap_errs_only_covered_bits(self, reference):
        link, bits, capture = reference
        damaged = capture.copy()
        positions = link.true_bit_positions(len(bits))
        lo = positions[10] - 50
        hi = positions[13] + 150
        damaged[lo:hi] = 0
        result = decode(link, damaged, len(bits))
        assert result is not None
        errors = [i for i, (a, b) in enumerate(zip(bits, result.bits)) if a != b]
        assert all(9 <= i <= 14 for i in errors)

    def test_capture_missing_preamble_region(self, reference):
        link, bits, capture = reference
        # Chop off everything before the data: no preamble -> no capture.
        positions = link.true_bit_positions(1)
        result = decode(link, capture[positions[0]:], len(bits))
        assert result is None or list(result.bits) != bits

    def test_sample_drop_desynchronizes_tail(self, reference):
        # Losing samples mid-message shifts later bit windows; the bits
        # before the glitch must still decode.
        link, bits, capture = reference
        positions = link.true_bit_positions(len(bits))
        glitch = positions[20]
        damaged = np.concatenate([capture[:glitch], capture[glitch + 100 :]])
        result = decode(link, damaged, len(bits))
        assert result is not None
        head = list(result.bits[:18])
        assert head == bits[:18]
