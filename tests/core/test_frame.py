"""Unit and property tests for the SymBee frame codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core.frame import (
    FRAME_TYPE_ACK,
    FRAME_TYPE_CONTROL,
    FRAME_TYPE_DATA,
    MAX_DATA_BITS,
    SymBeeFrame,
    build_frame_bits,
    frame_overhead_bits,
    parse_frame_bits,
)


class TestBuild:
    def test_overhead(self):
        assert frame_overhead_bits() == 40
        bits = build_frame_bits([1, 0, 1], sequence=5)
        assert len(bits) == 3 + 40

    def test_max_data_fits_zigbee_payload(self):
        bits = build_frame_bits([0] * MAX_DATA_BITS, sequence=0)
        assert len(bits) + 4 <= 116  # + preamble, within MAC payload

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            build_frame_bits([0, 2], sequence=0)

    def test_sequence_range(self):
        with pytest.raises(ValueError):
            build_frame_bits([0], sequence=300)

    def test_frame_type_range(self):
        with pytest.raises(ValueError):
            build_frame_bits([0], sequence=0, frame_type=16)

    def test_length_field_limit(self):
        with pytest.raises(ValueError):
            build_frame_bits([0] * 256, sequence=0)


class TestParse:
    @given(
        st.lists(st.integers(0, 1), max_size=MAX_DATA_BITS),
        st.integers(0, 255),
        st.sampled_from([FRAME_TYPE_DATA, FRAME_TYPE_CONTROL, FRAME_TYPE_ACK]),
    )
    def test_roundtrip(self, data, seq, frame_type):
        bits = build_frame_bits(data, sequence=seq, frame_type=frame_type)
        frame = parse_frame_bits(bits)
        assert frame is not None
        assert frame.crc_ok
        assert list(frame.data_bits) == data
        assert frame.sequence == seq
        assert frame.frame_type == frame_type

    def test_too_short_returns_none(self):
        assert parse_frame_bits([0] * 30) is None

    def test_truncated_data_returns_none(self):
        bits = build_frame_bits([1] * 20, sequence=1)
        assert parse_frame_bits(bits[:-10]) is None

    @given(st.data())
    def test_single_bit_flip_fails_crc(self, data):
        bits = build_frame_bits([1, 0, 1, 1, 0], sequence=9)
        position = data.draw(st.integers(0, len(bits) - 1))
        flipped = list(bits)
        flipped[position] ^= 1
        frame = parse_frame_bits(flipped)
        # A flip in the length field may derail parsing entirely (None);
        # any parsed frame must flag the corruption.
        if frame is not None and frame.data_bits == (1, 0, 1, 1, 0) and (
            frame.sequence == 9
        ):
            assert not frame.crc_ok

    def test_extra_trailing_bits_ignored(self):
        bits = build_frame_bits([1, 1], sequence=3)
        frame = parse_frame_bits(list(bits) + [0, 1, 0])
        assert frame.crc_ok
        assert frame.data_bits == (1, 1)

    def test_dataclass_fields(self):
        frame = SymBeeFrame(data_bits=(1,), sequence=2)
        assert frame.frame_type == FRAME_TYPE_DATA
        assert frame.crc_ok
