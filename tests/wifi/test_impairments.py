"""Unit tests for the front-end impairment models."""

import numpy as np
import pytest

from repro.dsp.signal_ops import signal_power
from repro.wifi.impairments import (
    apply_dc_offset,
    apply_iq_imbalance,
    clip_magnitude,
    image_rejection_ratio_db,
    quantize,
)


class TestDcOffset:
    def test_shifts_mean(self, rng):
        x = rng.standard_normal(10_000) + 1j * rng.standard_normal(10_000)
        out = apply_dc_offset(x, 0.5 + 0.25j)
        assert np.mean(out) == pytest.approx(np.mean(x) + 0.5 + 0.25j, abs=0.05)

    def test_zero_offset_identity(self):
        x = np.ones(8, complex)
        assert np.array_equal(apply_dc_offset(x, 0.0), x)


class TestIqImbalance:
    def test_no_imbalance_is_identity(self, rng):
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        out = apply_iq_imbalance(x, amplitude_db=0.0, phase_deg=0.0)
        assert np.allclose(out, x)

    def test_creates_image_tone(self):
        fs = 20e6
        n = np.arange(8192)
        tone = np.exp(1j * 2 * np.pi * 2e6 * n / fs)
        out = apply_iq_imbalance(tone, amplitude_db=1.0, phase_deg=5.0)
        spectrum = np.abs(np.fft.fft(out)) ** 2
        freqs = np.fft.fftfreq(n.size, 1 / fs)
        direct = spectrum[np.argmin(np.abs(freqs - 2e6))]
        image = spectrum[np.argmin(np.abs(freqs + 2e6))]
        assert image > 0
        measured_irr = 10 * np.log10(direct / image)
        expected = image_rejection_ratio_db(1.0, 5.0)
        assert measured_irr == pytest.approx(expected, abs=1.0)

    def test_irr_improves_with_smaller_errors(self):
        assert image_rejection_ratio_db(0.1, 0.5) > image_rejection_ratio_db(
            1.0, 5.0
        )


class TestClipping:
    def test_phase_preserved(self, rng):
        x = 10.0 * np.exp(1j * rng.uniform(-np.pi, np.pi, 100))
        out = clip_magnitude(x, 1.0)
        assert np.allclose(np.abs(out), 1.0)
        assert np.allclose(np.angle(out), np.angle(x))

    def test_small_samples_untouched(self):
        x = 0.1 * np.ones(5, complex)
        assert np.array_equal(clip_magnitude(x, 1.0), x)


class TestQuantize:
    def test_reduces_distinct_levels(self, rng):
        x = rng.standard_normal(10_000) + 1j * rng.standard_normal(10_000)
        out = quantize(x, 3, full_scale=4.0)
        assert len(np.unique(out.real)) <= 8

    def test_high_resolution_near_lossless(self, rng):
        x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        out = quantize(x, 14, full_scale=6.0)
        error = signal_power(out - x)
        assert error < 1e-5 * signal_power(x)

    def test_saturation(self):
        x = np.array([100.0 + 0j])
        out = quantize(x, 8, full_scale=1.0)
        assert out.real[0] <= 1.0

    def test_quantization_noise_scales_with_bits(self, rng):
        x = rng.standard_normal(20_000) + 1j * rng.standard_normal(20_000)
        error4 = signal_power(quantize(x, 4, 4.0) - x)
        error8 = signal_power(quantize(x, 8, 4.0) - x)
        # 4 extra bits = ~24 dB less quantization noise.
        assert error4 / error8 == pytest.approx(256.0, rel=0.3)
