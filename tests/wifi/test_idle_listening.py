"""Unit tests for WiFi idle listening (phase stream + packet detection)."""

import numpy as np
import pytest

from repro.constants import WIFI_SAMPLE_RATE_20MHZ, WIFI_SAMPLE_RATE_40MHZ
from repro.wifi.idle_listening import (
    IdleListening,
    autocorrelation_metric,
    phase_differences,
)
from repro.wifi.ofdm import OfdmTransmitter


class TestPhaseDifferences:
    def test_tone_phase_matches_theory(self):
        # exp(-j 2 pi f t) at f = 0.5 MHz: dp over 16 samples = +4pi/5.
        fs, lag = 20e6, 16
        n = np.arange(1000)
        tone = np.exp(-1j * 2 * np.pi * 0.5e6 * n / fs)
        dp = phase_differences(tone, lag)
        assert np.allclose(dp, 0.8 * np.pi)

    def test_positive_frequency_gives_negative_dp(self):
        fs, lag = 20e6, 16
        n = np.arange(1000)
        tone = np.exp(1j * 2 * np.pi * 0.5e6 * n / fs)
        dp = phase_differences(tone, lag)
        assert np.allclose(dp, -0.8 * np.pi)

    def test_length(self):
        dp = phase_differences(np.ones(100, complex), 16)
        assert dp.size == 84

    def test_short_input(self):
        assert phase_differences(np.ones(10, complex), 16).size == 0

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            phase_differences(np.ones(100, complex), 0)

    def test_amplitude_invariance(self):
        n = np.arange(200)
        tone = np.exp(-1j * 0.1 * n)
        assert np.allclose(
            phase_differences(tone, 16), phase_differences(5.0 * tone, 16)
        )


class TestAutocorrelationMetric:
    def test_periodic_signal_metric_near_one(self):
        period = np.exp(1j * np.linspace(0, 2 * np.pi, 16, endpoint=False))
        signal = np.tile(period, 12)
        metric, phase = autocorrelation_metric(signal, 16)
        mid = metric[16:-16]
        assert np.all(mid > 0.99)
        assert np.allclose(phase[16:-16], 0.0, atol=1e-9)

    def test_noise_metric_low(self, rng):
        noise = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        metric, _ = autocorrelation_metric(noise, 16)
        assert np.mean(metric) < 0.3

    def test_short_input(self):
        metric, phase = autocorrelation_metric(np.ones(10, complex), 16)
        assert metric.size == 0 and phase.size == 0

    @pytest.mark.parametrize("window", [None, 8, 32])
    def test_cumsum_windows_match_convolution(self, rng, window):
        # The O(N) cumulative-sum windows replaced np.convolve; both
        # forms of P[n] and R[n] must agree on arbitrary signals.
        x = rng.standard_normal(600) + 1j * rng.standard_normal(600)
        lag = 16
        w = lag if window is None else window
        metric, phase = autocorrelation_metric(x, lag, window=window)
        prod = x[:-lag] * np.conj(x[lag:])
        energy = np.abs(x[lag:]) ** 2
        p_ref = np.convolve(prod, np.ones(w), mode="valid")
        r_ref = np.convolve(energy, np.ones(w), mode="valid")
        metric_ref = np.abs(p_ref) ** 2 / np.maximum(r_ref, 1e-30) ** 2
        assert np.allclose(metric, metric_ref, atol=1e-9)
        assert np.allclose(phase, np.angle(p_ref), atol=1e-9)


class TestIdleListening:
    def test_lag_20msps(self):
        assert IdleListening(WIFI_SAMPLE_RATE_20MHZ).lag == 16

    def test_lag_40msps(self):
        assert IdleListening(WIFI_SAMPLE_RATE_40MHZ).lag == 32

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            IdleListening(sample_rate=19.9e6)

    def test_detects_wifi_packet(self, rng):
        il = IdleListening()
        ofdm = OfdmTransmitter()
        pkt = ofdm.packet(rng.integers(0, 2, 96, dtype=np.int8))
        capture = np.concatenate(
            [np.zeros(500, complex), pkt, np.zeros(500, complex)]
        )
        capture += 1e-4 * (
            rng.standard_normal(capture.size) + 1j * rng.standard_normal(capture.size)
        )
        detections = il.detect_wifi_packets(capture)
        assert len(detections) == 1
        assert abs(detections[0].start_index - 500) < 20

    def test_zigbee_not_detected_as_wifi(self, rng):
        from repro.zigbee.transmitter import ZigBeeTransmitter

        il = IdleListening()
        _, wf = ZigBeeTransmitter().transmit(b"not wifi" * 8)
        capture = np.concatenate([wf, np.zeros(200, complex)])
        assert il.detect_wifi_packets(capture) == []

    def test_noise_not_detected(self, rng):
        il = IdleListening()
        noise = rng.standard_normal(20000) + 1j * rng.standard_normal(20000)
        assert il.detect_wifi_packets(noise) == []

    def test_phase_stream_matches_function(self, rng):
        il = IdleListening()
        x = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        assert np.allclose(il.phase_stream(x), phase_differences(x, 16))

    def test_two_packets_detected(self, rng):
        il = IdleListening()
        ofdm = OfdmTransmitter()
        pkt = ofdm.packet(rng.integers(0, 2, 96, dtype=np.int8))
        gap = np.zeros(2000, complex)
        capture = np.concatenate([gap, pkt, gap, pkt, gap])
        capture += 1e-4 * (
            rng.standard_normal(capture.size) + 1j * rng.standard_normal(capture.size)
        )
        detections = il.detect_wifi_packets(capture)
        assert len(detections) == 2
