"""Unit tests for the WiFi channel map."""

import pytest

from repro.wifi.channels import WIFI_CHANNELS, wifi_channel_frequency


class TestWifiChannels:
    def test_channel_1(self):
        assert wifi_channel_frequency(1) == 2.412e9

    def test_channel_13(self):
        assert wifi_channel_frequency(13) == 2.472e9

    def test_five_mhz_spacing(self):
        freqs = [WIFI_CHANNELS[k] for k in sorted(WIFI_CHANNELS)]
        assert all(b - a == 5e6 for a, b in zip(freqs, freqs[1:]))

    @pytest.mark.parametrize("bad", [0, 14, -3])
    def test_invalid_channel(self, bad):
        with pytest.raises(ValueError):
            wifi_channel_frequency(bad)
