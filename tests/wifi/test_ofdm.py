"""Unit tests for the 802.11g OFDM transmitter."""

import numpy as np
import pytest

from repro.dsp.signal_ops import signal_power
from repro.wifi.ofdm import (
    CYCLIC_PREFIX,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    OfdmTransmitter,
    l_ltf,
    l_stf,
)


class TestTrainingFields:
    def test_stf_length(self):
        assert l_stf().size == 160

    def test_stf_periodicity_16(self):
        stf = l_stf()
        assert np.allclose(stf[:144], stf[16:160])

    def test_ltf_length(self):
        assert l_ltf().size == 160

    def test_ltf_cyclic_prefix(self):
        ltf = l_ltf()
        # CP (first 32 samples) is the tail of the 64-sample LTF symbol,
        # i.e. it reappears at samples 64:96 of the field.
        assert np.allclose(ltf[:32], ltf[64:96])

    def test_ltf_repetition(self):
        ltf = l_ltf()
        assert np.allclose(ltf[32:96], ltf[96:160])


class TestDataSymbols:
    def test_subcarrier_plan(self):
        assert len(DATA_SUBCARRIERS) == 48
        assert 0 not in DATA_SUBCARRIERS
        for pilot in (-21, -7, 7, 21):
            assert pilot not in DATA_SUBCARRIERS

    def test_symbol_length(self):
        tx = OfdmTransmitter()
        symbol = tx.data_symbol(np.zeros(96, dtype=np.int8))
        assert symbol.size == FFT_SIZE + CYCLIC_PREFIX

    def test_cyclic_prefix_correct(self):
        tx = OfdmTransmitter()
        symbol = tx.data_symbol(np.ones(96, dtype=np.int8))
        assert np.allclose(symbol[:CYCLIC_PREFIX], symbol[FFT_SIZE:])

    def test_wrong_bit_count_rejected(self):
        tx = OfdmTransmitter()
        with pytest.raises(ValueError):
            tx.data_symbol(np.zeros(95, dtype=np.int8))


class TestPacket:
    def test_packet_structure(self, rng):
        tx = OfdmTransmitter()
        pkt = tx.packet(rng.integers(0, 2, 192, dtype=np.int8))
        # STF + LTF + SIGNAL + 2 data symbols.
        assert pkt.size == 160 + 160 + 3 * (FFT_SIZE + CYCLIC_PREFIX)

    def test_payload_padded_to_symbol(self, rng):
        tx = OfdmTransmitter()
        pkt = tx.packet(np.zeros(10, dtype=np.int8), rng=rng)
        assert pkt.size == 320 + 2 * (FFT_SIZE + CYCLIC_PREFIX)

    def test_power_calibration(self, rng):
        tx = OfdmTransmitter(tx_power_watts=2e-3)
        pkt = tx.packet(rng.integers(0, 2, 960, dtype=np.int8))
        assert signal_power(pkt) == pytest.approx(2e-3)

    def test_spectrum_occupies_20mhz_channel(self, rng):
        tx = OfdmTransmitter()
        pkt = tx.packet(rng.integers(0, 2, 96 * 20, dtype=np.int8))
        spectrum = np.abs(np.fft.fft(pkt)) ** 2
        freqs = np.fft.fftfreq(pkt.size, 1 / 20e6)
        in_band = spectrum[np.abs(freqs) < 8.5e6].sum()
        out_band = spectrum[np.abs(freqs) > 9e6].sum()
        assert in_band > 50 * out_band

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            OfdmTransmitter(sample_rate=40e6)


class TestBurst:
    def test_burst_duration(self, rng):
        tx = OfdmTransmitter()
        burst = tx.burst(270e-6, rng)
        assert burst.size == pytest.approx(270e-6 * 20e6, abs=1)

    def test_tiny_burst_keeps_preamble(self, rng):
        tx = OfdmTransmitter()
        burst = tx.burst(1e-6, rng)
        assert burst.size >= 400  # STF + LTF + SIGNAL

    def test_burst_randomness(self, rng):
        tx = OfdmTransmitter()
        a = tx.burst(200e-6, rng)
        b = tx.burst(200e-6, rng)
        assert not np.allclose(a, b)


class TestSignalField:
    def test_build_parse_roundtrip(self):
        from repro.wifi.ofdm import build_signal_bits, parse_signal_bits

        for length in (0, 1, 37, 4095):
            assert parse_signal_bits(build_signal_bits(length)) == length

    def test_parity_violation_rejected(self):
        from repro.wifi.ofdm import build_signal_bits, parse_signal_bits

        bits = build_signal_bits(10).copy()
        bits[6] ^= 1
        assert parse_signal_bits(bits) is None

    def test_tail_violation_rejected(self):
        from repro.wifi.ofdm import build_signal_bits, parse_signal_bits

        bits = build_signal_bits(10).copy()
        bits[20] ^= 1
        assert parse_signal_bits(bits) is None

    def test_length_field_limit(self):
        from repro.wifi.ofdm import build_signal_bits

        with pytest.raises(ValueError):
            build_signal_bits(1 << 12)

    def test_interleaver_roundtrip(self, rng):
        from repro.wifi.ofdm import signal_deinterleave, signal_interleave

        bits = rng.integers(0, 2, 48, dtype=np.int8)
        assert np.array_equal(
            signal_deinterleave(signal_interleave(bits)), bits
        )

    def test_interleaver_scatters_bursts(self):
        from repro.wifi.ofdm import signal_interleave

        burst = np.zeros(48, dtype=np.int8)
        burst[10:14] = 1
        scattered = np.flatnonzero(signal_interleave(burst))
        assert np.min(np.diff(np.sort(scattered))) >= 3

    def test_self_describing_receive(self, rng):
        from repro.dsp.noise import awgn
        from repro.wifi.receiver import OfdmReceiver

        tx, rx = OfdmTransmitter(), OfdmReceiver()
        bits = rng.integers(0, 2, 96 * 4, dtype=np.int8)
        capture = np.concatenate(
            [np.zeros(600, complex), tx.packet(bits), np.zeros(300, complex)]
        )
        capture = awgn(capture, 22.0, rng, reference_power=tx.tx_power_watts)
        reception = rx.receive(capture)       # no n_symbols given
        assert reception is not None
        assert reception.bits.size == bits.size
        assert np.mean(reception.bits != bits) < 0.01
