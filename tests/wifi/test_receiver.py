"""Unit tests for the 802.11g OFDM receiver."""

import numpy as np
import pytest

from repro.dsp.noise import awgn
from repro.dsp.signal_ops import mix, scale_to_power, signal_power
from repro.wifi.front_end import WifiFrontEnd
from repro.wifi.ofdm import OfdmTransmitter
from repro.wifi.receiver import OfdmReceiver


@pytest.fixture(scope="module")
def radio():
    return OfdmTransmitter(), OfdmReceiver()


def _capture(pkt, lead=700, tail=500):
    return np.concatenate(
        [np.zeros(lead, complex), pkt, np.zeros(tail, complex)]
    )


class TestRoundtrip:
    def test_clean(self, radio, rng):
        tx, rx = radio
        bits = rng.integers(0, 2, 96 * 3, dtype=np.int8)
        cap = awgn(_capture(tx.packet(bits)), 30.0, rng,
                   reference_power=tx.tx_power_watts)
        reception = rx.receive(cap, n_symbols=3)
        assert reception is not None
        assert np.array_equal(reception.bits, bits)
        assert reception.evm < 0.2

    def test_moderate_noise(self, radio, rng):
        tx, rx = radio
        bits = rng.integers(0, 2, 96 * 2, dtype=np.int8)
        cap = awgn(_capture(tx.packet(bits)), 15.0, rng,
                   reference_power=tx.tx_power_watts)
        reception = rx.receive(cap, n_symbols=2)
        assert reception is not None
        assert np.mean(reception.bits != bits) < 0.02

    def test_cfo_corrected(self, radio, rng):
        tx, rx = radio
        bits = rng.integers(0, 2, 96 * 2, dtype=np.int8)
        pkt = mix(tx.packet(bits), 25e3, 20e6)
        cap = awgn(_capture(pkt), 28.0, rng,
                   reference_power=tx.tx_power_watts)
        reception = rx.receive(cap, n_symbols=2)
        assert reception is not None
        assert reception.cfo_hz == pytest.approx(25e3, abs=2e3)
        assert np.array_equal(reception.bits, bits)

    def test_flat_channel_gain_and_phase(self, radio, rng):
        tx, rx = radio
        bits = rng.integers(0, 2, 96, dtype=np.int8)
        pkt = tx.packet(bits) * (0.5 * np.exp(1j * 1.2))
        cap = awgn(_capture(pkt), 28.0, rng,
                   reference_power=signal_power(pkt))
        reception = rx.receive(cap, n_symbols=1)
        assert reception is not None
        assert np.array_equal(reception.bits, bits)

    def test_multipath_equalized(self, radio, rng):
        tx, rx = radio
        bits = rng.integers(0, 2, 96 * 2, dtype=np.int8)
        taps = np.array([1.0, 0.0, 0.3 * np.exp(1j * 0.9), 0.1j])
        pkt = np.convolve(tx.packet(bits), taps)[: tx.packet(bits).size]
        cap = awgn(_capture(pkt), 28.0, rng,
                   reference_power=signal_power(pkt))
        reception = rx.receive(cap, n_symbols=2)
        assert reception is not None
        assert np.mean(reception.bits != bits) < 0.02

    def test_no_packet_returns_none(self, radio, rng):
        _, rx = radio
        noise = 1e-4 * (rng.standard_normal(20_000) + 1j * rng.standard_normal(20_000))
        assert rx.receive(noise, n_symbols=2) is None

    def test_start_index_near_truth(self, radio, rng):
        tx, rx = radio
        bits = rng.integers(0, 2, 96, dtype=np.int8)
        cap = awgn(_capture(tx.packet(bits), lead=1234), 30.0, rng,
                   reference_power=tx.tx_power_watts)
        reception = rx.receive(cap, n_symbols=1)
        assert reception is not None
        assert abs(reception.start_index - 1234) < 30


class TestCrossTechnologyInterference:
    """The reverse CTI direction: ZigBee degrading a WiFi link."""

    def _wifi_under_zigbee(self, sir_db, rng):
        from repro.zigbee.transmitter import ZigBeeTransmitter

        tx, rx = OfdmTransmitter(), OfdmReceiver()
        fe = WifiFrontEnd(channel=1)
        zigbee = ZigBeeTransmitter(channel=13)
        bits = rng.integers(0, 2, 96 * 2, dtype=np.int8)
        pkt = tx.packet(bits)
        _, zigbee_wf = zigbee.transmit(b"cross-technology interference!")
        interferer = fe.downconvert(
            scale_to_power(zigbee_wf, tx.tx_power_watts / 10 ** (sir_db / 10)),
            zigbee.center_frequency,
        )
        cap = _capture(pkt, lead=700, tail=6000)
        span = min(interferer.size, cap.size - 500)
        cap[500 : 500 + span] += interferer[:span]
        cap = awgn(cap, 30.0, rng, reference_power=tx.tx_power_watts)
        reception = rx.receive(cap, n_symbols=2)
        return reception, bits

    def test_weak_zigbee_harmless(self, rng):
        reception, bits = self._wifi_under_zigbee(20.0, rng)
        assert reception is not None
        assert np.mean(reception.bits != bits) < 0.05

    def test_strong_zigbee_breaks_wifi_detection(self, rng):
        # The CTI story: a strong in-band ZigBee signal corrupts the
        # Schmidl-Cox plateau and WiFi packet detection fails — which is
        # why coordination (the paper's motivation) matters.
        reception, _ = self._wifi_under_zigbee(0.0, rng)
        assert reception is None

    def test_degradation_monotone_in_sir(self, rng):
        outcomes = []
        for sir in (20.0, 10.0, 0.0):
            reception, bits = self._wifi_under_zigbee(sir, rng)
            if reception is None:
                outcomes.append(1.0)
            else:
                outcomes.append(float(np.mean(reception.bits != bits)))
        assert outcomes[0] <= outcomes[-1]
