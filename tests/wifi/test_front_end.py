"""Unit tests for the WiFi RF front-end model."""

import numpy as np
import pytest

from repro.dsp.signal_ops import signal_power
from repro.wifi.front_end import WifiFrontEnd, noise_floor_watts


class TestNoiseFloor:
    def test_20mhz_floor(self):
        # -174 + 10log10(20e6) + 6 = -95 dBm.
        floor = noise_floor_watts(20e6, noise_figure_db=6.0)
        assert 10 * np.log10(floor) + 30 == pytest.approx(-95.0, abs=0.1)

    def test_scales_with_bandwidth(self):
        assert noise_floor_watts(40e6) == pytest.approx(2 * noise_floor_watts(20e6))


class TestFrequencyOffset:
    def test_zigbee13_on_wifi1(self):
        fe = WifiFrontEnd(channel=1)
        assert fe.frequency_offset(2.415e9) == pytest.approx(3e6)

    def test_downconvert_moves_tone(self):
        fe = WifiFrontEnd(channel=1)
        n = np.arange(4096)
        baseband = np.exp(1j * 2 * np.pi * 0.5e6 * n / fe.sample_rate)
        shifted = fe.downconvert(baseband, 2.415e9)
        spectrum = np.abs(np.fft.fft(shifted))
        peak_hz = np.fft.fftfreq(n.size, 1 / fe.sample_rate)[np.argmax(spectrum)]
        assert peak_hz == pytest.approx(3.5e6, abs=2e4)


class TestCapture:
    def test_places_contribution_at_offset(self, rng):
        fe = WifiFrontEnd(channel=1)
        wf = np.ones(100, dtype=complex)
        cap = fe.capture([(wf, 50, fe.center_frequency)], 300, rng=rng,
                         include_noise=False)
        assert np.all(np.abs(cap[:50]) == 0)
        assert np.all(np.abs(cap[50:150]) > 0.9)
        assert np.all(np.abs(cap[150:]) == 0)

    def test_clips_out_of_range_contribution(self, rng):
        fe = WifiFrontEnd(channel=1)
        wf = np.ones(100, dtype=complex)
        cap = fe.capture([(wf, 250, fe.center_frequency)], 300, rng=rng,
                         include_noise=False)
        assert np.count_nonzero(cap) == 50

    def test_negative_start_clips_head(self, rng):
        fe = WifiFrontEnd(channel=1)
        wf = np.ones(100, dtype=complex)
        cap = fe.capture([(wf, -30, fe.center_frequency)], 300, rng=rng,
                         include_noise=False)
        assert np.count_nonzero(cap) == 70
        assert abs(cap[0]) > 0

    def test_fully_outside_contribution_ignored(self, rng):
        fe = WifiFrontEnd(channel=1)
        wf = np.ones(10, dtype=complex)
        cap = fe.capture([(wf, 1000, fe.center_frequency)], 100, rng=rng,
                         include_noise=False)
        assert np.all(cap == 0)

    def test_contributions_add(self, rng):
        fe = WifiFrontEnd(channel=1)
        wf = np.ones(10, dtype=complex)
        cap = fe.capture(
            [(wf, 0, fe.center_frequency), (wf, 0, fe.center_frequency)],
            10, rng=rng, include_noise=False,
        )
        assert np.allclose(cap, 2.0)

    def test_noise_power_calibration(self, rng):
        fe = WifiFrontEnd(channel=1)
        cap = fe.capture([], 200_000, rng=rng)
        assert signal_power(cap) == pytest.approx(fe.noise_power_watts, rel=0.03)

    def test_noise_requires_rng(self):
        fe = WifiFrontEnd(channel=1)
        with pytest.raises(ValueError):
            fe.capture([], 100, rng=None, include_noise=True)
