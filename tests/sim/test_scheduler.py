"""EventScheduler: ordering, determinism, RNG streams."""

import numpy as np
import pytest

from repro.sim.scheduler import EventScheduler, stable_key_int


class TestOrdering:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(0.3, fired.append, "c")
        scheduler.at(0.1, fired.append, "a")
        scheduler.at(0.2, fired.append, "b")
        assert scheduler.run() == 3
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        for label in ("first", "second", "third"):
            scheduler.at(1.0, fired.append, label)
        scheduler.run()
        assert fired == ["first", "second", "third"]

    def test_event_scheduled_during_run_at_same_time_fires(self):
        scheduler = EventScheduler()
        fired = []

        def outer():
            fired.append("outer")
            scheduler.at(scheduler.now, fired.append, "inner")

        scheduler.at(0.5, outer)
        scheduler.run()
        assert fired == ["outer", "inner"]

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.at(1.0, lambda: scheduler.at(0.5, lambda: None))
        with pytest.raises(ValueError, match="before now"):
            scheduler.run()

    def test_clock_advances_with_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.at(0.25, lambda: seen.append(scheduler.now))
        scheduler.at(0.75, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [0.25, 0.75]

    def test_after_is_relative_to_now(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.at(1.0, lambda: scheduler.after(0.5, lambda: seen.append(scheduler.now)))
        scheduler.run()
        assert seen == [1.5]

    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.at(0.1, fired.append, "dead")
        scheduler.at(0.2, fired.append, "alive")
        event.cancel()
        assert scheduler.run() == 1
        assert fired == ["alive"]

    def test_until_is_exclusive_and_advances_clock(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(1.0, fired.append, "at-horizon")
        scheduler.at(0.5, fired.append, "before")
        assert scheduler.run(until=1.0) == 1
        assert fired == ["before"]
        assert scheduler.now == 1.0
        assert len(scheduler) == 1  # the horizon event is still queued

    def test_max_events_stops_early(self):
        scheduler = EventScheduler()
        for i in range(10):
            scheduler.at(0.1 * (i + 1), lambda: None)
        assert scheduler.run(max_events=4) == 4
        assert len(scheduler) == 6


class TestRngStreams:
    def test_same_key_same_stream(self):
        a = EventScheduler(seed=7)
        b = EventScheduler(seed=7)
        assert a.rng("node", 3).random() == b.rng("node", 3).random()

    def test_different_keys_differ(self):
        scheduler = EventScheduler(seed=7)
        x = scheduler.rng("node", 1).random()
        y = scheduler.rng("node", 2).random()
        assert x != y

    def test_streams_are_order_independent(self):
        a = EventScheduler(seed=11)
        b = EventScheduler(seed=11)
        # Touch streams in opposite orders; each stream's draws match.
        first_a = a.rng("m", 1).random()
        second_a = a.rng("m", 2).random()
        second_b = b.rng("m", 2).random()
        first_b = b.rng("m", 1).random()
        assert first_a == first_b
        assert second_a == second_b

    def test_rng_is_cached_not_restarted(self):
        scheduler = EventScheduler(seed=3)
        stream = scheduler.rng("x")
        # Same object on re-lookup: successive draws continue the stream
        # rather than replaying it from the seed.
        assert scheduler.rng("x") is stream
        reference = EventScheduler(seed=3).rng("x")
        reference.random()
        stream.random()
        assert stream.random() == reference.random()

    def test_seed_for_matches_numpy_spawn_convention(self):
        scheduler = EventScheduler(seed=5)
        seq = scheduler.seed_for("frame", 2, 9)
        direct = np.random.SeedSequence(
            entropy=scheduler.root_seed.entropy,
            spawn_key=scheduler.root_seed.spawn_key
            + (stable_key_int("frame"), 2, 9),
        )
        assert (
            np.random.default_rng(seq).integers(0, 1 << 30)
            == np.random.default_rng(direct).integers(0, 1 << 30)
        )

    def test_string_keys_are_stable_across_processes(self):
        # stable_key_int must not depend on PYTHONHASHSEED.
        assert stable_key_int("mobility") == stable_key_int("mobility")
        assert stable_key_int("mobility") != stable_key_int("noise")
        assert stable_key_int(17) == 17
