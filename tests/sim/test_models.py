"""Topology, mobility, noise and fault models."""

import math

import pytest

from repro.sim import (
    AckBlackoutFaults,
    AmbientNoise,
    BurstNoise,
    ClusterTopology,
    EventScheduler,
    GridTopology,
    NodeCrashFaults,
    RandomTopology,
    StaticMobility,
    WaypointMobility,
    make_faults,
    make_mobility,
    make_noise,
    make_topology,
)


class TestTopology:
    def test_grid_places_requested_nodes(self):
        topo = GridTopology(9, spacing_m=3.0)
        assert len(topo.node_ids) == 9
        assert topo.gateways == ((0.0, 0.0),)
        # Centred grid: mean position is the origin.
        xs = [p[0] for p in topo.positions.values()]
        ys = [p[1] for p in topo.positions.values()]
        assert abs(sum(xs)) < 1e-9 and abs(sum(ys)) < 1e-9

    def test_distance_floor_is_one_metre(self):
        topo = GridTopology(1)
        node = topo.node_ids[0]
        assert topo.distance_to_gateway(node, position=(0.0, 0.0)) == 1.0

    def test_random_topology_is_seeded(self):
        a = RandomTopology(20, radius_m=30.0, seed=4)
        b = RandomTopology(20, radius_m=30.0, seed=4)
        c = RandomTopology(20, radius_m=30.0, seed=5)
        assert a.positions == b.positions
        assert a.positions != c.positions
        assert all(
            math.hypot(x, y) <= 30.0 + 1e-9
            for x, y in a.positions.values()
        )

    def test_multi_gateway_assignment_is_nearest(self):
        topo = RandomTopology(40, radius_m=50.0, gateways=3, seed=2)
        assert len(topo.gateways) == 3
        for node_id, pos in topo.positions.items():
            gw = topo.gateway_of[node_id]
            own = math.hypot(
                pos[0] - topo.gateways[gw][0], pos[1] - topo.gateways[gw][1]
            )
            for other in topo.gateways:
                assert own <= math.hypot(
                    pos[0] - other[0], pos[1] - other[1]
                ) + 1e-9

    def test_cluster_topology_gateways_at_centres(self):
        topo = ClusterTopology(
            n_clusters=3, nodes_per_cluster=5, cluster_radius_m=4.0, seed=1
        )
        assert len(topo.gateways) == 3
        assert len(topo.node_ids) == 15

    def test_make_topology_registry(self):
        topo = make_topology({"kind": "grid", "n_nodes": 4})
        assert len(topo.node_ids) == 4
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology({"kind": "mesh"})


class TestMobility:
    def test_static_returns_topology_positions(self):
        topo = GridTopology(4)
        scheduler = EventScheduler(seed=0)
        model = StaticMobility()
        model.bind(topo, scheduler)
        node = topo.node_ids[0]
        assert model.position(node, 0.0) == topo.positions[node]
        assert model.position(node, 99.0) == topo.positions[node]

    def test_waypoint_moves_at_bounded_speed(self):
        topo = GridTopology(4, spacing_m=2.0)
        scheduler = EventScheduler(seed=8)
        model = WaypointMobility(speed_m_s=2.0)
        model.bind(topo, scheduler)
        node = topo.node_ids[1]
        previous = model.position(node, 0.0)
        for step in range(1, 40):
            current = model.position(node, 0.25 * step)
            moved = math.hypot(
                current[0] - previous[0], current[1] - previous[1]
            )
            assert moved <= 2.0 * 0.25 + 1e-9
            previous = current

    def test_waypoint_is_per_node_independent(self):
        topo = GridTopology(4)
        a = WaypointMobility(speed_m_s=1.0)
        a.bind(topo, EventScheduler(seed=8))
        b = WaypointMobility(speed_m_s=1.0)
        b.bind(topo, EventScheduler(seed=8))
        # Querying other nodes first must not change node 0's path.
        for node in reversed(topo.node_ids):
            b.position(node, 5.0)
        assert a.position(0, 5.0) == b.position(0, 5.0)

    def test_make_mobility_defaults_to_static(self):
        assert isinstance(make_mobility(None), StaticMobility)
        assert isinstance(
            make_mobility({"kind": "waypoint", "speed_m_s": 3.0}),
            WaypointMobility,
        )


class TestNoise:
    def test_clean_model_reports_nothing(self):
        model = make_noise(None)
        model.bind(EventScheduler(seed=0))
        state = model.state(3, 1.0)
        assert state.extra_loss_db == 0.0
        assert state.interferers == 0
        assert model.max_interferers == 0

    def test_ambient_duty_draws_interferers(self):
        model = AmbientNoise(interference_duty=1.0, n_interferers=2)
        model.bind(EventScheduler(seed=1))
        state = model.state(0, 0.0)
        assert state.interferers == 2
        assert model.max_interferers == 2

    def test_ambient_extra_loss_is_flat(self):
        model = AmbientNoise(extra_loss_db=3.0)
        model.bind(EventScheduler(seed=1))
        assert model.state(0, 0.0).extra_loss_db == 3.0
        assert model.max_interferers == 0

    def test_burst_noise_adds_loss_in_bad_state(self):
        model = BurstNoise(
            mean_good_s=0.001, mean_bad_s=0.001, bad_extra_loss_db=6.0
        )
        model.bind(EventScheduler(seed=3))
        losses = {model.state(0, 0.01 * k).extra_loss_db for k in range(200)}
        assert losses == {0.0, 6.0}

    def test_burst_chains_are_per_node(self):
        model = BurstNoise(mean_good_s=0.01, mean_bad_s=0.01)
        model.bind(EventScheduler(seed=3))
        a = [model.state(0, 0.01 * k).extra_loss_db for k in range(100)]
        b = [model.state(1, 0.01 * k).extra_loss_db for k in range(100)]
        assert a != b  # independent streams


class TestFaults:
    def test_default_never_fails(self):
        model = make_faults(None)
        model.bind(EventScheduler(seed=0))
        assert model.alive(5, 100.0)
        assert model.ack_available(5, 100.0)

    def test_crash_cycles_up_and_down(self):
        model = NodeCrashFaults(mtbf_s=1.0, mean_downtime_s=1.0)
        model.bind(EventScheduler(seed=2))
        states = {model.alive(0, 0.5 * k) for k in range(200)}
        assert states == {True, False}

    def test_crash_is_deterministic_per_seed(self):
        a = NodeCrashFaults(mtbf_s=1.0, mean_downtime_s=0.5)
        a.bind(EventScheduler(seed=6))
        b = NodeCrashFaults(mtbf_s=1.0, mean_downtime_s=0.5)
        b.bind(EventScheduler(seed=6))
        assert [a.alive(1, 0.3 * k) for k in range(50)] == [
            b.alive(1, 0.3 * k) for k in range(50)
        ]

    def test_ack_blackout_windows(self):
        model = AckBlackoutFaults(blackouts=((1.0, 2.0),))
        assert model.ack_available(0, 0.5)
        assert not model.ack_available(0, 1.5)
        assert model.ack_available(0, 2.5)
        assert model.alive(0, 1.5)  # node itself stays up

    def test_registry_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            make_faults({"kind": "meteor"})
