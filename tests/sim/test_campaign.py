"""Fleet campaigns: determinism, fidelities, faults, CLI."""

import json
import math

import pytest

from repro.__main__ import main
from repro.experiments.common import scaled
from repro.sim import (
    CalibrationConfig,
    DeliveryTable,
    FleetSimulation,
    load_manifest,
    run_campaign,
)


def logistic_table(max_interferers=2, frames=1000):
    """Synthetic table: logistic in SNR, 3 dB penalty per interferer."""
    config = CalibrationConfig(
        snr_grid_db=(-4.0, 0.0, 4.0, 8.0, 12.0),
        max_interferers=max_interferers,
        frames_per_point=frames,
    )
    cells = {}
    for snr, k, fec in config.points():
        p = 1.0 / (1.0 + math.exp(-(snr - 2.0 - 3.0 * k)))
        cells[(snr, k, fec)] = (int(round(p * frames)), frames)
    return DeliveryTable(config, cells)


BASE_MANIFEST = {
    "name": "unit",
    "seed": 21,
    "duration_s": 4.0,
    "fidelity": "packet",
    "topology": {"kind": "grid", "n_nodes": 16, "spacing_m": 4.0},
    "traffic": {"interval_s": 0.4, "max_retries": 1},
}


class TestDeterminism:
    def test_same_seed_same_manifest_bit_identical_summary(self):
        table = logistic_table()
        a = run_campaign(dict(BASE_MANIFEST), table=table)
        b = run_campaign(dict(BASE_MANIFEST), table=table)
        assert a.summary_json() == b.summary_json()

    def test_different_seed_different_outcome(self):
        table = logistic_table()
        a = run_campaign(dict(BASE_MANIFEST), table=table)
        other = dict(BASE_MANIFEST, seed=22)
        b = run_campaign(other, table=table)
        assert a.summary() != b.summary()

    def test_summary_excludes_wall_clock(self):
        table = logistic_table()
        result = run_campaign(dict(BASE_MANIFEST), table=table)
        assert result.elapsed_s is not None
        assert "elapsed" not in json.dumps(result.summary())


class TestInterferenceSummary:
    def test_quiet_campaign_reports_zero_duty(self):
        summary = run_campaign(
            dict(BASE_MANIFEST), table=logistic_table()
        ).summary()
        assert summary["interference"] == {
            "duty": 0.0,
            "n_interferers": 0,
            "mean_active": 0.0,
        }

    def test_duty_threads_from_manifest_to_summary(self):
        manifest = dict(
            BASE_MANIFEST,
            noise={
                "kind": "ambient",
                "interference_duty": 0.4,
                "n_interferers": 2,
            },
        )
        summary = run_campaign(manifest, table=logistic_table()).summary()
        info = summary["interference"]
        assert info["duty"] == 0.4
        assert info["n_interferers"] == 2
        # Observed activity is duty x n in expectation; generous bounds
        # keep the assertion seed-stable.
        assert 0.3 < info["mean_active"] < 1.3

    def test_mean_active_is_deterministic(self):
        manifest = dict(
            BASE_MANIFEST,
            noise={"kind": "ambient", "interference_duty": 0.25},
        )
        table = logistic_table()
        a = run_campaign(dict(manifest), table=table).summary_json()
        b = run_campaign(dict(manifest), table=table).summary_json()
        assert a == b
        assert json.loads(a)["interference"]["duty"] == 0.25


class TestMacBehaviour:
    def test_contention_produces_defers_and_collisions(self):
        table = logistic_table()
        manifest = dict(
            BASE_MANIFEST,
            topology={"kind": "grid", "n_nodes": 40, "spacing_m": 2.0},
            traffic={"interval_s": 0.03, "max_retries": 0},
            duration_s=3.0,
        )
        result = run_campaign(manifest, table=table)
        assert result.defers > 0
        assert result.collided > 0
        # Every offered frame terminates exactly once (collisions are a
        # cause of loss, counted within ``lost``).
        assert result.delivered + result.lost == result.offered

    def test_low_snr_margin_loses_frames_and_retries(self):
        table = logistic_table()
        manifest = dict(
            BASE_MANIFEST,
            comm={"scenario": "office", "snr_margin_db": 15.0,
                  "shadowing": False},
        )
        result = run_campaign(manifest, table=table)
        assert result.lost > 0
        assert result.retries > 0
        assert result.delivery_ratio < 1.0

    def test_crash_faults_suppress_arrivals(self):
        table = logistic_table()
        manifest = dict(
            BASE_MANIFEST,
            faults={"kind": "crash", "mtbf_s": 2.0, "mean_downtime_s": 2.0},
        )
        result = run_campaign(manifest, table=table)
        assert result.skipped_down > 0

    def test_ack_blackout_suppresses_retries(self):
        table = logistic_table()
        lossy = {
            "comm": {"scenario": "office", "snr_margin_db": 15.0,
                     "shadowing": False},
            "duration_s": 3.0,
        }
        noisy = dict(BASE_MANIFEST, **lossy)
        dark = dict(
            BASE_MANIFEST,
            **lossy,
            faults={"kind": "ack-blackout", "blackouts": [[0.0, 3.5]]},
        )
        with_acks = run_campaign(noisy, table=logistic_table())
        without_acks = run_campaign(dark, table=logistic_table())
        assert with_acks.retries > 0
        assert without_acks.retries == 0

    def test_multi_gateway_grows_contention_domains(self):
        table = logistic_table()
        one = FleetSimulation(dict(BASE_MANIFEST), table=table)
        four = FleetSimulation(
            dict(
                BASE_MANIFEST,
                topology={
                    "kind": "random",
                    "n_nodes": 30,
                    "radius_m": 40.0,
                    "gateways": 4,
                },
            ),
            table=table,
        )
        assert one.result.n_domains == 4
        assert four.result.n_domains > 4


class TestFidelities:
    def test_sample_fidelity_runs_the_real_phy(self):
        manifest = {
            "name": "sample-small",
            "seed": 9,
            "duration_s": 1.0,
            "fidelity": "sample",
            "topology": {"kind": "grid", "n_nodes": 4, "spacing_m": 0.1},
            "traffic": {"interval_s": 0.4, "max_retries": 0},
            "comm": {"scenario": "office", "snr_margin_db": 8.0,
                     "shadowing": False,
                     "calibration": {"snr_grid_db": [0.0, 4.0, 8.0],
                                     "frames_per_point": 4}},
        }
        result = run_campaign(manifest)
        assert result.fidelity == "sample"
        assert result.offered > 0
        assert 0.0 < result.delivery_ratio <= 1.0

    def test_packet_and_sample_agree_within_binomial_bounds(self):
        """Acceptance: same scene, both fidelities, compatible rates.

        All nodes sit at the 1 m reference distance (tiny grid spacing,
        distance floor) with shadowing off, so every frame is evaluated
        at the same pinned SNR; packet vs sample delivery then differ
        only by binomial noise.
        """
        n_frames = scaled(40)
        config = CalibrationConfig(
            snr_grid_db=(0.0, 2.0, 4.0),
            max_interferers=0,
            frames_per_point=n_frames,
            seed=77,
        )
        table = DeliveryTable.calibrate(config, jobs=1)
        manifest = {
            "name": "xval",
            "seed": 13,
            "duration_s": 4.0,
            "topology": {"kind": "grid", "n_nodes": 4, "spacing_m": 1e-6},
            "traffic": {"interval_s": 0.4, "max_retries": 0},
            "comm": {"scenario": "office", "snr_margin_db": 2.0,
                     "shadowing": False,
                     "calibration": {
                         "snr_grid_db": [0.0, 2.0, 4.0],
                         "frames_per_point": n_frames,
                         "seed": 77,
                     }},
        }
        packet = run_campaign(
            dict(manifest, fidelity="packet"), table=table
        )
        sample = run_campaign(dict(manifest, fidelity="sample"))
        n1 = max(packet.offered, 1)
        n2 = max(sample.offered, 1)
        p1, p2 = packet.delivery_ratio, sample.delivery_ratio
        pooled = (p1 * n1 + p2 * n2) / (n1 + n2)
        spread = max(pooled * (1.0 - pooled), 1.0 / min(n1, n2))
        bound = 4.0 * math.sqrt(spread * (1.0 / n1 + 1.0 / n2))
        assert abs(p1 - p2) <= bound, (
            f"packet {p1:.3f} (n={n1}) vs sample {p2:.3f} (n={n2}), "
            f"bound {bound:.3f}"
        )


class TestManifest:
    def test_load_manifest_round_trip(self, tmp_path):
        path = tmp_path / "scene.json"
        path.write_text(json.dumps(BASE_MANIFEST))
        assert load_manifest(path) == BASE_MANIFEST

    def test_missing_file_error_is_path_prefixed(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(ValueError, match="absent.json"):
            load_manifest(path)

    def test_invalid_json_error_is_path_prefixed(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="broken.json.*not valid JSON"):
            load_manifest(path)

    def test_non_object_manifest_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_manifest(path)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            FleetSimulation({"duration_s": 0}, table=logistic_table())

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            FleetSimulation(
                dict(BASE_MANIFEST, fidelity="quantum"),
                table=logistic_table(),
            )


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One calibration cache shared by all CLI tests in this module."""
    return tmp_path_factory.mktemp("simcache")


class TestSimulateCli:
    def _flags(self, cache_dir, *extra):
        return [
            "simulate",
            "--nodes", "9",
            "--duration", "1.5",
            "--seed", "5",
            "--interval", "0.4",
            "--cache-dir", str(cache_dir),
            *extra,
        ]

    def test_flags_only_run(self, shared_cache, capsys):
        assert main(self._flags(shared_cache)) == 0
        out = capsys.readouterr().out
        assert "fleet campaign" in out
        assert "delivery ratio" in out

    def test_summary_out_is_deterministic(
        self, shared_cache, tmp_path, capsys
    ):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self._flags(shared_cache, "--summary-out", str(a))) == 0
        assert main(self._flags(shared_cache, "--summary-out", str(b))) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        summary = json.loads(a.read_text())
        assert summary["seed"] == 5
        assert summary["offered"] > 0

    def test_manifest_file_with_flag_overrides(
        self, shared_cache, tmp_path, capsys
    ):
        path = tmp_path / "scene.json"
        path.write_text(
            json.dumps(
                {
                    "name": "from-file",
                    "seed": 1,
                    "duration_s": 1.0,
                    "topology": {"kind": "grid", "n_nodes": 4},
                }
            )
        )
        assert (
            main(
                [
                    "simulate", str(path),
                    "--seed", "2",
                    "--cache-dir", str(shared_cache),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "from-file" in out

    def test_metrics_out_feeds_obs_summary(
        self, shared_cache, tmp_path, capsys
    ):
        metrics = tmp_path / "sim.jsonl"
        # Warm the calibration cache first so the recorded run holds
        # only sim.* counters (obs summary prints the top counters;
        # cold-calibration link.*/decoder.* totals would crowd them out).
        assert main(self._flags(shared_cache)) == 0
        assert (
            main(self._flags(shared_cache, "--metrics-out", str(metrics)))
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summary", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "sim.*" in out
        assert "sim.frames.offered" in out

    def test_bad_manifest_path_exits_2(self, capsys):
        assert main(["simulate", "/nonexistent/scene.json"]) == 2
        assert "scene.json" in capsys.readouterr().err

    def test_bad_model_kind_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"topology": {"kind": "mesh"}}))
        assert main(["simulate", str(path)]) == 2
        assert "unknown topology" in capsys.readouterr().err
