"""Calibrated delivery table: cache lifecycle and PHY cross-validation."""

import json
import math

import pytest

from repro.experiments.common import scaled
from repro.sim.fastpath import (
    CalibrationConfig,
    DeliveryTable,
    sample_frame_outcomes,
)


def tiny_config(**overrides):
    base = dict(
        snr_grid_db=(-2.0, 2.0, 6.0),
        max_interferers=0,
        frames_per_point=4,
        seed=99,
    )
    base.update(overrides)
    return CalibrationConfig(**base)


def synthetic_table(config, probability_fn):
    cells = {
        (snr, k, fec): (
            int(round(probability_fn(snr, k) * config.frames_per_point)),
            config.frames_per_point,
        )
        for snr, k, fec in config.points()
    }
    return DeliveryTable(config, cells)


class TestTableLookup:
    def test_interpolates_linearly_between_grid_points(self):
        config = tiny_config(frames_per_point=100)
        table = synthetic_table(
            config, lambda snr, k: (snr + 2.0) / 8.0
        )
        assert table.probability(-2.0) == pytest.approx(0.0)
        assert table.probability(6.0) == pytest.approx(1.0)
        assert table.probability(0.0) == pytest.approx(0.25)
        assert table.probability(3.0) == pytest.approx(0.625)

    def test_clamps_outside_grid_and_interferer_range(self):
        config = tiny_config(frames_per_point=100, max_interferers=1)
        table = synthetic_table(
            config, lambda snr, k: max(0.0, min(1.0, 0.5 - 0.3 * k))
        )
        assert table.probability(-50.0, 0) == pytest.approx(0.5)
        assert table.probability(50.0, 0) == pytest.approx(0.5)
        assert table.probability(0.0, 7) == pytest.approx(0.2)

    def test_unknown_fec_is_an_error(self):
        table = synthetic_table(tiny_config(), lambda snr, k: 1.0)
        with pytest.raises(ValueError, match="not calibrated"):
            table.probability(0.0, fec="conv")

    def test_missing_grid_points_rejected(self):
        config = tiny_config()
        cells = {p: (1, 4) for p in config.points()[1:]}
        with pytest.raises(ValueError, match="missing"):
            DeliveryTable(config, cells)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        config = tiny_config()
        table = synthetic_table(config, lambda snr, k: 0.5)
        path = table.save(config.cache_path(tmp_path))
        loaded = DeliveryTable.load(path, config)
        assert loaded.cells == table.cells

    def test_config_change_changes_cache_file(self, tmp_path):
        a = tiny_config()
        b = tiny_config(frames_per_point=8)
        assert a.config_hash() != b.config_hash()
        assert a.cache_path(tmp_path) != b.cache_path(tmp_path)

    def test_load_rejects_config_mismatch(self, tmp_path):
        config = tiny_config()
        table = synthetic_table(config, lambda snr, k: 0.5)
        path = table.save(config.cache_path(tmp_path))
        other = tiny_config(seed=100)
        with pytest.raises(ValueError, match="config mismatch"):
            DeliveryTable.load(path, other)

    def test_load_rejects_truncated_json(self, tmp_path):
        config = tiny_config()
        table = synthetic_table(config, lambda snr, k: 0.5)
        path = table.save(config.cache_path(tmp_path))
        content = open(path).read()
        with open(path, "w") as fh:
            fh.write(content[: len(content) // 2])
        with pytest.raises(ValueError, match="not valid JSON"):
            DeliveryTable.load(path, config)

    def test_load_rejects_partial_table(self, tmp_path):
        config = tiny_config()
        table = synthetic_table(config, lambda snr, k: 0.5)
        path = table.save(config.cache_path(tmp_path))
        document = json.load(open(path))
        document["cells"] = document["cells"][:-1]
        with open(path, "w") as fh:
            json.dump(document, fh)
        with pytest.raises(ValueError, match="missing"):
            DeliveryTable.load(path, config)

    def test_cache_hit_skips_calibration(self, tmp_path):
        config = tiny_config()
        first = DeliveryTable.load_or_calibrate(config, cache_dir=tmp_path)
        # A second load must not touch the PHY: poison the trial fn.
        import repro.sim.fastpath as fastpath

        original = fastpath.sample_frame_outcomes
        fastpath.sample_frame_outcomes = None
        try:
            second = DeliveryTable.load_or_calibrate(
                config, cache_dir=tmp_path
            )
        finally:
            fastpath.sample_frame_outcomes = original
        assert second.cells == first.cells

    def test_corrupt_cache_recovers_with_one_line_warning(
        self, tmp_path, caplog, monkeypatch
    ):
        # A prior CLI invocation may have wired the ``repro`` logger
        # with propagate=False (see obs.configure_logging); caplog
        # listens on the root logger, so restore propagation here.
        import logging

        monkeypatch.setattr(
            logging.getLogger("repro"), "propagate", True
        )
        config = tiny_config()
        first = DeliveryTable.load_or_calibrate(config, cache_dir=tmp_path)
        path = config.cache_path(tmp_path)
        with open(path, "w") as fh:
            fh.write("{not json")
        with caplog.at_level("WARNING", logger="repro.sim.fastpath"):
            recovered = DeliveryTable.load_or_calibrate(
                config, cache_dir=tmp_path
            )
        assert recovered.cells == first.cells
        warnings = [
            r for r in caplog.records if "recalibrating" in r.getMessage()
        ]
        assert len(warnings) == 1
        message = warnings[0].getMessage()
        # One line, path-prefixed — the obs-summary error style.
        assert "\n" not in message
        assert message.startswith(str(path))
        # And the cache healed: next load is clean.
        assert DeliveryTable.load(path, config).cells == first.cells


class TestCrossValidation:
    """The packet fast path must stay inside binomial bounds of the PHY.

    Calibrate a small table from the sample-level PHY, then re-measure
    delivery at every grid SNR with an *independent* seed and require
    two-proportion agreement at z=4 (false-alarm odds ~1e-4 per point,
    negligible across the suite).
    """

    def test_table_matches_sample_phy_on_three_operating_points(self):
        n = scaled(40)
        config = CalibrationConfig(
            snr_grid_db=(0.0, 2.0, 4.0),
            max_interferers=0,
            frames_per_point=n,
            seed=1234,
        )
        table = DeliveryTable.calibrate(config, jobs=1)
        z = 4.0
        checked = 0
        for snr in config.snr_grid_db:
            table_p = table.probability(snr)
            delivered = sample_frame_outcomes(
                snr, 0, "none", config, seed=987_000 + checked, n_frames=n
            )
            observed = delivered / n
            pooled = (table_p * n + delivered) / (2 * n)
            spread = max(pooled * (1.0 - pooled), 1.0 / n)
            bound = z * math.sqrt(spread * (2.0 / n))
            assert abs(observed - table_p) <= bound, (
                f"snr={snr}: table {table_p:.3f} vs phy {observed:.3f} "
                f"(bound {bound:.3f})"
            )
            checked += 1
        assert checked >= 3
        # The curve must actually span the threshold region — a flat
        # table would pass the bound test trivially.
        assert table.probability(0.0) < table.probability(4.0)
