"""Smoke tests for the reverse-CTI extension (WiFi under ZigBee)."""

import math

from repro.experiments.ext_reverse_cti import SIR_GRID_DB, run


def _assert_results_equal(first, second):
    assert first.sir_db == second.sir_db
    assert first.detection_rate == second.detection_rate
    for a, b in zip(first.ber_when_detected, second.ber_when_detected):
        # NaN marks "nothing detected at this SIR"; NaN != NaN, so the
        # dataclass == is the wrong tool here.
        assert a == b or (math.isnan(a) and math.isnan(b))


def test_deterministic_given_seed():
    kwargs = dict(seed=43, sir_grid_db=(30.0, 10.0, 0.0), n_packets=4)
    _assert_results_equal(run(**kwargs), run(**kwargs))


def test_detection_rate_monotone_across_sir_grid():
    # The grid walks SIR down from benign to brutal; WiFi packet
    # detection under growing ZigBee interference must never improve.
    result = run(seed=43, n_packets=6)
    assert result.sir_db == SIR_GRID_DB
    rates = result.detection_rate
    assert all(b <= a for a, b in zip(rates, rates[1:]))
    # ... and the sweep actually spans the cliff: clean detection at the
    # top of the grid, none at the bottom.
    assert rates[0] == 1.0
    assert rates[-1] == 0.0


def test_ber_reported_only_when_detected():
    result = run(seed=43, n_packets=6)
    for rate, ber in zip(result.detection_rate, result.ber_when_detected):
        if rate == 0.0:
            assert math.isnan(ber)
        else:
            assert 0.0 <= ber <= 0.5
