"""Integration tests for the extension experiments."""

import numpy as np
import pytest

from repro.experiments import (
    ext_network_scaling,
    ext_residual_cfo,
    ext_reverse_cti,
)


class TestNetworkScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_network_scaling.run(
            cluster_sizes=(2, 8), sim_duration_s=1.0
        )

    def test_goodput_grows_with_cluster(self, result):
        assert result.goodput_bps[-1] > result.goodput_bps[0]

    def test_light_load_delivers(self, result):
        assert result.delivery_ratio[0] > 0.7

    def test_utilization_grows(self, result):
        assert result.channel_utilization[-1] > result.channel_utilization[0]


class TestResidualCfo:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_residual_cfo.run(
            cfo_grid_hz=(0.0, 40e3, 90e3), n_frames=4
        )

    def test_zero_offset_clean(self, result):
        assert result.ber_untracked[0] < 0.02

    def test_crystal_range_ok(self, result):
        assert result.ber_untracked[1] < 0.05

    def test_envelope_edge_degrades(self, result):
        assert result.ber_untracked[-1] > result.ber_untracked[0]

    def test_tracking_never_much_worse(self, result):
        for untracked, tracked in zip(result.ber_untracked, result.ber_tracked):
            assert tracked <= untracked + 0.05


class TestReverseCti:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_reverse_cti.run(sir_grid_db=(25.0, 0.0), n_packets=4)

    def test_weak_interference_harmless(self, result):
        assert result.detection_rate[0] >= 0.75
        assert result.ber_when_detected[0] < 0.05

    def test_strong_interference_blocks_detection(self, result):
        assert result.detection_rate[-1] <= result.detection_rate[0]

    def test_main_prints(self, capsys):
        ext_reverse_cti.run.__defaults__  # touch
        # main() at tiny scale via monkeypatching isn't worth it; just
        # exercise the printer with a precomputed result.
        from repro.experiments.common import print_table  # noqa: F401
