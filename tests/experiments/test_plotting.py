"""Unit tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.plotting import ascii_bars, ascii_series


class TestSeries:
    def test_renders_markers_and_legend(self):
        chart = ascii_series([0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "o" in chart and "x" in chart
        assert "o=a" in chart and "x=b" in chart

    def test_empty_input(self):
        assert ascii_series([], {}) == "(no data)"

    def test_log_scale_handles_zeros(self):
        chart = ascii_series([0, 1], {"ber": [0.1, 0.0]}, y_log=True)
        assert "1e" in chart

    def test_constant_series(self):
        chart = ascii_series([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "o" in chart

    def test_axis_labels_present(self):
        chart = ascii_series(
            [0, 10], {"y": [1, 2]}, x_label="SNR", y_label="BER"
        )
        assert "SNR" in chart and "[BER]" in chart

    def test_single_x_value(self):
        chart = ascii_series([5], {"y": [1.0]})
        assert "o" in chart


class TestBars:
    def test_scales_to_width(self):
        chart = ascii_bars(["a", "b"], [1.0, 10.0], width=20)
        lines = chart.splitlines()
        assert lines[1].count("#") == 20
        assert 1 <= lines[0].count("#") < 20

    def test_log_scale_compresses_range(self):
        linear = ascii_bars(["s", "l"], [1.0, 10000.0], width=40)
        logarithmic = ascii_bars(["s", "l"], [1.0, 10000.0], width=40, log=True)
        assert linear.splitlines()[0].count("#") <= 1
        assert logarithmic.splitlines()[0].count("#") >= 1

    def test_values_printed(self):
        chart = ascii_bars(["x"], [42.5])
        assert "42.5" in chart

    def test_empty(self):
        assert ascii_bars([], []) == "(no data)"
