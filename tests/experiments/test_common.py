"""Unit tests for the experiment harness infrastructure."""

import numpy as np
import pytest

from repro.core.link import LinkResult
from repro.experiments.common import (
    LinkStats,
    fmt,
    link_at_snr,
    mc_scale,
    measure_link,
    print_table,
    scaled,
)


def _result(captured=True, errors=0, n=10):
    return LinkResult(
        sent_bits=tuple([1] * n),
        decoded_bits=tuple([1] * n) if captured else (),
        preamble_captured=captured,
        bit_errors=errors if captured else n,
        counts=(),
        rx_power_dbm=-60.0,
        snr_db=20.0,
        captured_data_start=0 if captured else None,
        true_data_start=0,
    )


class TestLinkStats:
    def test_aggregation(self):
        stats = LinkStats()
        stats.add(_result(errors=2))
        stats.add(_result(captured=False))
        assert stats.frames == 2
        assert stats.capture_rate == 0.5
        assert stats.bits_sent == 20
        assert stats.bit_errors == 12
        assert stats.ber == pytest.approx(0.6)

    def test_throughput_full_delivery(self):
        stats = LinkStats()
        stats.add(_result())
        assert stats.throughput_bps == pytest.approx(31_250.0)

    def test_throughput_empty(self):
        assert LinkStats().throughput_bps == 0.0
        assert LinkStats().ber == 0.0
        assert LinkStats().capture_rate == 0.0

    def test_mean_snr(self):
        stats = LinkStats()
        stats.add(_result())
        assert stats.mean_snr_db == pytest.approx(20.0)


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert mc_scale() == 1.0
        assert scaled(10) == 10

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "3")
        assert scaled(10) == 30

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert mc_scale() == 1.0

    def test_minimum_two(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert scaled(10) == 2


class TestLinkAtSnr:
    def test_snr_calibrated(self, rng):
        link = link_at_snr(7.0)
        result = link.send_bits([1, 0], rng)
        assert result.snr_db == pytest.approx(7.0, abs=0.5)

    def test_measure_link(self, rng):
        link = link_at_snr(20.0)
        stats = measure_link(link, rng, n_frames=3, bits_per_frame=16)
        assert stats.frames == 3
        assert stats.bits_sent == 48
        assert stats.ber == 0.0


class TestPrinting:
    def test_fmt(self):
        assert fmt(1.23456, 2) == "1.23"
        assert fmt("abc") == "abc"
        assert fmt(7) == "7"

    def test_print_table_smoke(self, capsys):
        print_table(("a", "bb"), [(1, 2), (33, 4)], title="t")
        out = capsys.readouterr().out
        assert "== t ==" in out
        assert "33" in out

    def test_print_table_empty_rows(self, capsys):
        print_table(("col",), [])
        assert "col" in capsys.readouterr().out
