"""Unit tests for experiment-internal helpers."""

import numpy as np
import pytest

from repro.core.decoder import BitDetection
from repro.experiments.fig20_interference_example import SingleBurst
from repro.experiments.fig22_tau_preamble import _match_detections


class TestMatchDetections:
    def _det(self, index, bit):
        return BitDetection(index=index, bit=bit, count=80)

    def test_perfect_match(self):
        detections = [self._det(100, 1), self._det(740, 0)]
        misses, wrong, fps = _match_detections(
            detections, [100, 740], [1, 0], tolerance=320
        )
        assert (misses, wrong, fps) == (0, 0, 0)

    def test_missed_bit(self):
        misses, wrong, fps = _match_detections(
            [self._det(100, 1)], [100, 740], [1, 0], tolerance=320
        )
        assert (misses, wrong, fps) == (1, 0, 0)

    def test_wrong_value(self):
        misses, wrong, fps = _match_detections(
            [self._det(100, 0)], [100], [1], tolerance=320
        )
        assert (misses, wrong, fps) == (0, 1, 0)

    def test_false_positive(self):
        misses, wrong, fps = _match_detections(
            [self._det(100, 1), self._det(5000, 1)], [100], [1], tolerance=320
        )
        assert (misses, wrong, fps) == (0, 0, 1)

    def test_each_detection_used_once(self):
        # One detection cannot satisfy two true positions.
        misses, wrong, fps = _match_detections(
            [self._det(400, 1)], [300, 500], [1, 1], tolerance=320
        )
        assert misses == 1 and fps == 0

    def test_nearest_detection_wins(self):
        detections = [self._det(90, 1), self._det(180, 0)]
        misses, wrong, fps = _match_detections(
            detections, [100], [1], tolerance=320
        )
        assert (misses, wrong) == (0, 0)
        assert fps == 1  # the farther detection is unmatched

    def test_empty_inputs(self):
        assert _match_detections([], [], [], 320) == (0, 0, 0)


class TestSingleBurst:
    def test_contribution_placement(self, rng):
        burst = SingleBurst(start_index=1000, duration_s=100e-6, sinr_db=0.0)
        contributions = burst.contributions(50_000, 1e-6, rng, 2.412e9)
        assert len(contributions) == 1
        waveform, start, freq = contributions[0]
        assert start == 1000
        assert freq == 2.412e9
        assert waveform.size >= 100e-6 * 20e6 - 1

    def test_power_scaling(self, rng):
        from repro.dsp.signal_ops import signal_power

        strong = SingleBurst(0, 100e-6, sinr_db=-10.0)
        weak = SingleBurst(0, 100e-6, sinr_db=10.0)
        p_strong = signal_power(strong.contributions(1, 1e-6, rng, 0.0)[0][0])
        p_weak = signal_power(weak.contributions(1, 1e-6, rng, 0.0)[0][0])
        assert p_strong == pytest.approx(100 * p_weak, rel=0.01)


class TestFig21Validation:
    def test_data_bits_multiple_of_four(self):
        from repro.experiments.fig21_hamming import run

        with pytest.raises(ValueError):
            run(data_bits=50)


class TestCliSurvey:
    def test_survey_runs_at_tiny_scale(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "site survey" in out
        assert "mall" in out
