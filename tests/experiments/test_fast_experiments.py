"""Correctness tests for the analytic/deterministic experiments."""

import numpy as np
import pytest

from repro.experiments import appendix_phase_values as appendix
from repro.experiments import fig05_cross_observation as fig05
from repro.experiments import fig07_stable_phase as fig07
from repro.experiments import table1_symbol_chips as table1


class TestTable1:
    def test_structure_flags(self):
        result = table1.run()
        assert result.cyclic_structure_ok
        assert result.conjugate_structure_ok

    def test_rows_match_paper_examples(self):
        result = table1.run()
        rows = dict(result.rows)
        assert rows["0"] == "11011001110000110101001000101110"
        assert rows["F"] == "11001001011000000111011110111000"

    def test_main_prints(self, capsys):
        table1.main()
        out = capsys.readouterr().out
        assert "Table I" in out


class TestFig05:
    def test_symbol6_has_stable_region(self):
        result = fig05.run(symbol=6)
        assert result.stable_run_samples >= 30
        assert abs(result.stable_level) == pytest.approx(0.8 * np.pi)

    def test_levels_bounded_by_stable_phase(self):
        result = fig05.run(symbol=6)
        assert max(abs(v) for v in result.discrete_levels) <= 0.8 * np.pi + 1e-9

    def test_every_symbol_observable(self):
        for symbol in range(16):
            result = fig05.run(symbol=symbol)
            assert result.phases.size > 0

    def test_main_prints(self, capsys):
        fig05.run.__wrapped__ if hasattr(fig05.run, "__wrapped__") else None
        fig05.main()
        assert "Fig 5" in capsys.readouterr().out


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07.run()

    def test_plateau_lengths(self, result):
        # 84 stable values (the paper's 4.2 us); our exact-plateau run
        # includes the boundary sample.
        assert result.bit1_run >= 84
        assert result.bit0_run >= 84

    def test_optimality(self, result):
        assert result.best_other_run < result.bit1_run

    def test_separation_maximal(self, result):
        assert result.separation_rad == pytest.approx(1.6 * np.pi)

    def test_ranking_topped_by_symbee_pairs(self, result):
        top_two = {result.ranking[0][1], result.ranking[1][1]}
        assert top_two == {(0x6, 0x7), (0xE, 0xF)}


class TestAppendix:
    @pytest.fixture(scope="class")
    def result(self):
        return appendix.run()

    def test_all_derived_levels_present(self, result):
        assert result.derived_levels_present

    def test_extremes(self, result):
        assert result.extremes_are_stable_phase

    def test_grid(self, result):
        assert result.on_pi_over_20_grid

    def test_cfo_constant(self, result):
        assert result.correction_constant

    def test_every_overlapping_pair_listed(self, result):
        # 13 WiFi channels x 4 overlapping ZigBee channels, bounded by
        # band edges: at least 40 pairs.
        assert len(result.cfo_rows) >= 40
