"""Smoke coverage: every registered experiment's main() runs end to end.

Run at the minimum Monte-Carlo scale — these tests assert the printers
and plumbing, not the statistics (the integration tests and benches own
those).
"""

import pytest

from repro.experiments import EXPERIMENTS


@pytest.fixture(autouse=True)
def minimum_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.1")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_main_runs(experiment_id, capsys):
    EXPERIMENTS[experiment_id].main()
    out = capsys.readouterr().out
    assert out.strip(), experiment_id
    # Every printer emits at least one table or headline line.
    assert ("==" in out) or ("|" in out), experiment_id
