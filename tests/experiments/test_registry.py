"""Unit tests for the experiment registry."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_every_figure_and_table_registered(self):
        expected = {
            "table1", "fig05", "fig07", "fig12", "fig13", "fig14", "fig16",
            "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
            "appendix", "ext-network", "ext-cfo", "ext-reverse-cti", "ext-energy",
        }
        assert set(EXPERIMENTS) == expected

    def test_lookup(self):
        exp = get_experiment("fig12")
        assert "BER" in exp.title

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="valid ids"):
            get_experiment("fig99")

    def test_modules_importable(self):
        import importlib

        for experiment in EXPERIMENTS.values():
            module = importlib.import_module(experiment.module)
            assert hasattr(module, "run")
            assert hasattr(module, "main")
