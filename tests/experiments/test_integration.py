"""Small-scale integration runs of the Monte-Carlo experiments.

Each test runs its experiment at reduced size and asserts the *shape*
properties the paper reports — not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig12_ber_vs_snr as fig12,
    fig13_throughput_scenarios as fig13,
    fig16_ctc_comparison as fig16,
    fig17_constellation as fig17,
    fig18_nlos as fig18,
    fig19_tx_power as fig19,
    fig20_interference_example as fig20,
    fig21_hamming as fig21,
    fig22_tau_preamble as fig22,
    fig23_mobility as fig23,
)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.run(snr_grid_db=(-6, -2, 2), n_frames=4)

    def test_analytic_monotone(self, result):
        assert result.ber_analytic[0] > result.ber_analytic[-1]

    def test_simulated_tracks_analytic(self, result):
        for analytic, simulated in zip(result.ber_analytic, result.ber_simulated):
            assert simulated == pytest.approx(analytic, abs=0.12)

    def test_high_snr_error_free(self, result):
        assert result.ber_simulated[-1] < 0.01


class TestFig13Fig14:
    @pytest.fixture(scope="class")
    def result(self):
        # 24 frames/cell keeps the scenario ordering assertions out of
        # small-sample noise (8 was marginal); the waveform cache and
        # phasor decode path keep the larger run cheap.
        return fig13.run(seed=130, n_frames=24, distances=(5, 25))

    def test_outdoor_is_best(self, result):
        for name in result.scenarios:
            assert (
                result.throughput_kbps["outdoor"][-1]
                >= result.throughput_kbps[name][-1] - 0.5
            )

    def test_outdoor_reaches_raw_rate(self, result):
        assert result.throughput_kbps["outdoor"][0] == pytest.approx(31.25, abs=0.5)

    def test_mall_is_worst_at_distance(self, result):
        mall = result.throughput_kbps["mall"][-1]
        assert mall <= result.throughput_kbps["classroom"][-1]
        assert mall <= result.throughput_kbps["outdoor"][-1]

    def test_ber_complements_throughput(self, result):
        for name in result.scenarios:
            for tput, ber in zip(
                result.throughput_kbps[name], result.ber[name]
            ):
                assert tput == pytest.approx(31.25 * (1 - ber), abs=0.01)


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16.run(n_bits_baseline=256, n_frames=4)

    def test_symbee_dominates(self, result):
        rates = dict(result.rows)
        assert all(
            rates["SymBee"] > 50 * rate
            for name, rate in rates.items()
            if name != "SymBee"
        )

    def test_speedup_near_paper(self, result):
        assert result.speedup_vs_cmorse == pytest.approx(145.4, rel=0.1)


class TestFig17:
    def test_constellation_separation(self):
        result = fig17.run(n_pairs=56)
        assert result.decode_success_rate >= 0.98
        assert max(result.bit0_counts) < result.threshold
        assert min(result.bit1_counts) > result.threshold


class TestFig18:
    def test_nlos_shape(self):
        result = fig18.run(n_frames=12)
        throughput = {row[0]: row[3] for row in result.rows}
        # At this reduced Monte-Carlo size S2/S3 can tie within noise;
        # assert the robust extremes and near-ordering (the bench at
        # full scale asserts the strict wall effect).
        assert throughput["S1"] > throughput["S4"] + 2.0
        assert throughput["S2"] >= throughput["S3"] - 1.0


class TestFig19:
    def test_power_monotonicity(self):
        result = fig19.run(n_frames=6)
        for env, bers in result.ber.items():
            assert bers[0] >= bers[-1] - 0.02, env

    def test_outdoor_beats_indoor_snr(self):
        result = fig19.run(n_frames=4)
        for outdoor_snr, indoor_snr in zip(
            result.snr_db["outdoor"], result.snr_db["office (midnight)"]
        ):
            assert outdoor_snr > indoor_snr - 1.0


class TestFig20:
    def test_burst_suppresses_votes_but_decodes(self):
        result = fig20.run()
        assert result.all_bits_correct
        assert result.threshold < result.min_votes_under_burst < result.clean_votes

    def test_stronger_burst_fails(self):
        # At -14 dB SINR the burst must actually corrupt bits.
        result = fig20.run(sinr_db=-14.0, seed=7)
        assert result.min_votes_under_burst < result.threshold or (
            not result.all_bits_correct
        )


class TestFig21:
    def test_coding_helps(self):
        result = fig21.run(n_frames=4, sinr_grid_db=(-6, 0))
        assert result.ber_coded[0] <= result.ber_uncoded[0]
        assert result.ber_uncoded[0] > result.ber_uncoded[1] - 0.02


class TestFig22:
    def test_tau_tradeoff(self):
        result = fig22.run_tau_sweep(n_frames=4, taus=(0, 10, 20))
        assert result.false_negative_rate[0] >= result.false_negative_rate[-1]
        assert result.false_positive_rate[0] <= result.false_positive_rate[-1]

    def test_preamble_helps(self):
        result = fig22.run_preamble_comparison(
            n_frames=4, snr_grid_db=(4.0, 6.0)
        )
        for with_pre, without in zip(
            result.ber_with_preamble, result.ber_without_preamble
        ):
            assert with_pre <= without + 0.02


class TestFig23:
    def test_mobile_ber_nonzero(self):
        result = fig23.run(n_frames=20)
        bers = [row[2] for row in result.rows]
        assert max(bers) > 0.0
        assert all(b < 0.5 for b in bers)
