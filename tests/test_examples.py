"""Smoke tests: every example script must run end to end.

Examples are the repo's public face; these tests import each one from
the examples/ directory and execute its ``main()`` at reduced
Monte-Carlo scale, asserting on its printed outcome.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.2")


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "decoded message:     'SymBee!'" in out

    def test_cross_technology_broadcast(self, capsys):
        load_example("cross_technology_broadcast").main()
        out = capsys.readouterr().out
        assert "both technologies agree" in out

    def test_channel_coordination(self, capsys):
        load_example("channel_coordination").main()
        out = capsys.readouterr().out
        assert "SymBee coordinated" in out

    def test_trace_workflow(self, capsys):
        load_example("trace_workflow").main()
        out = capsys.readouterr().out
        assert "trace-driven SINR sweep" in out
        assert "0/40" in out

    def test_sensor_upstream(self, capsys):
        load_example("sensor_upstream").main()
        out = capsys.readouterr().out
        assert "delivered readings" in out

    def test_site_survey(self, capsys):
        load_example("site_survey").main()
        out = capsys.readouterr().out
        assert "site survey" in out and "outdoor" in out

    def test_sensor_network(self, capsys):
        module = load_example("sensor_network")
        # Reduced run: two cluster sizes, short duration.
        from repro.channel.scenarios import get_scenario

        result = module.run_cluster(3, get_scenario("office"), duration_s=1.0)
        assert result.readings_generated > 0
        assert 0.0 <= result.delivery_ratio <= 1.0

    def test_adaptive_link(self, capsys):
        module = load_example("adaptive_link")
        import numpy as np

        delivered, airtime, observations = module.run_epoch(
            10.0, False, np.random.default_rng(0), n_frames=2
        )
        assert delivered == airtime == 96
        assert len(observations) == 2
