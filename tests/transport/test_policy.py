"""Adaptation policy: quality quantizer and scheme decision surface."""

import pytest

from repro.transport.pdu import (
    SCHEME_CONV,
    SCHEME_HAMMING,
    SCHEME_NONE,
    feasible_schemes,
)
from repro.transport.policy import (
    TransportPolicy,
    dequantize_quality,
    quantize_quality,
    quality_to_ber,
)


class TestQuantizer:
    def test_covers_waterfall(self):
        # Pr_eps below the waterfall is "clean"; above it saturates.
        assert quantize_quality(0.0) == 0
        assert quantize_quality(0.19) == 0
        assert quantize_quality(0.49) == 15
        assert quantize_quality(0.9) == 15

    def test_monotone(self):
        values = [quantize_quality(0.005 * k) for k in range(120)]
        assert values == sorted(values)

    def test_dequantize_inverts_to_bin(self):
        for q in range(16):
            pr = dequantize_quality(q)
            assert quantize_quality(pr) == q
        assert dequantize_quality(0) == 0.0

    def test_ber_monotone_in_quality(self):
        bers = [quality_to_ber(q) for q in range(16)]
        assert bers == sorted(bers)
        assert bers[0] == 0.0
        assert bers[-1] > 0.05


class TestDecisionSurface:
    def test_uninformed_prior_is_strongest(self):
        policy = TransportPolicy()
        assert not policy.informed
        assert policy.estimated_ber == 0.5
        decision = policy.decide_fragmentation()
        assert decision.scheme == SCHEME_CONV
        assert not decision.informed
        # Per-attempt decision likewise escalates to strongest feasible.
        assert policy.decide_scheme(feasible_schemes(8), 8).scheme == SCHEME_CONV

    def test_clean_link_runs_uncoded(self):
        policy = TransportPolicy()
        policy.on_quality(0)
        decision = policy.decide_fragmentation()
        assert decision.informed
        assert decision.scheme == SCHEME_NONE
        assert decision.fragment_bits == 50

    def test_scheme_escalates_with_quality(self):
        # Walking quality up the waterfall must cross none -> hamming ->
        # conv without ever de-escalating.
        policy = TransportPolicy()
        schemes = []
        for q in range(16):
            policy.on_quality(q)
            schemes.append(policy.decide_fragmentation().scheme)
        assert schemes == sorted(schemes)
        assert schemes[0] == SCHEME_NONE
        assert SCHEME_HAMMING in schemes
        assert schemes[-1] == SCHEME_CONV

    def test_panic_region_overrides_goodput_ranking(self):
        policy = TransportPolicy()
        policy.on_quality(15)
        assert policy.estimated_ber >= policy.PANIC_BER
        assert policy.decide_fragmentation().scheme == SCHEME_CONV
        # Even when conv no longer fits, pick the strongest that does.
        assert (
            policy.decide_scheme(feasible_schemes(50), 50).scheme == SCHEME_NONE
        )
        assert (
            policy.decide_scheme(feasible_schemes(18), 18).scheme
            == SCHEME_HAMMING
        )

    def test_goodputs_reported_for_all_feasible(self):
        policy = TransportPolicy()
        policy.on_quality(5)
        decision = policy.decide_scheme(feasible_schemes(8), 8)
        assert set(decision.goodputs) == {
            SCHEME_NONE,
            SCHEME_HAMMING,
            SCHEME_CONV,
        }
        assert all(g >= 0.0 for g in decision.goodputs.values())

    def test_no_feasible_scheme_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            TransportPolicy().decide_scheme((), 60)

    def test_success_probability_orders_schemes_under_noise(self):
        # At a mid-waterfall BER the coded schemes must survive better
        # than uncoded for the same payload.
        policy = TransportPolicy()
        ber = 0.02
        p_none = policy._success_probability(SCHEME_NONE, 8, ber)
        p_hamming = policy._success_probability(SCHEME_HAMMING, 8, ber)
        p_conv = policy._success_probability(SCHEME_CONV, 8, ber)
        assert p_none < p_hamming < p_conv <= 1.0
