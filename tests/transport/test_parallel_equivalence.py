"""Transport Monte-Carlo trials: worker-pool results match serial runs.

The session's purpose-keyed seeding exists precisely so independent
trials can fan out over ``repro.runtime`` worker processes; this pins
the contract that serial and parallel execution produce identical
:class:`TransportResult` objects, in order.
"""

from repro.obs import REGISTRY
from repro.runtime import run_trials
from repro.transport.faults import make_profile
from repro.transport.session import TransportSession


def _transport_trial(seed):
    """Module-level (picklable) trial: one message over a bursty link."""
    session = TransportSession(
        snr_db=3.0,
        seed=seed,
        fec="adaptive",
        fault_profile=make_profile("burst"),
    )
    return session.send(b"parallel equivalence")


def test_parallel_results_match_serial():
    seeds = list(range(4))
    serial = run_trials(_transport_trial, seeds, jobs=1)
    parallel = run_trials(_transport_trial, seeds, jobs=2)
    assert serial == parallel
    assert all(r.byte_exact for r in serial)


def test_worker_metric_shards_merge():
    REGISTRY.enable()
    seeds = list(range(3))
    run_trials(_transport_trial, seeds, jobs=2)
    counters = REGISTRY.snapshot()["counters"]
    assert counters["transport.messages"] == len(seeds)
    assert counters["transport.messages.delivered"] == len(seeds)
    assert counters["transport.fragments.sent"] > 0
