"""Transport fragments through the streaming receive engine.

Broadcast path: a scripted :class:`StreamSender` plays the exact frames
``encode_fragment`` produces, the stream engine delimits them from the
continuous capture, and :class:`StreamReassembler` rebuilds the message
— no ACK channel, no ARQ.
"""

import numpy as np

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream.engine import batch_decode_stream
from repro.transport import (
    SCHEME_HAMMING,
    StreamReassembler,
    encode_fragment,
    segment_message,
)

MESSAGE = b"streamed!"


def _capture(seed=3, stutter=1):
    fragments = segment_message(MESSAGE, msg_id=5, fragment_bits=18)
    script = tuple(
        encode_fragment(f, SCHEME_HAMMING)
        for f in fragments
        for _ in range(stutter)
    )
    sender = StreamSender(
        0, zigbee_channel=13, reading_interval_s=0.003, frames=script
    )
    traffic = StreamTraffic([sender], duration_s=0.004 * (len(script) + 3))
    samples, truth = traffic.capture(np.random.default_rng(seed))
    return samples, truth, len(fragments)


def test_scripted_fragments_reassemble_from_stream():
    samples, truth, n_fragments = _capture()
    assert len(truth) == n_fragments  # whole script made it on the air
    frames = batch_decode_stream(samples)
    reassembler = StreamReassembler()
    completed = reassembler.push_all(frames)
    assert [m.data for m in completed] == [MESSAGE]
    assert completed[0].msg_id == 5
    assert completed[0].frag_count == n_fragments
    assert completed[0].zigbee_channel == 13
    assert reassembler.pending == 0


def test_duplicate_fragments_tolerated():
    # Broadcast redundancy: every fragment aired twice back-to-back
    # still yields the message exactly once, extra copies counted as
    # duplicates (the last one completes, so it is never a duplicate).
    samples, truth, n_fragments = _capture(stutter=2)
    assert len(truth) == 2 * n_fragments
    reassembler = StreamReassembler()
    completed = reassembler.push_all(batch_decode_stream(samples))
    assert [m.data for m in completed] == [MESSAGE]
    assert reassembler.fragments_accepted == 2 * n_fragments
    assert completed[0].duplicates == n_fragments - 1


def test_non_transport_frames_are_counted_not_crashed():
    # A plain DATA-frame sender (no script) produces frames the
    # transport layer must reject cleanly.
    sender = StreamSender(0, zigbee_channel=13, reading_interval_s=0.003)
    traffic = StreamTraffic([sender], duration_s=0.02)
    samples, truth = traffic.capture(np.random.default_rng(1))
    assert truth  # something was actually sent
    reassembler = StreamReassembler()
    completed = reassembler.push_all(batch_decode_stream(samples))
    assert completed == []
    assert reassembler.frames_rejected >= len(truth)
    assert reassembler.fragments_accepted == 0
