"""Transport PDU codec: framing, FEC paths, implicit-field integrity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame import MAX_DATA_BITS, transport_frame_type
from repro.transport.pdu import (
    Fragment,
    NOMINAL_PAYLOAD_BITS,
    PDU_OVERHEAD_BITS,
    SCHEME_CONV,
    SCHEME_HAMMING,
    SCHEME_NAMES,
    SCHEME_NONE,
    decode_fragment,
    encode_fragment,
    feasible_schemes,
    payload_capacity,
    scheme_id,
)

ALL_SCHEMES = (SCHEME_NONE, SCHEME_HAMMING, SCHEME_CONV)


def _fragment(payload_bits, rng, msg_id=3, frag_index=7, frag_count=20):
    return Fragment(
        msg_id=msg_id,
        frag_index=frag_index,
        frag_count=frag_count,
        payload=tuple(int(b) for b in rng.integers(0, 2, payload_bits)),
    )


class TestCapacity:
    def test_known_capacities(self):
        assert NOMINAL_PAYLOAD_BITS == {
            SCHEME_NONE: 50,
            SCHEME_HAMMING: 18,
            SCHEME_CONV: 8,
        }

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_capacity_fills_frame(self, scheme, rng):
        data_bits, _, _ = encode_fragment(
            _fragment(payload_capacity(scheme), rng), scheme
        )
        assert len(data_bits) <= MAX_DATA_BITS

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_over_capacity_rejected(self, scheme, rng):
        fragment = _fragment(payload_capacity(scheme) + 1, rng)
        with pytest.raises(ValueError, match="capacity"):
            encode_fragment(fragment, scheme)

    def test_feasible_schemes_weakest_first(self):
        assert feasible_schemes(8) == (SCHEME_NONE, SCHEME_HAMMING, SCHEME_CONV)
        assert feasible_schemes(18) == (SCHEME_NONE, SCHEME_HAMMING)
        assert feasible_schemes(50) == (SCHEME_NONE,)
        assert feasible_schemes(51) == ()

    def test_scheme_id_names(self):
        for scheme in ALL_SCHEMES:
            assert scheme_id(SCHEME_NAMES[scheme]) == scheme
        with pytest.raises(ValueError, match="unknown FEC scheme"):
            scheme_id("turbo")


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_clean_round_trip_at_capacity(self, scheme, rng):
        fragment = _fragment(payload_capacity(scheme), rng)
        data_bits, frame_type, sequence = encode_fragment(fragment, scheme)
        assert frame_type == transport_frame_type(scheme)
        assert sequence == fragment.frag_index
        assert decode_fragment(frame_type, sequence, data_bits) == fragment

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("payload_bits", (1, 2, 3, 4, 5, 7, 8))
    def test_short_payloads_round_trip(self, scheme, payload_bits, rng):
        # Exercises the Hamming pad-length disambiguation: the encoder's
        # zero pad is not transmitted, the trailing checksum finds the
        # true PDU length among the <= 4 candidates.
        fragment = _fragment(payload_bits, rng)
        data_bits, frame_type, sequence = encode_fragment(fragment, scheme)
        assert decode_fragment(frame_type, sequence, data_bits) == fragment

    @settings(max_examples=40, deadline=None)
    @given(
        scheme=st.sampled_from(ALL_SCHEMES),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_random_fragments_round_trip(self, scheme, seed):
        rng = np.random.default_rng(seed)
        payload_bits = int(rng.integers(1, payload_capacity(scheme) + 1))
        fragment = Fragment(
            msg_id=int(rng.integers(0, 16)),
            frag_index=int(rng.integers(0, 8)),
            frag_count=int(rng.integers(9, 65)),
            payload=tuple(int(b) for b in rng.integers(0, 2, payload_bits)),
        )
        data_bits, frame_type, sequence = encode_fragment(fragment, scheme)
        assert decode_fragment(frame_type, sequence, data_bits) == fragment


class TestErrorHandling:
    @pytest.mark.parametrize("scheme", (SCHEME_HAMMING, SCHEME_CONV))
    def test_single_bit_error_corrected(self, scheme, rng):
        fragment = _fragment(payload_capacity(scheme), rng)
        data_bits, frame_type, sequence = encode_fragment(fragment, scheme)
        for position in range(len(data_bits)):
            corrupted = list(data_bits)
            corrupted[position] ^= 1
            assert decode_fragment(frame_type, sequence, corrupted) == fragment

    def test_uncoded_error_rejected(self, rng):
        fragment = _fragment(payload_capacity(SCHEME_NONE), rng)
        data_bits, frame_type, sequence = encode_fragment(fragment, SCHEME_NONE)
        for position in range(len(data_bits)):
            corrupted = list(data_bits)
            corrupted[position] ^= 1
            assert decode_fragment(frame_type, sequence, corrupted) is None

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_corrupted_sequence_byte_rejected(self, scheme, rng):
        # frag_index rides the uncoded sequence byte; the inner checksum
        # covers it implicitly, so a corrupted byte must not produce a
        # fragment filed under the wrong index.
        fragment = _fragment(payload_capacity(scheme), rng)
        data_bits, frame_type, sequence = encode_fragment(fragment, scheme)
        assert decode_fragment(frame_type, (sequence + 1) % 64, data_bits) is None

    @pytest.mark.parametrize("scheme", (SCHEME_NONE, SCHEME_HAMMING))
    def test_corrupted_frame_type_rejected(self, scheme, rng):
        # The FEC scheme rides the frame type: flipping it changes the
        # decode path *and* the implicit checksum input.
        fragment = _fragment(min(8, payload_capacity(scheme)), rng)
        data_bits, frame_type, sequence = encode_fragment(fragment, scheme)
        other = transport_frame_type(scheme + 1)
        assert decode_fragment(other, sequence, data_bits) is None

    def test_non_transport_frame_type_ignored(self, rng):
        fragment = _fragment(8, rng)
        data_bits, _, sequence = encode_fragment(fragment, SCHEME_NONE)
        for frame_type in (0, 1, 2, 3, 7, 15):
            assert decode_fragment(frame_type, sequence, data_bits) is None

    def test_garbage_bits_rejected(self, rng):
        for n in (0, 1, 22, 50, 72):
            bits = list(rng.integers(0, 2, n))
            for scheme in ALL_SCHEMES:
                frame_type = transport_frame_type(scheme)
                # Not a crash, and almost surely not a fragment; accept
                # either None or a valid Fragment (CRC-12 false accepts
                # at ~2^-12 are possible in principle, not at this seed).
                assert decode_fragment(frame_type, 0, bits) is None


class TestFragmentValidation:
    def test_field_ranges_enforced(self):
        with pytest.raises(ValueError):
            Fragment(msg_id=16, frag_index=0, frag_count=1, payload=(1,))
        with pytest.raises(ValueError):
            Fragment(msg_id=0, frag_index=64, frag_count=64, payload=(1,))
        with pytest.raises(ValueError):
            Fragment(msg_id=0, frag_index=0, frag_count=0, payload=(1,))
        with pytest.raises(ValueError):
            Fragment(msg_id=0, frag_index=3, frag_count=3, payload=(1,))

    def test_overhead_constant_consistent(self):
        # msg_id(4) + frag_count(6) + crc12(12)
        assert PDU_OVERHEAD_BITS == 22
