"""Transport session behavior on controlled links."""

import pytest

from repro.obs import REGISTRY
from repro.transport.faults import SnrRamp, make_profile
from repro.transport.pdu import SCHEME_NAMES, SCHEME_CONV, SCHEME_NONE
from repro.transport.session import TransportSession

MESSAGE = b"hello symbee transport"


class TestCleanLink:
    def test_fixed_none_sends_each_fragment_once(self):
        # On a clean high-SNR link with a working ACK channel the ARQ
        # must not waste a single transmission.
        session = TransportSession(snr_db=8.0, seed=1, fec="none")
        result = session.send(MESSAGE)
        assert result.delivered and result.byte_exact
        assert result.n_tx == result.frag_count
        assert result.retransmits == 0
        assert result.goodput_bps > 0

    @pytest.mark.parametrize("fec", ("none", "hamming", "conv"))
    def test_fixed_scheme_is_honored(self, fec):
        session = TransportSession(snr_db=8.0, seed=2, fec=fec)
        result = session.send(b"fixed!")
        assert result.byte_exact
        assert set(result.scheme_counts) == {fec}
        assert result.fec_switches == 0

    def test_adaptive_starts_conservative_then_relaxes(self):
        # Uninformed prior: strongest scheme, smallest fragments.  The
        # first ACK's quality report should let message 2 run lighter.
        session = TransportSession(snr_db=8.0, seed=1, fec="adaptive")
        first = session.send(MESSAGE)
        assert first.byte_exact
        assert first.fragment_bits == 8
        assert first.schedule[0].scheme == SCHEME_CONV
        second = session.send(MESSAGE)
        assert second.byte_exact
        assert second.fragment_bits > first.fragment_bits
        assert SCHEME_NAMES[SCHEME_NONE] in second.scheme_counts

    def test_session_clock_is_monotone_across_messages(self):
        session = TransportSession(snr_db=8.0, seed=5, fec="none")
        first = session.send(b"one")
        second = session.send(b"two")
        assert first.elapsed_s > 0 and second.elapsed_s > 0
        assert session._clock_s >= first.elapsed_s + second.elapsed_s

    def test_schedule_is_time_ordered_ground_truth(self):
        session = TransportSession(snr_db=8.0, seed=1, fec="none")
        result = session.send(MESSAGE)
        times = [tx.time_s for tx in result.schedule]
        assert times == sorted(times)
        assert all(tx.attempt >= 1 for tx in result.schedule)
        indexes = {tx.frag_index for tx in result.schedule}
        assert indexes == set(range(result.frag_count))


class TestAdaptation:
    def test_snr_ramp_forces_fec_switches(self):
        # Acceptance: riding the default loss trajectory (clean -> +4 dB
        # -> clean) the adaptive sender must change FEC scheme at least
        # twice — down-shift into coding and back out.
        REGISTRY.enable()
        session = TransportSession(
            snr_db=3.0,
            seed=11,
            fec="adaptive",
            fault_profile=SnrRamp(),
        )
        result = session.send(bytes(range(48)))
        assert result.delivered and result.byte_exact
        assert result.fec_switches >= 2
        assert len(result.scheme_counts) >= 2
        counters = REGISTRY.snapshot()["counters"]
        assert counters["transport.fec_switches"] == result.fec_switches

    def test_quality_feedback_reaches_policy(self):
        session = TransportSession(snr_db=8.0, seed=1, fec="adaptive")
        assert not session.policy.informed
        session.send(b"probe")
        assert session.policy.informed


class TestMetrics:
    def test_transport_namespace_populated(self):
        REGISTRY.enable()
        session = TransportSession(snr_db=8.0, seed=1, fec="none")
        result = session.send(MESSAGE)
        snapshot = REGISTRY.snapshot()
        counters = snapshot["counters"]
        assert counters["transport.messages"] == 1
        assert counters["transport.messages.delivered"] == 1
        assert counters["transport.fragments.sent"] == result.n_tx
        assert counters["transport.acks.sent"] == len(result.acks)
        assert snapshot["gauges"]["transport.goodput_bps"] == pytest.approx(
            result.goodput_bps
        )
        assert snapshot["histograms"]["transport.attempts"]["count"] == (
            result.frag_count
        )

    def test_disabled_registry_records_nothing(self):
        session = TransportSession(snr_db=8.0, seed=1, fec="none")
        session.send(b"quiet")
        assert "transport.messages" not in REGISTRY.snapshot()["counters"]


class TestFailurePath:
    def test_budget_exhaustion_reports_failure(self):
        # An SNR so low that nothing gets through: the session must stop
        # after the attempt budget, not spin forever.
        session = TransportSession(
            snr_db=-6.0, seed=3, fec="none", max_attempts=2
        )
        result = session.send(b"doomed")
        assert not result.delivered
        assert not result.byte_exact
        assert result.n_tx <= 2 * result.frag_count

    def test_failed_message_counted(self):
        REGISTRY.enable()
        session = TransportSession(
            snr_db=-6.0, seed=3, fec="none", max_attempts=2
        )
        session.send(b"doomed")
        counters = REGISTRY.snapshot()["counters"]
        assert counters["transport.messages.failed"] == 1

    def test_bad_fec_name_rejected(self):
        with pytest.raises(ValueError, match="unknown FEC scheme"):
            TransportSession(fec="turbo")

    def test_profile_description_in_registry(self):
        profile = make_profile("burst")
        session = TransportSession(fault_profile=profile)
        assert session.profile.describe().startswith("burst")
