"""Transport tests touch the process-wide telemetry state; restore it."""

import pytest

from repro.obs import REGISTRY, TRACER


@pytest.fixture(autouse=True)
def _clean_obs():
    REGISTRY.disable()
    REGISTRY.reset()
    TRACER.disable()
    TRACER.reset()
    yield
    REGISTRY.disable()
    REGISTRY.reset()
    TRACER.disable()
    TRACER.reset()
