"""Selective-repeat ARQ sender: window, timers, budget, ACK intake."""

import pytest

from repro.transport.ackchannel import ACK_WINDOW, AckRecord
from repro.transport.arq import ArqSender


def _ack(msg_id=0, base=0, bitmap=(0,) * ACK_WINDOW, quality=0):
    return AckRecord(msg_id=msg_id, base=base, bitmap=bitmap, quality=quality)


class TestWindow:
    def test_offers_lowest_eligible_first(self):
        arq = ArqSender(frag_count=4, window=2)
        assert arq.next_tx(0.0) == 0
        arq.record_tx(0, 0.0, airtime_s=0.01)
        assert arq.next_tx(0.0) == 1
        arq.record_tx(1, 0.0, airtime_s=0.01)
        # Window full, both timers armed: nothing eligible now.
        assert arq.next_tx(0.0) is None

    def test_window_blocks_new_data_beyond_base(self):
        arq = ArqSender(frag_count=10, window=3)
        for k in range(3):
            arq.record_tx(k, 0.0, airtime_s=0.0)
        # Fragment 3 is outside base..base+2 until base advances.
        arq.on_ack(_ack(base=1), msg_id=0)
        assert arq.base == 1
        assert arq.next_tx(0.0) == 3

    def test_retransmission_beats_new_data(self):
        arq = ArqSender(frag_count=4, window=4, rto_s=0.1)
        arq.record_tx(0, 0.0, airtime_s=0.0)
        arq.record_tx(1, 0.0, airtime_s=0.0)
        # After the timers fire, fragment 0 outranks untouched 2 and 3.
        assert arq.next_tx(0.2) == 0


class TestTimers:
    def test_timer_arms_after_airtime_plus_rto(self):
        arq = ArqSender(frag_count=1, rto_s=0.35)
        arq.record_tx(0, 1.0, airtime_s=0.05)
        assert arq.next_tx(1.0) is None
        assert arq.next_tx(1.39) is None
        assert arq.next_tx(1.41) == 0
        assert arq.next_wakeup() == pytest.approx(1.40)

    def test_wakeup_ignores_acked_and_exhausted(self):
        arq = ArqSender(frag_count=2, max_attempts=1, rto_s=0.1)
        arq.record_tx(0, 0.0, airtime_s=0.0)
        arq.record_tx(1, 0.0, airtime_s=0.0)
        arq.on_ack(_ack(base=1), msg_id=0)
        # Fragment 0 acked, fragment 1 out of budget: no wakeup left.
        assert arq.next_wakeup() is None


class TestBudget:
    def test_exhaustion_after_max_attempts(self):
        arq = ArqSender(frag_count=1, max_attempts=3, rto_s=0.0)
        for n in range(3):
            assert arq.next_tx(float(n)) == 0
            arq.record_tx(0, float(n), airtime_s=0.0)
        assert arq.next_tx(100.0) is None
        assert arq.exhausted
        assert not arq.done

    def test_tx_to_acked_fragment_rejected(self):
        arq = ArqSender(frag_count=1)
        arq.on_ack(_ack(base=1), msg_id=0)
        with pytest.raises(ValueError, match="already acknowledged"):
            arq.record_tx(0, 0.0, airtime_s=0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ArqSender(frag_count=0)
        with pytest.raises(ValueError):
            ArqSender(frag_count=1, window=0)
        with pytest.raises(ValueError):
            ArqSender(frag_count=1, max_attempts=0)


class TestAckIntake:
    def test_cumulative_base_plus_bitmap(self):
        arq = ArqSender(frag_count=10)
        newly = arq.on_ack(
            _ack(base=2, bitmap=(0, 1, 0, 1, 0, 0, 0, 0)), msg_id=0
        )
        assert sorted(newly) == [0, 1, 3, 5]
        assert arq.base == 2
        # A later cumulative ACK fills the gap and advances past the
        # bitmap-acked indexes without re-reporting them.
        newly = arq.on_ack(_ack(base=4), msg_id=0)
        assert sorted(newly) == [2]
        assert arq.base == 4  # fragment 4 itself is still missing

    def test_done_when_all_acked(self):
        arq = ArqSender(frag_count=3)
        arq.on_ack(_ack(base=3), msg_id=0)
        assert arq.done
        assert arq.next_tx(0.0) is None

    def test_foreign_msg_id_ignored(self):
        arq = ArqSender(frag_count=2)
        assert arq.on_ack(_ack(msg_id=7, base=2), msg_id=0) == []
        assert arq.base == 0

    def test_none_record_ignored(self):
        arq = ArqSender(frag_count=2)
        assert arq.on_ack(None, msg_id=0) == []

    def test_bitmap_beyond_message_ignored(self):
        arq = ArqSender(frag_count=3)
        newly = arq.on_ack(
            _ack(base=2, bitmap=(1, 1, 1, 1, 1, 1, 1, 1)), msg_id=0
        )
        assert sorted(newly) == [0, 1, 2]
        assert arq.done
