"""FreeBee ACK side channel: record codec and impairment model."""

import numpy as np
import pytest

from repro.transport.ackchannel import (
    ACK_BITS,
    ACK_WINDOW,
    AckChannel,
    AckRecord,
)


def _record(msg_id=5, base=3, bitmap=(1, 0, 1, 1, 0, 0, 1, 0), quality=9):
    return AckRecord(msg_id=msg_id, base=base, bitmap=bitmap, quality=quality)


class TestAckRecord:
    def test_bit_round_trip(self):
        record = _record()
        bits = record.to_bits()
        assert len(bits) == ACK_BITS == 30
        assert AckRecord.from_bits(bits) == record

    def test_all_field_values_round_trip(self):
        for msg_id in (0, 15):
            for base in (0, 63):
                for quality in (0, 15):
                    record = _record(msg_id=msg_id, base=base, quality=quality)
                    assert AckRecord.from_bits(record.to_bits()) == record

    def test_crc_rejects_any_single_flip(self):
        bits = _record().to_bits()
        for position in range(len(bits)):
            corrupted = list(bits)
            corrupted[position] ^= 1
            assert AckRecord.from_bits(corrupted) is None

    def test_wrong_length_rejected(self):
        bits = _record().to_bits()
        assert AckRecord.from_bits(bits[:-1]) is None
        assert AckRecord.from_bits(bits + [0]) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="bitmap"):
            AckRecord(msg_id=0, base=0, bitmap=(1,) * (ACK_WINDOW - 1), quality=0)
        with pytest.raises(ValueError, match="quality"):
            AckRecord(msg_id=0, base=0, bitmap=(0,) * ACK_WINDOW, quality=16)


class TestAckChannel:
    def test_duration_is_beacon_train(self):
        channel = AckChannel()
        # 30 bits at 2 bits/beacon = 15 beacons at 6 ms
        assert channel.duration_s() == pytest.approx(15 * 0.006)

    def test_clean_channel_delivers(self, rng):
        channel = AckChannel()
        delivery = channel.send(_record(), start_s=1.0, rng=rng)
        assert delivery.record == _record()
        assert delivery.beacons_lost == 0
        assert delivery.arrival_s == pytest.approx(1.0 + channel.duration_s())

    def test_loss_is_all_or_nothing(self, rng):
        # One lost beacon shortens the symbol stream -> CRC kills the
        # whole record; delivery rate is (1-p)^15, not per-bit.
        channel = AckChannel(loss_prob=0.05)
        outcomes = [
            channel.send(_record(), start_s=0.0, rng=rng) for _ in range(200)
        ]
        delivered = [d for d in outcomes if d.record is not None]
        lossy = [d for d in outcomes if d.beacons_lost > 0]
        assert all(d.record == _record() for d in delivered)
        assert all(d.record is None for d in lossy)
        rate = len(delivered) / len(outcomes)
        assert 0.95**15 * 0.6 < rate < 1.0

    def test_heavy_jitter_breaks_decoding(self):
        # Jitter >> shift quantum scrambles the timing symbols.
        clean = AckChannel(jitter_sigma_s=0.0)
        noisy = AckChannel(jitter_sigma_s=2e-3)
        rng = np.random.default_rng(7)
        assert clean.send(_record(), 0.0, rng).record is not None
        broken = sum(
            noisy.send(_record(), 0.0, np.random.default_rng(k)).record is None
            for k in range(20)
        )
        assert broken >= 18

    def test_blackout_window_swallows_acks(self, rng):
        channel = AckChannel(blackouts=((0.0, 10.0),))
        delivery = channel.send(_record(), start_s=1.0, rng=rng)
        assert delivery.record is None
        assert delivery.beacons_lost == delivery.beacons_sent
        # Outside the window the same channel is clean.
        delivery = channel.send(_record(), start_s=20.0, rng=rng)
        assert delivery.record == _record()

    def test_invalid_loss_prob_rejected(self):
        with pytest.raises(ValueError, match="loss_prob"):
            AckChannel(loss_prob=1.0)
