"""End-to-end acceptance: byte-exact delivery over a badly lossy link.

The operating point is SNR 1.5 dB, where the raw SymBee link drops well
over 30% of uncoded frames (measured in-test, same harness).  Under
every fault profile a multi-fragment message must still arrive 100%
byte-exact with a bounded number of transmissions, and the whole
exchange must be a deterministic function of the seed.
"""

import pickle

import pytest
from numpy.random import SeedSequence, default_rng

from repro.transport.channel import TransportChannel
from repro.transport.faults import PROFILES, make_profile
from repro.transport.pdu import (
    NOMINAL_PAYLOAD_BITS,
    SCHEME_NONE,
    Fragment,
    decode_fragment,
    encode_fragment,
)
from repro.transport.session import TransportSession, _spawned_rng

#: Acceptance operating point: raw (uncoded, no ARQ) loss >= 30% here.
E2E_SNR_DB = 1.5

MESSAGE = bytes(range(48))  # multi-fragment under every scheme


def _raw_frame_loss(snr_db, n_frames=40, seed=99):
    """Fraction of bare uncoded fragments lost at this SNR (no ARQ)."""
    channel = TransportChannel(snr_db=snr_db)
    root = SeedSequence(seed)
    profile_rng = default_rng(1)
    payload_rng = default_rng(7)
    ok = 0
    for k in range(n_frames):
        fragment = Fragment(
            msg_id=1,
            frag_index=k % 50,
            frag_count=50,
            payload=tuple(
                payload_rng.integers(0, 2, NOMINAL_PAYLOAD_BITS[SCHEME_NONE])
            ),
        )
        data_bits, frame_type, sequence = encode_fragment(fragment, SCHEME_NONE)
        obs = channel.transmit(
            data_bits, frame_type, sequence, 0.0, _spawned_rng(root, k), profile_rng
        )
        if obs.delivered:
            ok += decode_fragment(obs.frame_type, obs.sequence, obs.data_bits) == fragment
    return 1.0 - ok / n_frames


def test_operating_point_is_genuinely_lossy():
    # The whole point of the exercise: the raw link at the e2e SNR loses
    # at least 30% of frames, so reliability below must come from the
    # transport (ARQ + FEC), not from a friendly channel.
    assert _raw_frame_loss(E2E_SNR_DB) >= 0.30


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_byte_exact_delivery_under_fault_profile(profile_name):
    session = TransportSession(
        snr_db=E2E_SNR_DB,
        seed=11,
        fec="adaptive",
        fault_profile=make_profile(profile_name),
    )
    result = session.send(MESSAGE)
    assert result.delivered
    assert result.byte_exact
    assert result.frag_count > 1
    # Bounded retransmissions: the ARQ budget caps the schedule.
    assert result.n_tx <= 12 * result.frag_count
    assert result.retransmits < result.n_tx
    # The exchange really leaned on the ARQ at this operating point.
    assert result.retransmits > 0


def test_same_seed_same_schedule():
    def run(seed):
        session = TransportSession(
            snr_db=E2E_SNR_DB,
            seed=seed,
            fec="adaptive",
            fault_profile=make_profile("burst"),
        )
        return session.send(bytes(range(32)))

    first, second = run(3), run(3)
    assert first.schedule == second.schedule
    assert first.acks == second.acks
    assert first == second
    # ... and a different seed explores a different trajectory.
    assert run(4).schedule != first.schedule


def test_result_is_picklable_for_worker_processes():
    session = TransportSession(snr_db=E2E_SNR_DB, seed=3, fec="adaptive")
    result = session.send(b"across process boundaries")
    assert pickle.loads(pickle.dumps(result)) == result
