"""Segmentation/reassembly: uniform fragments, marker padding, dedup."""

import pytest

from repro.transport.pdu import Fragment, MAX_FRAGMENTS
from repro.transport.segmentation import (
    Reassembler,
    bits_to_bytes,
    bytes_to_bits,
    segment_message,
    unpad_bits,
)


class TestBitPacking:
    def test_round_trip(self, rng):
        data = bytes(rng.integers(0, 256, 17, dtype="uint8"))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_empty(self):
        assert bytes_to_bits(b"") == []
        assert bits_to_bytes([]) == b""

    def test_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_ragged_length_rejected(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            bits_to_bytes([1, 0, 1])


class TestSegmentation:
    @pytest.mark.parametrize("size", (0, 1, 6, 7, 48))
    @pytest.mark.parametrize("fragment_bits", (8, 18, 50))
    def test_round_trip(self, size, fragment_bits, rng):
        data = bytes(rng.integers(0, 256, size, dtype="uint8"))
        fragments = segment_message(data, msg_id=5, fragment_bits=fragment_bits)
        assert all(len(f.payload) == fragment_bits for f in fragments)
        assert all(f.frag_count == len(fragments) for f in fragments)
        r = Reassembler(5, len(fragments))
        for fragment in fragments:
            assert r.add(fragment)
        assert r.complete
        assert r.message() == data

    def test_fragment_count_is_minimal(self):
        # 48 bytes + marker = 385 bits -> ceil(385/50) = 8 fragments
        assert len(segment_message(b"\x00" * 48, 0, 50)) == 8
        assert len(segment_message(b"", 0, 50)) == 1  # just the marker

    def test_too_many_fragments_raises(self):
        # 65 bytes at 8 bits/fragment -> 66 fragments > 64
        with pytest.raises(ValueError, match="use a larger"):
            segment_message(b"\x00" * 65, 0, 8)
        assert len(segment_message(b"\x00" * 63, 0, 8)) <= MAX_FRAGMENTS

    def test_bad_fragment_bits_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            segment_message(b"hi", 0, 0)

    def test_unpad_detects_missing_marker(self):
        assert unpad_bits([1, 0, 1, 1, 0, 0]) == [1, 0, 1]
        assert unpad_bits([0, 0, 0]) is None
        assert unpad_bits([]) is None


class TestReassembler:
    def _fragments(self, rng, data=b"symbee!", fragment_bits=18):
        return segment_message(data, msg_id=2, fragment_bits=fragment_bits), data

    def test_out_of_order_delivery(self, rng):
        fragments, data = self._fragments(rng)
        r = Reassembler(2, len(fragments))
        for fragment in reversed(fragments):
            r.add(fragment)
        assert r.message() == data

    def test_duplicates_counted_and_dropped(self, rng):
        fragments, data = self._fragments(rng)
        r = Reassembler(2, len(fragments))
        assert r.add(fragments[0]) is True
        assert r.add(fragments[0]) is False
        assert r.duplicates == 1
        for fragment in fragments[1:]:
            r.add(fragment)
        assert r.message() == data

    def test_first_write_wins(self, rng):
        fragments, _ = self._fragments(rng)
        r = Reassembler(2, len(fragments))
        r.add(fragments[0])
        impostor = Fragment(
            msg_id=2,
            frag_index=0,
            frag_count=fragments[0].frag_count,
            payload=tuple(1 - b for b in fragments[0].payload),
        )
        assert r.add(impostor) is False
        assert r.received_indexes == frozenset({0})

    def test_foreign_fragment_rejected(self, rng):
        fragments, _ = self._fragments(rng)
        r = Reassembler(3, len(fragments))  # different msg_id
        with pytest.raises(ValueError, match="different message"):
            r.add(fragments[0])

    def test_incomplete_message_is_none(self, rng):
        fragments, _ = self._fragments(rng)
        r = Reassembler(2, len(fragments))
        r.add(fragments[0])
        assert not r.complete
        assert r.message() is None
