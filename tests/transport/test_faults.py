"""Fault-profile dynamics: determinism, trajectories, registry."""

import numpy as np
import pytest

from repro.transport.faults import (
    AckBlackout,
    FaultProfile,
    GilbertElliott,
    InterferenceBursts,
    PROFILES,
    SnrRamp,
    make_profile,
)


class TestRegistry:
    def test_all_profiles_constructible(self):
        for name in PROFILES:
            profile = make_profile(name)
            assert profile.name == name
            assert name in profile.describe() or profile.describe() == name

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            make_profile("earthquake")

    def test_expected_names(self):
        assert set(PROFILES) == {
            "none",
            "burst",
            "interference",
            "snr-ramp",
            "ack-blackout",
        }


class TestBaseProfile:
    def test_clean_and_unimpaired(self, rng):
        profile = FaultProfile()
        state = profile.state(0.5, rng)
        assert state.extra_loss_db == 0.0
        assert state.interference is None
        impairments = profile.ack_impairments()
        assert impairments.loss_prob == 0.0
        assert impairments.blackouts == ()


class TestGilbertElliott:
    def _trace(self, seed, times):
        profile = GilbertElliott()
        rng = np.random.default_rng(seed)
        return [profile.state(t, rng).extra_loss_db for t in times]

    def test_deterministic_given_rng(self):
        times = np.linspace(0.0, 5.0, 200)
        assert self._trace(3, times) == self._trace(3, times)

    def test_visits_both_states(self):
        times = np.linspace(0.0, 20.0, 800)
        trace = self._trace(1, times)
        assert 0.0 in trace and 6.0 in trace

    def test_bad_fraction_matches_sojourn_ratio(self):
        # Stationary bad probability = mean_bad / (mean_good + mean_bad).
        times = np.linspace(0.0, 200.0, 20000)
        trace = self._trace(9, times)
        bad_fraction = sum(1 for v in trace if v > 0) / len(trace)
        assert 0.15 < bad_fraction < 0.35  # nominal 0.08/0.33 ~ 0.24

    def test_invalid_sojourns_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            GilbertElliott(mean_good_s=0.0)


class TestInterferenceBursts:
    def test_interference_only_inside_windows(self, rng):
        profile = InterferenceBursts(windows=((0.2, 0.6),), sir_db=2.0)
        assert profile.state(0.1, rng).interference is None
        inside = profile.state(0.3, rng)
        assert inside.interference is not None
        assert inside.interference.mean_sir_db == 2.0
        assert profile.state(0.6, rng).interference is None  # half-open

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="end > start"):
            InterferenceBursts(windows=((0.5, 0.5),))


class TestSnrRamp:
    def test_piecewise_linear_interpolation(self, rng):
        profile = SnrRamp(points=((0.0, 0.0), (1.0, 4.0), (2.0, 4.0), (3.0, 0.0)))
        assert profile.loss_db(0.0) == 0.0
        assert profile.loss_db(0.5) == pytest.approx(2.0)
        assert profile.loss_db(1.5) == pytest.approx(4.0)
        assert profile.loss_db(2.5) == pytest.approx(2.0)
        # Held flat outside the knots.
        assert profile.loss_db(-1.0) == 0.0
        assert profile.loss_db(99.0) == 0.0
        assert profile.state(0.5, rng).extra_loss_db == pytest.approx(2.0)

    def test_knot_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            SnrRamp(points=((0.0, 1.0),))
        with pytest.raises(ValueError, match="strictly increasing"):
            SnrRamp(points=((0.0, 1.0), (0.0, 2.0)))


class TestAckBlackout:
    def test_data_path_untouched(self, rng):
        profile = AckBlackout()
        state = profile.state(0.5, rng)
        assert state.extra_loss_db == 0.0
        assert state.interference is None

    def test_impairments_forwarded(self):
        profile = AckBlackout(
            blackouts=((0.3, 0.9),), loss_prob=0.02, jitter_sigma_s=5e-5
        )
        impairments = profile.ack_impairments()
        assert impairments.blackouts == ((0.3, 0.9),)
        assert impairments.loss_prob == 0.02
        assert impairments.jitter_sigma_s == 5e-5
