"""Multi-sender transport: shared airtime, fair grants, determinism."""

import pytest

from repro.transport import MultiSenderTransport
from repro.transport.faults import make_profile

MESSAGES = [b"sender zero payload", b"sender one payload!!", b"sender two data"]


def _run(seed=2, **kwargs):
    return MultiSenderTransport(
        MESSAGES, snr_db=4.0, seed=seed, fec="adaptive", **kwargs
    ).run()


class TestDelivery:
    def test_all_senders_delivered_byte_exact(self):
        result = _run()
        assert result.all_delivered
        assert [r.message_bytes for r in result.results] == [
            len(m) for m in MESSAGES
        ]
        assert result.aggregate_goodput_bps > 0

    def test_data_frames_serialize_on_shared_channel(self):
        result = _run()
        intervals = sorted(
            (tx.time_s, r.fragment_bits)
            for r in result.results
            for tx in r.schedule
        )
        starts = [t for t, _ in intervals]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)  # never two frames at once

    def test_acks_serialize_on_shared_ap(self):
        result = _run()
        trains = sorted(
            (a.start_s, a.arrival_s) for r in result.results for a in r.acks
        )
        for (_, end), (start, _) in zip(trains, trains[1:]):
            assert start >= end  # one beacon train at a time


class TestFairness:
    def test_round_robin_grants_are_balanced(self):
        result = _run()
        assert len(result.grants) == len(MESSAGES)
        assert all(g > 0 for g in result.grants)
        # Fair arbiter: no sender hogs the channel; grant counts track
        # each sender's actual need (its transmission count).
        for grant, r in zip(result.grants, result.results):
            assert grant == r.n_tx


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        assert _run(seed=2) == _run(seed=2)

    def test_per_sender_fault_profiles(self):
        profiles = [make_profile("none"), make_profile("burst"), make_profile("none")]
        result = MultiSenderTransport(
            MESSAGES, snr_db=4.0, seed=2, fault_profiles=profiles
        ).run()
        assert result.all_delivered


class TestValidation:
    def test_no_messages_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiSenderTransport([])

    def test_profile_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one fault profile per sender"):
            MultiSenderTransport(MESSAGES, fault_profiles=[make_profile("none")])
