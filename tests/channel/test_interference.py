"""Unit tests for the WiFi interference traffic generator."""

import numpy as np
import pytest

from repro.channel.interference import WifiInterferenceModel
from repro.dsp.signal_ops import signal_power


class TestConstruction:
    @pytest.mark.parametrize("duty", [-0.1, 1.0, 1.5])
    def test_invalid_duty(self, duty):
        with pytest.raises(ValueError):
            WifiInterferenceModel(duty_cycle=duty)

    def test_invalid_burst_range(self):
        with pytest.raises(ValueError):
            WifiInterferenceModel(duty_cycle=0.1, burst_duration_range_s=(1e-3, 5e-4))

    def test_mean_gap_infinite_at_zero_duty(self):
        assert WifiInterferenceModel(duty_cycle=0.0).mean_gap_seconds() == float("inf")

    def test_mean_gap_formula(self):
        model = WifiInterferenceModel(
            duty_cycle=0.5, burst_duration_range_s=(1e-3, 1e-3)
        )
        assert model.mean_gap_seconds() == pytest.approx(1e-3)


class TestGeneration:
    def test_zero_duty_produces_nothing(self, rng):
        model = WifiInterferenceModel(duty_cycle=0.0)
        assert model.generate(100_000, 1e-6, rng) == []

    def test_bursts_inside_window(self, rng):
        model = WifiInterferenceModel(duty_cycle=0.3)
        for burst in model.generate(200_000, 1e-6, rng):
            assert 0 <= burst.start_index < 200_000

    def test_duty_cycle_approximately_respected(self, rng):
        model = WifiInterferenceModel(duty_cycle=0.3)
        n = 2_000_000
        busy = sum(
            min(b.n_samples, n - b.start_index)
            for b in model.generate(n, 1e-6, rng)
        )
        assert busy / n == pytest.approx(0.3, abs=0.12)

    def test_sir_mode_power(self, rng):
        model = WifiInterferenceModel(duty_cycle=0.5, mean_sir_db=10.0, sir_sigma_db=0.0)
        bursts = model.generate(500_000, 1e-6, rng)
        assert bursts
        for burst in bursts:
            assert signal_power(burst.waveform) == pytest.approx(1e-7, rel=1e-6)

    def test_absolute_power_mode(self, rng):
        model = WifiInterferenceModel(
            duty_cycle=0.5, mean_power_dbm=-60.0, power_sigma_db=0.0
        )
        bursts = model.generate(500_000, 123.0, rng)
        assert bursts
        for burst in bursts:
            # -60 dBm = 1e-9 W regardless of the SymBee power argument.
            assert signal_power(burst.waveform) == pytest.approx(1e-9, rel=1e-6)

    def test_contributions_format(self, rng):
        model = WifiInterferenceModel(duty_cycle=0.4)
        contributions = model.contributions(300_000, 1e-6, rng, 2.412e9)
        assert contributions
        waveform, start, freq = contributions[0]
        assert freq == 2.412e9
        assert isinstance(start, int) or np.issubdtype(type(start), np.integer)
        assert waveform.dtype == np.complex128

    def test_bursts_do_not_overlap(self, rng):
        model = WifiInterferenceModel(duty_cycle=0.6)
        bursts = model.generate(1_000_000, 1e-6, rng)
        end = -1
        for burst in bursts:
            assert burst.start_index > end
            end = burst.start_index + burst.n_samples
