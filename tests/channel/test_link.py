"""Unit tests for the composite link channel."""

import numpy as np
import pytest

from repro.channel.fading import MultipathChannel
from repro.channel.link import LinkChannel
from repro.channel.path_loss import LogDistancePathLoss
from repro.dsp.signal_ops import signal_power


class TestLinkChannel:
    def test_mean_received_power(self):
        link = LinkChannel(
            path_loss=LogDistancePathLoss(exponent=2.0), distance_m=10.0
        )
        expected = 0.0 - link.path_loss.mean_loss_db(10.0)
        assert link.mean_received_power_dbm(0.0) == pytest.approx(expected)

    def test_apply_attenuates(self, rng):
        link = LinkChannel(
            path_loss=LogDistancePathLoss(exponent=2.0), distance_m=10.0
        )
        x = np.ones(1000, dtype=complex) * np.sqrt(1e-3)
        out = link.apply(x, rng)
        out_dbm = 10 * np.log10(signal_power(out)) + 30
        assert out_dbm == pytest.approx(link.mean_received_power_dbm(0.0), abs=0.1)

    def test_multipath_composes(self, rng):
        link = LinkChannel(
            path_loss=LogDistancePathLoss(exponent=2.0),
            distance_m=5.0,
            multipath=MultipathChannel(100e-9, 20e6),
        )
        x = np.exp(1j * 0.3 * np.arange(5000))
        out = link.apply(x, rng)
        assert out.size == x.size
        assert signal_power(out) > 0

    def test_doppler_varies_envelope(self, rng):
        link = LinkChannel(distance_m=5.0, speed_m_s=10.0, sample_rate=20e6)
        x = np.ones(2_000_000, dtype=complex)
        out = link.apply(x, rng)
        envelope = np.abs(out)
        assert np.std(envelope) / np.mean(envelope) > 0.05

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            LinkChannel(distance_m=0.0)

    def test_invalid_multipath_type(self):
        with pytest.raises(TypeError):
            LinkChannel(distance_m=1.0, multipath="not a channel")

    def test_default_path_loss_used(self):
        link = LinkChannel(distance_m=2.0)
        assert isinstance(link.path_loss, LogDistancePathLoss)
