"""Unit tests for large-scale propagation models."""

import numpy as np
import pytest

from repro.channel.path_loss import (
    FREE_SPACE_REFERENCE_LOSS_DB,
    LogDistancePathLoss,
    free_space_path_loss_db,
)


class TestFreeSpace:
    def test_reference_loss_at_1m(self):
        # About 40.2 dB at 2.44 GHz.
        assert FREE_SPACE_REFERENCE_LOSS_DB == pytest.approx(40.2, abs=0.3)

    def test_inverse_square_law(self):
        assert free_space_path_loss_db(20.0) - free_space_path_loss_db(
            10.0
        ) == pytest.approx(20 * np.log10(2))

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0)


class TestLogDistance:
    def test_mean_loss_at_reference(self):
        model = LogDistancePathLoss(exponent=3.0)
        assert model.mean_loss_db(1.0) == pytest.approx(
            FREE_SPACE_REFERENCE_LOSS_DB
        )

    def test_exponent_slope(self):
        model = LogDistancePathLoss(exponent=3.0)
        assert model.mean_loss_db(10.0) - model.mean_loss_db(1.0) == pytest.approx(
            30.0
        )

    def test_wall_loss_added(self):
        plain = LogDistancePathLoss(exponent=2.0)
        walled = LogDistancePathLoss(exponent=2.0, wall_loss_db=12.0)
        assert walled.mean_loss_db(5.0) - plain.mean_loss_db(5.0) == pytest.approx(
            12.0
        )

    def test_shadowing_statistics(self, rng):
        model = LogDistancePathLoss(exponent=2.5, shadowing_sigma_db=6.0)
        samples = [model.sample_loss_db(10.0, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(model.mean_loss_db(10.0), abs=0.4)
        assert np.std(samples) == pytest.approx(6.0, rel=0.1)

    def test_no_shadowing_is_deterministic(self, rng):
        model = LogDistancePathLoss(exponent=2.5)
        assert model.sample_loss_db(7.0, rng) == model.mean_loss_db(7.0)

    def test_received_power(self):
        model = LogDistancePathLoss(exponent=2.0)
        rss = model.received_power_dbm(0.0, 10.0)
        assert rss == pytest.approx(-model.mean_loss_db(10.0))

    @pytest.mark.parametrize("kwargs", [
        {"exponent": 0.0},
        {"exponent": -1.0},
        {"exponent": 2.0, "shadowing_sigma_db": -1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LogDistancePathLoss(**kwargs)

    def test_invalid_distance(self):
        model = LogDistancePathLoss()
        with pytest.raises(ValueError):
            model.mean_loss_db(0.0)
