"""Unit tests for small-scale fading models."""

import numpy as np
import pytest

from repro.channel.fading import (
    MultipathChannel,
    RayleighBlockFading,
    doppler_frequency_hz,
    jakes_doppler_gain,
)


class TestDoppler:
    def test_frequency_formula(self):
        # 4.16 m/s (9.3 mph) at 2.44 GHz -> ~33.8 Hz.
        assert doppler_frequency_hz(4.157) == pytest.approx(33.8, abs=0.5)

    def test_zero_speed(self):
        assert doppler_frequency_hz(0.0) == 0.0

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            doppler_frequency_hz(-1.0)

    def test_jakes_unit_mean_power(self, rng):
        gain = jakes_doppler_gain(50_000, 20e6, 100.0, rng)
        assert np.mean(np.abs(gain) ** 2) == pytest.approx(1.0, rel=0.4)

    def test_jakes_zero_doppler_is_constant(self, rng):
        gain = jakes_doppler_gain(1000, 20e6, 0.0, rng)
        assert np.allclose(gain, gain[0])
        assert abs(gain[0]) == pytest.approx(1.0)

    def test_jakes_varies_in_time(self, rng):
        # At 100 Hz Doppler over 50 ms the gain must decorrelate.
        gain = jakes_doppler_gain(1_000_000, 20e6, 100.0, rng)
        assert np.std(np.abs(gain)) > 0.05

    def test_negative_doppler_rejected(self, rng):
        with pytest.raises(ValueError):
            jakes_doppler_gain(10, 20e6, -5.0, rng)


class TestRayleighBlockFading:
    def test_unit_mean_power(self, rng):
        fading = RayleighBlockFading()
        gains = np.array([fading.sample_gain(rng) for _ in range(8000)])
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_large_k_approaches_unity_magnitude(self, rng):
        fading = RayleighBlockFading(k_factor=1000.0)
        gains = np.array([fading.sample_gain(rng) for _ in range(200)])
        assert np.allclose(np.abs(gains), 1.0, atol=0.1)

    def test_rayleigh_deep_fades_exist(self, rng):
        fading = RayleighBlockFading(k_factor=0.0)
        gains = np.array([abs(fading.sample_gain(rng)) ** 2 for _ in range(5000)])
        assert np.mean(gains < 0.1) == pytest.approx(1 - np.exp(-0.1), abs=0.03)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            RayleighBlockFading(k_factor=-1.0)


class TestMultipathChannel:
    def test_tap_count_scales_with_spread(self):
        short = MultipathChannel(25e-9, 20e6)
        long = MultipathChannel(200e-9, 20e6)
        assert long.n_taps > short.n_taps >= 2

    def test_zero_spread_single_tap(self):
        flat = MultipathChannel(0.0, 20e6)
        assert flat.n_taps == 1

    def test_taps_unit_energy(self, rng):
        channel = MultipathChannel(100e-9, 20e6)
        taps = channel.sample_taps(rng)
        assert np.sum(np.abs(taps) ** 2) == pytest.approx(1.0)

    def test_apply_preserves_length(self, rng):
        channel = MultipathChannel(100e-9, 20e6)
        x = np.ones(500, dtype=complex)
        assert channel.apply(x, rng).size == 500

    def test_apply_preserves_mean_power(self, rng):
        channel = MultipathChannel(50e-9, 20e6, k_factor=5.0)
        x = np.exp(1j * 0.3 * np.arange(20000))
        powers = [
            np.mean(np.abs(channel.apply(x, rng)) ** 2) for _ in range(200)
        ]
        assert np.mean(powers) == pytest.approx(1.0, rel=0.15)

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            MultipathChannel(-1e-9, 20e6)
