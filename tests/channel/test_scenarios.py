"""Unit tests for the named evaluation scenarios."""

import pytest

from repro.channel.link import LinkChannel
from repro.channel.scenarios import (
    MOBILITY_SPEEDS_MPH,
    SCENARIOS,
    get_scenario,
    mobility_scenario,
    nlos_office_positions,
    nlos_office_scenario,
)


class TestPresets:
    def test_six_scenarios_exist(self):
        assert set(SCENARIOS) == {
            "outdoor", "classroom", "office", "dormitory", "library", "mall"
        }

    def test_outdoor_has_no_interference(self):
        assert get_scenario("outdoor").interference() is None

    def test_indoor_scenarios_have_interference(self):
        for name in ("office", "dormitory", "library", "mall"):
            assert get_scenario(name).interference() is not None

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="valid"):
            get_scenario("moon-base")

    def test_interference_severity_ordering(self):
        # The paper describes the mall/library as the most interfered.
        duties = {name: s.interference_duty for name, s in SCENARIOS.items()}
        assert duties["mall"] >= duties["library"] >= duties["dormitory"]
        assert duties["dormitory"] >= duties["office"] >= duties["classroom"]
        assert duties["outdoor"] == 0.0

    def test_path_loss_ordering(self):
        exponents = {name: s.path_loss_exponent for name, s in SCENARIOS.items()}
        assert exponents["outdoor"] < exponents["classroom"]
        assert exponents["classroom"] < exponents["mall"]

    def test_link_builder(self):
        link = get_scenario("office").link(10.0)
        assert isinstance(link, LinkChannel)
        assert link.distance_m == 10.0
        assert link.multipath is not None

    def test_outdoor_link_has_no_multipath(self):
        assert get_scenario("outdoor").link(10.0).multipath is None


class TestNlos:
    def test_four_positions(self):
        positions = nlos_office_positions()
        assert set(positions) == {"S1", "S2", "S3", "S4"}

    def test_s3_closer_but_more_walls_than_s2(self):
        positions = nlos_office_positions()
        d2, w2 = positions["S2"]
        d3, w3 = positions["S3"]
        assert d3 < d2 and w3 > w2

    def test_wall_budget(self):
        scenario = nlos_office_scenario(2, wall_loss_db_per_wall=6.0)
        assert scenario.wall_loss_db == 12.0

    def test_zero_walls_matches_office(self):
        scenario = nlos_office_scenario(0)
        assert scenario.wall_loss_db == 0.0
        assert scenario.path_loss_exponent == SCENARIOS["office"].path_loss_exponent


class TestMobility:
    def test_paper_speeds(self):
        assert MOBILITY_SPEEDS_MPH == {
            "walking": 3.4, "running": 5.3, "bicycle": 9.3
        }

    def test_speed_conversion(self):
        scenario = mobility_scenario(9.3)
        assert scenario.speed_m_s == pytest.approx(9.3 * 0.44704)

    def test_body_loss_applied(self):
        assert mobility_scenario(3.4).wall_loss_db > 0

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            mobility_scenario(0.0)

    def test_link_carries_speed(self):
        link = mobility_scenario(5.3).link(10.0)
        assert link.speed_m_s > 0
