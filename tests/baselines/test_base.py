"""Unit tests for the packet-level CTC framework."""

import pytest

from repro.baselines.base import (
    CtcSimulationResult,
    PacketEvent,
    events_in_order,
    quantize,
)
from repro.baselines.cmorse import CMorse


class TestPacketEvent:
    def test_valid(self):
        event = PacketEvent(time_s=1.0, duration_s=1e-3)
        assert event.stream == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PacketEvent(time_s=-1.0, duration_s=1e-3)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            PacketEvent(time_s=0.0, duration_s=0.0)


class TestResult:
    def test_throughput(self):
        result = CtcSimulationResult(
            scheme="x", bits_sent=100, bits_correct=80, channel_time_s=2.0
        )
        assert result.throughput_bps == pytest.approx(40.0)
        assert result.bit_error_rate == pytest.approx(0.2)

    def test_zero_duration(self):
        result = CtcSimulationResult(
            scheme="x", bits_sent=0, bits_correct=0, channel_time_s=0.0
        )
        assert result.throughput_bps == 0.0
        assert result.bit_error_rate == 0.0


class TestHelpers:
    def test_events_in_order(self):
        events = [
            PacketEvent(time_s=2.0, duration_s=1e-3),
            PacketEvent(time_s=1.0, duration_s=1e-3),
        ]
        ordered = events_in_order(events)
        assert [e.time_s for e in ordered] == [1.0, 2.0]

    def test_quantize(self):
        assert quantize(2.9e-3, 1e-3) == 3
        assert quantize(0.4e-3, 1e-3) == 0

    def test_quantize_invalid_step(self):
        with pytest.raises(ValueError):
            quantize(1.0, 0.0)


class TestLossModel:
    def test_zero_loss_keeps_all(self, rng):
        scheme = CMorse()
        events, _ = scheme.encode([1, 0, 1], rng)
        assert scheme.apply_loss(events, 0.0, rng) == events

    def test_full_loss_invalid(self, rng):
        scheme = CMorse()
        with pytest.raises(ValueError):
            scheme.apply_loss([], 1.0, rng)

    def test_loss_rate_statistics(self, rng):
        scheme = CMorse()
        events, _ = scheme.encode([1] * 500, rng)
        kept = scheme.apply_loss(events, 0.3, rng)
        assert 0.55 < len(kept) / len(events) < 0.85

    def test_lossy_delivery_degrades_throughput(self, rng):
        scheme = CMorse()
        clean = scheme.simulate([1, 0] * 100, rng, loss_rate=0.0)
        lossy = scheme.simulate([1, 0] * 100, rng, loss_rate=0.4)
        assert lossy.bits_correct < clean.bits_correct
