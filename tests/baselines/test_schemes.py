"""Unit and property tests for the five packet-level CTC schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import AFreeBee, CMorse, Dctc, Emf, FreeBee, all_baselines

ALL_SCHEMES = [FreeBee, AFreeBee, Emf, Dctc, CMorse]


class TestRoundtrips:
    @pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
    @given(bits=st.lists(st.integers(0, 1), min_size=4, max_size=64))
    @settings(max_examples=15, deadline=None)
    def test_lossless_roundtrip(self, scheme_cls, bits):
        scheme = scheme_cls()
        rng = np.random.default_rng(3)
        result = scheme.simulate(bits, rng, loss_rate=0.0)
        # Chunked schemes may pad the tail; all sent bits must be correct.
        assert result.bits_correct == result.bits_sent

    @pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
    def test_loss_causes_errors(self, scheme_cls, rng):
        scheme = scheme_cls()
        bits = list(rng.integers(0, 2, 400))
        result = scheme.simulate(bits, rng, loss_rate=0.5)
        assert result.bit_error_rate > 0.05


class TestMeasuredRates:
    """The Figure 16 bar ordering, measured not asserted by fiat."""

    @pytest.fixture(scope="class")
    def rates(self):
        rng = np.random.default_rng(16)
        return {
            scheme.name: scheme.measured_rate_bps(rng, n_bits=512)
            for scheme in all_baselines()
        }

    def test_freebee_rate(self, rates):
        # 2 bits per 100 ms beacon = 20 bps (cf. FreeBee's ~18 bps avg).
        assert rates["FreeBee"] == pytest.approx(20.0, rel=0.05)

    def test_afreebee_triples_freebee(self, rates):
        assert rates["A-FreeBee"] == pytest.approx(3 * rates["FreeBee"], rel=0.1)

    def test_emf_rate(self, rates):
        assert rates["EMF"] == pytest.approx(100.0, rel=0.05)

    def test_dctc_rate(self, rates):
        assert rates["DCTC"] == pytest.approx(142.9, rel=0.05)

    def test_cmorse_at_published_215bps(self, rates):
        assert rates["C-Morse"] == pytest.approx(215.0, rel=0.03)

    def test_paper_ordering(self, rates):
        ordered = [
            rates[name]
            for name in ("FreeBee", "A-FreeBee", "EMF", "DCTC", "C-Morse")
        ]
        assert ordered == sorted(ordered)

    def test_symbee_speedup_is_145x(self, rates):
        from repro.core.analytics import raw_bit_rate_bps

        speedup = raw_bit_rate_bps() / rates["C-Morse"]
        assert speedup == pytest.approx(145.4, rel=0.05)


class TestSchemeDetails:
    def test_freebee_shift_bounds(self):
        with pytest.raises(ValueError):
            FreeBee(beacon_interval_s=0.01, shift_quantum_s=5e-3, bits_per_beacon=3)

    def test_freebee_events_on_epoch_grid(self, rng):
        scheme = FreeBee()
        events, duration = scheme.encode([1, 0, 1, 1], rng)
        assert len(events) == 2  # 2 bits per beacon
        assert duration == pytest.approx(2 * scheme.beacon_interval_s)

    def test_afreebee_uses_streams(self, rng):
        scheme = AFreeBee(n_streams=3)
        events, _ = scheme.encode([1, 0] * 9, rng)
        assert {e.stream for e in events} == {0, 1, 2}

    def test_emf_duration_levels(self, rng):
        scheme = Emf()
        events, _ = scheme.encode([1, 1], rng)  # value 3 -> max padding
        base_events, _ = scheme.encode([0, 0], rng)
        assert events[0].duration_s > base_events[0].duration_s

    def test_emf_padding_must_fit_interval(self):
        with pytest.raises(ValueError):
            Emf(traffic_interval_s=1e-3, duration_step_s=1e-3, bits_per_packet=4)

    def test_dctc_zero_bits_have_no_packets(self, rng):
        scheme = Dctc()
        events, duration = scheme.encode([0, 0, 0, 0], rng)
        assert events == []
        assert duration == pytest.approx(4 * scheme.slot_s)

    def test_dctc_slot_must_fit_packet(self):
        with pytest.raises(ValueError):
            Dctc(slot_s=100e-6)

    def test_cmorse_dash_longer_than_dot(self, rng):
        scheme = CMorse(gap_jitter_s=0.0)
        events, _ = scheme.encode([0, 1], rng)
        assert events[1].duration_s == pytest.approx(3 * events[0].duration_s)

    def test_cmorse_gap_validation(self):
        with pytest.raises(ValueError):
            CMorse(guard_gap_s=-1.0)
        with pytest.raises(ValueError):
            CMorse(guard_gap_s=1e-3, gap_jitter_s=2e-3)
