"""Unit and property tests for repro.dsp.runs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.runs import (
    longest_run,
    run_starts,
    sliding_count,
    sliding_window_sum,
)


def naive_longest_run(mask):
    best = cur = 0
    for m in mask:
        cur = cur + 1 if m else 0
        best = max(best, cur)
    return best


class TestLongestRun:
    def test_empty(self):
        assert longest_run([]) == 0

    def test_all_false(self):
        assert longest_run([False] * 5) == 0

    def test_all_true(self):
        assert longest_run([True] * 5) == 5

    def test_interior_run(self):
        assert longest_run([False, True, True, True, False, True]) == 3

    def test_run_at_end(self):
        assert longest_run([False, True, True]) == 2

    @given(st.lists(st.booleans(), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_naive(self, mask):
        assert longest_run(mask) == naive_longest_run(mask)


class TestRunStarts:
    def test_finds_long_runs_only(self):
        mask = [True, False, True, True, True, False, True, True]
        assert list(run_starts(mask, 2)) == [2, 6]

    def test_min_length_one_finds_all(self):
        mask = [True, False, True]
        assert list(run_starts(mask, 1)) == [0, 2]

    def test_empty_mask(self):
        assert run_starts([], 1).size == 0

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            run_starts([True], 0)

    @given(st.lists(st.booleans(), max_size=100), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_starts_are_maximal_runs(self, mask, min_length):
        starts = run_starts(mask, min_length)
        for s in starts:
            # Run begins at s (not before) and lasts >= min_length.
            assert all(mask[s : s + min_length])
            assert s == 0 or not mask[s - 1]


class TestSlidingCount:
    def test_basic(self):
        mask = [True, False, True, True]
        assert list(sliding_count(mask, 2)) == [1, 1, 2]

    def test_window_equals_length(self):
        assert list(sliding_count([True, True, False], 3)) == [2]

    def test_window_longer_than_input(self):
        assert sliding_count([True], 5).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_count([True], 0)

    @given(st.lists(st.booleans(), min_size=1, max_size=150), st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, mask, window):
        counts = sliding_count(mask, window)
        naive = [
            sum(mask[i : i + window]) for i in range(len(mask) - window + 1)
        ]
        assert list(counts) == naive


class TestSlidingWindowSum:
    def test_basic_real(self):
        out = sliding_window_sum([1.0, 2.0, 3.0, 4.0], 2)
        assert np.allclose(out, [3.0, 5.0, 7.0])

    def test_complex_input(self):
        x = np.array([1 + 1j, 2 - 1j, -1 + 0.5j])
        assert np.allclose(sliding_window_sum(x, 2), [3.0, 1 - 0.5j])

    def test_window_longer_than_input(self):
        assert sliding_window_sum([1.0], 5).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_sum([1.0], 0)

    @given(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=150,
        ),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_convolution(self, values, window):
        # The cumulative-sum form replaced np.convolve windows; they must
        # agree to float accumulation order everywhere they are used.
        out = sliding_window_sum(values, window)
        if len(values) < window:
            assert out.size == 0
            return
        reference = np.convolve(values, np.ones(window), mode="valid")
        assert np.allclose(out, reference, atol=1e-6 * max(1.0, window))
