"""Unit and property tests for repro.dsp.folding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.folding import (
    circular_folded_profile,
    fold,
    fold_sum,
    folded_profile,
)


class TestFold:
    def test_shape(self):
        out = fold(np.arange(12), period=3, folds=4)
        assert out.shape == (4, 3)

    def test_values(self):
        out = fold(np.arange(6), period=2, folds=3)
        assert np.array_equal(out, [[0, 1], [2, 3], [4, 5]])

    def test_extra_samples_ignored(self):
        out = fold(np.arange(10), period=2, folds=3)
        assert out.shape == (3, 2)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            fold(np.arange(5), period=3, folds=2)

    @pytest.mark.parametrize("period,folds", [(0, 1), (-1, 1), (1, 0), (1, -2)])
    def test_invalid_parameters(self, period, folds):
        with pytest.raises(ValueError):
            fold(np.arange(10), period=period, folds=folds)


class TestFoldSum:
    def test_periodic_signal_amplifies(self):
        pattern = np.array([1.0, -2.0, 3.0])
        signal = np.tile(pattern, 4)
        assert np.allclose(fold_sum(signal, 3, 4), 4 * pattern)

    def test_matches_manual_sum(self, rng):
        x = rng.standard_normal(40)
        manual = x[0:10] + x[10:20] + x[20:30] + x[30:40]
        assert np.allclose(fold_sum(x, 10, 4), manual)


class TestFoldedProfile:
    def test_single_fold_is_identity(self, rng):
        x = rng.standard_normal(50)
        assert np.allclose(folded_profile(x, period=7, folds=1), x)

    def test_profile_at_zero_equals_fold_sum(self, rng):
        x = rng.standard_normal(64)
        profile = folded_profile(x, period=8, folds=4)
        assert profile[0] == pytest.approx(fold_sum(x, 8, 4)[0])

    def test_length(self):
        profile = folded_profile(np.arange(100, dtype=float), period=10, folds=4)
        assert profile.size == 100 - 30

    def test_too_short_returns_empty(self):
        assert folded_profile(np.arange(5, dtype=float), 10, 4).size == 0

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_naive(self, period, folds, extra):
        n = period * (folds - 1) + 1 + extra
        x = np.sin(np.arange(n, dtype=float))
        profile = folded_profile(x, period, folds)
        naive = [
            sum(x[i + period * k] for k in range(folds))
            for i in range(n - period * (folds - 1))
        ]
        assert np.allclose(profile, naive)


class TestCircularFoldedProfile:
    def test_coherent_angles_reach_full_magnitude(self):
        angles = np.full(40, -0.8 * np.pi)
        profile = circular_folded_profile(angles, period=10, folds=4)
        assert np.allclose(np.abs(profile), 4.0)
        assert np.allclose(np.angle(profile), -0.8 * np.pi)

    def test_wrap_robustness_beats_plain_sum(self):
        # Angles alternating just either side of the -pi boundary: the
        # plain sum cancels to near zero sign-information, the circular
        # fold stays pinned near the boundary with full coherence.
        angles = np.tile([np.pi - 0.05, -np.pi + 0.05], 20)
        profile = circular_folded_profile(angles, period=2, folds=4)
        assert np.all(np.abs(profile) > 3.9)

    def test_incoherent_angles_have_low_magnitude(self):
        angles = np.tile([0.0, np.pi / 2, np.pi, -np.pi / 2], 10)
        profile = circular_folded_profile(angles, period=1, folds=4)
        assert np.all(np.abs(profile) < 1e-9)

    def test_length_matches_real_fold(self, rng):
        x = rng.uniform(-np.pi, np.pi, 100)
        a = folded_profile(x, 10, 4)
        b = circular_folded_profile(x, 10, 4)
        assert a.size == b.size

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            circular_folded_profile(np.zeros(10), 0, 2)
        with pytest.raises(ValueError):
            circular_folded_profile(np.zeros(10), 2, 0)
