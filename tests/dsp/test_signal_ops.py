"""Unit tests for repro.dsp.signal_ops."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp.signal_ops import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    measured_snr_db,
    mix,
    normalize_power,
    scale_to_power,
    signal_power,
    watts_to_dbm,
    wrap_phase,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert db_to_linear(3.0) == pytest.approx(1.9953, rel=1e-3)

    def test_linear_to_db_inverts(self):
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_of_zero_is_neg_inf(self):
        assert linear_to_db(0.0) == -math.inf

    def test_vectorized(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_roundtrip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db)

    def test_dbm_zero_is_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_dbm_30_is_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    @given(st.floats(min_value=-120.0, max_value=40.0))
    def test_dbm_roundtrip(self, dbm):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)


class TestSignalPower:
    def test_constant_signal(self):
        assert signal_power(np.full(100, 2.0 + 0j)) == pytest.approx(4.0)

    def test_empty_signal(self):
        assert signal_power(np.array([])) == 0.0

    def test_unit_tone(self):
        t = np.arange(1000)
        tone = np.exp(1j * 0.1 * t)
        assert signal_power(tone) == pytest.approx(1.0)

    def test_normalize_power_gives_unity(self, rng):
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        assert signal_power(normalize_power(x)) == pytest.approx(1.0)

    def test_normalize_zero_signal_unchanged(self):
        out = normalize_power(np.zeros(8, dtype=complex))
        assert np.all(out == 0)

    def test_scale_to_power(self, rng):
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        scaled = scale_to_power(x, 1e-3)
        assert signal_power(scaled) == pytest.approx(1e-3)

    def test_scale_to_power_rejects_negative(self):
        with pytest.raises(ValueError):
            scale_to_power(np.ones(4, dtype=complex), -1.0)


class TestMix:
    def test_zero_offset_is_identity(self):
        x = np.exp(1j * np.linspace(0, 10, 100))
        assert np.allclose(mix(x, 0.0, 20e6), x)

    def test_shifts_tone_frequency(self):
        fs = 20e6
        n = np.arange(2048)
        tone = np.exp(1j * 2 * np.pi * 1e6 * n / fs)
        shifted = mix(tone, 2e6, fs)
        spectrum = np.abs(np.fft.fft(shifted))
        peak_bin = int(np.argmax(spectrum))
        expected_bin = int(round(3e6 / fs * len(n)))
        assert peak_bin == expected_bin

    def test_preserves_power(self, rng):
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        assert signal_power(mix(x, 3e6, 20e6)) == pytest.approx(signal_power(x))

    def test_initial_phase(self):
        x = np.ones(4, dtype=complex)
        out = mix(x, 0.0, 20e6, initial_phase=np.pi / 2)
        assert np.allclose(out, 1j * np.ones(4))


class TestWrapPhase:
    def test_identity_inside_range(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_wraps_above_pi(self):
        assert wrap_phase(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_wraps_below_minus_pi(self):
        assert wrap_phase(-np.pi - 0.1) == pytest.approx(np.pi - 0.1)

    def test_pi_maps_to_pi(self):
        assert wrap_phase(np.pi) == pytest.approx(np.pi)

    def test_minus_pi_maps_to_pi(self):
        # Convention: the interval is (-pi, pi].
        assert wrap_phase(-np.pi) == pytest.approx(np.pi)

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_always_in_interval(self, phi):
        wrapped = wrap_phase(phi)
        assert -np.pi < wrapped <= np.pi

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_wrap_is_congruent_mod_2pi(self, phi):
        wrapped = wrap_phase(phi)
        assert math.isclose(
            math.cos(wrapped), math.cos(phi), abs_tol=1e-9
        ) and math.isclose(math.sin(wrapped), math.sin(phi), abs_tol=1e-9)

    def test_array_input(self):
        out = wrap_phase(np.array([0.0, 3 * np.pi, -3 * np.pi]))
        assert np.allclose(out, [0.0, np.pi, np.pi])


class TestMeasuredSnr:
    def test_infinite_when_clean(self):
        x = np.ones(16, dtype=complex)
        assert measured_snr_db(x, x) == math.inf

    def test_matches_injected_snr(self, rng):
        from repro.dsp.noise import awgn

        x = np.exp(1j * 0.3 * np.arange(200_000))
        noisy = awgn(x, 10.0, rng)
        assert measured_snr_db(x, noisy) == pytest.approx(10.0, abs=0.2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            measured_snr_db(np.ones(4), np.ones(5))
