"""Unit tests for capture trace I/O and trace mixing."""

import numpy as np
import pytest

from repro.dsp.signal_ops import signal_power
from repro.dsp.traces import load_capture, mix_at_sinr, save_capture


class TestTraceIO:
    def test_roundtrip(self, tmp_path, rng):
        samples = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        path = tmp_path / "capture.npz"
        save_capture(path, samples, 20e6, metadata={"site": "mall", "d": 25})
        loaded, rate, meta = load_capture(path)
        assert np.array_equal(loaded, samples.astype(np.complex128))
        assert rate == 20e6
        assert meta == {"site": "mall", "d": 25}

    def test_default_metadata(self, tmp_path):
        path = tmp_path / "t.npz"
        save_capture(path, np.zeros(4, complex), 40e6)
        _, rate, meta = load_capture(path)
        assert rate == 40e6
        assert meta == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, samples=np.zeros(2, complex), sample_rate=20e6,
                 metadata="{}", format_version=99)
        with pytest.raises(ValueError, match="version"):
            load_capture(path)


class TestMixing:
    def test_target_sinr_achieved(self, rng):
        signal = np.exp(1j * 0.2 * np.arange(50_000))
        interference = rng.standard_normal(50_000) + 1j * rng.standard_normal(50_000)
        mixed = mix_at_sinr(signal, interference, 7.0)
        residual = mixed - signal
        sinr = 10 * np.log10(signal_power(signal) / signal_power(residual))
        assert sinr == pytest.approx(7.0, abs=0.2)

    def test_offset_placement(self, rng):
        signal = np.zeros(100, complex) + 1.0
        interference = np.ones(10, complex)
        mixed = mix_at_sinr(signal, interference, 0.0, offset=50)
        assert np.allclose(mixed[:50], 1.0)
        assert not np.allclose(mixed[50:60], 1.0)

    def test_interference_clipped_to_signal(self, rng):
        signal = np.ones(20, complex)
        interference = np.ones(100, complex)
        mixed = mix_at_sinr(signal, interference, 0.0, offset=10)
        assert mixed.size == 20

    def test_inputs_untouched(self, rng):
        signal = np.ones(10, complex)
        interference = np.ones(10, complex)
        mix_at_sinr(signal, interference, 0.0)
        assert np.allclose(signal, 1.0)
        assert np.allclose(interference, 1.0)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            mix_at_sinr(np.ones(5, complex), np.ones(2, complex), 0.0, offset=9)

    def test_empty_interference_is_identity(self):
        signal = np.ones(5, complex)
        assert np.array_equal(mix_at_sinr(signal, np.array([]), 0.0), signal)

    def test_trace_driven_symbee_decode(self, rng, tmp_path):
        """The paper's Section VIII-E workflow on simulated traces."""
        from repro.core.link import SymBeeLink
        from repro.wifi.ofdm import OfdmTransmitter

        link = SymBeeLink(include_noise=False)
        bits = [1, 0] * 12
        payload = link.encoder.encode_message(bits)
        frame = link.transmitter.build_frame(payload)
        clean = link.transmitter.transmit_frame(frame)
        clean = link.front_end.downconvert(clean, link.transmitter.center_frequency)

        wifi_trace = OfdmTransmitter().burst(300e-6, rng)

        path = tmp_path / "symbee_clean.npz"
        save_capture(path, clean, 20e6, metadata={"bits": bits})
        loaded, _, meta = load_capture(path)

        mixed = mix_at_sinr(loaded, wifi_trace, sinr_db=5.0, offset=12_000)
        phases = link.decoder.phases(mixed)
        from repro.core.preamble import capture_preamble

        pre = capture_preamble(phases, link.decoder)
        assert pre is not None
        decoded = link.decoder.decode_synchronized(
            phases, pre.data_start, len(meta["bits"])
        )
        errors = sum(a != b for a, b in zip(decoded.bits, meta["bits"]))
        assert errors <= 2
