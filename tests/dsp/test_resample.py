"""Unit and integration tests for rational resampling."""

import numpy as np
import pytest

from repro.dsp.resample import resample


class TestResample:
    def test_identity(self):
        x = np.arange(10, dtype=complex)
        out = resample(x, 20e6, 20e6)
        assert np.array_equal(out, x)
        assert out is not x  # copy, not alias

    def test_doubling_length(self, rng):
        x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        out = resample(x, 20e6, 40e6)
        assert out.size == 2000

    def test_halving_length(self, rng):
        x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        assert resample(x, 40e6, 20e6).size == 500

    def test_tone_frequency_preserved(self):
        fs_in, fs_out, f0 = 20e6, 40e6, 1.5e6
        n = np.arange(8192)
        tone = np.exp(1j * 2 * np.pi * f0 * n / fs_in)
        out = resample(tone, fs_in, fs_out)
        spectrum = np.abs(np.fft.fft(out))
        peak = np.fft.fftfreq(out.size, 1 / fs_out)[np.argmax(spectrum)]
        assert peak == pytest.approx(f0, abs=2e4)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            resample(np.ones(8, complex), 0, 20e6)

    def test_crazy_ratio_rejected(self):
        with pytest.raises(ValueError):
            resample(np.ones(8, complex), 20e6, 20e6 * np.pi)

    def test_real_input(self, rng):
        x = rng.standard_normal(512)
        out = resample(x, 20e6, 40e6)
        assert not np.iscomplexobj(out)
        assert out.size == 1024


class TestCrossRateDecoding:
    def test_20msps_trace_decodes_on_40mhz_receiver(self, rng):
        """Section VI-B, trace-style: a capture recorded at 20 Msps is
        upsampled and decoded by the 40 MHz decoder geometry."""
        from repro.constants import WIFI_SAMPLE_RATE_40MHZ
        from repro.core.decoder import SymBeeDecoder
        from repro.core.link import SymBeeLink
        from repro.core.preamble import capture_preamble

        link = SymBeeLink(include_noise=False)
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        payload = link.encoder.encode_message(bits)
        frame = link.transmitter.build_frame(payload)
        waveform = link.transmitter.transmit_frame(frame)
        baseband = link.front_end.downconvert(
            waveform, link.transmitter.center_frequency
        )

        upsampled = resample(baseband, 20e6, 40e6)
        decoder = SymBeeDecoder(sample_rate=WIFI_SAMPLE_RATE_40MHZ)
        phases = decoder.phases(upsampled)
        pre = capture_preamble(phases, decoder)
        assert pre is not None
        decoded = decoder.decode_synchronized(phases, pre.data_start, len(bits))
        assert list(decoded.bits) == bits
