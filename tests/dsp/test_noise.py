"""Unit tests for repro.dsp.noise."""

import numpy as np
import pytest

from repro.dsp.noise import awgn, complex_gaussian, noise_for_snr
from repro.dsp.signal_ops import signal_power


class TestComplexGaussian:
    def test_power_calibration(self, rng):
        noise = complex_gaussian(200_000, 0.5, rng)
        assert signal_power(noise) == pytest.approx(0.5, rel=0.02)

    def test_zero_power_gives_zeros(self, rng):
        assert np.all(complex_gaussian(100, 0.0, rng) == 0)

    def test_zero_length(self, rng):
        assert complex_gaussian(0, 1.0, rng).size == 0

    def test_negative_length_raises(self, rng):
        with pytest.raises(ValueError):
            complex_gaussian(-1, 1.0, rng)

    def test_negative_power_raises(self, rng):
        with pytest.raises(ValueError):
            complex_gaussian(10, -1.0, rng)

    def test_circular_symmetry(self, rng):
        noise = complex_gaussian(200_000, 1.0, rng)
        assert np.mean(noise.real**2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.imag**2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.real * noise.imag) == pytest.approx(0.0, abs=0.01)

    def test_deterministic_for_same_seed(self):
        a = complex_gaussian(32, 1.0, np.random.default_rng(7))
        b = complex_gaussian(32, 1.0, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestNoiseForSnr:
    def test_snr_calibration(self, rng):
        signal = np.exp(1j * 0.01 * np.arange(100_000))
        noise = noise_for_snr(signal, 7.0, rng)
        ratio = signal_power(signal) / signal_power(noise)
        assert 10 * np.log10(ratio) == pytest.approx(7.0, abs=0.2)

    def test_reference_power_override(self, rng):
        # A mostly-silent vector with a known on-air power reference.
        signal = np.zeros(100_000, dtype=complex)
        signal[:1000] = 1.0
        noise = noise_for_snr(signal, 0.0, rng, reference_power=1.0)
        assert signal_power(noise) == pytest.approx(1.0, rel=0.05)

    def test_awgn_adds_to_signal(self, rng):
        signal = np.ones(1000, dtype=complex)
        noisy = awgn(signal, 40.0, rng)
        # At 40 dB the perturbation is tiny but nonzero.
        assert not np.array_equal(noisy, signal)
        assert np.allclose(noisy, signal, atol=0.2)
