"""Unit tests for the exact/fast DSP kernel pairs in ``repro.dsp.kernels``.

The exact kernels define the reference semantics (single-rounding real
ufunc ops, bit-stable under blocking); the fast kernels must agree to
float tolerance on every shape the streaming front end can hand them —
including the awkward ones: offsets, sub-filter-length tails, complex64
inputs, and sizes that fall back off the blocked GEMM path.
"""

import numpy as np
import pytest

from repro.dsp.kernels import (
    KERNEL_MODES,
    cmul,
    exact_cmul,
    exact_lagged_products,
    fir_exact,
    fir_fast,
    fir_fft,
    lagged_products,
    polyphase_decimate,
    polyphase_decimate_exact,
    polyphase_decimate_fast,
    stream_lagged_products,
    validate_mode,
)


def _signal(rng, n, dtype=np.complex128):
    z = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return z.astype(dtype)


class TestModeValidation:
    def test_modes(self):
        assert KERNEL_MODES == ("exact", "fast")
        for mode in KERNEL_MODES:
            assert validate_mode(mode) == mode

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_mode("quick")


class TestCmul:
    def test_fast_matches_exact(self, rng):
        a = _signal(rng, 257)
        b = _signal(rng, 257)
        np.testing.assert_allclose(
            cmul(a, b, "fast"), exact_cmul(a, b), rtol=1e-12
        )

    def test_exact_dispatch_is_bitwise(self, rng):
        a = _signal(rng, 64)
        b = _signal(rng, 64)
        assert np.array_equal(cmul(a, b, "exact"), exact_cmul(a, b))


class TestLaggedProducts:
    @pytest.mark.parametrize("lag", (1, 4, 16))
    def test_fast_matches_exact(self, rng, lag):
        x = _signal(rng, 400)
        exact = exact_lagged_products(x, lag)
        fast = lagged_products(x, lag, mode="fast")
        assert fast.shape == exact.shape
        np.testing.assert_allclose(fast, exact, rtol=1e-12)

    def test_complex64_input(self, rng):
        x = _signal(rng, 300, np.complex64)
        fast = lagged_products(x, 16, mode="fast")
        exact = exact_lagged_products(x.astype(np.complex128), 16)
        assert fast.dtype == np.complex64
        np.testing.assert_allclose(fast, exact, rtol=2e-6)


class TestFir:
    def test_fft_matches_exact(self, rng):
        z = _signal(rng, 2048)
        taps = rng.standard_normal(63)
        np.testing.assert_allclose(
            fir_fft(z, taps), fir_exact(z, taps), rtol=1e-10, atol=1e-12
        )

    def test_fast_short_filter_uses_direct_path(self, rng):
        z = _signal(rng, 512)
        taps = rng.standard_normal(21)
        np.testing.assert_allclose(
            fir_fast(z, taps), fir_exact(z, taps), rtol=1e-10, atol=1e-12
        )

    def test_fast_long_filter_matches_exact(self, rng):
        z = _signal(rng, 4096)
        taps = rng.standard_normal(129)
        np.testing.assert_allclose(
            fir_fast(z, taps), fir_exact(z, taps), rtol=1e-10, atol=1e-12
        )


class TestPolyphaseExact:
    @pytest.mark.parametrize("decimation", (1, 2, 4))
    @pytest.mark.parametrize("offset", (0, 1, 3))
    def test_is_bitwise_subsample_of_fir_exact(self, rng, decimation, offset):
        z = _signal(rng, 1000)
        taps = rng.standard_normal(21)
        dec = polyphase_decimate_exact(z, taps, decimation, offset=offset)
        full = fir_exact(z, taps)
        assert np.array_equal(dec, full[offset::decimation])

    def test_mode_dispatch(self, rng):
        z = _signal(rng, 500)
        taps = rng.standard_normal(21)
        assert np.array_equal(
            polyphase_decimate(z, taps, 4, mode="exact"),
            polyphase_decimate_exact(z, taps, 4),
        )
        assert np.array_equal(
            polyphase_decimate(z, taps, 4, mode="fast"),
            polyphase_decimate_fast(z, taps, 4),
        )


class TestPolyphaseFast:
    """The blocked-GEMM fast path against the strided reference."""

    def _reference(self, z, taps, decimation, offset=0):
        rev = np.asarray(taps)[::-1]
        n_out = z.size - len(taps) + 1
        return np.array(
            [
                z[lo : lo + len(taps)] @ rev
                for lo in range(offset, n_out, decimation)
            ],
            dtype=np.result_type(z.dtype, rev.dtype),
        )

    @pytest.mark.parametrize("n", (21, 22, 40, 85, 1000, 4099))
    @pytest.mark.parametrize("decimation", (1, 2, 4, 5))
    def test_matches_reference(self, rng, n, decimation):
        z = _signal(rng, n)
        taps = _signal(rng, 21)
        out = polyphase_decimate_fast(z, taps, decimation)
        ref = self._reference(z, taps, decimation)
        assert out.shape == ref.shape
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("offset", (0, 1, 2, 3))
    def test_offsets(self, rng, offset):
        z = _signal(rng, 501)
        taps = _signal(rng, 21)
        out = polyphase_decimate_fast(z, taps, 4, offset=offset)
        ref = self._reference(z, taps, 4, offset=offset)
        assert out.shape == ref.shape
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)

    def test_tail_outputs_past_blocked_region(self, rng):
        # Sizes chosen so the final output's padded window would reach
        # past the strided block view: the kernel must fall back to a
        # direct dot for it without losing the output.
        for n in range(84, 120):
            z = _signal(rng, n)
            taps = _signal(rng, 21)
            out = polyphase_decimate_fast(z, taps, 4)
            ref = self._reference(z, taps, 4)
            assert out.shape == ref.shape, n
            np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)

    def test_complex64(self, rng):
        z = _signal(rng, 2000, np.complex64)
        taps = _signal(rng, 21, np.complex64)
        out = polyphase_decimate_fast(z, taps, 4)
        assert out.dtype == np.complex64
        ref = self._reference(
            z.astype(np.complex128), taps.astype(np.complex128), 4
        )
        np.testing.assert_allclose(out, ref, rtol=2e-5, atol=2e-5)

    def test_empty_when_too_short(self, rng):
        z = _signal(rng, 10)
        taps = _signal(rng, 21)
        assert polyphase_decimate_fast(z, taps, 4).size == 0

    def test_blocking_invariance(self, rng):
        # Window content alone determines each output: computing over a
        # longer array must reproduce the shorter array's outputs.
        z = _signal(rng, 3000)
        taps = _signal(rng, 21)
        full = polyphase_decimate_fast(z, taps, 4)
        half = polyphase_decimate_fast(z[:1500], taps, 4)
        np.testing.assert_array_equal(full[: half.size], half)

    def test_rejects_bad_decimation(self, rng):
        with pytest.raises(ValueError):
            polyphase_decimate_fast(_signal(rng, 100), np.ones(5), 0)


class TestPolyphaseDefer:
    """``trailing="defer"``: withhold outputs the GEMM cannot cover."""

    def test_defer_is_prefix_of_dot(self, rng):
        for n in range(84, 130):
            z = _signal(rng, n)
            taps = _signal(rng, 21)
            full = polyphase_decimate_fast(z, taps, 4, trailing="dot")
            gemm = polyphase_decimate_fast(z, taps, 4, trailing="defer")
            assert gemm.size <= full.size, n
            assert full.size - gemm.size <= 1, n
            np.testing.assert_array_equal(full[: gemm.size], gemm)

    def test_defer_never_emits_dot_rounded_outputs(self, rng):
        # The deferred outputs are exactly those whose padded window
        # would run past the end — the ones whose "dot" value rounds
        # differently than the GEMM band-sum would.  Emitting the same
        # stream in two cuts must give bit-identical prefixes.
        z = _signal(rng, 4096)
        taps = _signal(rng, 21)
        whole = polyphase_decimate_fast(z, taps, 4, trailing="defer")
        for cut in (85, 1000, 2048, 4000):
            head = polyphase_decimate_fast(z[:cut], taps, 4, trailing="defer")
            np.testing.assert_array_equal(whole[: head.size], head)

    def test_defer_empty_below_one_output(self, rng):
        z = _signal(rng, 22)
        taps = _signal(rng, 21)
        out = polyphase_decimate_fast(z, taps, 4, trailing="defer")
        assert out.size == 0

    def test_decimation_one_never_defers(self, rng):
        # No zero-padding at decimation 1, so nothing can be withheld.
        z = _signal(rng, 100)
        taps = _signal(rng, 21)
        dot = polyphase_decimate_fast(z, taps, 1, trailing="dot")
        defer = polyphase_decimate_fast(z, taps, 1, trailing="defer")
        np.testing.assert_array_equal(dot, defer)

    def test_rejects_unknown_trailing(self, rng):
        with pytest.raises(ValueError):
            polyphase_decimate_fast(_signal(rng, 100), np.ones(21), 4,
                                    trailing="hold")


class TestStreamLaggedProducts:
    """The fused seam+interior streaming kernel against the
    concatenate-then-slice reference it replaces."""

    def _drive(self, x, cuts, lag, mode):
        carry = np.empty(0, dtype=x.dtype)
        outs = []
        pos = 0
        for cut in list(cuts) + [x.size]:
            block = x[pos:cut]
            pos = cut
            prod, carry = stream_lagged_products(block, carry, lag, mode)
            outs.append(prod)
        return np.concatenate(outs)

    @pytest.mark.parametrize("mode", ("exact", "fast"))
    @pytest.mark.parametrize("lag", (1, 4, 16))
    def test_matches_whole_stream(self, rng, mode, lag):
        x = _signal(rng, 3000)
        got = self._drive(x, (7, 8, 700, 1500, 1500, 2999), lag, mode)
        want = lagged_products(x, lag, mode)
        np.testing.assert_array_equal(got, want)

    def test_blocks_shorter_than_lag(self, rng):
        x = _signal(rng, 64)
        got = self._drive(x, tuple(range(1, 64, 3)), 16, "fast")
        want = lagged_products(x, 16, "fast")
        np.testing.assert_array_equal(got, want)

    def test_random_cuts_bit_identical(self, rng):
        x = _signal(rng, 10000, np.complex64)
        want = lagged_products(x, 4, "fast")
        cuts = np.unique(rng.integers(0, x.size, size=40))
        got = self._drive(x, cuts.tolist(), 4, "fast")
        np.testing.assert_array_equal(got, want)

    def test_carry_is_owned_copy(self, rng):
        x = _signal(rng, 100)
        carry = np.empty(0, dtype=x.dtype)
        _, carry = stream_lagged_products(x, carry, 4, "fast")
        assert carry.base is None or carry.base is not x
        x[-4:] = 0
        assert not np.any(carry == 0)

    def test_rejects_oversized_carry(self, rng):
        with pytest.raises(ValueError):
            stream_lagged_products(_signal(rng, 10), _signal(rng, 5), 4)
