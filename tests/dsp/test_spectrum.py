"""Unit tests for spectrum estimation, validating the band-plan claims."""

import numpy as np
import pytest

from repro.dsp.spectrum import (
    occupied_bandwidth,
    power_spectral_density,
    spectral_centroid,
)


class TestPsd:
    def test_tone_peaks_at_its_frequency(self):
        fs = 20e6
        n = np.arange(65536)
        tone = np.exp(1j * 2 * np.pi * 3e6 * n / fs)
        freqs, psd = power_spectral_density(tone, fs)
        assert freqs[np.argmax(psd)] == pytest.approx(3e6, abs=fs / 1024)

    def test_frequencies_sorted_two_sided(self):
        freqs, _ = power_spectral_density(np.ones(4096, complex), 20e6)
        assert np.all(np.diff(freqs) > 0)
        assert freqs[0] < 0 < freqs[-1]

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            power_spectral_density(np.ones(4, complex), 20e6)


class TestOccupiedBandwidth:
    def test_zigbee_occupies_about_2mhz(self):
        from repro.zigbee.transmitter import ZigBeeTransmitter

        _, wf = ZigBeeTransmitter().transmit(bytes(range(100)))
        obw = occupied_bandwidth(wf, 20e6, fraction=0.99)
        assert 1.5e6 < obw < 3.5e6

    def test_wifi_occupies_about_17mhz(self, rng):
        from repro.wifi.ofdm import OfdmTransmitter

        pkt = OfdmTransmitter().packet(
            rng.integers(0, 2, 96 * 30, dtype=np.int8)
        )
        obw = occupied_bandwidth(pkt, 20e6, fraction=0.99)
        assert 15e6 < obw < 18.5e6

    def test_bandwidth_gap_motivates_symbol_level(self, rng):
        """The paper's Section II-B argument: a 2 vs ~17 MHz gap is why
        signal emulation (WEBee-style) cannot do ZigBee->WiFi and a
        symbol-level design is needed."""
        from repro.wifi.ofdm import OfdmTransmitter
        from repro.zigbee.transmitter import ZigBeeTransmitter

        _, zigbee = ZigBeeTransmitter().transmit(bytes(60))
        wifi = OfdmTransmitter().packet(rng.integers(0, 2, 96 * 20, dtype=np.int8))
        ratio = occupied_bandwidth(wifi, 20e6) / occupied_bandwidth(zigbee, 20e6)
        assert ratio > 5.0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            occupied_bandwidth(np.ones(4096, complex), 20e6, fraction=1.5)

    def test_silence_has_zero_obw(self):
        assert occupied_bandwidth(np.zeros(4096, complex), 20e6) == 0.0


class TestCentroid:
    def test_mixer_moves_centroid(self):
        from repro.dsp.signal_ops import mix
        from repro.zigbee.transmitter import ZigBeeTransmitter

        _, wf = ZigBeeTransmitter().transmit(bytes(40))
        shifted = mix(wf, 3e6, 20e6)
        assert spectral_centroid(wf, 20e6) == pytest.approx(0.0, abs=2e5)
        assert spectral_centroid(shifted, 20e6) == pytest.approx(3e6, abs=3e5)

    def test_front_end_places_zigbee_at_channel_offset(self, rng):
        from repro.wifi.front_end import WifiFrontEnd
        from repro.zigbee.transmitter import ZigBeeTransmitter

        tx = ZigBeeTransmitter(channel=13)       # 2415 MHz
        fe = WifiFrontEnd(channel=1)              # 2412 MHz
        _, wf = tx.transmit(bytes(40))
        capture = fe.capture(
            [(wf, 0, tx.center_frequency)], wf.size, rng=rng,
            include_noise=False,
        )
        assert spectral_centroid(capture, 20e6) == pytest.approx(3e6, abs=3e5)
