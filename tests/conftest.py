"""Shared fixtures for the SymBee reproduction test suite."""

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _obs_state_guard():
    """Never leak process-wide telemetry state between tests.

    The metrics registry and tracer are process singletons; a test that
    enables them (or records events) and fails before its own cleanup
    would silently meter every later test.  Teardown-only on purpose:
    ``tests/obs/conftest.py`` asserts entry cleanliness, so a leak shows
    up as a failure at the leaking test's teardown, not as mystery
    counts three files later.
    """
    yield
    from repro.obs import REGISTRY, TRACER

    REGISTRY.disable()
    REGISTRY.reset()
    TRACER.disable()
    TRACER.reset()


@pytest.fixture
def rng():
    """Deterministic generator; per-test isolation via fixed seed."""
    return np.random.default_rng(0xC7C)


@pytest.fixture(scope="session")
def ideal_link():
    """A no-channel SymBee link shared by read-only tests."""
    from repro.core.link import SymBeeLink

    return SymBeeLink()


@pytest.fixture(scope="session")
def clean_capture():
    """One noiseless end-to-end capture with known bits (session-cached).

    Returns ``(link, bits, result)`` where ``result.phases`` is populated.
    Tests must not mutate any of it.
    """
    from repro.core.link import SymBeeLink

    link = SymBeeLink(include_noise=False)
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 0]
    result = link.send_bits(bits, np.random.default_rng(1), keep_phases=True)
    return link, bits, result
