"""Streaming front ends: exact tail state and deterministic arithmetic."""

import numpy as np
import pytest

from repro.stream.frontend import (
    ChannelizerFrontEnd,
    StreamingFrontEnd,
    _mixer_period,
    design_lowpass,
    exact_cmul,
    lagged_products,
)


def _random_splits(rng, n, n_splits):
    cuts = np.sort(rng.choice(np.arange(1, n), size=n_splits, replace=False))
    return [0, *cuts.tolist(), n]


class TestExactCmul:
    def test_matches_scalar_complex_arithmetic(self, rng):
        a = rng.standard_normal(257) + 1j * rng.standard_normal(257)
        b = rng.standard_normal(257) + 1j * rng.standard_normal(257)
        out = exact_cmul(a, b)
        for k in (0, 1, 100, 256):
            ar, ai, br, bi = a[k].real, a[k].imag, b[k].real, b[k].imag
            assert out[k] == complex(ar * br - ai * bi, ar * bi + ai * br)

    def test_scalar_operand(self, rng):
        a = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        r = complex(0.6, -0.8)
        out = exact_cmul(a, r)
        assert out.shape == a.shape
        assert out[3] == complex(
            a[3].real * r.real - a[3].imag * r.imag,
            a[3].real * r.imag + a[3].imag * r.real,
        )

    def test_alignment_independent(self, rng):
        # numpy's native complex kernel rounds differently depending on
        # buffer alignment; the decomposed form must not.
        n = 4096
        a = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ref = exact_cmul(a, b)
        for off in range(1, 4):
            buf_a = np.empty(n + 8, dtype=np.complex128)
            buf_b = np.empty(n + 8, dtype=np.complex128)
            va, vb = buf_a[off : off + n], buf_b[off : off + n]
            va[:] = a
            vb[:] = b
            assert (exact_cmul(va, vb) == ref).all()


class TestLaggedProducts:
    def test_matches_scalar(self, rng):
        x = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        out = lagged_products(x, 16)
        assert out.size == 184
        for k in (0, 50, 183):
            a, b = x[k], x[k + 16]
            assert out[k] == complex(
                a.real * b.real + a.imag * b.imag,
                a.imag * b.real - a.real * b.imag,
            )

    def test_short_and_invalid(self):
        assert lagged_products(np.ones(10, complex), 16).size == 0
        with pytest.raises(ValueError):
            lagged_products(np.ones(100, complex), 0)


class TestStreamingFrontEnd:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bit_identical_for_random_splits(self, seed):
        rng = np.random.default_rng(seed)
        n = 5000
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ref = lagged_products(x, 16)
        fe = StreamingFrontEnd(16)
        edges = _random_splits(rng, n, 40)
        pieces = [
            fe.process(x[lo:hi]).products
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
        got = np.concatenate(pieces)
        assert got.size == ref.size
        assert (got == ref).all()

    def test_blocks_shorter_than_lag(self, rng):
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        fe = StreamingFrontEnd(16)
        got = np.concatenate(
            [fe.process(x[lo : lo + 3]).products for lo in range(0, 100, 3)]
        )
        assert (got == lagged_products(x, 16)).all()

    def test_start_indices_are_contiguous(self, rng):
        x = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        fe = StreamingFrontEnd(16)
        pos = 0
        for lo in range(0, 300, 37):
            block = fe.process(x[lo : lo + 37])
            assert block.start == pos
            pos += block.products.size
        assert pos == 300 - 16

    def test_metric_path(self, rng):
        from repro.wifi.idle_listening import autocorrelation_metric

        x = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        ref_metric, ref_phase = autocorrelation_metric(x, 16, window=16)
        fe = StreamingFrontEnd(16, compute_metric=True)
        metrics, phases = [], []
        for lo in range(0, 2000, 123):
            block = fe.process(x[lo : lo + 123])
            metrics.append(block.metric)
            phases.append(block.corr_phase)
        got_metric = np.concatenate(metrics)
        got_phase = np.concatenate(phases)
        assert got_metric.size == ref_metric.size
        # The metric windows are recomputed locally, so agreement is to
        # float accumulation order, not bit-exact.
        assert np.allclose(got_metric, ref_metric, atol=1e-9)
        assert np.allclose(got_phase, ref_phase, atol=1e-9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingFrontEnd(0)
        with pytest.raises(ValueError):
            StreamingFrontEnd(16, window=0)

    def test_reset(self, rng):
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        fe = StreamingFrontEnd(16)
        fe.process(x)
        fe.reset()
        assert fe.samples_in == 0
        assert (fe.process(x).products == lagged_products(x, 16)).all()


class TestDesignLowpass:
    def test_unit_dc_gain(self):
        taps = design_lowpass(21, 1.4e6, 20e6)
        assert taps.size == 21
        assert abs(taps.sum() - 1.0) < 1e-12

    def test_rejects_even_or_tiny_taps(self):
        with pytest.raises(ValueError):
            design_lowpass(20, 1.4e6, 20e6)
        with pytest.raises(ValueError):
            design_lowpass(1, 1.4e6, 20e6)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            design_lowpass(21, 0.0, 20e6)
        with pytest.raises(ValueError):
            design_lowpass(21, 11e6, 20e6)

    def test_attenuates_out_of_band_tone(self):
        taps = design_lowpass(21, 1.4e6, 20e6)
        freqs = np.fft.rfftfreq(4096, d=1 / 20e6)
        response = np.abs(np.fft.rfft(taps, 4096))
        in_band = response[freqs < 0.5e6].min()
        at_5mhz = response[np.argmin(np.abs(freqs - 5e6))]
        assert in_band > 0.9
        assert at_5mhz < 0.2


class TestMixerPeriod:
    def test_channel_offsets_have_small_periods(self):
        # Appendix-B offsets are multiples of 1 MHz at fs = 20 MHz.
        assert _mixer_period(8e6, 20e6) == 5
        assert _mixer_period(-7e6, 20e6) == 20
        assert _mixer_period(0.0, 20e6) == 1

    def test_irrational_offset_has_none(self):
        assert _mixer_period(1.234567e6 + 0.5, 20e6) is None


class TestChannelizerFrontEnd:
    @pytest.mark.parametrize("block_size", [7, 64, 997, 4096])
    def test_bit_identical_for_any_blocking(self, rng, block_size):
        n = 20000
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        one_shot = ChannelizerFrontEnd(8e6, 20e6, 16)
        ref = one_shot.process(x).products
        fe = ChannelizerFrontEnd(8e6, 20e6, 16)
        pieces = [
            fe.process(x[lo : lo + block_size]).products
            for lo in range(0, n, block_size)
        ]
        got = np.concatenate(pieces)
        assert got.size == ref.size
        assert (got == ref).all()

    def test_blocks_shorter_than_fir(self, rng):
        n = 400
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ref = ChannelizerFrontEnd(3e6, 20e6, 16).process(x).products
        fe = ChannelizerFrontEnd(3e6, 20e6, 16)
        got = np.concatenate(
            [fe.process(x[lo : lo + 5]).products for lo in range(0, n, 5)]
        )
        assert (got == ref).all()

    def test_isolates_neighbouring_subband(self, rng):
        # A tone 5 MHz away must come out heavily attenuated relative to
        # a tone inside the passband.
        n = 8192
        t = np.arange(n)
        in_band = np.exp(1j * 2 * np.pi * 0.2e6 * t / 20e6)
        neighbour = np.exp(1j * 2 * np.pi * 5.2e6 * t / 20e6)
        fe = ChannelizerFrontEnd(0.0, 20e6, 16)
        kept = np.abs(fe.process(in_band).products).mean()
        fe.reset()
        leaked = np.abs(fe.process(neighbour).products).mean()
        assert leaked < 0.05 * kept
