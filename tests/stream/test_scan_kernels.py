"""Scan-kernel registry: identity, invariance, pooled equality.

The PR-10 scanner contract, asserted rather than assumed:

* ``batched`` is **bit-identical** to the ``grouped`` reference — same
  frames, same order, same float diagnostics — on every product domain
  it runs over (decimation 4 and 8), because every gate compares
  exactly the same floats; batching the cascade cannot change an
  outcome.
* the batched kernel is block-size invariant at decimation 8, the
  deepest product domain: adversarial fixed sizes plus random cuts all
  reproduce one reference decode.
* ``fft`` is decode-equivalent, not bit-identical: the overlap-save
  profile differs at ~1e-13 relative, inside the gate slack, so the
  CRC-valid payload multiset must match the exact-fold kernels.
* the persistent worker pool replays the serial decode byte for byte
  with the batched kernel — pooling is a transport, not a decoder.
"""

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream.engine import StreamEngine
from repro.stream.scan import DEFAULT_SCAN_KERNEL, SCAN_KERNELS

BLOCK_SIZES = (64, 1000, 4096, 9973)

#: Decimated fast path, the configuration the scanner was built for.
FAST = dict(demux=True, mode="fast", working_dtype=np.complex64)


def _decode_fields(frames):
    return [frame.decode_fields() for frame in frames]


def _crc_ok_bits(frames):
    return sorted(tuple(frame.bits) for frame in frames if frame.crc_ok)


@pytest.fixture(scope="module")
def demux_case():
    senders = [
        StreamSender(0, zigbee_channel=11),
        StreamSender(1, zigbee_channel=13),
        StreamSender(2, zigbee_channel=14),
    ]
    traffic = StreamTraffic(senders, duration_s=0.025)
    samples, truth = traffic.capture(np.random.default_rng(42))
    assert truth
    return traffic, samples


def _run(demux_case, block_size=65536, **overrides):
    traffic, samples = demux_case
    engine = StreamEngine(**{**FAST, **overrides})
    return engine.run(traffic.blocks(samples, block_size))


@pytest.fixture(scope="module")
def grouped_d8_frames(demux_case):
    frames = _run(demux_case, decimation=8, scan_kernel="grouped")
    assert frames
    return frames


@pytest.fixture(scope="module")
def grouped_d8(grouped_d8_frames):
    return _decode_fields(grouped_d8_frames)


@pytest.mark.parametrize("decimation", [4, 8])
def test_batched_is_bit_identical_to_grouped(demux_case, decimation):
    grouped = _run(demux_case, decimation=decimation, scan_kernel="grouped")
    batched = _run(demux_case, decimation=decimation, scan_kernel="batched")
    assert grouped
    assert _decode_fields(batched) == _decode_fields(grouped)


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_batched_d8_is_block_size_invariant(
    demux_case, grouped_d8, block_size
):
    frames = _run(
        demux_case, block_size, decimation=8, scan_kernel="batched"
    )
    assert _decode_fields(frames) == grouped_d8


def test_batched_d8_random_cuts_match(demux_case, grouped_d8, rng):
    traffic, samples = demux_case
    engine = StreamEngine(**FAST, decimation=8, scan_kernel="batched")
    frames = []
    lo = 0
    while lo < samples.size:
        size = int(rng.integers(1, 20000))
        frames.extend(engine.process_block(samples[lo : lo + size]))
        lo += size
    frames.extend(engine.finish())
    assert _decode_fields(frames) == grouped_d8


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_fft_d8_is_block_size_invariant(demux_case, block_size):
    # The fft kernel has its *own* reference decode (profiles differ
    # from the exact fold at the last bits), but must be invariant to
    # blocking against itself all the same.
    reference = _run(demux_case, decimation=8, scan_kernel="fft")
    frames = _run(demux_case, block_size, decimation=8, scan_kernel="fft")
    assert _decode_fields(frames) == _decode_fields(reference)


def test_fft_delivers_exact_fold_payloads(demux_case, grouped_d8_frames):
    # Decode-equivalence across fold arithmetic: same CRC-valid payload
    # multiset as the exact-fold kernels and as the exact-mode engine.
    fft_frames = _run(demux_case, decimation=8, scan_kernel="fft")
    bits = _crc_ok_bits(fft_frames)
    assert bits
    assert bits == _crc_ok_bits(grouped_d8_frames)
    traffic, samples = demux_case
    exact = StreamEngine(demux=True, decimation=4, mode="exact")
    exact_frames = exact.run(traffic.blocks(samples, 65536))
    assert bits == _crc_ok_bits(exact_frames)


def test_pooled_matches_serial_batched_d8(demux_case, grouped_d8):
    traffic, samples = demux_case
    engine = StreamEngine(**FAST, decimation=8, scan_kernel="batched")
    frames = engine.run(traffic.blocks(samples, 65536), jobs=2)
    assert _decode_fields(frames) == grouped_d8


def test_unknown_scan_kernel_rejected():
    with pytest.raises(ValueError, match="unknown scan kernel"):
        StreamEngine(demux=True, decimation=4, scan_kernel="vectorized")


def test_registry_shape():
    assert DEFAULT_SCAN_KERNEL in SCAN_KERNELS
    assert set(SCAN_KERNELS) == {"grouped", "batched", "fft"}
    for spec in SCAN_KERNELS.values():
        assert spec.fold_mode in ("exact", "fast")


def test_stats_report_scan_kernel(demux_case):
    traffic, samples = demux_case
    engine = StreamEngine(**FAST, decimation=8, scan_kernel="fft")
    engine.run(traffic.blocks(samples, 65536))
    stats = engine.stats()
    assert stats["scan_kernel"] == "fft"
    assert stats["decimation"] == 8
