"""Parallel per-channel demux must be invisible in the results.

``StreamEngine.run(blocks, jobs=n)`` decodes each channel in its own
worker process.  Channels are independent between the channelizer and
frame arbitration, workers ship frames plus metric shards back, and the
parent merges shards in task order — so a parallel run must produce the
*same frames* and the *same ``stream.*`` metric totals* as the serial
engine, down to the float histogram sums.  That identity only holds
because the serial demux bank (:class:`FastChannelBank`) is bit-exact
with the solo per-channel front ends the workers run.
"""

import logging

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.obs import REGISTRY
from repro.stream.engine import StreamEngine


def _decode_fields(frames):
    return [frame.decode_fields() for frame in frames]


def _stream_totals(snapshot):
    """The stream.* slice of a metrics snapshot (counters + histograms).

    ``stream.health.*`` is excluded: wall-clock timings differ between
    runs by construction (the serial engine observes once per engine
    block, workers once per channel block), so only the deterministic
    decode metrics are held to the serial==parallel identity.
    """
    return {
        kind: {
            name: value
            for name, value in snapshot[kind].items()
            if name.startswith("stream.")
            and not name.startswith("stream.health.")
        }
        for kind in ("counters", "histograms")
    }


@pytest.fixture(scope="module")
def demux_case():
    senders = [
        StreamSender(0, zigbee_channel=11),
        StreamSender(1, zigbee_channel=13),
        StreamSender(2, zigbee_channel=14),
    ]
    traffic = StreamTraffic(senders, duration_s=0.025)
    samples, truth = traffic.capture(np.random.default_rng(42))
    assert truth
    return traffic, samples


def _metered_run(traffic, samples, jobs, **engine_kwargs):
    engine = StreamEngine(demux=True, **engine_kwargs)
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        frames = engine.run(traffic.blocks(samples, 65536), jobs=jobs)
        snapshot = REGISTRY.snapshot()
    finally:
        REGISTRY.disable()
        REGISTRY.reset()
    return frames, _stream_totals(snapshot)


@pytest.mark.parametrize(
    "engine_kwargs",
    (
        {},
        {"decimation": 4, "mode": "fast", "working_dtype": np.complex64},
    ),
    ids=("exact-full-rate", "decimated-fast-f32"),
)
def test_parallel_matches_serial(demux_case, engine_kwargs):
    traffic, samples = demux_case
    serial_frames, serial_totals = _metered_run(
        traffic, samples, jobs=None, **engine_kwargs
    )
    parallel_frames, parallel_totals = _metered_run(
        traffic, samples, jobs=2, **engine_kwargs
    )
    assert serial_frames
    assert _decode_fields(parallel_frames) == _decode_fields(serial_frames)
    assert parallel_totals == serial_totals


def test_jobs_falls_back_to_serial_for_wideband():
    traffic = StreamTraffic(
        [StreamSender(0, zigbee_channel=13, reading_interval_s=0.004)],
        duration_s=0.02,
    )
    samples, truth = traffic.capture(np.random.default_rng(21))
    assert truth
    serial = StreamEngine().run(traffic.blocks(samples, 65536))
    jobbed = StreamEngine().run(traffic.blocks(samples, 65536), jobs=2)
    assert _decode_fields(jobbed) == _decode_fields(serial)


def _random_blocks(samples, rng, lo=1, hi=50000):
    """Yield ``samples`` in random-size cuts (always covers everything)."""
    pos = 0
    while pos < samples.size:
        step = int(rng.integers(lo, hi))
        yield samples[pos : pos + step]
        pos += step


@pytest.mark.parametrize(
    "engine_kwargs",
    (
        {},
        {"decimation": 4, "mode": "fast", "working_dtype": np.complex64},
    ),
    ids=("exact-full-rate", "decimated-fast-f32"),
)
def test_parallel_random_blocks_matches_serial(demux_case, engine_kwargs):
    """Pooled decode under adversarial blocking: random-size publishes
    must reproduce the uniform-block serial frames exactly — the
    transport (shared-memory views, per-worker queues) and the decode
    chain are both blocking-invariant."""
    traffic, samples = demux_case
    serial = StreamEngine(demux=True, **engine_kwargs).run(
        traffic.blocks(samples, 65536)
    )
    parallel = StreamEngine(demux=True, **engine_kwargs).run(
        _random_blocks(samples, np.random.default_rng(7)), jobs=2
    )
    assert serial
    assert _decode_fields(parallel) == _decode_fields(serial)


def test_jobs_ignored_counts_and_warns(caplog, monkeypatch):
    # A prior CLI test may have wired the "repro" namespace through
    # configure_logging, which sets propagate=False; restore propagation
    # so caplog's root handler sees the engine's warning.
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    traffic = StreamTraffic(
        [StreamSender(0, zigbee_channel=13, reading_interval_s=0.004)],
        duration_s=0.02,
    )
    samples, truth = traffic.capture(np.random.default_rng(21))
    assert truth
    engine = StreamEngine()  # wideband: jobs cannot apply
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        with caplog.at_level("WARNING", logger="repro.stream.engine"):
            engine.run(traffic.blocks(samples, 65536), jobs=2)
        counters = REGISTRY.snapshot()["counters"]
    finally:
        REGISTRY.disable()
        REGISTRY.reset()
    assert counters.get("stream.jobs_ignored") == 1
    assert any("jobs=2 ignored" in rec.message for rec in caplog.records)


def test_pool_stats_exposed_after_parallel_run(demux_case):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True)
    assert engine.pool_stats is None
    engine.run(traffic.blocks(samples, 65536), jobs=2)
    stats = engine.pool_stats
    assert stats is not None
    assert stats["blocks_published"] > 0
    assert stats["workers"] == 2
    assert engine.stats()["pool"] == stats
