"""End-to-end engine decode against scheduled ground truth."""

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream.engine import StreamEngine, batch_decode_stream


def _delivered(frames, truth):
    """Count scheduled transmissions matched by a CRC-valid decode."""
    remaining = {}
    for t in truth:
        remaining.setdefault((t.zigbee_channel, t.frame_bits), []).append(t)
    count = 0
    for frame in frames:
        if not frame.crc_ok:
            continue
        queue = remaining.get((frame.zigbee_channel, frame.bits))
        if queue:
            queue.pop(0)
            count += 1
    return count


@pytest.fixture(scope="module")
def wideband_capture():
    traffic = StreamTraffic(
        [StreamSender(0, zigbee_channel=13, reading_interval_s=0.004)],
        duration_s=0.03,
    )
    samples, truth = traffic.capture(np.random.default_rng(11))
    return traffic, samples, truth


@pytest.fixture(scope="module")
def demux_capture():
    senders = [
        StreamSender(0, zigbee_channel=11),
        StreamSender(1, zigbee_channel=13),
        StreamSender(2, zigbee_channel=14),
    ]
    traffic = StreamTraffic(senders, duration_s=0.03)
    samples, truth = traffic.capture(np.random.default_rng(42))
    return traffic, samples, truth


class TestWideband:
    def test_single_sender_decodes_all(self, wideband_capture):
        traffic, samples, truth = wideband_capture
        assert truth, "schedule produced no transmissions"
        engine = StreamEngine()
        frames = engine.run(traffic.blocks(samples, 16384))
        assert _delivered(frames, truth) == len(truth)
        ok = [f for f in frames if f.crc_ok]
        assert len(ok) == len(truth)
        for frame in ok:
            assert frame.zigbee_channel == 13
            assert frame.coherence > 0.5

    def test_multi_channel_wideband_is_rejected(self):
        with pytest.raises(ValueError, match="Appendix B"):
            StreamEngine(zigbee_channels=[11, 13], demux=False)

    def test_no_channels_is_rejected(self):
        with pytest.raises(ValueError):
            StreamEngine(zigbee_channels=[])

    def test_stats(self, wideband_capture):
        traffic, samples, _ = wideband_capture
        engine = StreamEngine()
        engine.run(traffic.blocks(samples, 16384))
        stats = engine.stats()
        assert stats["mode"] == "wideband"
        assert stats["samples_in"] == samples.size
        assert stats["blocks_in"] == -(-samples.size // 16384)
        assert len(stats["sessions"]) == 1


class TestDemux:
    def test_concurrent_senders_all_delivered(self, demux_capture):
        traffic, samples, truth = demux_capture
        channels_used = {t.zigbee_channel for t in truth}
        assert len(channels_used) >= 2, "schedule exercised one channel only"
        engine = StreamEngine(demux=True)
        frames = engine.run(traffic.blocks(samples, 16384))
        assert _delivered(frames, truth) == len(truth)

    def test_no_spurious_crc_valid_frames(self, demux_capture):
        # Sub-band leakage aliases onto the same product phase, so
        # without arbitration a strong sender decodes verbatim on
        # neighbouring idle sessions too.  Every surviving CRC-valid
        # frame must correspond to a real transmission on its channel.
        traffic, samples, truth = demux_capture
        frames = batch_decode_stream(samples, demux=True)
        truth_keys = {(t.zigbee_channel, t.frame_bits) for t in truth}
        for frame in frames:
            if frame.crc_ok:
                assert (frame.zigbee_channel, frame.bits) in truth_keys

    def test_leak_copies_are_suppressed(self, demux_capture):
        traffic, samples, _ = demux_capture
        engine = StreamEngine(demux=True)
        engine.run(traffic.blocks(samples, 16384))
        assert engine.frames_suppressed > 0

    def test_default_channels_cover_wifi_overlap(self):
        engine = StreamEngine(demux=True)
        assert engine.zigbee_channels == [11, 12, 13, 14]

    def test_released_frames_sorted_by_position(self, demux_capture):
        traffic, samples, _ = demux_capture
        frames = batch_decode_stream(samples, demux=True)
        # batch decode releases everything at once: global order.
        indices = [f.preamble_index for f in frames]
        assert indices == sorted(indices)


class TestRunFromRing:
    def test_engine_drains_ring(self, wideband_capture):
        from repro.stream.ring import RingBufferSource

        traffic, samples, truth = wideband_capture
        ring = RingBufferSource(capacity_blocks=256)
        for block in traffic.blocks(samples, 8192):
            assert ring.push(block)
        ring.close()
        engine = StreamEngine()
        frames = engine.run(ring)
        assert _delivered(frames, truth) == len(truth)
        assert ring.stats()["depth"] == 0
