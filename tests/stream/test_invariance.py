"""Block-size invariance: streaming decode is bit-identical to batch.

The acceptance property of the whole subsystem: for any block size —
tiny, prime, huge — feeding the same capture through
:class:`repro.stream.StreamEngine` yields *exactly* the frames of
:func:`repro.stream.batch_decode_stream` (one whole-capture call), down
to the float diagnostics.  This only holds because every float in the
decode path is computed by single-rounding real ufunc ops (see
``repro.stream.frontend.exact_cmul``); numpy's native complex multiply,
``np.convolve`` and SIMD ``np.exp`` all vary their last bit with array
length or alignment and would each break this test.
"""

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream.engine import StreamEngine, batch_decode_stream

#: Deliberately adversarial sizes: smaller than the lag, non-dividing,
#: page-sized, larger than the whole scan chunk, and a prime.
BLOCK_SIZES = (64, 1000, 4096, 65536, 9973)


def _decode_fields(frames):
    return [frame.decode_fields() for frame in frames]


@pytest.fixture(scope="module")
def wideband_case():
    traffic = StreamTraffic(
        [StreamSender(0, zigbee_channel=13, reading_interval_s=0.004)],
        duration_s=0.025,
    )
    samples, truth = traffic.capture(np.random.default_rng(21))
    reference = batch_decode_stream(samples)
    assert truth and reference
    return traffic, samples, _decode_fields(reference)


@pytest.fixture(scope="module")
def demux_case():
    senders = [
        StreamSender(0, zigbee_channel=11),
        StreamSender(1, zigbee_channel=13),
        StreamSender(2, zigbee_channel=14),
    ]
    traffic = StreamTraffic(senders, duration_s=0.025)
    samples, truth = traffic.capture(np.random.default_rng(42))
    reference = batch_decode_stream(samples, demux=True)
    assert truth and reference
    return traffic, samples, _decode_fields(reference)


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_wideband_streaming_matches_batch(wideband_case, block_size):
    traffic, samples, reference = wideband_case
    engine = StreamEngine()
    frames = engine.run(traffic.blocks(samples, block_size))
    assert _decode_fields(frames) == reference


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_demux_streaming_matches_batch(demux_case, block_size):
    traffic, samples, reference = demux_case
    engine = StreamEngine(demux=True)
    frames = engine.run(traffic.blocks(samples, block_size))
    assert _decode_fields(frames) == reference


def test_random_block_sizes_match_batch(wideband_case, rng):
    # Not just fixed sizes: a stream cut at random points must decode
    # identically too (blocks of 1..2 scan chunks, plus runts).
    traffic, samples, reference = wideband_case
    engine = StreamEngine()
    frames = []
    lo = 0
    while lo < samples.size:
        size = int(rng.integers(1, 20000))
        frames.extend(engine.process_block(samples[lo : lo + size]))
        lo += size
    frames.extend(engine.finish())
    assert _decode_fields(frames) == reference


def test_latency_is_the_only_blocking_dependent_field(wideband_case):
    traffic, samples, reference = wideband_case
    engine = StreamEngine()
    frames = engine.run(traffic.blocks(samples, 64))
    for frame in frames:
        assert frame.latency_products >= 0
