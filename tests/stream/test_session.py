"""StreamSession and its absolute-index buffer."""

import numpy as np
import pytest

from repro.core.decoder import SymBeeDecoder
from repro.stream.session import StreamSession, _StreamBuffer


class TestStreamBuffer:
    def test_append_view_roundtrip(self, rng):
        buf = _StreamBuffer()
        data = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        buf.append(data[:60])
        buf.append(data[60:])
        assert buf.base == 0
        assert buf.end == 100
        assert (buf.view(0, 100) == data).all()
        assert (buf.view(40, 70) == data[40:70]).all()

    def test_trim_then_view(self, rng):
        buf = _StreamBuffer()
        data = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        buf.append(data)
        buf.trim(20)
        assert buf.base == 20
        assert (buf.view(20, 50) == data[20:]).all()
        with pytest.raises(IndexError):
            buf.view(10, 30)
        with pytest.raises(IndexError):
            buf.view(30, 60)

    def test_growth_past_initial_capacity(self, rng):
        buf = _StreamBuffer()
        chunks = [
            rng.standard_normal(3000) + 1j * rng.standard_normal(3000)
            for _ in range(5)
        ]
        for chunk in chunks:
            buf.append(chunk)
        whole = np.concatenate(chunks)
        assert (buf.view(0, whole.size) == whole).all()

    def test_compaction_after_trim(self, rng):
        buf = _StreamBuffer()
        data = rng.standard_normal(6000) + 1j * rng.standard_normal(6000)
        buf.append(data[:5000])
        buf.trim(4500)
        buf.append(data[5000:])  # fits only by compacting trimmed space
        assert (buf.view(4500, 6000) == data[4500:]).all()


class TestStreamSession:
    def test_noise_only_stream_emits_nothing(self, rng):
        decoder = SymBeeDecoder()
        session = StreamSession(decoder, zigbee_channel=13)
        noise = 1e-3 * (
            rng.standard_normal(50000) + 1j * rng.standard_normal(50000)
        )
        frames = session.push_products(noise)
        frames += session.finish()
        assert frames == []
        assert session.frames_emitted == 0

    def test_horizon_advances_monotonically(self, rng):
        decoder = SymBeeDecoder()
        session = StreamSession(decoder, zigbee_channel=13)
        noise = 1e-3 * (
            rng.standard_normal(40000) + 1j * rng.standard_normal(40000)
        )
        last = session.horizon
        for lo in range(0, 40000, 4096):
            session.push_products(noise[lo : lo + 4096])
            assert session.horizon >= last
            last = session.horizon

    def test_invalid_scan_stride(self):
        with pytest.raises(ValueError):
            StreamSession(SymBeeDecoder(), scan_stride_bits=0)

    def test_stats_shape(self):
        session = StreamSession(SymBeeDecoder(), zigbee_channel=11)
        stats = session.stats()
        assert stats["zigbee_channel"] == 11
        assert stats["products_in"] == 0
        assert stats["frames_emitted"] == 0
