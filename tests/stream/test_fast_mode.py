"""Fast kernel mode: decode equivalence, bank bit-identity, validation.

Fast mode trades the exact path's bit-reproducibility for native
complex kernels, a mixer folded into the filter taps, and (optionally)
a complex64 working dtype.  The contract is *decode equivalence*: on
the same capture it must deliver the same CRC-valid payload bits as the
exact engine, for any way the stream is cut into blocks.  On top of
that, :class:`FastChannelBank` — the shared-buffer multi-channel filter
used by the demux engine — must be *bit-identical* to running each
channel's own :class:`ChannelizerFrontEnd`, which is what makes serial
and parallel demux report identical frames and metrics.
"""

import numpy as np
import pytest

from repro.zigbee.channels import frequency_offset_hz
from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream.engine import StreamEngine
from repro.stream.frontend import ChannelizerFrontEnd, FastChannelBank

CHANNELS = (11, 13, 14)


def _crc_ok_bits(frames):
    return sorted(tuple(frame.bits) for frame in frames if frame.crc_ok)


def _random_cut_run(engine, samples, rng):
    frames = []
    lo = 0
    while lo < samples.size:
        size = int(rng.integers(1, 20000))
        frames.extend(engine.process_block(samples[lo : lo + size]))
        lo += size
    frames.extend(engine.finish())
    return frames


@pytest.fixture(scope="module")
def demux_case():
    senders = [
        StreamSender(i, zigbee_channel=ch) for i, ch in enumerate(CHANNELS)
    ]
    traffic = StreamTraffic(senders, duration_s=0.025)
    samples, truth = traffic.capture(np.random.default_rng(42))
    assert truth
    return traffic, samples


@pytest.fixture(scope="module")
def exact_bits(demux_case):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True, decimation=4)
    bits = _crc_ok_bits(engine.run(traffic.blocks(samples, 65536)))
    assert bits
    return bits


@pytest.mark.parametrize("working_dtype", (None, np.complex64))
def test_fast_decode_equivalence_over_random_cuts(
    demux_case, exact_bits, working_dtype
):
    traffic, samples = demux_case
    rng = np.random.default_rng(7)
    for _ in range(3):
        engine = StreamEngine(
            demux=True,
            decimation=4,
            mode="fast",
            working_dtype=working_dtype,
        )
        frames = _random_cut_run(engine, samples, rng)
        assert _crc_ok_bits(frames) == exact_bits


def test_fast_full_rate_decode_equivalence(demux_case, exact_bits):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True, mode="fast")
    frames = engine.run(traffic.blocks(samples, 65536))
    assert _crc_ok_bits(frames) == exact_bits


def test_fast_is_self_consistent_across_cuts(demux_case):
    # Fast mode is not bit-equivalent to exact, but it must agree with
    # *itself* regardless of block cuts — the bank's per-window GEMM
    # shapes are fixed, so outputs depend only on window content.
    traffic, samples = demux_case
    engine = StreamEngine(
        demux=True, decimation=4, mode="fast", working_dtype=np.complex64
    )
    reference = [
        f.decode_fields() for f in engine.run(traffic.blocks(samples, 65536))
    ]
    engine = StreamEngine(
        demux=True, decimation=4, mode="fast", working_dtype=np.complex64
    )
    frames = _random_cut_run(engine, samples, np.random.default_rng(11))
    assert [f.decode_fields() for f in frames] == reference


def _front_ends(dtype, mode="fast", decimation=4):
    lag = 16
    return [
        ChannelizerFrontEnd(
            frequency_offset_hz(ch, 1),
            20e6,
            lag,
            decimation=decimation,
            mode=mode,
            working_dtype=dtype,
        )
        for ch in CHANNELS
    ]


class TestFastChannelBank:
    @pytest.mark.parametrize("dtype", (np.complex128, np.complex64))
    def test_bit_identical_to_solo_front_ends(self, demux_case, dtype, rng):
        _, samples = demux_case
        samples = samples[:200_000]
        bank_fes = _front_ends(dtype)
        solo_fes = _front_ends(dtype)
        bank = FastChannelBank(bank_fes)
        lo = 0
        while lo < samples.size:
            size = int(rng.integers(1, 30000))
            block = samples[lo : lo + size]
            lo += size
            banked = bank.process_block(block)
            for fe, out in zip(solo_fes, banked):
                solo = fe.process(block)
                assert np.array_equal(solo.products, out.products)

    def test_requires_two_front_ends(self):
        with pytest.raises(ValueError):
            FastChannelBank(_front_ends(None)[:1])

    def test_requires_fast_mode(self):
        with pytest.raises(ValueError):
            FastChannelBank(_front_ends(None, mode="exact"))

    def test_requires_decimation(self):
        with pytest.raises(ValueError):
            FastChannelBank(_front_ends(None, decimation=1))

    def test_requires_matching_dtypes(self):
        mixed = _front_ends(np.complex64)[:2] + _front_ends(None)[:1]
        with pytest.raises(ValueError):
            FastChannelBank(mixed)


def test_product_rotation_compensates_folded_mixer(rng):
    # Fast mode drops the output-rate mixer factor; multiplying the
    # products by product_rotation must land them on the exact path's
    # (up to float tolerance).
    z = (rng.standard_normal(50_000) + 1j * rng.standard_normal(50_000))
    exact = ChannelizerFrontEnd(
        frequency_offset_hz(13, 1), 20e6, 16, decimation=4
    )
    fast = ChannelizerFrontEnd(
        frequency_offset_hz(13, 1), 20e6, 16, decimation=4, mode="fast"
    )
    ref = exact.process(z).products
    out = fast.process(z).products
    assert out.shape == ref.shape
    np.testing.assert_allclose(
        out * fast.product_rotation, ref, rtol=1e-8, atol=1e-8
    )


def test_rejects_float32_in_exact_mode():
    with pytest.raises(ValueError):
        StreamEngine(demux=True, working_dtype=np.complex64)
