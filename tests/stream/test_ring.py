"""Bounded ring-buffer source: accounting, overruns, iteration."""

import numpy as np
import pytest

from repro.stream.ring import RingBufferSource


def _block(n=8):
    return np.ones(n, dtype=np.complex128)


class TestRingBufferSource:
    def test_fifo_order(self):
        ring = RingBufferSource(capacity_blocks=4)
        for k in range(3):
            assert ring.push(np.full(4, k, dtype=np.complex128))
        assert ring.pop()[0] == 0
        assert ring.pop()[0] == 1
        assert ring.pop()[0] == 2
        assert ring.pop() is None

    def test_overrun_drops_and_accounts(self):
        ring = RingBufferSource(capacity_blocks=2)
        assert ring.push(_block(8))
        assert ring.push(_block(8))
        assert not ring.push(_block(8))
        stats = ring.stats()
        assert stats["overruns"] == 1
        assert stats["samples_dropped"] == 8
        assert stats["blocks_pushed"] == 2
        # The queued blocks are intact.
        assert ring.pop().size == 8
        assert ring.push(_block(4))

    def test_close_then_drain(self):
        ring = RingBufferSource(capacity_blocks=4)
        ring.push(_block(3))
        ring.push(_block(5))
        ring.close()
        sizes = [b.size for b in ring]
        assert sizes == [3, 5]
        with pytest.raises(ValueError):
            ring.push(_block())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSource(capacity_blocks=0)

    def test_depth_tracking(self):
        ring = RingBufferSource(capacity_blocks=8)
        assert ring.stats()["depth"] == 0
        ring.push(_block())
        ring.push(_block())
        assert ring.stats()["depth"] == 2
        ring.pop()
        assert ring.stats()["depth"] == 1
