"""Bounded ring-buffer source: accounting, overruns, iteration."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import REGISTRY
from repro.runtime.workerpool import BlockWorkerPool
from repro.stream.ring import RingBufferSource


def _block(n=8):
    return np.ones(n, dtype=np.complex128)


class _SlowPoolConsumer:
    def process(self, block):
        time.sleep(0.05)

    def finish(self):
        return None


def slow_pool_consumer(config, key):
    return _SlowPoolConsumer()


class TestRingBufferSource:
    def test_fifo_order(self):
        ring = RingBufferSource(capacity_blocks=4)
        for k in range(3):
            assert ring.push(np.full(4, k, dtype=np.complex128))
        assert ring.pop()[0] == 0
        assert ring.pop()[0] == 1
        assert ring.pop()[0] == 2
        assert ring.pop() is None

    def test_overrun_drops_and_accounts(self):
        ring = RingBufferSource(capacity_blocks=2)
        assert ring.push(_block(8))
        assert ring.push(_block(8))
        assert not ring.push(_block(8))
        stats = ring.stats()
        assert stats["overruns"] == 1
        assert stats["samples_dropped"] == 8
        assert stats["blocks_pushed"] == 2
        # The queued blocks are intact.
        assert ring.pop().size == 8
        assert ring.push(_block(4))

    def test_close_then_drain(self):
        ring = RingBufferSource(capacity_blocks=4)
        ring.push(_block(3))
        ring.push(_block(5))
        ring.close()
        sizes = [b.size for b in ring]
        assert sizes == [3, 5]
        with pytest.raises(ValueError):
            ring.push(_block())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSource(capacity_blocks=0)

    def test_depth_tracking(self):
        ring = RingBufferSource(capacity_blocks=8)
        assert ring.stats()["depth"] == 0
        ring.push(_block())
        ring.push(_block())
        assert ring.stats()["depth"] == 2
        ring.pop()
        assert ring.stats()["depth"] == 1


class TestRingScheduleInvariants:
    """Random interleavings of push/pop never break the accounting.

    The invariant set under any schedule: every pushed block is either
    still queued or was popped (``blocks_pushed == blocks_popped +
    depth``); sample accounting splits offered load exactly into kept
    and dropped; overruns happen iff a push met a full ring; the
    watermark never exceeds capacity.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        schedule=st.lists(
            st.tuples(
                st.sampled_from(("push", "pop")),
                st.integers(min_value=1, max_value=32),
            ),
            max_size=200,
        ),
    )
    def test_totals_invariant_under_random_schedule(self, capacity, schedule):
        ring = RingBufferSource(capacity_blocks=capacity)
        offered_blocks = offered_samples = 0
        popped_samples = 0
        for op, size in schedule:
            if op == "push":
                offered_blocks += 1
                offered_samples += size
                was_full = len(ring) >= capacity
                accepted = ring.push(np.zeros(size, dtype=np.complex64))
                assert accepted == (not was_full)
            else:
                block = ring.pop()
                if block is not None:
                    popped_samples += block.size
        stats = ring.stats()
        assert stats["blocks_pushed"] == stats["blocks_popped"] + stats["depth"]
        assert stats["blocks_pushed"] + stats["overruns"] == offered_blocks
        assert stats["samples_pushed"] + stats["samples_dropped"] == (
            offered_samples
        )
        queued_samples = sum(b.size for b in ring)
        assert popped_samples + queued_samples == stats["samples_pushed"]
        assert stats["high_watermark"] <= capacity

    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=4),
        sizes=st.lists(
            st.integers(min_value=1, max_value=64), min_size=1, max_size=80
        ),
        consumer_stride=st.integers(min_value=1, max_value=5),
    )
    def test_concurrent_producer_consumer_totals(
        self, capacity, sizes, consumer_stride
    ):
        """One producer thread, one consumer thread, adversarial timing.

        The ring is a SPSC structure; whatever the interleaving, no
        block is lost unaccounted and no block is delivered twice.
        """
        ring = RingBufferSource(capacity_blocks=capacity)
        consumed = []

        def produce():
            for index, size in enumerate(sizes):
                ring.push(np.full(size, index, dtype=np.complex64))
                if index % 3 == 2:
                    time.sleep(0)  # yield to shake the interleaving
            ring.close()

        def consume():
            while True:
                block = ring.pop()
                if block is not None:
                    consumed.append(block)
                elif ring.closed:
                    # One more pop covers a push racing the close flag.
                    block = ring.pop()
                    if block is None:
                        return
                    consumed.append(block)
                elif len(consumed) % consumer_stride == 0:
                    time.sleep(0)

        producer = threading.Thread(target=produce)
        consumer = threading.Thread(target=consume)
        producer.start()
        consumer.start()
        producer.join(timeout=30)
        consumer.join(timeout=30)
        assert not producer.is_alive() and not consumer.is_alive()
        stats = ring.stats()
        assert stats["depth"] == 0
        assert stats["blocks_pushed"] == len(consumed) == stats["blocks_popped"]
        assert stats["blocks_pushed"] + stats["overruns"] == len(sizes)
        assert stats["samples_pushed"] == sum(b.size for b in consumed)
        assert stats["samples_pushed"] + stats["samples_dropped"] == sum(sizes)
        # FIFO survives concurrency: delivered indices strictly increase.
        indices = [int(b[0].real) for b in consumed]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)


class TestRingUnderPipelinedConsumer:
    """Ring → worker pool with a consumer slower than the producer.

    The contract under backpressure is *loss, not blocking*: when the
    pool's bounded queues refuse a block the pipelined drain stops
    popping, the ring fills, and further pushes are dropped and counted
    as overruns.  Nothing in the path may block the producer, so the
    whole run is bounded by the timeout marker — a deadlock fails the
    test rather than hanging the suite.
    """

    @pytest.mark.timeout(60)
    def test_backpressure_becomes_overruns_not_deadlock(self):
        n_blocks, block_len = 12, 64
        REGISTRY.enable()
        REGISTRY.reset()
        try:
            ring = RingBufferSource(capacity_blocks=2)
            with BlockWorkerPool(
                slow_pool_consumer, None, ["k"], jobs=1, queue_blocks=1
            ) as pool:
                for k in range(n_blocks):
                    ring.push(np.full(block_len, k, dtype=np.complex128))
                    # Pipelined drain: forward only while the pool has room.
                    while len(ring) and pool.can_accept():
                        accepted = pool.try_publish(ring.pop())
                        assert accepted
                ring.close()
                # Producer done: the residue may drain with blocking
                # publishes, which are now bounded by the queue emptying.
                for block in ring:
                    pool.publish(block)
                pool.join()
            stats = ring.stats()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        # A 50 ms/block consumer against an instant producer must shed
        # load — and every shed block is accounted, object-level and in
        # the metric registry.
        assert stats["overruns"] > 0
        assert stats["samples_dropped"] == block_len * stats["overruns"]
        assert stats["blocks_pushed"] + stats["overruns"] == n_blocks
        assert stats["depth"] == 0
        assert counters.get("stream.ring.overruns") == stats["overruns"]
        assert (
            counters.get("stream.ring.samples_dropped")
            == stats["samples_dropped"]
        )
