"""Decimated channelizer: invariance, delivery equality, validation.

The decimating front end (``decimation=4``) changes the product-rate
the session runs at, so it is a *different* decoder from the full-rate
one — frames are not bit-identical across rates.  What must hold:

* the decimated engine is still block-size invariant (the whole point
  of the carry/origin bookkeeping surviving the rate change), and
* it delivers the same *payloads*: the CRC-valid bit multiset matches
  the full-rate engine on the same capture.  Channel attribution of
  leak-arbitrated duplicates may differ between rates, so the
  comparison is over bits only, not ``(channel, bits)``.
"""

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.stream.engine import StreamEngine, batch_decode_stream

BLOCK_SIZES = (64, 1000, 4096, 65536, 9973)


def _decode_fields(frames):
    return [frame.decode_fields() for frame in frames]


def _crc_ok_bits(frames):
    return sorted(tuple(frame.bits) for frame in frames if frame.crc_ok)


@pytest.fixture(scope="module")
def demux_case():
    senders = [
        StreamSender(0, zigbee_channel=11),
        StreamSender(1, zigbee_channel=13),
        StreamSender(2, zigbee_channel=14),
    ]
    traffic = StreamTraffic(senders, duration_s=0.025)
    samples, truth = traffic.capture(np.random.default_rng(42))
    assert truth
    return traffic, samples


@pytest.fixture(scope="module")
def decimated_reference(demux_case):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True, decimation=4)
    frames = engine.run(traffic.blocks(samples, 65536))
    assert frames
    return _decode_fields(frames)


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_decimated_streaming_is_block_size_invariant(
    demux_case, decimated_reference, block_size
):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True, decimation=4)
    frames = engine.run(traffic.blocks(samples, block_size))
    assert _decode_fields(frames) == decimated_reference


def test_decimated_random_cuts_match(demux_case, decimated_reference, rng):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True, decimation=4)
    frames = []
    lo = 0
    while lo < samples.size:
        size = int(rng.integers(1, 20000))
        frames.extend(engine.process_block(samples[lo : lo + size]))
        lo += size
    frames.extend(engine.finish())
    assert _decode_fields(frames) == decimated_reference


def test_decimated_delivers_full_rate_payloads(demux_case):
    traffic, samples = demux_case
    full_rate = batch_decode_stream(samples, demux=True)
    engine = StreamEngine(demux=True, decimation=4)
    decimated = engine.run(traffic.blocks(samples, 65536))
    bits = _crc_ok_bits(decimated)
    assert bits
    assert bits == _crc_ok_bits(full_rate)


def test_decimation_must_divide_lag():
    # lag = 16 at 20 Msps: D=3 would shear the lagged-product grid.
    with pytest.raises(ValueError):
        StreamEngine(demux=True, decimation=3)


def test_decimation_requires_demux():
    # The wideband path has no channelizer filter to decimate behind.
    with pytest.raises(ValueError):
        StreamEngine(decimation=4)


def test_stats_reports_decimation(demux_case):
    traffic, samples = demux_case
    engine = StreamEngine(demux=True, decimation=4)
    engine.run(traffic.blocks(samples, 65536))
    stats = engine.stats()
    assert stats["decimation"] == 4
    assert stats["kernel_mode"] == "exact"
