"""Metrics registry: instruments, gating, snapshot/merge/shard contract."""

import pickle

import pytest

from repro.obs.metrics import REGISTRY, MetricsRegistry


class TestGating:
    def test_disabled_by_default(self):
        registry = MetricsRegistry()
        assert not registry.enabled

    def test_disabled_instruments_are_noops(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h", edges=(1, 2))
        counter.inc()
        gauge.set(5.0)
        hist.observe(1.5)
        assert counter.value == 0
        assert gauge.value != gauge.value  # still nan
        assert hist.count == 0

    def test_enable_disable(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        registry.enable()
        counter.inc(3)
        registry.disable()
        counter.inc(100)
        assert counter.value == 3

    def test_process_registry_default_off(self):
        assert not REGISTRY.enabled


class TestInstruments:
    def _registry(self):
        registry = MetricsRegistry()
        registry.enable()
        return registry

    def test_counter_accumulates(self):
        c = self._registry().counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registration_is_idempotent(self):
        registry = self._registry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_gauge_keeps_last(self):
        g = self._registry().gauge("level")
        g.set(1.0)
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_buckets_upper_inclusive(self):
        h = self._registry().histogram("sizes", edges=(10, 20, 30))
        for value in (5, 10, 11, 25, 30, 31, 1000):
            h.observe(value)
        # (<=10): 5, 10 | (<=20): 11 | (<=30): 25, 30 | overflow: 31, 1000
        assert h.counts == [2, 1, 2, 2]
        assert h.count == 7
        assert h.total == pytest.approx(5 + 10 + 11 + 25 + 30 + 31 + 1000)

    def test_histogram_observe_array_matches_scalar(self):
        registry = self._registry()
        a = registry.histogram("a", edges=(1, 4, 9))
        b = registry.histogram("b", edges=(1, 4, 9))
        values = [0.5, 1.0, 1.5, 4.0, 9.0, 9.5, 100.0]
        for v in values:
            a.observe(v)
        b.observe_array(values)
        assert a.counts == b.counts
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)

    def test_histogram_mean(self):
        h = self._registry().histogram("m", edges=(10,))
        h.observe(2)
        h.observe(4)
        assert h.mean == pytest.approx(3.0)

    def test_histogram_rejects_bad_edges(self):
        registry = self._registry()
        with pytest.raises(ValueError):
            registry.histogram("bad", edges=())
        with pytest.raises(ValueError):
            registry.histogram("bad2", edges=(3, 2))

    def test_histogram_edge_conflict_on_reregistration(self):
        registry = self._registry()
        registry.histogram("h", edges=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", edges=(1, 3))


class TestSnapshotMerge:
    def _recorded(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("frames").inc(7)
        registry.gauge("snr").set(3.5)
        h = registry.histogram("margins", edges=(10, 20))
        h.observe(5)
        h.observe(15)
        h.observe(50)
        return registry

    def test_snapshot_skips_untouched(self):
        registry = MetricsRegistry()
        registry.counter("never")
        registry.gauge("never_g")
        registry.histogram("never_h")
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_include_zero(self):
        registry = MetricsRegistry()
        registry.counter("never")
        assert registry.snapshot(include_zero=True)["counters"] == {"never": 0}

    def test_snapshot_layout(self):
        snap = self._recorded().snapshot()
        assert snap["counters"] == {"frames": 7}
        assert snap["gauges"] == {"snr": 3.5}
        assert snap["histograms"]["margins"] == {
            "edges": [10.0, 20.0],
            "counts": [1, 1, 1],
            "count": 3,
            "total": 70.0,
        }

    def test_merge_adds_counters_and_histograms(self):
        shard = self._recorded().snapshot()
        parent = self._recorded()
        parent.merge(shard)
        snap = parent.snapshot()
        assert snap["counters"] == {"frames": 14}
        assert snap["histograms"]["margins"]["counts"] == [2, 2, 2]
        assert snap["histograms"]["margins"]["total"] == pytest.approx(140.0)

    def test_merge_creates_missing_instruments(self):
        parent = MetricsRegistry()
        parent.merge(self._recorded().snapshot())
        snap = parent.snapshot()
        assert snap["counters"] == {"frames": 7}
        assert snap["gauges"] == {"snr": 3.5}
        assert snap["histograms"]["margins"]["count"] == 3

    def test_merge_into_disabled_parent(self):
        # The parent aggregates shards even while its own instruments
        # are gated off — run_trials relies on this.
        parent = MetricsRegistry()
        assert not parent.enabled
        parent.merge({"counters": {"c": 2}})
        assert parent.snapshot()["counters"] == {"c": 2}

    def test_merge_after_pickle_round_trip(self):
        shard = pickle.loads(pickle.dumps(self._recorded().snapshot()))
        parent = MetricsRegistry()
        parent.merge(shard)
        assert parent.snapshot() == self._recorded().snapshot()

    def test_merge_rejects_mismatched_histogram_edges(self):
        parent = self._recorded()
        bad = {
            "histograms": {
                "margins": {
                    "edges": [1, 2],
                    "counts": [0, 0, 0],
                    "count": 0,
                    "total": 0.0,
                }
            }
        }
        with pytest.raises(ValueError):
            parent.merge(bad)

    def test_reset_keeps_registrations(self):
        registry = self._recorded()
        counter = registry.counter("frames")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        counter.inc()  # original reference still wired in
        assert registry.snapshot()["counters"] == {"frames": 1}
