"""Instrumented layers feed the registry with consistent totals."""

import numpy as np
import pytest

from repro.obs import REGISTRY, TRACER
from repro.core.link import SymBeeLink
from repro.experiments.common import link_at_snr, measure_link


class TestLinkCounters:
    def test_clean_link_accounting(self, rng):
        REGISTRY.enable()
        link = link_at_snr(20.0)
        stats = measure_link(link, rng, n_frames=3, bits_per_frame=16)
        snap = REGISTRY.snapshot()
        assert snap["counters"]["link.frames"] == 3
        assert snap["counters"]["link.bits.sent"] == 48
        assert snap["counters"]["link.bits.delivered"] == stats.bits_delivered
        assert snap["counters"]["decoder.preamble.hit"] == 3
        assert snap["counters"]["decoder.bits_decoded"] == 48
        assert "link.frames.lost" not in snap["counters"]
        # A clean capture votes near-unanimously: margins land high.
        margin = snap["histograms"]["decoder.vote_margin"]
        assert margin["count"] == 48
        assert margin["total"] / margin["count"] > 35.0

    def test_error_taxonomy_consistent_with_result(self, rng):
        REGISTRY.enable()
        link = link_at_snr(-2.0)
        stats = measure_link(link, rng, n_frames=6, bits_per_frame=32)
        snap = REGISTRY.snapshot()["counters"]
        captured_errors = (
            snap.get("link.errors.zero_as_one", 0)
            + snap.get("link.errors.one_as_zero", 0)
            + snap.get("link.errors.truncated_bits", 0)
        )
        lost_bits = snap.get("link.frames.lost", 0) * 32
        assert captured_errors + lost_bits == stats.bit_errors
        assert (
            snap.get("decoder.preamble.hit", 0) == stats.captures
        )

    def test_untraced_run_records_no_spans(self, rng):
        REGISTRY.enable()
        SymBeeLink().send_bits([1, 0], rng)
        assert TRACER.drain() == []

    def test_traced_run_records_pipeline_spans(self, rng):
        TRACER.enable()
        SymBeeLink().send_bits([1, 0], rng)
        names = [r["name"] for r in TRACER.drain()]
        assert names == [
            "link.modulate", "link.channel", "link.front_end", "link.decode",
        ]


class TestDisabledIsInert:
    def test_no_metrics_recorded_when_off(self, rng):
        link = link_at_snr(10.0)
        measure_link(link, rng, n_frames=2, bits_per_frame=8)
        snap = REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_results_identical_with_metrics_on(self):
        # Telemetry must observe, never perturb: same seeds, same stats.
        link = link_at_snr(1.0)
        off = measure_link(
            link, np.random.default_rng(42), n_frames=4, bits_per_frame=16
        )
        REGISTRY.enable()
        on = measure_link(
            link, np.random.default_rng(42), n_frames=4, bits_per_frame=16
        )
        assert off == on  # LinkStats equality excludes timings


class TestNetworkCounters:
    def test_mac_accounting(self):
        from repro.channel.scenarios import get_scenario
        from repro.network.simulator import ConvergecastNetwork, NodeConfig

        REGISTRY.enable()
        nodes = [
            NodeConfig(node_id=i, distance_m=5.0, reading_interval_s=0.2,
                       data_bits=8)
            for i in range(3)
        ]
        net = ConvergecastNetwork(
            nodes, get_scenario("office"), sim_duration_s=1.0, seed=3
        )
        result = net.run()
        snap = REGISTRY.snapshot()["counters"]
        assert snap["mac.arrivals"] == result.readings_generated
        assert snap["mac.transmissions"] == len(result.records)
        assert snap.get("mac.collisions", 0) == sum(
            r.collided for r in result.records
        )
        assert snap.get("mac.delivered", 0) == len(result.delivered)
        queue = REGISTRY.snapshot()["histograms"].get("mac.queue_delay_s")
        if result.records:
            assert queue["count"] == len(result.records)


class TestPreambleTaxonomy:
    def test_miss_reasons_sum_to_misses(self, rng):
        REGISTRY.enable()
        link = link_at_snr(-8.0)  # low enough that captures fail often
        stats = measure_link(link, rng, n_frames=8, bits_per_frame=16)
        snap = REGISTRY.snapshot()["counters"]
        misses = sum(
            v for k, v in snap.items()
            if k.startswith("decoder.preamble.miss.")
        )
        assert snap.get("decoder.preamble.hit", 0) == stats.captures
        assert misses == stats.frames - stats.captures

    def test_short_stream_miss(self):
        from repro.core.decoder import SymBeeDecoder
        from repro.core.preamble import capture_preamble

        REGISTRY.enable()
        decoder = SymBeeDecoder()
        assert capture_preamble(np.zeros(10), decoder) is None
        snap = REGISTRY.snapshot()["counters"]
        assert snap["decoder.preamble.miss.short_stream"] == 1
