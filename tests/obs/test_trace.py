"""Trace spans: nesting, labels, gating, buffer bounds."""

from repro.obs.trace import Tracer, _NULL_SPAN


class TestGating:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("x") is _NULL_SPAN
        with tracer.span("x"):
            pass
        assert tracer.drain() == []

    def test_enable_records(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work"):
            pass
        records = tracer.drain()
        assert len(records) == 1
        assert records[0]["name"] == "work"
        assert records[0]["duration_s"] >= 0.0


class TestNesting:
    def test_depth_and_parent(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.drain()  # exit order: inner first
        assert inner["name"] == "inner"
        assert inner["depth"] == 1
        assert inner["parent"] == "outer"
        assert outer["depth"] == 0
        assert outer["parent"] is None

    def test_sibling_spans_share_depth(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.drain()
        assert a["depth"] == b["depth"] == 0

    def test_labels_recorded(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("cell", scenario="office", distance_m=5):
            pass
        (record,) = tracer.drain()
        assert record["labels"] == {"scenario": "office", "distance_m": 5}

    def test_error_marked(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (record,) = tracer.drain()
        assert record["error"] == "RuntimeError"


class TestBuffer:
    def test_drain_clears(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("once"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_buffer_bound_counts_drops(self):
        tracer = Tracer(max_records=2)
        tracer.enable()
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.drain()) == 2
        assert tracer.dropped == 3

    def test_totals_aggregate(self):
        tracer = Tracer()
        tracer.enable()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        totals = tracer.totals()
        assert totals["stage"]["calls"] == 3
        assert totals["stage"]["seconds"] >= 0.0

    def test_reset(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.drain() == []
        assert tracer.dropped == 0
