"""Live telemetry plane: collector ticking, sinks, readers, rendering."""

import json
import math
import threading

import numpy as np
import pytest

from repro.obs.export import (
    LIVE_SCHEMA_VERSION,
    JsonlSink,
    PrometheusFileSink,
    format_live_line,
    parse_live_record,
    read_metrics_stream,
    render_prometheus,
    summarize_metrics_stream,
)
from repro.obs.live import LiveCollector, TtyDashboard
from repro.obs.metrics import (
    MetricsRegistry,
    snapshot_delta,
    snapshot_is_empty,
)


class FakeClock:
    """Injectable monotonic clock: tests advance time explicitly."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class ListSink:
    def __init__(self):
        self.samples = []
        self.snapshots = []
        self.closed = False

    def emit(self, sample, snapshot=None):
        self.samples.append(sample)
        self.snapshots.append(snapshot)

    def close(self):
        self.closed = True


@pytest.fixture
def metered():
    """A private enabled registry with one of each instrument kind."""
    registry = MetricsRegistry()
    registry.enable()
    counter = registry.counter("t.count")
    gauge = registry.gauge("t.level")
    hist = registry.histogram("t.size", edges=(1, 2, 4))
    return registry, counter, gauge, hist


class TestSnapshotDelta:
    def test_counter_delta_keeps_only_growth(self, metered):
        registry, counter, _gauge, _hist = metered
        other = registry.counter("t.other")
        counter.inc(3)
        other.inc()
        before = registry.snapshot()
        counter.inc(2)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["counters"] == {"t.count": 2}

    def test_gauge_carries_current_value(self, metered):
        registry, _counter, gauge, _hist = metered
        gauge.set(1.5)
        before = registry.snapshot()
        gauge.set(2.5)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["gauges"] == {"t.level": 2.5}

    def test_histogram_delta_is_elementwise(self, metered):
        registry, _counter, _gauge, hist = metered
        hist.observe(1)
        hist.observe(3)
        before = registry.snapshot()
        hist.observe(1)
        hist.observe(10)
        delta = snapshot_delta(registry.snapshot(), before)
        entry = delta["histograms"]["t.size"]
        assert entry["counts"] == [1, 0, 0, 1]
        assert entry["count"] == 2
        assert entry["total"] == pytest.approx(11.0)

    def test_untouched_histogram_dropped(self, metered):
        registry, counter, _gauge, hist = metered
        hist.observe(1)
        before = registry.snapshot()
        counter.inc()
        delta = snapshot_delta(registry.snapshot(), before)
        assert "t.size" not in delta["histograms"]

    def test_delta_is_a_valid_merge_shard(self, metered):
        registry, counter, _gauge, hist = metered
        counter.inc(5)
        hist.observe(2)
        before = registry.snapshot()
        counter.inc(7)
        hist.observe(3)
        delta = snapshot_delta(registry.snapshot(), before)
        target = MetricsRegistry()
        target.merge(before)
        target.merge(delta)
        assert target.snapshot() == registry.snapshot()

    def test_empty_delta_detected(self, metered):
        registry, counter, _gauge, _hist = metered
        counter.inc()
        snap = registry.snapshot()
        assert snapshot_is_empty(snapshot_delta(snap, snap))
        assert not snapshot_is_empty(snapshot_delta(snap, {}))


class TestLiveCollector:
    def test_interval_gates_maybe_tick(self, metered):
        registry, counter, _gauge, _hist = metered
        clock = FakeClock()
        sink = ListSink()
        collector = LiveCollector(
            interval_s=0.5, sinks=[sink], registry=registry, clock=clock
        )
        counter.inc()
        assert collector.maybe_tick() is None
        clock.advance(0.4)
        assert collector.maybe_tick() is None
        clock.advance(0.1)
        assert collector.maybe_tick() is not None
        assert len(sink.samples) == 1

    def test_zero_interval_ticks_every_call(self, metered):
        registry, _counter, _gauge, _hist = metered
        collector = LiveCollector(
            interval_s=0, sinks=[], registry=registry, clock=FakeClock()
        )
        assert collector.maybe_tick() is not None
        assert collector.maybe_tick() is not None

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            LiveCollector(interval_s=-1)

    def test_rates_are_counter_deltas_over_dt(self, metered):
        registry, counter, _gauge, _hist = metered
        clock = FakeClock()
        collector = LiveCollector(
            interval_s=0, registry=registry, clock=clock
        )
        counter.inc(10)
        clock.advance(2.0)
        first = collector.tick()
        assert first["counters"] == {"t.count": 10}
        assert first["rates"] == {"t.count": pytest.approx(5.0)}
        counter.inc(3)
        clock.advance(1.0)
        second = collector.tick()
        assert second["counters"] == {"t.count": 13}
        assert second["rates"] == {"t.count": pytest.approx(3.0)}
        assert second["seq"] == first["seq"] + 1
        assert second["elapsed_s"] == pytest.approx(3.0)

    def test_sample_shape(self, metered):
        registry, counter, gauge, hist = metered
        counter.inc()
        gauge.set(7.0)
        hist.observe(3)
        collector = LiveCollector(
            interval_s=0, registry=registry, clock=FakeClock()
        )
        sample = collector.tick()
        assert sample["type"] == "live"
        assert sample["schema_version"] == LIVE_SCHEMA_VERSION
        assert sample["final"] is False
        assert sample["gauges"] == {"t.level": 7.0}
        assert sample["histograms"] == {
            "t.size": {"count": 1, "total": 3.0}
        }

    def test_finalize_is_idempotent_and_final_totals_match(self, metered):
        registry, counter, _gauge, hist = metered
        sink = ListSink()
        collector = LiveCollector(
            interval_s=0, sinks=[sink], registry=registry, clock=FakeClock()
        )
        counter.inc(4)
        collector.tick()
        counter.inc(2)
        hist.observe(1)
        final = collector.finalize()
        assert final["final"] is True
        assert collector.finalize() is None
        assert len(sink.samples) == 2
        snap = registry.snapshot()
        assert final["counters"] == snap["counters"]
        assert final["histograms"] == {
            name: {"count": data["count"], "total": data["total"]}
            for name, data in snap["histograms"].items()
        }

    def test_context_manager_finalizes(self, metered):
        registry, counter, _gauge, _hist = metered
        sink = ListSink()
        with LiveCollector(
            interval_s=0, sinks=[sink], registry=registry, clock=FakeClock()
        ):
            counter.inc()
        assert sink.samples[-1]["final"] is True

    def test_side_shards_merge_and_drop(self, metered):
        registry, counter, _gauge, _hist = metered
        counter.inc(10)
        collector = LiveCollector(
            interval_s=0, registry=registry, clock=FakeClock()
        )
        shard_a = {"counters": {"t.count": 5}, "gauges": {}, "histograms": {}}
        shard_b = {"counters": {"w.done": 2}, "gauges": {}, "histograms": {}}
        collector.ingest_shards([shard_a, shard_b])
        preview = collector.tick()
        assert preview["counters"] == {"t.count": 15, "w.done": 2}
        # Authoritative merge lands in the registry; the preview goes.
        registry.merge(shard_a)
        registry.merge(shard_b)
        collector.drop_side_shards()
        final = collector.finalize()
        assert final["counters"] == {"t.count": 15, "w.done": 2}

    def test_empty_shards_ignored(self, metered):
        registry, _counter, _gauge, _hist = metered
        collector = LiveCollector(
            interval_s=0, registry=registry, clock=FakeClock()
        )
        collector.ingest_shards(
            [{"counters": {}, "gauges": {}, "histograms": {}}]
        )
        assert not collector._side_active

    def test_background_thread_ticks_and_stops(self, metered):
        registry, counter, _gauge, _hist = metered
        counter.inc()
        emitted = threading.Event()

        class EventSink(ListSink):
            def emit(self, sample, snapshot=None):
                super().emit(sample, snapshot)
                emitted.set()

        sink = EventSink()
        collector = LiveCollector(
            interval_s=0.01, sinks=[sink], registry=registry
        )
        collector.start()
        assert emitted.wait(timeout=5.0)
        final = collector.finalize()
        assert final["final"] is True
        assert collector._thread is None

    def test_background_needs_positive_interval(self, metered):
        registry, _counter, _gauge, _hist = metered
        collector = LiveCollector(interval_s=0, registry=registry)
        with pytest.raises(ValueError):
            collector.start()


class TestSinksAndReaders:
    def test_jsonl_round_trip(self, tmp_path, metered):
        registry, counter, _gauge, _hist = metered
        path = tmp_path / "live.jsonl"
        sink = JsonlSink(str(path))
        collector = LiveCollector(
            interval_s=0, sinks=[sink], registry=registry, clock=FakeClock()
        )
        counter.inc(2)
        collector.tick()
        counter.inc(3)
        collector.finalize()
        sink.close()
        samples = read_metrics_stream(str(path))
        assert [s["seq"] for s in samples] == [0, 1]
        assert samples[-1]["final"] is True
        assert samples[-1]["counters"] == {"t.count": 5}

    def test_reader_skips_blank_and_foreign_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"type": "manifest", "id": "x"}\n'
            "\n"
            '{"type": "live", "seq": 0, "final": true}\n'
        )
        samples = read_metrics_stream(str(path))
        assert len(samples) == 1
        assert samples[0]["seq"] == 0

    def test_reader_malformed_line_is_path_prefixed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "live"}\nnot json\n')
        with pytest.raises(ValueError, match=rf"{path.name}:2: not valid"):
            read_metrics_stream(str(path))

    def test_parse_rejects_non_object(self):
        with pytest.raises(ValueError, match=r"x\.jsonl:3: expected"):
            parse_live_record("[1, 2]", path="x.jsonl", lineno=3)

    def test_prometheus_rendering(self, metered):
        registry, counter, gauge, hist = metered
        counter.inc(4)
        gauge.set(1.25)
        hist.observe(1)
        hist.observe(3)
        hist.observe(99)
        text = render_prometheus(
            registry.snapshot(), rates={"t.count": 2.0}
        )
        assert "# TYPE repro_t_count counter\nrepro_t_count 4" in text
        assert "repro_t_count_per_second 2" in text
        assert "repro_t_level 1.25" in text
        assert 'repro_t_size_bucket{le="1"} 1' in text
        assert 'repro_t_size_bucket{le="4"} 2' in text
        assert 'repro_t_size_bucket{le="+Inf"} 3' in text
        assert "repro_t_size_sum 103" in text
        assert "repro_t_size_count 3" in text

    def test_prometheus_file_sink_atomic_write(self, tmp_path, metered):
        registry, counter, _gauge, _hist = metered
        path = tmp_path / "metrics.prom"
        sink = PrometheusFileSink(str(path))
        collector = LiveCollector(
            interval_s=0, sinks=[sink], registry=registry, clock=FakeClock()
        )
        counter.inc(6)
        collector.tick()
        text = path.read_text()
        assert "repro_t_count 6" in text
        assert not path.with_suffix(".prom.tmp").exists()

    def test_format_live_line(self):
        sample = {
            "elapsed_s": 1.5,
            "final": True,
            "rates": {"stream.engine.samples_in": 10e6},
            "counters": {
                "stream.engine.frames": 12,
                "stream.session.crc_failed": 1,
                "stream.ring.overruns": 0,
            },
            "gauges": {
                "stream.realtime_margin": 0.5,
                "runtime.pool.queue_depth": 3.0,
            },
        }
        line = format_live_line(sample)
        assert "10.00 Msps" in line
        assert "0.50x of 20" in line
        assert "margin  0.50x" in line
        assert "frames 12" in line
        assert "pool_q 3" in line
        assert "[final]" in line

    def test_format_live_line_missing_gauges(self):
        line = format_live_line({"rates": {}, "counters": {}, "gauges": {}})
        assert "margin     -" in line
        assert "pool_q" not in line

    def test_tty_dashboard_prints_lines(self, metered):
        import io

        registry, counter, _gauge, _hist = metered
        out = io.StringIO()
        collector = LiveCollector(
            interval_s=0,
            sinks=[TtyDashboard(stream=out)],
            registry=registry,
            clock=FakeClock(),
        )
        counter.inc()
        collector.tick()
        collector.finalize()
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[-1].endswith("[final]")

    def test_summarize_metrics_stream(self):
        samples = [
            {
                "elapsed_s": 1.0,
                "dt_s": 1.0,
                "final": False,
                "rates": {"stream.engine.samples_in": 1e6},
                "counters": {"stream.engine.frames": 1},
            },
            {
                "elapsed_s": 2.0,
                "dt_s": 1.0,
                "final": True,
                "rates": {"stream.engine.samples_in": 3e6},
                "counters": {"stream.engine.frames": 4},
                "gauges": {"stream.realtime_margin": 1.5},
                "histograms": {"t.size": {"count": 2, "total": 5.0}},
            },
        ]
        text = summarize_metrics_stream(samples, path="live.jsonl")
        assert "live.jsonl: 2 sample(s) over 2.00s (final)" in text
        assert "stream.engine.samples_in" in text
        assert "mean=   2000000.0" in text
        assert "stream.engine.frames" in text
        assert "stream.realtime_margin  1.500" in text
        assert "t.size  count=2  mean=2.500" in text

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError, match="no live records"):
            summarize_metrics_stream([])


class TestObserveArrayEdgeCases:
    """observe_array must agree with a scalar observe loop exactly."""

    EDGES = (1, 2, 4, 8)

    def _pair(self):
        registry = MetricsRegistry()
        registry.enable()
        array_h = registry.histogram("a", edges=self.EDGES)
        scalar_h = registry.histogram("s", edges=self.EDGES)
        return array_h, scalar_h

    def _assert_agree(self, values):
        array_h, scalar_h = self._pair()
        array_h.observe_array(values)
        for value in np.asarray(values).ravel():
            scalar_h.observe(value)
        assert array_h.counts == scalar_h.counts
        assert array_h.count == scalar_h.count
        assert array_h.total == pytest.approx(scalar_h.total)

    def test_empty_array_is_a_noop(self):
        array_h, _ = self._pair()
        array_h.observe_array(np.array([], dtype=np.int64))
        array_h.observe_array(np.array([], dtype=float))
        assert array_h.count == 0
        assert array_h.counts == [0] * (len(self.EDGES) + 1)
        assert array_h.total == 0.0

    def test_values_exactly_on_edges_int(self):
        self._assert_agree(np.array([1, 2, 4, 8], dtype=np.int64))

    def test_values_exactly_on_edges_float(self):
        self._assert_agree(np.array([1.0, 2.0, 4.0, 8.0]))

    def test_values_beyond_last_edge(self):
        self._assert_agree(np.array([9, 100, 10_000], dtype=np.int64))
        self._assert_agree(np.array([8.0001, 1e9]))

    def test_mixed_values_int_fast_path(self):
        values = np.array([0, 1, 1, 2, 3, 4, 5, 8, 9, 50], dtype=np.uint32)
        self._assert_agree(values)

    def test_mixed_values_float_path(self):
        rng = np.random.default_rng(7)
        self._assert_agree(rng.uniform(0.0, 12.0, size=257))

    def test_disabled_registry_ignores_observations(self):
        registry = MetricsRegistry()
        h = registry.histogram("off", edges=self.EDGES)
        h.observe_array(np.array([1, 2, 3]))
        assert h.count == 0

    def test_mean_nan_when_empty(self):
        registry = MetricsRegistry()
        h = registry.histogram("empty", edges=self.EDGES)
        assert math.isnan(h.mean)
