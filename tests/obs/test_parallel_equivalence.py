"""Parallel runs must report the same aggregate telemetry as serial runs.

The ISSUE-2 acceptance contract: with the registry enabled, a
``measure_link`` run at ``jobs>1`` merges worker metric shards into the
parent such that every counter and histogram total equals the serial
run's on identical seeds (gauges are last-write and excluded, matching
the ``StageTimings`` precedent where wall-clock values differ but the
structure merges identically).
"""

import numpy as np
import pytest

from repro.obs import REGISTRY
from repro.experiments.common import link_at_snr, measure_link
from repro.runtime import run_trials


def _measure(jobs, snr_db=1.0, n_frames=8):
    REGISTRY.reset()
    link = link_at_snr(snr_db)
    stats = measure_link(
        link,
        np.random.default_rng(1234),
        n_frames=n_frames,
        bits_per_frame=24,
        jobs=jobs,
    )
    return stats, REGISTRY.snapshot()


class TestMeasureLinkEquivalence:
    def test_counters_and_histograms_match_serial(self):
        REGISTRY.enable()
        serial_stats, serial = _measure(jobs=1)
        parallel_stats, parallel = _measure(jobs=2)
        # the runs themselves are bit-identical (PR-1 guarantee) ...
        assert serial_stats == parallel_stats
        # ... and so is every aggregated counter and histogram.
        assert serial["counters"] == parallel["counters"]
        assert serial["histograms"] == parallel["histograms"]
        # sanity: the run actually recorded link + decoder telemetry
        assert serial["counters"]["link.frames"] == 8
        assert serial["histograms"]["decoder.vote_margin"]["count"] > 0

    def test_gauges_present_in_both(self):
        REGISTRY.enable()
        _, serial = _measure(jobs=1)
        _, parallel = _measure(jobs=2)
        assert set(serial["gauges"]) == set(parallel["gauges"])


def _counting_trial(task):
    from repro.obs.metrics import REGISTRY as worker_registry

    worker_registry.counter("trial.calls").inc()
    worker_registry.histogram("trial.values", edges=(2, 4, 8)).observe(task)
    return task * 2


class TestRunTrialsSharding:
    def test_shards_merge_in_parent(self):
        REGISTRY.enable()
        tasks = [1, 2, 3, 4, 5, 6]
        results = run_trials(_counting_trial, tasks, jobs=2)
        assert results == [t * 2 for t in tasks]
        snap = REGISTRY.snapshot()
        assert snap["counters"]["trial.calls"] == len(tasks)
        hist = snap["histograms"]["trial.values"]
        assert hist["count"] == len(tasks)
        assert hist["total"] == pytest.approx(sum(tasks))
        assert hist["counts"] == [2, 2, 2, 0]  # <=2, <=4, <=8, overflow

    def test_parallel_matches_serial_totals(self):
        REGISTRY.enable()
        tasks = list(range(1, 9))
        run_trials(_counting_trial, tasks, jobs=1)
        serial = REGISTRY.snapshot()
        REGISTRY.reset()
        run_trials(_counting_trial, tasks, jobs=3)
        parallel = REGISTRY.snapshot()
        assert serial["counters"] == parallel["counters"]
        assert serial["histograms"] == parallel["histograms"]

    def test_disabled_registry_skips_sharding(self):
        # With telemetry off the pool path returns raw fn results (no
        # wrapper tuples) and records nothing.
        tasks = [1, 2, 3, 4]
        results = run_trials(_counting_trial, tasks, jobs=2)
        assert results == [2, 4, 6, 8]
        assert REGISTRY.snapshot()["counters"] == {}
