"""Run manifests and the JSONL export/import round trip."""

import json

import pytest

from repro.obs.manifest import (
    build_manifest,
    git_revision,
    metric_records,
    read_run_jsonl,
    summarize_manifest,
    write_run_jsonl,
)


def _snapshot():
    return {
        "counters": {"link.frames": 10, "link.bits.sent": 640},
        "gauges": {"link.snr_db": 4.0},
        "histograms": {
            "decoder.vote_margin": {
                "edges": [10.0, 42.0],
                "counts": [1, 2, 0],
                "count": 3,
                "total": 60.0,
            }
        },
    }


class TestBuildManifest:
    def test_core_fields(self):
        manifest = build_manifest(
            experiments=[
                {"id": "fig12", "status": "ok",
                 "elapsed_seconds": 1.5, "error": None}
            ],
            metrics=_snapshot(),
            argv=["run", "fig12"],
            n_spans=4,
        )
        assert manifest["type"] == "manifest"
        assert manifest["schema_version"] == 1
        assert manifest["argv"] == ["run", "fig12"]
        assert manifest["experiments"][0]["id"] == "fig12"
        assert manifest["metrics"]["counters"]["link.frames"] == 10
        assert manifest["n_spans"] == 4
        assert "jobs_resolved" in manifest["config"]
        assert manifest["python"] and manifest["numpy"]
        assert json.dumps(manifest)  # JSON-serializable end to end

    def test_git_revision_in_checkout(self):
        # The test suite runs from the source checkout, so this resolves.
        rev = git_revision()
        assert rev is None or (len(rev) >= 7 and all(
            c in "0123456789abcdef" for c in rev
        ))


class TestMetricRecords:
    def test_one_record_per_instrument(self):
        records = metric_records(_snapshot())
        kinds = sorted(r["kind"] for r in records)
        assert kinds == ["counter", "counter", "gauge", "histogram"]
        hist = [r for r in records if r["kind"] == "histogram"][0]
        assert hist["name"] == "decoder.vote_margin"
        assert hist["counts"] == [1, 2, 0]


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "run.jsonl"
        manifest = build_manifest(metrics=_snapshot(), argv=[], n_spans=1)
        spans = [{"name": "link.decode", "start_s": 0.0,
                  "duration_s": 0.002, "depth": 0, "parent": None,
                  "error": None}]
        write_run_jsonl(path, manifest, snapshot=_snapshot(), spans=spans)

        parsed, metrics, parsed_spans = read_run_jsonl(path)
        assert parsed["type"] == "manifest"
        assert len(metrics) == 4
        assert parsed_spans[0]["name"] == "link.decode"
        # every line is standalone JSON
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_read_requires_manifest(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "span", "name": "x"}\n')
        with pytest.raises(ValueError):
            read_run_jsonl(path)


class TestSummary:
    def test_mentions_key_facts(self):
        manifest = build_manifest(
            experiments=[
                {"id": "fig13", "status": "ok",
                 "elapsed_seconds": 2.0, "error": None},
                {"id": "fig14", "status": "error",
                 "elapsed_seconds": 0.1, "error": "ValueError: boom"},
            ],
            metrics=_snapshot(),
            n_spans=7,
        )
        text = summarize_manifest(manifest)
        assert "fig13" in text and "fig14" in text
        assert "ValueError: boom" in text
        assert "link.frames" in text
        assert "decoder.vote_margin" in text
        assert "spans: 7" in text
