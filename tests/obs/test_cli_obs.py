"""CLI surface of the telemetry layer: run flags, run-all, obs summary."""

import json
import logging

import pytest

import repro.experiments
from repro.__main__ import main
from repro.obs import read_run_jsonl


class _StubExperiment:
    """Registry-shaped stub whose main() is scripted."""

    def __init__(self, eid, fn):
        self.id = eid
        self.title = eid
        self._fn = fn

    def main(self):
        return self._fn()


def _boom():
    raise ValueError("synthetic failure")


class TestRunAll:
    def test_continues_past_failure_and_exits_nonzero(
        self, monkeypatch, capsys
    ):
        ran = []
        stubs = {
            "first": _StubExperiment("first", lambda: ran.append("first")),
            "bad": _StubExperiment("bad", _boom),
            "last": _StubExperiment("last", lambda: ran.append("last")),
        }
        monkeypatch.setattr(repro.experiments, "EXPERIMENTS", stubs)
        code = main(["run", "all"])
        assert code == 1
        assert ran == ["first", "last"]  # kept going past the failure
        captured = capsys.readouterr()
        assert "2/3 experiments passed" in captured.out
        assert "bad" in captured.out and "error" in captured.out
        assert "synthetic failure" in captured.err  # traceback surfaced

    def test_all_green_exits_zero(self, monkeypatch, capsys):
        stubs = {
            "a": _StubExperiment("a", lambda: None),
            "b": _StubExperiment("b", lambda: None),
        }
        monkeypatch.setattr(repro.experiments, "EXPERIMENTS", stubs)
        assert main(["run", "all"]) == 0
        assert "2/2 experiments passed" in capsys.readouterr().out

    def test_single_failure_exits_nonzero(self, monkeypatch, capsys):
        stubs = {"bad": _StubExperiment("bad", _boom)}
        monkeypatch.setattr(repro.experiments, "EXPERIMENTS", stubs)
        assert main(["run", "bad"]) == 1

    def test_unknown_experiment_still_exits_two(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "valid ids" in capsys.readouterr().err


class TestMetricsOut:
    def test_manifest_and_metric_stream_written(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["run", "table1", "--metrics-out", str(out)]) == 0
        manifest, metrics, spans = read_run_jsonl(out)
        assert manifest["experiments"][0]["id"] == "table1"
        assert manifest["experiments"][0]["status"] == "ok"
        assert manifest["schema_version"] == 1
        assert "jobs_resolved" in manifest["config"]
        assert spans == []  # no --trace
        # table1 is PHY-free, so streams may be empty — but the file is
        # valid line-JSON throughout.
        with open(out) as fh:
            for line in fh:
                json.loads(line)

    def test_trace_adds_spans(self, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(
            ["run", "fig07", "--metrics-out", str(out), "--trace"]
        ) == 0
        manifest, _, spans = read_run_jsonl(out)
        assert manifest["n_spans"] == len(spans)

    def test_failed_run_still_writes_manifest(
        self, monkeypatch, tmp_path, capsys
    ):
        stubs = {"bad": _StubExperiment("bad", _boom)}
        monkeypatch.setattr(repro.experiments, "EXPERIMENTS", stubs)
        out = tmp_path / "run.jsonl"
        assert main(["run", "bad", "--metrics-out", str(out)]) == 1
        manifest, _, _ = read_run_jsonl(out)
        assert manifest["experiments"][0]["status"] == "error"
        assert "synthetic failure" in manifest["experiments"][0]["error"]


class TestObsSummary:
    def test_summary_round_trip(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(["run", "table1", "--metrics-out", str(out)])
        capsys.readouterr()
        assert main(["obs", "summary", str(out)]) == 0
        text = capsys.readouterr().out
        assert "table1" in text
        assert "repro" in text

    def test_summary_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err


class TestVerbosity:
    @pytest.mark.parametrize(
        "argv,level",
        [
            (["list"], logging.WARNING),
            (["-v", "list"], logging.INFO),
            (["-vv", "list"], logging.DEBUG),
            (["-q", "list"], logging.ERROR),
        ],
    )
    def test_flags_set_repro_logger_level(self, argv, level, capsys):
        assert main(argv) == 0
        assert logging.getLogger("repro").level == level


class TestObsSummaryErrors:
    """Broken telemetry files fail with a one-line, path-naming message."""

    def test_missing_file_names_path_and_reason(self, tmp_path, capsys):
        path = tmp_path / "nope.jsonl"
        assert main(["obs", "summary", str(path)]) == 2
        err = capsys.readouterr().err
        assert str(path) in err
        assert "No such file" in err
        assert err.count("\n") == 1

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "summary", str(path)]) == 2
        err = capsys.readouterr().err
        assert str(path) in err
        assert "no manifest record" in err

    def test_malformed_json_names_line(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "manifest"}\nnot json at all\n')
        assert main(["obs", "summary", str(path)]) == 2
        err = capsys.readouterr().err
        assert f"{path}:2" in err
        assert "not valid JSONL" in err

    def test_non_object_record(self, tmp_path, capsys):
        path = tmp_path / "list.jsonl"
        path.write_text("[1, 2, 3]\n")
        assert main(["obs", "summary", str(path)]) == 2
        err = capsys.readouterr().err
        assert "expected a JSON object" in err
