"""Telemetry tests toggle process-wide state; always restore it."""

import pytest

from repro.obs import REGISTRY, TRACER


@pytest.fixture(autouse=True)
def _clean_obs():
    # Entry must already be clean: the suite-wide teardown guard in
    # tests/conftest.py resets after every test, so dirty state here
    # means some test mutated telemetry outside any fixture's watch.
    assert not REGISTRY.enabled, "registry left enabled by an earlier test"
    assert not TRACER.enabled, "tracer left enabled by an earlier test"
    snapshot = REGISTRY.snapshot()
    assert not snapshot["counters"], "registry counters leaked between tests"
    assert not snapshot["histograms"], (
        "registry histograms leaked between tests"
    )
    REGISTRY.reset()
    TRACER.reset()
    yield
    REGISTRY.disable()
    REGISTRY.reset()
    TRACER.disable()
    TRACER.reset()
