"""Live collection over a pooled demux run: preview, then exact totals.

The acceptance contract for the live plane: running
``StreamEngine.run(jobs=N)`` with a collector attached must (a) leave the
decoded frames bit-identical to a serial run, (b) produce a JSONL time
series whose final cumulative totals equal the end-of-run registry
snapshot *exactly* — the worker-shard preview merged during the run must
never leak into the authoritative totals — and (c) emit at least one
mid-run sample, or it is not live telemetry at all.
"""

import numpy as np
import pytest

from repro.network.traffic import StreamSender, StreamTraffic
from repro.obs import REGISTRY, JsonlSink, LiveCollector, read_metrics_stream
from repro.stream.engine import StreamEngine


@pytest.fixture(scope="module")
def demux_case():
    senders = [
        StreamSender(0, zigbee_channel=11, reading_interval_s=0.006),
        StreamSender(1, zigbee_channel=13, reading_interval_s=0.006),
        StreamSender(2, zigbee_channel=14, reading_interval_s=0.006),
    ]
    traffic = StreamTraffic(senders, duration_s=0.02)
    samples, truth = traffic.capture(np.random.default_rng(20260808))
    assert truth
    return traffic, samples


def _decode_fields(frames):
    return [frame.decode_fields() for frame in frames]


@pytest.mark.timeout(120)
def test_pooled_live_stream_final_totals_match_registry(
    demux_case, tmp_path
):
    traffic, samples = demux_case

    serial_frames = StreamEngine(demux=True).run(
        traffic.blocks(samples, 16384)
    )
    assert serial_frames

    path = tmp_path / "live.jsonl"
    sink = JsonlSink(str(path))
    # interval 0 -> one sample per published block, so even a short run
    # exercises the mid-run sample path deterministically.
    collector = LiveCollector(interval_s=0, sinks=[sink])
    engine = StreamEngine(demux=True)
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        frames = engine.run(
            traffic.blocks(samples, 16384), jobs=2, collector=collector
        )
        collector.finalize()
        snapshot = REGISTRY.snapshot()
    finally:
        sink.close()
        REGISTRY.disable()
        REGISTRY.reset()

    assert _decode_fields(frames) == _decode_fields(serial_frames)

    records = read_metrics_stream(str(path))
    assert len(records) >= 2, "expected mid-run samples plus a final one"
    assert not any(r["final"] for r in records[:-1])
    final = records[-1]
    assert final["final"] is True

    # The exact-equality acceptance gate: cumulative totals of the last
    # sample == the end-of-run registry snapshot, nothing double-counted
    # from the worker-shard preview.
    assert final["counters"] == snapshot["counters"]
    assert final["gauges"] == snapshot["gauges"]
    assert final["histograms"] == {
        name: {"count": data["count"], "total": data["total"]}
        for name, data in snapshot["histograms"].items()
    }

    # The preview actually happened: some mid-run sample carried
    # worker-side decode activity before the join-time merge landed.
    assert any(
        any(name.startswith("decoder.") for name in record["counters"])
        for record in records[:-1]
    )

    # Sanity on the monotonic cumulative contract.
    seen = 0
    for record in records:
        value = record["counters"].get("stream.engine.samples_in", 0)
        assert value >= seen
        seen = value
    assert seen == samples.size


@pytest.mark.timeout(120)
def test_pool_telemetry_disabled_without_collector(demux_case):
    """No collector -> no telemetry side queue, stats stay quiet."""
    traffic, samples = demux_case
    engine = StreamEngine(demux=True)
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        engine.run(traffic.blocks(samples, 16384), jobs=2)
        stats = engine.pool_stats
    finally:
        REGISTRY.disable()
        REGISTRY.reset()
    assert stats["telemetry_shards_drained"] == 0


@pytest.mark.timeout(120)
def test_serial_run_with_collector_ticks(demux_case, tmp_path):
    traffic, samples = demux_case
    path = tmp_path / "serial.jsonl"
    sink = JsonlSink(str(path))
    collector = LiveCollector(interval_s=0, sinks=[sink])
    engine = StreamEngine(demux=True)
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        engine.run(traffic.blocks(samples, 16384), collector=collector)
        collector.finalize()
        snapshot = REGISTRY.snapshot()
    finally:
        sink.close()
        REGISTRY.disable()
        REGISTRY.reset()
    records = read_metrics_stream(str(path))
    assert len(records) >= 2
    assert records[-1]["final"] is True
    assert records[-1]["counters"] == snapshot["counters"]
