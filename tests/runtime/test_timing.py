"""StageTimings accumulator (repro.runtime.timing)."""

import pickle

import pytest

from repro.runtime.timing import StageTimings


class TestStageTimings:
    def test_starts_empty(self):
        t = StageTimings()
        assert t.total_seconds == 0.0
        assert t.as_dict() == {}
        assert t.summary() == "no stages timed"

    def test_add_accumulates(self):
        t = StageTimings()
        t.add("decode", 0.25)
        t.add("decode", 0.75)
        assert t.seconds["decode"] == pytest.approx(1.0)
        assert t.calls["decode"] == 2

    def test_stage_context_manager_times_the_block(self):
        t = StageTimings()
        with t.stage("modulate"):
            pass
        assert t.calls["modulate"] == 1
        assert 0.0 <= t.seconds["modulate"] < 1.0

    def test_merge_timings_object(self):
        a, b = StageTimings(), StageTimings()
        a.add("modulate", 1.0)
        b.add("modulate", 2.0, calls=3)
        b.add("decode", 0.5)
        a.merge(b)
        assert a.seconds["modulate"] == pytest.approx(3.0)
        assert a.calls["modulate"] == 4
        assert a.seconds["decode"] == pytest.approx(0.5)

    def test_merge_as_dict_shard(self):
        # Parallel workers report as_dict() shards across the pickle
        # boundary; merging a shard must equal merging the object.
        a, b = StageTimings(), StageTimings()
        shard = StageTimings()
        shard.add("channel", 2.5, calls=2)
        a.merge(shard)
        b.merge(shard.as_dict())
        assert a.as_dict() == b.as_dict()

    def test_as_dict_orders_link_stages_canonically(self):
        t = StageTimings()
        for name in ("decode", "aux", "modulate", "front_end", "channel"):
            t.add(name, 0.1)
        assert list(t.as_dict()) == [
            "modulate", "channel", "front_end", "decode", "aux",
        ]

    def test_reset(self):
        t = StageTimings()
        t.add("decode", 1.0)
        t.reset()
        assert t.total_seconds == 0.0
        assert t.as_dict() == {}

    def test_pickle_round_trip(self):
        t = StageTimings()
        t.add("front_end", 0.125, calls=4)
        clone = pickle.loads(pickle.dumps(t))
        assert clone.as_dict() == t.as_dict()

    def test_merge_returns_self_for_chaining(self):
        a, b = StageTimings(), StageTimings()
        b.add("decode", 0.5)
        assert a.merge(b) is a
        assert a.merge(b.as_dict()) is a

    def test_merge_empty_shard_is_identity(self):
        t = StageTimings()
        t.add("modulate", 1.0, calls=2)
        before = t.as_dict()
        t.merge(StageTimings())
        t.merge({})
        assert t.as_dict() == before

    def test_merge_pickled_object_shard(self):
        # The worker-to-parent path: a StageTimings that crossed the
        # pickle boundary must merge exactly like the live object.
        shard = StageTimings()
        shard.add("channel", 0.75, calls=3)
        shard.add("decode", 0.25)
        live, pickled = StageTimings(), StageTimings()
        live.merge(shard)
        pickled.merge(pickle.loads(pickle.dumps(shard)))
        assert live.as_dict() == pickled.as_dict()

    def test_merge_pickled_dict_shard(self):
        # as_dict() shards are what run_trials actually ships; they must
        # survive pickling and repeated merging with additive semantics.
        shard = StageTimings()
        shard.add("front_end", 0.1, calls=1)
        wire = pickle.loads(pickle.dumps(shard.as_dict()))
        t = StageTimings()
        t.merge(wire).merge(wire)
        assert t.seconds["front_end"] == pytest.approx(0.2)
        assert t.calls["front_end"] == 2

    def test_merge_dict_shard_accumulates_across_stages(self):
        t = StageTimings()
        t.add("modulate", 1.0)
        t.merge({
            "modulate": {"seconds": 0.5, "calls": 2},
            "aux": {"seconds": 0.25, "calls": 1},
        })
        assert t.seconds["modulate"] == pytest.approx(1.5)
        assert t.calls["modulate"] == 3
        assert t.seconds["aux"] == pytest.approx(0.25)

    def test_summary_mentions_every_stage(self):
        t = StageTimings()
        t.add("modulate", 0.3)
        t.add("decode", 0.7)
        s = t.summary()
        assert "modulate" in s and "decode" in s and "%" in s
