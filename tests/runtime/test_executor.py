"""Trial executor: REPRO_JOBS parsing, order preservation, pool parity."""

import numpy as np
import pytest

from repro.runtime import default_jobs, run_trials
from repro.runtime.executor import resolve_jobs


def _square(task):
    return task * task


def _draw(seed):
    """Module-level so it pickles to pool workers."""
    return float(np.random.default_rng(seed).standard_normal())


class TestDefaultJobs:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    @pytest.mark.parametrize("raw", ["3", " 3 ", "03"])
    def test_integer_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() == 3

    @pytest.mark.parametrize("raw", ["auto", "AUTO", "0"])
    def test_auto_means_all_cores(self, monkeypatch, raw):
        import os

        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("raw", ["", "garbage", "-2"])
    def test_bad_values_fall_back_to_serial(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() == 1

    def test_resolve_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(None) == 8


class TestRunTrials:
    def test_serial_preserves_order(self):
        assert run_trials(_square, range(10), jobs=1) == [i * i for i in range(10)]

    def test_pool_preserves_order(self):
        assert run_trials(_square, range(20), jobs=2) == [i * i for i in range(20)]

    def test_pool_matches_serial_with_seeded_randomness(self):
        seeds = [np.random.SeedSequence(s) for s in range(8)]
        assert run_trials(_draw, seeds, jobs=1) == run_trials(_draw, seeds, jobs=3)

    def test_single_task_runs_inline(self):
        assert run_trials(_square, [7], jobs=4) == [49]

    def test_empty_task_list(self):
        assert run_trials(_square, [], jobs=4) == []
