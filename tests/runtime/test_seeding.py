"""Deterministic per-trial seeding (repro.runtime.seeding)."""

import numpy as np
import pytest

from repro.runtime import as_seed_sequence, spawn_generators, spawn_seeds


class TestAsSeedSequence:
    def test_seed_sequence_passes_through(self):
        ss = np.random.SeedSequence(7)
        assert as_seed_sequence(ss) is ss

    def test_int_seed_is_deterministic(self):
        a = as_seed_sequence(123)
        b = as_seed_sequence(123)
        assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_generator_input_is_deterministic(self):
        a = as_seed_sequence(np.random.default_rng(5))
        b = as_seed_sequence(np.random.default_rng(5))
        assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_generator_input_advances_source_state(self):
        # Entropy is *drawn* from the generator, so two coercions of the
        # same generator object yield independent roots — a second
        # measure_link(link, rng) call must not repeat the first's trials.
        rng = np.random.default_rng(5)
        a = as_seed_sequence(rng)
        b = as_seed_sequence(rng)
        assert a.generate_state(4).tolist() != b.generate_state(4).tolist()

    def test_none_gives_fresh_entropy(self):
        a = as_seed_sequence(None)
        b = as_seed_sequence(None)
        assert a.generate_state(4).tolist() != b.generate_state(4).tolist()


class TestSpawn:
    def test_spawn_seeds_enumerates_in_trial_order(self):
        children = spawn_seeds(99, 5)
        assert len(children) == 5
        again = spawn_seeds(99, 5)
        for c1, c2 in zip(children, again):
            assert c1.generate_state(2).tolist() == c2.generate_state(2).tolist()

    def test_spawn_prefix_is_stable(self):
        # Trial k's stream must not depend on how many trials follow it.
        small = spawn_seeds(42, 3)
        large = spawn_seeds(42, 10)
        for c1, c2 in zip(small, large):
            assert c1.generate_state(2).tolist() == c2.generate_state(2).tolist()

    def test_children_are_independent(self):
        g0, g1 = spawn_generators(7, 2)
        assert g0.integers(0, 2**32) != g1.integers(0, 2**32)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
