"""Parallel runs must reproduce serial runs bit-for-bit (satellite #3).

These are the acceptance tests for the runtime: the same experiment seed
must yield *identical* statistics whether trials run inline or across a
process pool, and whether the frame-waveform cache is warm or cold.
"""

import numpy as np
import pytest

from repro.core.link import SymBeeLink
from repro.experiments.common import measure_link
from repro.network.simulator import ConvergecastNetwork, NodeConfig
from repro.zigbee.waveform_cache import FRAME_WAVEFORM_CACHE


def _stats_tuple(stats):
    return (
        stats.frames,
        stats.captures,
        stats.bits_sent,
        stats.bits_delivered,
        stats.bit_errors,
        stats.snr_samples,
    )


class TestMeasureLinkDeterminism:
    def test_parallel_equals_serial_bit_identical(self):
        # Exact equality, including the per-frame SNR sample list — not
        # approximate: per-trial seeding makes the randomness identical.
        kwargs = dict(n_frames=12, bits_per_frame=32)
        link = SymBeeLink(tx_power_dbm=-88.0)
        serial = measure_link(link, np.random.default_rng(2026), jobs=1, **kwargs)
        parallel = measure_link(link, np.random.default_rng(2026), jobs=4, **kwargs)
        assert serial == parallel
        assert serial.snr_samples == parallel.snr_samples

    def test_same_seed_same_stats_across_calls(self):
        link = SymBeeLink(tx_power_dbm=-90.0)
        a = measure_link(link, np.random.default_rng(7), n_frames=6)
        b = measure_link(link, np.random.default_rng(7), n_frames=6)
        assert _stats_tuple(a) == _stats_tuple(b)

    def test_seed_sequence_accepted_directly(self):
        link = SymBeeLink(tx_power_dbm=-90.0)
        a = measure_link(link, np.random.SeedSequence(11), n_frames=4)
        b = measure_link(link, np.random.SeedSequence(11), n_frames=4)
        assert _stats_tuple(a) == _stats_tuple(b)

    def test_timings_excluded_from_equality(self):
        link = SymBeeLink(tx_power_dbm=-90.0)
        a = measure_link(link, np.random.default_rng(3), n_frames=4)
        b = measure_link(link, np.random.default_rng(3), n_frames=4)
        assert a == b
        assert a.timings.total_seconds > 0.0  # still collected

    def test_cold_and_warm_cache_agree(self):
        # Waveform caching must be a pure optimization: identical stats
        # with the cache cleared versus fully warm.
        link = SymBeeLink(tx_power_dbm=-89.0)
        FRAME_WAVEFORM_CACHE.clear()
        cold = measure_link(link, np.random.default_rng(5), n_frames=6)
        warm = measure_link(link, np.random.default_rng(5), n_frames=6)
        assert _stats_tuple(cold) == _stats_tuple(warm)


class TestNetworkDeterminism:
    @pytest.fixture
    def scenario(self):
        from repro.channel.scenarios import get_scenario

        return get_scenario("office")

    def _network(self, scenario, jobs):
        nodes = [
            NodeConfig(node_id=i, distance_m=2.0 + i, reading_interval_s=0.4)
            for i in range(3)
        ]
        return ConvergecastNetwork(
            nodes, scenario, sim_duration_s=1.5, max_retries=0, seed=99, jobs=jobs,
        )

    def test_deferred_parallel_phy_matches_serial(self, scenario):
        serial = self._network(scenario, jobs=1).run()
        parallel = self._network(scenario, jobs=4).run()
        assert serial.readings_generated == parallel.readings_generated
        fates = lambda result: [
            (r.node_id, r.sequence, r.attempt, r.collided, r.delivered)
            for r in result.records
        ]
        assert fates(serial) == fates(parallel)
