"""Unit tests for :class:`repro.runtime.workerpool.BlockWorkerPool`.

Transport-level behaviour only — spawn-once workers, shared-memory
publication and refcounted release, key-ordered results, metric-shard
merge, error propagation and backpressure.  The decode-level
equivalence (pooled streaming demux == serial engine) lives in
``tests/stream/test_parallel.py``.
"""

import time

import numpy as np
import pytest

from repro.obs.metrics import REGISTRY
from repro.runtime.workerpool import DEFAULT_QUEUE_BLOCKS, BlockWorkerPool

_SLOW_CONSUMER_DELAY_S = 0.25


class _SummingConsumer:
    """Accumulates ``scale * sum(block)`` per block; returns the total."""

    def __init__(self, scale):
        self.scale = scale
        self.total = 0.0 + 0.0j
        self.blocks = 0

    def process(self, block):
        assert not block.flags.writeable
        self.blocks += 1
        if block.size:
            self.total += self.scale * complex(block.sum())

    def finish(self):
        return (self.blocks, self.total)


def summing_consumer(config, key):
    return _SummingConsumer(scale=config["scales"][key])


class _MeteredConsumer:
    def __init__(self):
        self.counter = REGISTRY.counter("test.pool.blocks_seen")

    def process(self, block):
        self.counter.inc()

    def finish(self):
        return None


def metered_consumer(config, key):
    return _MeteredConsumer()


class _SlowConsumer:
    def process(self, block):
        time.sleep(_SLOW_CONSUMER_DELAY_S)

    def finish(self):
        return None


def slow_consumer(config, key):
    return _SlowConsumer()


class _FailingConsumer:
    def process(self, block):
        raise RuntimeError("intentional consumer failure")

    def finish(self):
        return None


def failing_consumer(config, key):
    return _FailingConsumer()


@pytest.mark.timeout(120)
class TestBlockWorkerPool:
    def test_results_in_key_order_and_every_block_seen(self):
        rng = np.random.default_rng(3)
        blocks = [
            (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            for n in (100, 1, 4096, 7)
        ]
        keys = ["c", "a", "b"]
        config = {"scales": {"a": 1.0, "b": 2.0, "c": -1.0}}
        with BlockWorkerPool(summing_consumer, config, keys, jobs=2) as pool:
            for block in blocks:
                pool.publish(block)
            results = pool.join()
        total = complex(sum(b.sum() for b in blocks))
        assert [r[0] for r in results] == [len(blocks)] * 3
        got = [r[1] for r in results]
        want = [-1.0 * total, 1.0 * total, 2.0 * total]
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_empty_blocks_travel_without_segments(self):
        config = {"scales": {"k": 1.0}}
        with BlockWorkerPool(summing_consumer, config, ["k"], jobs=1) as pool:
            pool.publish(np.empty(0, dtype=np.complex128))
            pool.publish(np.ones(8, dtype=np.complex128))
            pool.publish(np.empty(0, dtype=np.complex128))
            stats_mid = pool.stats()
            (result,) = pool.join()
        assert result == (3, 8.0 + 0.0j)
        assert stats_mid["blocks_published"] == 3
        assert stats_mid["samples_published"] == 8

    def test_segments_released_after_join(self):
        config = {"scales": {"k": 1.0}}
        with BlockWorkerPool(summing_consumer, config, ["k"], jobs=1) as pool:
            for _ in range(10):
                pool.publish(np.ones(1024, dtype=np.complex128))
            pool.join()
            stats = pool.stats()
        assert stats["inflight_segments"] == 0
        # Ack draining is opportunistic, so the peak can be anywhere from
        # one segment up to every block published — but never more.
        assert 1 <= stats["peak_inflight_segments"] <= 10
        assert stats["bytes_shared"] == 10 * 1024 * 16

    def test_worker_error_propagates_with_traceback(self):
        with BlockWorkerPool(failing_consumer, None, ["k"], jobs=1) as pool:
            with pytest.raises(RuntimeError, match="intentional consumer failure"):
                pool.publish(np.ones(4, dtype=np.complex128))
                pool.join()

    def test_metric_shards_merge_into_parent(self):
        REGISTRY.enable()
        REGISTRY.reset()
        try:
            with BlockWorkerPool(metered_consumer, None, ["a", "b"], jobs=2) as pool:
                for _ in range(5):
                    pool.publish(np.ones(4, dtype=np.complex128))
                pool.join()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        # Two consumers each saw five blocks.
        assert counters.get("test.pool.blocks_seen") == 10

    def test_telemetry_shards_preview_worker_activity(self):
        from repro.obs.metrics import MetricsRegistry

        REGISTRY.enable()
        REGISTRY.reset()
        try:
            with BlockWorkerPool(
                metered_consumer, None, ["a", "b"], jobs=2,
                telemetry_blocks=1,
            ) as pool:
                shards = []
                for _ in range(6):
                    pool.publish(np.ones(4, dtype=np.complex128))
                    shards.extend(pool.drain_telemetry())
                deadline = time.monotonic() + 30.0
                # Workers ship a delta after acking each block; wait for
                # the side queue to carry at least one before joining.
                while not shards and time.monotonic() < deadline:
                    shards.extend(pool.drain_telemetry())
                    time.sleep(0.01)
                pool.join()
                stats = pool.stats()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert shards, "no telemetry shards arrived before join"
        assert stats["telemetry_shards_drained"] == len(shards)
        # A drained shard previews a subset of the authoritative totals:
        # merging every shard can never exceed the join-time merge.
        preview = MetricsRegistry()
        for shard in shards:
            preview.merge(shard)
        previewed = preview.snapshot()["counters"].get(
            "test.pool.blocks_seen", 0
        )
        assert 0 < previewed <= 12
        assert counters.get("test.pool.blocks_seen") == 12

    def test_join_discards_undrained_telemetry(self):
        REGISTRY.enable()
        REGISTRY.reset()
        try:
            with BlockWorkerPool(
                metered_consumer, None, ["a", "b"], jobs=2,
                telemetry_blocks=1,
            ) as pool:
                for _ in range(5):
                    pool.publish(np.ones(4, dtype=np.complex128))
                # Never drain: join must throw the preview away so the
                # authoritative shard merge is the only contribution.
                pool.join()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert counters.get("test.pool.blocks_seen") == 10

    def test_telemetry_off_by_default_and_when_disabled(self):
        # No telemetry_blocks: no side queue at all.
        with BlockWorkerPool(metered_consumer, None, ["a"], jobs=1) as pool:
            pool.publish(np.ones(4, dtype=np.complex128))
            assert pool.drain_telemetry() == []
            pool.join()
            assert pool.stats()["telemetry_shards_drained"] == 0
        # telemetry_blocks with a disabled registry: nothing to ship.
        with BlockWorkerPool(
            metered_consumer, None, ["a"], jobs=1, telemetry_blocks=1
        ) as pool:
            pool.publish(np.ones(4, dtype=np.complex128))
            pool.join()
            assert pool.stats()["telemetry_shards_drained"] == 0

    def test_telemetry_blocks_must_be_positive(self):
        with pytest.raises(ValueError):
            BlockWorkerPool(
                metered_consumer, None, ["a"], jobs=1, telemetry_blocks=0
            )

    def test_peak_queue_depth_tracked(self):
        with BlockWorkerPool(
            slow_consumer, None, ["k"], jobs=1, queue_blocks=4
        ) as pool:
            for _ in range(4):
                pool.publish(np.ones(4, dtype=np.complex128))
            stats_mid = pool.stats()
            pool.join()
        assert stats_mid["peak_queue_depth"] >= 1

    def test_backpressure_try_publish(self):
        block = np.ones(16, dtype=np.complex128)
        with BlockWorkerPool(
            slow_consumer, None, ["k"], jobs=1, queue_blocks=1
        ) as pool:
            # A slow consumer must eventually refuse instead of blocking:
            # queue depth 1 fills after at most a couple of accepts.
            refused = False
            for _ in range(8):
                if not pool.try_publish(block):
                    refused = True
                    break
            assert refused
            assert not pool.can_accept()
            pool.join()

    def test_publish_after_close_raises(self):
        pool = BlockWorkerPool(summing_consumer, {"scales": {"k": 1.0}}, ["k"], jobs=1)
        pool.close()
        with pytest.raises(ValueError):
            pool.publish(np.ones(4, dtype=np.complex128))

    def test_rejects_empty_keys_and_bad_queue(self):
        with pytest.raises(ValueError):
            BlockWorkerPool(summing_consumer, None, [], jobs=2)
        with pytest.raises(ValueError):
            BlockWorkerPool(summing_consumer, None, ["k"], jobs=1, queue_blocks=0)


class _EchoingConsumer:
    """Returns ``(key, block_sum)`` per block so emissions are observable."""

    def __init__(self, key):
        self.key = key
        self.blocks = 0

    def process(self, block):
        self.blocks += 1
        return (self.key, float(block.sum().real))

    def finish(self):
        return (self.key, self.blocks)


def echoing_consumer(config, key):
    return _EchoingConsumer(key)


def _drain_until(pool, want, timeout_s=30.0):
    """Collect emissions until ``want(items)`` is satisfied."""
    items = []
    deadline = time.monotonic() + timeout_s
    while not want(items):
        items.extend(pool.drain_emitted())
        if time.monotonic() > deadline:
            raise AssertionError(f"emissions never satisfied; got {items}")
        time.sleep(0.005)
    return items


@pytest.mark.timeout(120)
class TestDynamicKeys:
    def test_open_publish_close_lifecycle(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=2, dynamic=True
        ) as pool:
            pool.open_key("a")
            pool.open_key("b")
            pool.publish(np.ones(4, dtype=np.complex128), key="a")
            pool.publish(np.full(4, 2.0, dtype=np.complex128), key="b")
            pool.publish(np.ones(2, dtype=np.complex128), key="a")
            pool.close_key("a")
            closed = _drain_until(
                pool, lambda items: any(k == "closed" for k, _, _ in items)
            )
            results = pool.join()
        # "a" closed mid-run and shipped its result on the emissions
        # queue; "b" was still open, so join() returns it.
        assert ("closed", "a", ("a", 2)) in closed
        assert results == {"b": ("b", 1)}

    def test_emissions_carry_process_returns(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=2, dynamic=True
        ) as pool:
            pool.open_key("k")
            pool.publish(np.full(8, 3.0, dtype=np.complex128), key="k")
            emitted = _drain_until(
                pool, lambda items: any(k == "emit" for k, _, _ in items)
            )
            pool.join()
        assert ("emit", "k", ("k", 24.0)) in emitted

    def test_targeted_publish_reaches_only_its_key(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=2, dynamic=True
        ) as pool:
            for key in ("a", "b", "c"):
                pool.open_key(key)
            for _ in range(3):
                pool.publish(np.ones(4, dtype=np.complex128), key="a")
            pool.publish(np.ones(4, dtype=np.complex128), key="c")
            results = pool.join()
        assert results == {"a": ("a", 3), "b": ("b", 0), "c": ("c", 1)}

    def test_broadcast_still_reaches_every_open_key(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=2, dynamic=True
        ) as pool:
            pool.open_key("a")
            pool.open_key("b")
            pool.publish(np.ones(4, dtype=np.complex128))  # no key: broadcast
            results = pool.join()
        assert results == {"a": ("a", 1), "b": ("b", 1)}

    def test_unknown_key_rejected(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=1, dynamic=True
        ) as pool:
            with pytest.raises(KeyError):
                pool.publish(np.ones(4, dtype=np.complex128), key="ghost")
            with pytest.raises(KeyError):
                pool.close_key("ghost")
            pool.join()

    def test_duplicate_open_rejected(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=1, dynamic=True
        ) as pool:
            pool.open_key("a")
            with pytest.raises(ValueError):
                pool.open_key("a")
            pool.join()

    def test_placement_is_least_loaded_and_deterministic(self):
        def placements():
            with BlockWorkerPool(
                echoing_consumer, None, [], jobs=2, dynamic=True
            ) as pool:
                mapping = {key: pool.open_key(key) for key in ("a", "b", "c")}
                pool.close_key("a")
                _drain_until(
                    pool, lambda items: any(k == "closed" for k, _, _ in items)
                )
                mapping["d"] = pool.open_key("d")  # lands on the freed worker
                pool.join()
            return mapping

        first = placements()
        second = placements()
        assert first == second
        # Ties break toward the lowest index; "d" reuses "a"'s slot.
        assert first["a"] == 0 and first["b"] == 1 and first["c"] == 0
        assert first["d"] == first["a"]

    def test_per_key_backpressure_is_isolated(self):
        with BlockWorkerPool(
            slow_consumer, None, [], jobs=2, dynamic=True, queue_blocks=1
        ) as pool:
            pool.open_key("slow")
            pool.open_key("idle")
            block = np.ones(4, dtype=np.complex128)
            # Wait out worker spawn: the ("open", ...) control message
            # itself occupies the bounded queue until the worker is up.
            deadline = time.monotonic() + 60.0
            while not pool.can_accept("idle"):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            while pool.try_publish(block, key="slow"):
                pass
            # "slow"'s worker is saturated, but "idle"'s still accepts.
            assert not pool.can_accept("slow")
            assert pool.can_accept("idle")
            pool.join()

    def test_stats_expose_open_keys(self):
        with BlockWorkerPool(
            echoing_consumer, None, [], jobs=2, dynamic=True
        ) as pool:
            pool.open_key("a")
            assert pool.stats()["open_keys"] == 1
            pool.join()


@pytest.mark.timeout(120)
class TestStaticEmissions:
    def test_emissions_opt_in_for_static_pools(self):
        with BlockWorkerPool(
            echoing_consumer, None, ["k"], jobs=1, emissions=True
        ) as pool:
            pool.publish(np.ones(4, dtype=np.complex128))
            emitted = _drain_until(
                pool, lambda items: any(k == "emit" for k, _, _ in items)
            )
            (result,) = pool.join()
        assert ("emit", "k", ("k", 4.0)) in emitted
        assert result == ("k", 1)
        assert pool.stats()["emitted_drained"] >= 1

    def test_no_emissions_queue_when_disabled(self):
        with BlockWorkerPool(
            echoing_consumer, None, ["k"], jobs=1
        ) as pool:
            pool.publish(np.ones(4, dtype=np.complex128))
            assert pool.drain_emitted() == []
            pool.join()
