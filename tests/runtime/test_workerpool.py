"""Unit tests for :class:`repro.runtime.workerpool.BlockWorkerPool`.

Transport-level behaviour only — spawn-once workers, shared-memory
publication and refcounted release, key-ordered results, metric-shard
merge, error propagation and backpressure.  The decode-level
equivalence (pooled streaming demux == serial engine) lives in
``tests/stream/test_parallel.py``.
"""

import time

import numpy as np
import pytest

from repro.obs.metrics import REGISTRY
from repro.runtime.workerpool import DEFAULT_QUEUE_BLOCKS, BlockWorkerPool

_SLOW_CONSUMER_DELAY_S = 0.25


class _SummingConsumer:
    """Accumulates ``scale * sum(block)`` per block; returns the total."""

    def __init__(self, scale):
        self.scale = scale
        self.total = 0.0 + 0.0j
        self.blocks = 0

    def process(self, block):
        assert not block.flags.writeable
        self.blocks += 1
        if block.size:
            self.total += self.scale * complex(block.sum())

    def finish(self):
        return (self.blocks, self.total)


def summing_consumer(config, key):
    return _SummingConsumer(scale=config["scales"][key])


class _MeteredConsumer:
    def __init__(self):
        self.counter = REGISTRY.counter("test.pool.blocks_seen")

    def process(self, block):
        self.counter.inc()

    def finish(self):
        return None


def metered_consumer(config, key):
    return _MeteredConsumer()


class _SlowConsumer:
    def process(self, block):
        time.sleep(_SLOW_CONSUMER_DELAY_S)

    def finish(self):
        return None


def slow_consumer(config, key):
    return _SlowConsumer()


class _FailingConsumer:
    def process(self, block):
        raise RuntimeError("intentional consumer failure")

    def finish(self):
        return None


def failing_consumer(config, key):
    return _FailingConsumer()


@pytest.mark.timeout(120)
class TestBlockWorkerPool:
    def test_results_in_key_order_and_every_block_seen(self):
        rng = np.random.default_rng(3)
        blocks = [
            (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            for n in (100, 1, 4096, 7)
        ]
        keys = ["c", "a", "b"]
        config = {"scales": {"a": 1.0, "b": 2.0, "c": -1.0}}
        with BlockWorkerPool(summing_consumer, config, keys, jobs=2) as pool:
            for block in blocks:
                pool.publish(block)
            results = pool.join()
        total = complex(sum(b.sum() for b in blocks))
        assert [r[0] for r in results] == [len(blocks)] * 3
        got = [r[1] for r in results]
        want = [-1.0 * total, 1.0 * total, 2.0 * total]
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_empty_blocks_travel_without_segments(self):
        config = {"scales": {"k": 1.0}}
        with BlockWorkerPool(summing_consumer, config, ["k"], jobs=1) as pool:
            pool.publish(np.empty(0, dtype=np.complex128))
            pool.publish(np.ones(8, dtype=np.complex128))
            pool.publish(np.empty(0, dtype=np.complex128))
            stats_mid = pool.stats()
            (result,) = pool.join()
        assert result == (3, 8.0 + 0.0j)
        assert stats_mid["blocks_published"] == 3
        assert stats_mid["samples_published"] == 8

    def test_segments_released_after_join(self):
        config = {"scales": {"k": 1.0}}
        with BlockWorkerPool(summing_consumer, config, ["k"], jobs=1) as pool:
            for _ in range(10):
                pool.publish(np.ones(1024, dtype=np.complex128))
            pool.join()
            stats = pool.stats()
        assert stats["inflight_segments"] == 0
        # Ack draining is opportunistic, so the peak can be anywhere from
        # one segment up to every block published — but never more.
        assert 1 <= stats["peak_inflight_segments"] <= 10
        assert stats["bytes_shared"] == 10 * 1024 * 16

    def test_worker_error_propagates_with_traceback(self):
        with BlockWorkerPool(failing_consumer, None, ["k"], jobs=1) as pool:
            with pytest.raises(RuntimeError, match="intentional consumer failure"):
                pool.publish(np.ones(4, dtype=np.complex128))
                pool.join()

    def test_metric_shards_merge_into_parent(self):
        REGISTRY.enable()
        REGISTRY.reset()
        try:
            with BlockWorkerPool(metered_consumer, None, ["a", "b"], jobs=2) as pool:
                for _ in range(5):
                    pool.publish(np.ones(4, dtype=np.complex128))
                pool.join()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        # Two consumers each saw five blocks.
        assert counters.get("test.pool.blocks_seen") == 10

    def test_telemetry_shards_preview_worker_activity(self):
        from repro.obs.metrics import MetricsRegistry

        REGISTRY.enable()
        REGISTRY.reset()
        try:
            with BlockWorkerPool(
                metered_consumer, None, ["a", "b"], jobs=2,
                telemetry_blocks=1,
            ) as pool:
                shards = []
                for _ in range(6):
                    pool.publish(np.ones(4, dtype=np.complex128))
                    shards.extend(pool.drain_telemetry())
                deadline = time.monotonic() + 30.0
                # Workers ship a delta after acking each block; wait for
                # the side queue to carry at least one before joining.
                while not shards and time.monotonic() < deadline:
                    shards.extend(pool.drain_telemetry())
                    time.sleep(0.01)
                pool.join()
                stats = pool.stats()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert shards, "no telemetry shards arrived before join"
        assert stats["telemetry_shards_drained"] == len(shards)
        # A drained shard previews a subset of the authoritative totals:
        # merging every shard can never exceed the join-time merge.
        preview = MetricsRegistry()
        for shard in shards:
            preview.merge(shard)
        previewed = preview.snapshot()["counters"].get(
            "test.pool.blocks_seen", 0
        )
        assert 0 < previewed <= 12
        assert counters.get("test.pool.blocks_seen") == 12

    def test_join_discards_undrained_telemetry(self):
        REGISTRY.enable()
        REGISTRY.reset()
        try:
            with BlockWorkerPool(
                metered_consumer, None, ["a", "b"], jobs=2,
                telemetry_blocks=1,
            ) as pool:
                for _ in range(5):
                    pool.publish(np.ones(4, dtype=np.complex128))
                # Never drain: join must throw the preview away so the
                # authoritative shard merge is the only contribution.
                pool.join()
            counters = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert counters.get("test.pool.blocks_seen") == 10

    def test_telemetry_off_by_default_and_when_disabled(self):
        # No telemetry_blocks: no side queue at all.
        with BlockWorkerPool(metered_consumer, None, ["a"], jobs=1) as pool:
            pool.publish(np.ones(4, dtype=np.complex128))
            assert pool.drain_telemetry() == []
            pool.join()
            assert pool.stats()["telemetry_shards_drained"] == 0
        # telemetry_blocks with a disabled registry: nothing to ship.
        with BlockWorkerPool(
            metered_consumer, None, ["a"], jobs=1, telemetry_blocks=1
        ) as pool:
            pool.publish(np.ones(4, dtype=np.complex128))
            pool.join()
            assert pool.stats()["telemetry_shards_drained"] == 0

    def test_telemetry_blocks_must_be_positive(self):
        with pytest.raises(ValueError):
            BlockWorkerPool(
                metered_consumer, None, ["a"], jobs=1, telemetry_blocks=0
            )

    def test_peak_queue_depth_tracked(self):
        with BlockWorkerPool(
            slow_consumer, None, ["k"], jobs=1, queue_blocks=4
        ) as pool:
            for _ in range(4):
                pool.publish(np.ones(4, dtype=np.complex128))
            stats_mid = pool.stats()
            pool.join()
        assert stats_mid["peak_queue_depth"] >= 1

    def test_backpressure_try_publish(self):
        block = np.ones(16, dtype=np.complex128)
        with BlockWorkerPool(
            slow_consumer, None, ["k"], jobs=1, queue_blocks=1
        ) as pool:
            # A slow consumer must eventually refuse instead of blocking:
            # queue depth 1 fills after at most a couple of accepts.
            refused = False
            for _ in range(8):
                if not pool.try_publish(block):
                    refused = True
                    break
            assert refused
            assert not pool.can_accept()
            pool.join()

    def test_publish_after_close_raises(self):
        pool = BlockWorkerPool(summing_consumer, {"scales": {"k": 1.0}}, ["k"], jobs=1)
        pool.close()
        with pytest.raises(ValueError):
            pool.publish(np.ones(4, dtype=np.complex128))

    def test_rejects_empty_keys_and_bad_queue(self):
        with pytest.raises(ValueError):
            BlockWorkerPool(summing_consumer, None, [], jobs=2)
        with pytest.raises(ValueError):
            BlockWorkerPool(summing_consumer, None, ["k"], jobs=1, queue_blocks=0)
