"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "appendix" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "31.25 kbps" in out
        assert "145.3x" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "valid ids" in capsys.readouterr().err
