"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "appendix" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "31.25 kbps" in out
        assert "145.3x" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "valid ids" in capsys.readouterr().err


class TestListen:
    def test_wideband_decodes_all_scheduled(self, capsys):
        assert (
            main(
                [
                    "listen",
                    "--senders", "1",
                    "--duration", "0.02",
                    "--block-size", "16384",
                    "--seed", "11",
                    "--wideband",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wideband" in out
        assert "scheduled frames delivered" in out
        assert "Msps" in out

    def test_demux_multi_sender(self, capsys):
        assert (
            main(
                [
                    "listen",
                    "--senders", "3",
                    "--duration", "0.02",
                    "--block-size", "16384",
                    "--seed", "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "demux" in out

    def test_metrics_out_round_trips_through_obs_summary(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "listen.jsonl"
        assert (
            main(
                [
                    "listen",
                    "--senders", "1",
                    "--duration", "0.02",
                    "--seed", "11",
                    "--wideband",
                    "--metrics-out", str(out_path),
                    "--trace",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summary", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "listen" in text
        assert "stream.engine.blocks" in text

    def test_rejects_bad_scenario(self, capsys):
        assert (
            main(
                ["listen", "--senders", "1", "--scenario", "the-moon"]
            )
            == 2
        )
        assert "valid names" in capsys.readouterr().err

    def test_rejects_zero_senders(self, capsys):
        assert main(["listen", "--senders", "0"]) == 2
        assert "senders" in capsys.readouterr().err


class TestLiveTelemetry:
    def _listen_with_stream(self, tmp_path, *extra):
        stream_path = tmp_path / "live.jsonl"
        code = main(
            [
                "listen",
                "--senders", "1",
                "--duration", "0.02",
                "--seed", "11",
                "--wideband",
                "--metrics-stream", str(stream_path),
                "--live-interval", "0",
                *extra,
            ]
        )
        return code, stream_path

    def test_metrics_stream_writes_live_jsonl(self, tmp_path, capsys):
        code, stream_path = self._listen_with_stream(tmp_path)
        assert code == 0
        err = capsys.readouterr().err
        assert "live telemetry streamed to" in err
        import json

        records = [
            json.loads(line)
            for line in stream_path.read_text().splitlines()
        ]
        assert records
        assert all(r["type"] == "live" for r in records)
        assert records[-1]["final"] is True

    def test_live_prints_dashboard_lines(self, tmp_path, capsys):
        code, _ = self._listen_with_stream(tmp_path, "--live")
        assert code == 0
        err = capsys.readouterr().err
        assert "Msps" in err
        assert "[final]" in err

    def test_prom_out_written(self, tmp_path, capsys):
        prom_path = tmp_path / "metrics.prom"
        code, _ = self._listen_with_stream(
            tmp_path, "--prom-out", str(prom_path)
        )
        assert code == 0
        capsys.readouterr()
        text = prom_path.read_text()
        assert "repro_stream_engine_blocks" in text

    def test_obs_tail_replays_and_once(self, tmp_path, capsys):
        code, stream_path = self._listen_with_stream(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main(["obs", "tail", str(stream_path)]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "Msps" in line]
        assert len(lines) >= 2
        assert lines[-1].endswith("[final]")
        assert main(["obs", "tail", "--once", str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("Msps") == 1
        assert "[final]" in out

    def test_obs_tail_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "tail", str(missing)]) == 2
        assert f"error: {missing}" in capsys.readouterr().err

    def test_obs_tail_malformed_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["obs", "tail", str(bad)]) == 2
        err = capsys.readouterr().err
        assert f"error: {bad}:1: not valid JSONL" in err

    def test_obs_tail_no_live_records(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"type": "manifest"}\n')
        assert main(["obs", "tail", str(empty)]) == 2
        assert "no live records" in capsys.readouterr().err

    def test_obs_summary_learns_live_schema(self, tmp_path, capsys):
        code, stream_path = self._listen_with_stream(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main(["obs", "summary", str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert "live telemetry stream" in out
        assert "stream.engine.samples_in" in out

    def test_rejects_negative_live_interval(self, capsys):
        assert (
            main(
                [
                    "listen",
                    "--senders", "1",
                    "--live",
                    "--live-interval", "-1",
                ]
            )
            == 2
        )
        assert "--live-interval" in capsys.readouterr().err


class TestBenchTrajectory:
    def test_json_report_schema(self, tmp_path, capsys, monkeypatch):
        import json

        (tmp_path / "BENCH_X.json").write_text(
            json.dumps(
                {
                    "streaming": {
                        "effective_msps": 12.5,
                        "x_realtime": 0.625,
                    }
                }
            )
        )
        (tmp_path / "BENCH_SMOKE_LIVE.jsonl").write_text(
            json.dumps(
                {
                    "type": "live",
                    "seq": 0,
                    "elapsed_s": 1.0,
                    "dt_s": 1.0,
                    "final": True,
                    "counters": {},
                    "rates": {"stream.engine.samples_in": 5e6},
                    "gauges": {},
                    "histograms": {},
                }
            )
            + "\n"
        )
        assert (
            main(["bench", "trajectory", "--root", str(tmp_path), "--json"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == 2
        (artifact,) = report["artifacts"]
        assert artifact["name"] == "BENCH_X"
        assert artifact["best_streaming"]["effective_msps"] == 12.5
        assert artifact["best_streaming"]["config"] == "streaming"
        assert artifact["throughput"][0]["unit"] == "Msps"
        assert report["gateway"] is None  # no BENCH_GATEWAY.json here
        assert report["sim"] is None  # no BENCH_PR8.json here
        assert report["live"]["samples"] == 1
        assert report["live"]["msps_mean"] == 5.0
        assert report["live"]["final"] is True

    def test_json_report_gateway_and_sim_sections(self, tmp_path, capsys):
        import json

        (tmp_path / "BENCH_GATEWAY.json").write_text(
            json.dumps(
                {
                    "cpu_count": 2,
                    "serial": {
                        "tenants": 4,
                        "cores_used": 1,
                        "tenants_per_core_at_realtime": 1.28,
                        "effective_msps": 25.6,
                    },
                    "pooled": {
                        "tenants": 4,
                        "cores_used": 2,
                        "tenants_per_core_at_realtime": 0.27,
                        "effective_msps": 10.8,
                    },
                    "gates": {"target_tenants_per_core": 1.0},
                }
            )
        )
        (tmp_path / "BENCH_PR8.json").write_text(
            json.dumps(
                {
                    "packet_fleet": {
                        "nodes": 500,
                        "frames_offered": 113371,
                        "delivery_ratio": 0.9893,
                        "wall_seconds": 6.47,
                        "frames_per_sec": 17525.6,
                    },
                    "fast_path_speedup": 147.2,
                }
            )
        )
        assert (
            main(["bench", "trajectory", "--root", str(tmp_path), "--json"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        gateway = report["gateway"]
        assert gateway["target_tenants_per_core"] == 1.0
        by_config = {row["config"]: row for row in gateway["rows"]}
        assert by_config["serial"]["tenants_per_core_at_realtime"] == 1.28
        assert by_config["pooled"]["cores_used"] == 2
        sim = report["sim"]
        assert sim["fast_path_speedup"] == 147.2
        (fleet,) = sim["rows"]
        assert fleet["config"] == "packet_fleet"
        assert fleet["frames_per_sec"] == 17525.6
        assert fleet["nodes"] == 500

    def test_table_report_gateway_and_sim_sections(
        self, tmp_path, capsys
    ):
        import json

        (tmp_path / "BENCH_GATEWAY.json").write_text(
            json.dumps(
                {
                    "serial": {
                        "tenants": 4,
                        "cores_used": 1,
                        "tenants_per_core_at_realtime": 1.28,
                        "effective_msps": 25.6,
                    },
                    "gates": {"target_tenants_per_core": 1.0},
                }
            )
        )
        (tmp_path / "BENCH_PR8.json").write_text(
            json.dumps(
                {
                    "packet_fleet": {
                        "nodes": 500,
                        "frames_per_sec": 17525.6,
                    }
                }
            )
        )
        assert main(["bench", "trajectory", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "gateway capacity" in out
        assert "tenants/core" in out
        assert "fleet simulator" in out
        assert "frames/s" in out

    def test_json_empty_root_exits_nonzero(self, tmp_path, capsys):
        assert (
            main(["bench", "trajectory", "--root", str(tmp_path), "--json"])
            == 1
        )
        report_text = capsys.readouterr().out
        import json

        assert json.loads(report_text)["artifacts"] == []

    def test_table_report_mentions_live_stream(self, tmp_path, capsys):
        import json

        (tmp_path / "BENCH_X.json").write_text(
            json.dumps({"streaming": {"effective_msps": 1.0}})
        )
        (tmp_path / "BENCH_SMOKE_LIVE.jsonl").write_text(
            json.dumps(
                {
                    "type": "live",
                    "elapsed_s": 2.0,
                    "dt_s": 1.0,
                    "final": True,
                    "rates": {"stream.engine.samples_in": 2e6},
                    "counters": {},
                }
            )
            + "\n"
        )
        assert main(["bench", "trajectory", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_SMOKE_LIVE.jsonl" in out
        assert "min/mean/max" in out


class TestSend:
    def test_clean_link_delivers(self, capsys):
        assert (
            main(
                [
                    "send",
                    "--message", "hello transport",
                    "--snr", "8",
                    "--fec", "none",
                    "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transport send" in out
        assert "byte-exact" in out
        assert "retransmits" in out

    def test_fault_profile_smoke_with_telemetry(self, tmp_path, capsys):
        out_path = tmp_path / "send.jsonl"
        assert (
            main(
                [
                    "send",
                    "--fault-profile", "burst",
                    "--snr", "2",
                    "--size", "24",
                    "--seed", "3",
                    "--metrics-out", str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summary", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "transport.fragments.sent" in text
        assert "transport.*" in text

    def test_info_lists_transport_namespace(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "transport.*" in out

    def test_rejects_unknown_fault_profile(self, capsys):
        assert main(["send", "--fault-profile", "gremlins"]) == 2
        assert "valid" in capsys.readouterr().err

    def test_rejects_unknown_fec(self, capsys):
        assert main(["send", "--fec", "turbo"]) == 2
        assert "adaptive" in capsys.readouterr().err

    def test_rejects_message_and_size_together(self, capsys):
        assert main(["send", "--message", "x", "--size", "8"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
