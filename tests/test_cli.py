"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "appendix" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "31.25 kbps" in out
        assert "145.3x" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "valid ids" in capsys.readouterr().err


class TestListen:
    def test_wideband_decodes_all_scheduled(self, capsys):
        assert (
            main(
                [
                    "listen",
                    "--senders", "1",
                    "--duration", "0.02",
                    "--block-size", "16384",
                    "--seed", "11",
                    "--wideband",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wideband" in out
        assert "scheduled frames delivered" in out
        assert "Msps" in out

    def test_demux_multi_sender(self, capsys):
        assert (
            main(
                [
                    "listen",
                    "--senders", "3",
                    "--duration", "0.02",
                    "--block-size", "16384",
                    "--seed", "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "demux" in out

    def test_metrics_out_round_trips_through_obs_summary(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "listen.jsonl"
        assert (
            main(
                [
                    "listen",
                    "--senders", "1",
                    "--duration", "0.02",
                    "--seed", "11",
                    "--wideband",
                    "--metrics-out", str(out_path),
                    "--trace",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summary", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "listen" in text
        assert "stream.engine.blocks" in text

    def test_rejects_bad_scenario(self, capsys):
        assert (
            main(
                ["listen", "--senders", "1", "--scenario", "the-moon"]
            )
            == 2
        )
        assert "valid names" in capsys.readouterr().err

    def test_rejects_zero_senders(self, capsys):
        assert main(["listen", "--senders", "0"]) == 2
        assert "senders" in capsys.readouterr().err


class TestSend:
    def test_clean_link_delivers(self, capsys):
        assert (
            main(
                [
                    "send",
                    "--message", "hello transport",
                    "--snr", "8",
                    "--fec", "none",
                    "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transport send" in out
        assert "byte-exact" in out
        assert "retransmits" in out

    def test_fault_profile_smoke_with_telemetry(self, tmp_path, capsys):
        out_path = tmp_path / "send.jsonl"
        assert (
            main(
                [
                    "send",
                    "--fault-profile", "burst",
                    "--snr", "2",
                    "--size", "24",
                    "--seed", "3",
                    "--metrics-out", str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summary", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "transport.fragments.sent" in text
        assert "transport.*" in text

    def test_info_lists_transport_namespace(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "transport.*" in out

    def test_rejects_unknown_fault_profile(self, capsys):
        assert main(["send", "--fault-profile", "gremlins"]) == 2
        assert "valid" in capsys.readouterr().err

    def test_rejects_unknown_fec(self, capsys):
        assert main(["send", "--fec", "turbo"]) == 2
        assert "adaptive" in capsys.readouterr().err

    def test_rejects_message_and_size_together(self, capsys):
        assert main(["send", "--message", "x", "--size", "8"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
