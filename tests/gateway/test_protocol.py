"""Wire protocol: framing bounds, sample codecs, asyncio readers."""

import asyncio
import struct

import numpy as np
import pytest

from repro.gateway.protocol import (
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    ProtocolError,
    decode_block,
    encode_block,
    message_from_wire,
    message_to_wire,
    pack_message,
    read_message,
)


def _read_from_bytes(data):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_message(reader)

    return asyncio.run(run())


class TestFraming:
    def test_round_trip(self):
        frame = pack_message({"type": "poll", "tenant": "t"}, b"abc")
        header, payload = _read_from_bytes(frame)
        assert header == {"type": "poll", "tenant": "t"}
        assert payload == b"abc"

    def test_clean_eof_is_none(self):
        assert _read_from_bytes(b"") is None

    def test_truncated_frame_raises(self):
        frame = pack_message({"type": "poll"}, b"abcdef")
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_from_bytes(frame[:-2])

    def test_oversized_lengths_rejected_before_allocation(self):
        prefix = struct.pack("!II", MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="header length"):
            _read_from_bytes(prefix)
        prefix = struct.pack("!II", 2, MAX_PAYLOAD_BYTES + 1)
        with pytest.raises(ProtocolError, match="payload length"):
            _read_from_bytes(prefix)

    def test_non_object_header_rejected(self):
        frame = struct.pack("!II", 5, 0) + b"[1,2]"
        with pytest.raises(ProtocolError, match="JSON object"):
            _read_from_bytes(frame)


class TestSampleBlocks:
    @pytest.mark.parametrize("dtype", ["complex64", "complex128"])
    def test_block_round_trip(self, dtype):
        rng = np.random.default_rng(5)
        block = (
            rng.standard_normal(257) + 1j * rng.standard_normal(257)
        ).astype(dtype)
        header, payload = encode_block(block)
        assert header == {"dtype": dtype, "count": 257}
        decoded = decode_block(header, payload)
        assert decoded.dtype == block.dtype
        assert not decoded.flags.writeable
        np.testing.assert_array_equal(decoded, block)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ProtocolError, match="dtype"):
            encode_block(np.ones(4, dtype=np.float32))
        with pytest.raises(ProtocolError, match="dtype"):
            decode_block({"dtype": "float64", "count": 1}, b"\0" * 8)

    def test_count_payload_mismatch_rejected(self):
        header, payload = encode_block(np.ones(4, dtype=np.complex64))
        with pytest.raises(ProtocolError, match="bytes"):
            decode_block(dict(header, count=5), payload)
        with pytest.raises(ProtocolError, match="non-negative"):
            decode_block(dict(header, count=-1), payload)


class TestMessageCodec:
    def test_delivery_round_trip(self):
        message = {
            "msg_id": 3,
            "data": b"\x00\xffhi",
            "frag_count": 2,
            "duplicates": 0,
            "zigbee_channel": 13,
            "latency_s": 0.5,
        }
        wire = message_to_wire(message)
        assert "data" not in wire
        assert wire["data_hex"] == "00ff6869"
        assert message_from_wire(wire) == message
