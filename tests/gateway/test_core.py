"""GatewayCore: admission control, backpressure, serial==pooled delivery."""

import numpy as np
import pytest

from repro.gateway.core import GatewayCore
from repro.gateway.errors import (
    ERR_DUPLICATE_TENANT,
    ERR_SHUTTING_DOWN,
    ERR_STREAM_ENDED,
    ERR_TENANT_LIMIT,
    ERR_UNKNOWN_TENANT,
    GatewayError,
)
from repro.gateway.loadgen import build_workloads, drive_core, run_loadgen

#: Fast decode path for end-to-end tests: one decimated channel.
FAST_ENGINE = {
    "demux": True,
    "zigbee_channels": [13],
    "decimation": 4,
    "mode": "fast",
    "working_dtype": "complex64",
}


def _zeros(n=256):
    return np.zeros(n, dtype=np.complex64)


class TestAdmissionControl:
    def test_tenant_limit_refused_with_code(self):
        with GatewayCore(max_tenants=2) as core:
            core.admit("a")
            core.admit("b")
            with pytest.raises(GatewayError) as excinfo:
                core.admit("c")
            assert excinfo.value.code == ERR_TENANT_LIMIT

    def test_finished_tenant_frees_a_slot(self):
        with GatewayCore(max_tenants=1, engine=FAST_ENGINE) as core:
            core.admit("a")
            core.finish_tenant("a")
            core.admit("b")  # the limit counts *active* tenants

    def test_duplicate_tenant_refused(self):
        with GatewayCore() as core:
            core.admit("a")
            with pytest.raises(GatewayError) as excinfo:
                core.admit("a")
            assert excinfo.value.code == ERR_DUPLICATE_TENANT

    def test_finished_tenant_id_can_be_readmitted(self):
        # ``finish`` releases the id: a later admit under the same name
        # is a fresh session, not a duplicate-tenant refusal.
        with GatewayCore(engine=FAST_ENGINE) as core:
            core.admit("a")
            core.submit("a", _zeros())
            core.finish_tenant("a")
            info = core.admit("a")
            assert info["tenant"] == "a"
            stats = core.tenant_stats("a")
            assert not stats["finished"]
            assert stats["blocks_in"] == 0  # zeroed, not carried over
            # The fresh session is fully usable end to end.
            assert core.submit("a", _zeros()) in (True, False)
            result = core.finish_tenant("a")
            assert result["stats"]["finished"]

    def test_finished_tenant_id_readmitted_on_pooled_backend(self):
        # Pooled re-admission reopens the tenant's pool key: the old
        # consumer was closed by finish, the new admit must build a
        # fresh one rather than trip the pool's duplicate-key guard.
        with GatewayCore(engine=FAST_ENGINE, jobs=2) as core:
            core.admit("a")
            core.submit("a", _zeros())
            core.finish_tenant("a")
            core.admit("a")
            core.submit("a", _zeros())
            result = core.finish_tenant("a")
            assert result["stats"]["finished"]

    def test_readmission_still_refused_while_active(self):
        with GatewayCore(engine=FAST_ENGINE) as core:
            core.admit("a")
            core.submit("a", _zeros())
            with pytest.raises(GatewayError) as excinfo:
                core.admit("a")
            assert excinfo.value.code == ERR_DUPLICATE_TENANT

    def test_unknown_tenant_refused(self):
        with GatewayCore() as core:
            with pytest.raises(GatewayError) as excinfo:
                core.submit("ghost", _zeros())
            assert excinfo.value.code == ERR_UNKNOWN_TENANT

    def test_submit_after_finish_refused(self):
        with GatewayCore(engine=FAST_ENGINE) as core:
            core.admit("a")
            core.finish_tenant("a")
            with pytest.raises(GatewayError) as excinfo:
                core.submit("a", _zeros())
            assert excinfo.value.code == ERR_STREAM_ENDED

    def test_draining_gateway_refuses_admission(self):
        # ``drain()`` finishes by closing the core, so the window where
        # ``shutting-down`` is the answer is while the flag is up and
        # tenants are still being finished — model that state directly.
        with GatewayCore(engine=FAST_ENGINE) as core:
            core.admit("a")
            core._draining = True
            with pytest.raises(GatewayError) as excinfo:
                core.admit("b")
            assert excinfo.value.code == ERR_SHUTTING_DOWN
            assert core.draining

    def test_drain_returns_undelivered_work(self):
        with GatewayCore(engine=FAST_ENGINE) as core:
            core.admit("a")
            core.submit("a", _zeros())
            results = core.drain()
        assert set(results) == {"a"}
        assert results["a"]["stats"]["finished"]

    def test_invalid_max_tenants(self):
        with pytest.raises(ValueError):
            GatewayCore(max_tenants=0)


class TestBackpressure:
    def test_overrun_sheds_blocks_not_memory(self):
        # An unpumpable core (finished consumer never runs: we just never
        # let the ring drain by using capacity 1 and giant blocks) must
        # shed and account rather than queue without bound.
        with GatewayCore(engine=FAST_ENGINE, ring_capacity=1) as core:
            core.admit("a")
            # Stuff the ring faster than pump can drain by bypassing pump:
            state = core._tenants["a"]
            assert state.ring.push(_zeros())
            accepted = state.ring.push(_zeros())
            assert not accepted
            assert state.ring.stats()["overruns"] == 1

    def test_submit_reports_shed(self):
        with GatewayCore(engine=FAST_ENGINE, ring_capacity=4) as core:
            core.admit("a")
            assert core.submit("a", _zeros()) in (True, False)
            stats = core.tenant_stats("a")
            assert stats["ring"]["overruns"] + stats["blocks_in"] >= 1


@pytest.mark.timeout(300)
class TestEndToEndDelivery:
    def test_serial_loadgen_is_byte_exact(self):
        report = run_loadgen(
            tenants=2,
            senders=2,
            seed=11,
            duration_s=0.02,
            engine=FAST_ENGINE,
            jobs=1,
            dtype="complex64",
        )
        assert report["ok"], report
        assert all(row["byte_exact"] for row in report["tenants"])
        assert sum(row["expected"] for row in report["tenants"]) > 0
        assert report["aggregate_x_realtime"] > 0

    def test_pooled_matches_serial_payloads(self):
        def delivered(jobs):
            workloads = build_workloads(
                2, 2, seed=11, duration_s=0.02,
                engine=FAST_ENGINE, dtype="complex64",
            )
            with GatewayCore(
                engine=FAST_ENGINE, max_tenants=2, jobs=jobs
            ) as core:
                drive_core(core, workloads)
            return {
                w.tenant_id: sorted(
                    (m["zigbee_channel"], m["msg_id"], m["data"])
                    for m in w.delivered
                )
                for w in workloads
            }

        serial = delivered(1)
        pooled = delivered(2)
        assert serial == pooled
        assert any(serial.values())  # the comparison is not vacuous

    def test_per_tenant_engine_override_is_honored(self):
        # Two tenants fed the same samples, one overriding the listen
        # channel: each session decodes with *its own* engine (deliveries
        # carry the tenant's configured channel), and only the matched
        # listener recovers the full expected set.
        workloads = build_workloads(
            1, 2, seed=11, duration_s=0.02,
            engine=FAST_ENGINE, dtype="complex64",
        )
        off_channel = dict(FAST_ENGINE, zigbee_channels=[11])
        with GatewayCore(engine=FAST_ENGINE, max_tenants=2) as core:
            core.admit("matched")
            core.admit("detuned", engine=off_channel)
            for workload in workloads:
                for lo in range(0, workload.samples.size, 16384):
                    block = workload.samples[lo : lo + 16384]
                    core.submit("matched", block)
                    core.submit("detuned", block)
            matched = core.finish_tenant("matched")["messages"]
            detuned = core.finish_tenant("detuned")["messages"]
        assert len(matched) == len(workloads[0].expected) > 0
        # Each session decoded with its own engine: deliveries carry the
        # tenant's configured listen channel, so the override reached the
        # consumer and the sessions never shared state.  (Payload content
        # may coincide — decimation aliases the adjacent channel in.)
        assert all(m["zigbee_channel"] == 13 for m in matched)
        assert detuned and all(m["zigbee_channel"] == 11 for m in detuned)


class TestIntrospection:
    def test_stats_shape(self):
        with GatewayCore(engine=FAST_ENGINE) as core:
            core.admit("a")
            core.submit("a", _zeros())
            stats = core.stats()
        assert stats["active_tenants"] == 1
        assert stats["jobs"] == 1
        assert stats["pool"] is None
        tenant = stats["tenants"]["a"]
        assert tenant["blocks_in"] == 1
        assert tenant["samples_in"] == 256
        assert "ring" in tenant

    def test_closed_core_refuses_use(self):
        core = GatewayCore(engine=FAST_ENGINE)
        core.close()
        with pytest.raises(ValueError):
            core.pump()
