"""Load harness: seeded determinism, ground truth, report contract."""

import numpy as np
import pytest

from repro.gateway.loadgen import build_workloads, run_loadgen, verify

FAST_ENGINE = {
    "demux": True,
    "zigbee_channels": [13],
    "decimation": 4,
    "mode": "fast",
    "working_dtype": "complex64",
}


class TestBuildWorkloads:
    def test_same_seed_sample_identical(self):
        a = build_workloads(2, 2, seed=9, duration_s=0.01)
        b = build_workloads(2, 2, seed=9, duration_s=0.01)
        for wa, wb in zip(a, b):
            np.testing.assert_array_equal(wa.samples, wb.samples)
            assert wa.expected == wb.expected
            assert wa.incomplete == wb.incomplete

    def test_different_seed_different_load(self):
        a, = build_workloads(1, 1, seed=9, duration_s=0.01)
        b, = build_workloads(1, 1, seed=10, duration_s=0.01)
        assert not np.array_equal(a.samples, b.samples)

    def test_tenants_draw_independent_streams(self):
        a, b = build_workloads(2, 1, seed=9, duration_s=0.02)
        assert not np.array_equal(a.samples, b.samples)
        assert a.expected and b.expected
        assert set(a.expected.values()) != set(b.expected.values())

    def test_sender_cap_enforced(self):
        with pytest.raises(ValueError, match="senders per tenant"):
            build_workloads(1, 17, seed=1, channels=(13,))

    def test_incomplete_scripts_excluded_from_contract(self):
        # A capture too short for any full fragment set owes nothing.
        (workload,) = build_workloads(
            1, 2, seed=9, duration_s=0.004, reading_interval_s=0.002
        )
        assert workload.incomplete >= 1
        assert len(workload.expected) + workload.incomplete == 2

    def test_expected_messages_match_seeded_script(self):
        (workload,) = build_workloads(1, 1, seed=9, duration_s=0.02)
        rng = np.random.default_rng([9, 0, 0])
        assert workload.expected.get((13, 0)) == rng.bytes(5)


class TestVerify:
    def _workload(self):
        (workload,) = build_workloads(
            1, 1, seed=9, duration_s=0.02, engine=FAST_ENGINE
        )
        return workload

    def test_missing_delivery_fails(self):
        workload = self._workload()
        rows, ok = verify([workload])
        assert not ok and rows[0]["matched"] == 0

    def test_corrupt_delivery_fails(self):
        workload = self._workload()
        (key, message), = workload.expected.items()
        workload.delivered.append(
            {"zigbee_channel": key[0], "msg_id": key[1], "data": b"\0" + message}
        )
        _, ok = verify([workload])
        assert not ok

    def test_exact_delivery_passes(self):
        workload = self._workload()
        for (channel, msg_id), message in workload.expected.items():
            workload.delivered.append(
                {"zigbee_channel": channel, "msg_id": msg_id, "data": message}
            )
        rows, ok = verify([workload])
        assert ok and rows[0]["byte_exact"]

    def test_unexpected_extra_fails(self):
        workload = self._workload()
        for (channel, msg_id), message in workload.expected.items():
            workload.delivered.append(
                {"zigbee_channel": channel, "msg_id": msg_id, "data": message}
            )
        workload.delivered.append(
            {"zigbee_channel": 99, "msg_id": 0, "data": b"?"}
        )
        _, ok = verify([workload])
        assert not ok


@pytest.mark.timeout(300)
class TestRunLoadgen:
    def test_report_contract(self):
        report = run_loadgen(
            tenants=1,
            senders=1,
            seed=9,
            duration_s=0.02,
            engine=FAST_ENGINE,
            dtype="complex64",
        )
        assert report["ok"]
        assert report["seed"] == 9
        assert report["jobs"] == 1
        assert report["total_samples"] > 0
        assert report["stream_seconds"] > 0
        assert report["aggregate_x_realtime"] > 0
        (row,) = report["tenants"]
        assert row["tenant"] == "tenant-0"
        assert row["byte_exact"]
