"""GatewayServer: wire round-trips, error contract, /metrics, shutdown."""

import asyncio
import threading
import urllib.request

import numpy as np
import pytest

from repro.gateway.core import GatewayCore
from repro.gateway.errors import ERR_UNKNOWN_TENANT, GatewayError
from repro.gateway.loadgen import build_workloads, drive_client, verify
from repro.gateway.protocol import GatewayClient, pack_message
from repro.gateway.server import GatewayServer
from repro.obs.metrics import REGISTRY

FAST_ENGINE = {
    "demux": True,
    "zigbee_channels": [13],
    "decimation": 4,
    "mode": "fast",
    "working_dtype": "complex64",
}


class _ServerHarness:
    """Run one GatewayServer on an asyncio loop in a daemon thread."""

    def __init__(self, core, metrics=True):
        self.server = GatewayServer(
            core, port=0, metrics_port=0 if metrics else None
        )
        self._loop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(30):
            raise RuntimeError("gateway server did not start")

    def _run(self):
        async def main():
            await self.server.run(
                install_signal_handlers=False, on_started=self._on_started
            )

        asyncio.run(main())

    def _on_started(self, server):
        self._loop = asyncio.get_running_loop()
        self._started.set()

    def stop(self):
        self._loop.call_soon_threadsafe(self.server._stop_event.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()

    def client(self):
        return GatewayClient("127.0.0.1", self.server.port, connect_wait_s=5)


@pytest.fixture()
def harness():
    REGISTRY.enable()
    REGISTRY.reset()
    h = _ServerHarness(GatewayCore(engine=FAST_ENGINE, max_tenants=4))
    try:
        yield h
    finally:
        h.stop()
        REGISTRY.disable()
        REGISTRY.reset()


@pytest.mark.timeout(300)
class TestWireService:
    def test_full_session_round_trip(self, harness):
        (workload,) = build_workloads(
            1, 2, seed=11, duration_s=0.02,
            engine=FAST_ENGINE, dtype="complex64",
        )
        with harness.client() as client:
            drive_client(client, [workload])
            stats = client.stats(workload.tenant_id)
            assert stats["finished"]
            assert client.bye() == {"type": "goodbye"}
        rows, all_exact = verify([workload])
        assert all_exact, rows
        assert rows[0]["matched"] == rows[0]["expected"] > 0

    def test_welcome_echoes_admission_info(self, harness):
        with harness.client() as client:
            welcome = client.hello("t0")
            assert welcome["type"] == "welcome"
            assert welcome["tenant"] == "t0"
            assert welcome["ring_capacity"] == 64
            assert welcome["jobs"] == 1

    def test_gateway_error_keeps_connection_usable(self, harness):
        with harness.client() as client:
            with pytest.raises(GatewayError) as excinfo:
                client.poll("never-admitted")
            assert excinfo.value.code == ERR_UNKNOWN_TENANT
            # The same connection still serves the next request.
            assert client.hello("t1")["type"] == "welcome"

    def test_malformed_request_is_bad_request_and_drop(self, harness):
        with harness.client() as client:
            client._sock.sendall(pack_message({"type": "no-such-verb"}))
            with pytest.raises(GatewayError) as excinfo:
                client.request({"type": "poll", "tenant": "x"})
            assert excinfo.value.code == "bad-request"

    def test_samples_response_reports_shed(self, harness):
        with harness.client() as client:
            client.hello("t2")
            response = client.send_samples(
                "t2", np.zeros(128, dtype=np.complex64)
            )
            assert response["type"] == "accepted"
            assert response["accepted"] is True

    def test_server_stats_cover_the_fleet(self, harness):
        with harness.client() as client:
            client.hello("a")
            client.hello("b")
            stats = client.stats()
            assert stats["active_tenants"] == 2
            assert set(stats["tenants"]) == {"a", "b"}


@pytest.mark.timeout(300)
class TestMetricsEndpoint:
    def test_scrape_has_gateway_metrics(self, harness):
        with harness.client() as client:
            client.hello("m0")
            client.send_samples("m0", np.zeros(256, dtype=np.complex64))
        url = f"http://127.0.0.1:{harness.server.metrics_port}/metrics"
        body = urllib.request.urlopen(url, timeout=10).read().decode()
        assert "repro_gateway_tenants_admitted" in body
        assert "repro_gateway_connections" in body

    def test_other_paths_404(self, harness):
        url = f"http://127.0.0.1:{harness.server.metrics_port}/nope"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=10)
        assert excinfo.value.code == 404


@pytest.mark.timeout(300)
class TestGracefulShutdown:
    def test_stop_drains_active_tenants(self):
        REGISTRY.enable()
        REGISTRY.reset()
        core = GatewayCore(engine=FAST_ENGINE)
        harness = _ServerHarness(core, metrics=False)
        try:
            with harness.client() as client:
                client.hello("t")
                client.send_samples("t", np.zeros(4096, dtype=np.complex64))
        finally:
            harness.stop()
            REGISTRY.disable()
            REGISTRY.reset()
        # The drain finished the still-active tenant and closed the core.
        assert core._tenants["t"].finished
        assert core._closed
