"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
517 editable installs fail with "invalid command 'bdist_wheel'".  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` take
the classic ``setup.py develop`` path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
