"""Large-scale propagation: log-distance path loss, shadowing, walls.

The standard indoor/outdoor model: ``PL(d) = PL0 + 10*n*log10(d/d0) + X``
with ``d0 = 1 m``, ``PL0`` the free-space loss at 1 m (about 40.2 dB at
2.44 GHz), ``n`` the environment's path-loss exponent, and ``X`` a
zero-mean Gaussian shadowing term in dB redrawn per packet (slow fading).
Wall penetration losses add a fixed budget, used by the NLOS experiment.
"""

import numpy as np

from repro.constants import ISM_BAND_CENTER_HZ, SPEED_OF_LIGHT


def free_space_path_loss_db(distance_m, frequency_hz=ISM_BAND_CENTER_HZ):
    """Friis free-space loss in dB at ``distance_m`` metres."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * np.log10(4.0 * np.pi * distance_m / wavelength)


#: Free-space loss at the 1 m reference distance, 2.44 GHz (about 40.2 dB).
FREE_SPACE_REFERENCE_LOSS_DB = float(free_space_path_loss_db(1.0))


class LogDistancePathLoss:
    """Log-distance path loss with lognormal shadowing and wall losses."""

    def __init__(
        self,
        exponent=2.0,
        reference_loss_db=FREE_SPACE_REFERENCE_LOSS_DB,
        shadowing_sigma_db=0.0,
        wall_loss_db=0.0,
    ):
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be nonnegative")
        self.exponent = float(exponent)
        self.reference_loss_db = float(reference_loss_db)
        self.shadowing_sigma_db = float(shadowing_sigma_db)
        self.wall_loss_db = float(wall_loss_db)

    def mean_loss_db(self, distance_m):
        """Deterministic component of the loss at ``distance_m``."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        return (
            self.reference_loss_db
            + 10.0 * self.exponent * np.log10(distance_m)
            + self.wall_loss_db
        )

    def sample_loss_db(self, distance_m, rng):
        """One shadowing realization of the total loss (per packet)."""
        loss = self.mean_loss_db(distance_m)
        if self.shadowing_sigma_db > 0.0:
            loss += self.shadowing_sigma_db * rng.standard_normal()
        return float(loss)

    def received_power_dbm(self, tx_power_dbm, distance_m, rng=None):
        """RSS in dBm; deterministic when ``rng`` is omitted."""
        if rng is None:
            return tx_power_dbm - self.mean_loss_db(distance_m)
        return tx_power_dbm - self.sample_loss_db(distance_m, rng)
