"""Composite link channel: path loss + multipath + Doppler.

One :class:`LinkChannel` models everything between a transmitter's
antenna and a receiver's antenna for a single link.  Receiver noise and
co-channel interference are *not* applied here — the WiFi front end owns
its own noise floor and interference arrives as separate capture
contributions — so the pieces compose without double counting.
"""

import numpy as np

from repro.channel.fading import MultipathChannel, doppler_frequency_hz, jakes_doppler_gain
from repro.channel.path_loss import LogDistancePathLoss
from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.dsp.signal_ops import db_to_linear


class LinkChannel:
    """Applies one channel realization per packet."""

    def __init__(
        self,
        path_loss=None,
        distance_m=5.0,
        multipath=None,
        speed_m_s=0.0,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
    ):
        self.path_loss = path_loss if path_loss is not None else LogDistancePathLoss()
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        self.distance_m = float(distance_m)
        self.multipath = multipath
        self.speed_m_s = float(speed_m_s)
        self.sample_rate = float(sample_rate)
        if multipath is not None and not isinstance(multipath, MultipathChannel):
            raise TypeError("multipath must be a MultipathChannel or None")

    def mean_received_power_dbm(self, tx_power_dbm):
        """RSS without shadowing — the link budget's centre value."""
        return tx_power_dbm - self.path_loss.mean_loss_db(self.distance_m)

    def apply(self, waveform, rng):
        """One realization: returns the waveform as seen at the RX antenna.

        The input carries the transmit power convention (mean |x|^2 in
        watts); the output carries received power in the same units.
        Small-scale gains are unit-mean-power so the average budget is set
        purely by the path-loss model.
        """
        waveform = np.asarray(waveform)
        loss_db = self.path_loss.sample_loss_db(self.distance_m, rng)
        out = waveform * np.sqrt(db_to_linear(-loss_db))
        if self.multipath is not None:
            out = self.multipath.apply(out, rng)
        if self.speed_m_s > 0.0:
            fd = doppler_frequency_hz(self.speed_m_s)
            out = out * jakes_doppler_gain(out.size, self.sample_rate, fd, rng)
        return out
