"""Small-scale fading: multipath tapped delay lines and Doppler.

Two effects matter to SymBee:

* **Multipath** smears the half-sine pulses and perturbs the phase
  plateaus — the paper blames indoor BER on "multi-path effect ... caused
  by the blockage and bounce of walls" (Section VIII-D).  Modelled as a
  static tapped delay line with exponentially decaying Rayleigh taps.
* **Doppler** (mobility, Figure 23) makes the channel gain vary within a
  packet.  Modelled as a sum-of-sinusoids Jakes process applied as a
  time-varying complex gain.
"""

import numpy as np

from repro.constants import ISM_BAND_CENTER_HZ, SPEED_OF_LIGHT


def doppler_frequency_hz(speed_m_s, carrier_hz=ISM_BAND_CENTER_HZ):
    """Maximum Doppler shift for a given mover speed."""
    if speed_m_s < 0:
        raise ValueError("speed must be nonnegative")
    return speed_m_s * carrier_hz / SPEED_OF_LIGHT


def jakes_doppler_gain(n_samples, sample_rate, max_doppler_hz, rng, n_sinusoids=16):
    """Unit-mean-power time-varying complex gain with Jakes spectrum.

    Sum-of-sinusoids simulator: ``g(t) = sum_k exp(j*(2*pi*fd*cos(a_k)*t
    + phi_k)) / sqrt(K)`` with random arrival angles and phases.  For
    ``max_doppler_hz == 0`` this collapses to a random constant phasor.
    """
    if max_doppler_hz < 0:
        raise ValueError("doppler must be nonnegative")
    t = np.arange(n_samples) / sample_rate
    if max_doppler_hz == 0.0:
        phase = rng.uniform(0.0, 2.0 * np.pi)
        return np.full(n_samples, np.exp(1j * phase))
    angles = rng.uniform(0.0, 2.0 * np.pi, n_sinusoids)
    phases = rng.uniform(0.0, 2.0 * np.pi, n_sinusoids)
    freqs = max_doppler_hz * np.cos(angles)
    gain = np.zeros(n_samples, dtype=np.complex128)
    for f, phi in zip(freqs, phases):
        gain += np.exp(1j * (2.0 * np.pi * f * t + phi))
    return gain / np.sqrt(n_sinusoids)


class RayleighBlockFading:
    """Per-packet flat Rayleigh (or Rician) gain, unit mean power.

    ``k_factor`` is the Rician K in linear units; ``0`` gives pure
    Rayleigh, large K approaches a line-of-sight channel.
    """

    def __init__(self, k_factor=0.0):
        if k_factor < 0:
            raise ValueError("K factor must be nonnegative")
        self.k_factor = float(k_factor)

    def sample_gain(self, rng):
        k = self.k_factor
        los = np.sqrt(k / (k + 1.0))
        scatter_sigma = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        scatter = scatter_sigma * (rng.standard_normal() + 1j * rng.standard_normal())
        phase = rng.uniform(0.0, 2.0 * np.pi)
        return los * np.exp(1j * phase) + scatter


class MultipathChannel:
    """Tapped-delay-line multipath with exponentially decaying Rayleigh taps.

    ``delay_spread_s`` is the RMS delay spread; taps are spaced one sample
    apart over roughly four delay spreads and normalized to unit average
    energy so large-scale power stays owned by the path-loss model.
    Indoor 2.4 GHz delay spreads run 20-100 ns, i.e. a couple of taps at
    50 ns sampling — mild but measurable plateau distortion.
    """

    def __init__(self, delay_spread_s, sample_rate, k_factor=3.0):
        if delay_spread_s < 0:
            raise ValueError("delay spread must be nonnegative")
        self.delay_spread_s = float(delay_spread_s)
        self.sample_rate = float(sample_rate)
        self.k_factor = float(k_factor)
        spread_samples = delay_spread_s * sample_rate
        self.n_taps = max(1, int(np.ceil(4.0 * spread_samples)) + 1)

    def sample_taps(self, rng):
        """Draw one channel realization (complex FIR taps)."""
        if self.n_taps == 1:
            return np.array([RayleighBlockFading(self.k_factor).sample_gain(rng)])
        delays = np.arange(self.n_taps) / self.sample_rate
        if self.delay_spread_s > 0:
            profile = np.exp(-delays / self.delay_spread_s)
        else:
            profile = np.concatenate([[1.0], np.zeros(self.n_taps - 1)])
        profile /= profile.sum()
        taps = np.sqrt(profile / 2.0) * (
            rng.standard_normal(self.n_taps) + 1j * rng.standard_normal(self.n_taps)
        )
        # Give the first tap a line-of-sight component per the K factor.
        k = self.k_factor
        if k > 0:
            los = np.sqrt(k / (k + 1.0))
            taps = taps * np.sqrt(1.0 / (k + 1.0))
            taps[0] += los * np.exp(1j * rng.uniform(0.0, 2.0 * np.pi)) * np.sqrt(
                profile[0]
            )
        norm = np.sqrt(np.sum(np.abs(taps) ** 2))
        return taps / max(norm, 1e-12)

    def apply(self, waveform, rng):
        """Convolve one realization with ``waveform`` (same-length output)."""
        taps = self.sample_taps(rng)
        if taps.size == 1:
            return np.asarray(waveform) * taps[0]
        return np.convolve(np.asarray(waveform), taps)[: len(waveform)]
