"""Cross-technology interference: WiFi traffic sharing the band.

Generates a schedule of 802.11g bursts over a capture window.  Burst
lengths follow typical WiFi frame durations (a few hundred microseconds),
arrival follows an on/off process tuned to a target duty cycle, and each
burst's received power is drawn relative to the SymBee signal power (the
signal-to-interference ratio distribution is the scenario's knob).

This mirrors the paper's trace-driven method (Section VIII-E): they mixed
recorded WiFi signal into clean SymBee captures at controlled SINR.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.dsp.signal_ops import db_to_linear, dbm_to_watts, scale_to_power
from repro.wifi.ofdm import OfdmTransmitter


@dataclass(frozen=True)
class InterferenceBurst:
    """One WiFi burst landing in the capture window."""

    start_index: int
    waveform: np.ndarray

    @property
    def n_samples(self):
        return self.waveform.size


class WifiInterferenceModel:
    """On/off WiFi traffic with per-burst power.

    Parameters
    ----------
    duty_cycle:
        Long-run fraction of time the interferer occupies the channel.
        Zero disables interference entirely.
    mean_sir_db / sir_sigma_db:
        Per-burst signal-to-interference ratio (SymBee power over burst
        power) drawn as Normal(mean_sir_db, sir_sigma_db) in dB.  This is
        the *trace-mixing* mode matching the paper's Section VIII-E
        methodology (clean capture + WiFi trace scaled to a target SINR);
        it ties burst power to the SymBee signal.
    mean_power_dbm / power_sigma_db:
        Alternative *physical* mode: per-burst received power in absolute
        dBm, lognormal around ``mean_power_dbm``.  Used by the scenario
        presets, where interfering APs sit at fixed places so their power
        at the receiver does not depend on how strong the SymBee sender
        happens to be.  Setting ``mean_power_dbm`` overrides the SIR mode.
    burst_duration_range_s:
        Uniform range of burst lengths; defaults span a DATA frame at a
        medium rate (the paper's example burst is 270 us).
    """

    def __init__(
        self,
        duty_cycle,
        mean_sir_db=3.0,
        sir_sigma_db=4.0,
        mean_power_dbm=None,
        power_sigma_db=6.0,
        burst_duration_range_s=(150e-6, 500e-6),
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
    ):
        if not 0.0 <= duty_cycle < 1.0:
            raise ValueError("duty cycle must be in [0, 1)")
        lo, hi = burst_duration_range_s
        if lo <= 0 or hi < lo:
            raise ValueError("invalid burst duration range")
        self.duty_cycle = float(duty_cycle)
        self.mean_sir_db = float(mean_sir_db)
        self.sir_sigma_db = float(sir_sigma_db)
        self.mean_power_dbm = (
            None if mean_power_dbm is None else float(mean_power_dbm)
        )
        self.power_sigma_db = float(power_sigma_db)
        self.burst_duration_range_s = (float(lo), float(hi))
        self.sample_rate = float(sample_rate)
        self._ofdm = OfdmTransmitter(sample_rate=sample_rate)

    def mean_gap_seconds(self):
        """Average idle gap between bursts implied by the duty cycle."""
        if self.duty_cycle == 0.0:
            return float("inf")
        lo, hi = self.burst_duration_range_s
        mean_burst = (lo + hi) / 2.0
        return mean_burst * (1.0 - self.duty_cycle) / self.duty_cycle

    def generate(self, n_samples, symbee_power_watts, rng):
        """Burst list for a capture of ``n_samples`` samples.

        Burst powers are set relative to ``symbee_power_watts`` through the
        SIR draw.  Returns a list of :class:`InterferenceBurst`.
        """
        if self.duty_cycle == 0.0 or n_samples <= 0:
            return []
        bursts = []
        mean_gap = self.mean_gap_seconds()
        # Start mid-gap on average so the process is stationary.
        position = int(rng.exponential(mean_gap) * self.sample_rate)
        while position < n_samples:
            lo, hi = self.burst_duration_range_s
            duration = rng.uniform(lo, hi)
            waveform = self._ofdm.burst(duration, rng)
            if self.mean_power_dbm is not None:
                power_dbm = rng.normal(self.mean_power_dbm, self.power_sigma_db)
                power = float(dbm_to_watts(power_dbm))
            else:
                sir_db = rng.normal(self.mean_sir_db, self.sir_sigma_db)
                power = symbee_power_watts / db_to_linear(sir_db)
            waveform = scale_to_power(waveform, power)
            bursts.append(InterferenceBurst(start_index=position, waveform=waveform))
            gap = rng.exponential(mean_gap)
            position += waveform.size + max(1, int(gap * self.sample_rate))
        return bursts

    def contributions(self, n_samples, symbee_power_watts, rng, center_frequency):
        """Bursts formatted as :meth:`WifiFrontEnd.capture` contributions."""
        return [
            (burst.waveform, burst.start_index, center_frequency)
            for burst in self.generate(n_samples, symbee_power_watts, rng)
        ]
