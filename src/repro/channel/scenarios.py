"""Named evaluation environments (paper Figures 15, 18, 23).

Each preset bundles a propagation profile and a WiFi interference profile.
The parameters are calibrated so the SNR/SINR statistics at the receiver
reproduce the *ordering and rough magnitudes* of the paper's measured
throughput and BER (outdoor cleanest; classroom, office, dormitory in the
middle; library and mall worst).  Absolute numbers are documented in
EXPERIMENTS.md; provenance of each parameter choice is in the field
comments below.
"""

from dataclasses import dataclass, field, replace

from repro.channel.fading import MultipathChannel
from repro.channel.interference import WifiInterferenceModel
from repro.channel.link import LinkChannel
from repro.channel.path_loss import LogDistancePathLoss
from repro.constants import WIFI_SAMPLE_RATE_20MHZ


@dataclass(frozen=True)
class Scenario:
    """A reproducible evaluation environment.

    ``path_loss_exponent`` / ``shadowing_sigma_db`` follow standard 2.4 GHz
    survey values (free space ~2, open indoor 2.7-3.0, cluttered indoor
    3.0-3.5).  ``interference_duty`` and the SIR distribution encode how
    busy the surrounding WiFi was in the paper's description of each site.
    ``delay_spread_ns`` sets indoor multipath severity; ``k_factor`` the
    Rician line-of-sight strength.
    """

    name: str
    description: str
    path_loss_exponent: float
    shadowing_sigma_db: float
    interference_duty: float
    interference_power_dbm: float = -70.0
    interference_power_sigma_db: float = 6.0
    delay_spread_ns: float = 0.0
    k_factor: float = 8.0
    wall_loss_db: float = 0.0
    speed_m_s: float = 0.0

    def link(self, distance_m, sample_rate=WIFI_SAMPLE_RATE_20MHZ):
        """Build the :class:`LinkChannel` for a sender at ``distance_m``."""
        path_loss = LogDistancePathLoss(
            exponent=self.path_loss_exponent,
            shadowing_sigma_db=self.shadowing_sigma_db,
            wall_loss_db=self.wall_loss_db,
        )
        multipath = None
        if self.delay_spread_ns > 0:
            multipath = MultipathChannel(
                self.delay_spread_ns * 1e-9, sample_rate, k_factor=self.k_factor
            )
        return LinkChannel(
            path_loss=path_loss,
            distance_m=distance_m,
            multipath=multipath,
            speed_m_s=self.speed_m_s,
            sample_rate=sample_rate,
        )

    def interference(self, sample_rate=WIFI_SAMPLE_RATE_20MHZ):
        """WiFi traffic model for this environment (None when idle)."""
        if self.interference_duty == 0.0:
            return None
        return WifiInterferenceModel(
            duty_cycle=self.interference_duty,
            mean_power_dbm=self.interference_power_dbm,
            power_sigma_db=self.interference_power_sigma_db,
            sample_rate=sample_rate,
        )


#: The six evaluation areas of the paper's Figure 15, ordered as plotted.
SCENARIOS = {
    "outdoor": Scenario(
        name="outdoor",
        description="Open field; no obstacles, no co-channel WiFi.",
        path_loss_exponent=2.1,   # near free space
        shadowing_sigma_db=3.0,
        interference_duty=0.0,
        delay_spread_ns=0.0,
        k_factor=30.0,
    ),
    "classroom": Scenario(
        name="classroom",
        description="Large room, light campus WiFi (2nd best in the paper).",
        path_loss_exponent=2.6,
        shadowing_sigma_db=4.0,
        interference_duty=0.05,
        interference_power_dbm=-74.0,
        delay_spread_ns=30.0,
        k_factor=10.0,
    ),
    "office": Scenario(
        name="office",
        description="Wired desktops, few private APs (paper: >= 26.9 kbps).",
        path_loss_exponent=2.9,
        shadowing_sigma_db=5.0,
        interference_duty=0.08,
        interference_power_dbm=-70.0,
        delay_spread_ns=40.0,
        k_factor=8.0,
    ),
    "dormitory": Scenario(
        name="dormitory",
        description="Mild private-AP traffic during the experiment.",
        path_loss_exponent=3.0,
        shadowing_sigma_db=5.0,
        interference_duty=0.12,
        interference_power_dbm=-68.0,
        delay_spread_ns=50.0,
        k_factor=6.0,
    ),
    "library": Scenario(
        name="library",
        description="Everyone on campus WiFi; heavy interference.",
        path_loss_exponent=3.0,
        shadowing_sigma_db=5.5,
        interference_duty=0.20,
        interference_power_dbm=-67.0,
        delay_spread_ns=60.0,
        k_factor=5.0,
    ),
    "mall": Scenario(
        name="mall",
        description="Shopper blockage plus many store APs; worst site.",
        path_loss_exponent=3.2,
        shadowing_sigma_db=5.5,
        interference_duty=0.25,
        interference_power_dbm=-69.0,
        interference_power_sigma_db=7.0,
        delay_spread_ns=80.0,
        k_factor=4.0,
    ),
}


def get_scenario(name):
    """Look up a preset by name; raises ``KeyError`` with the valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        valid = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; valid: {valid}") from None


def nlos_office_positions():
    """The four sender positions of the paper's Figure 18.

    Returns ``{position: (distance_m, walls)}``.  S1 is closest with a
    clear corridor; S2 is farther but through one wall; S3 is closer than
    S2 yet behind two walls (the paper highlights that S3 underperforms
    S2); S4 is farthest with two walls.  Each wall costs ~5 dB at 2.4 GHz
    (interior drywall/office partition).
    """
    return {
        "S1": (6.0, 0),
        "S2": (15.0, 1),
        "S3": (12.0, 2),
        "S4": (20.0, 2),
    }


def nlos_office_scenario(walls, wall_loss_db_per_wall=7.0):
    """Office preset with ``walls`` interior walls added to the budget."""
    base = SCENARIOS["office"]
    return replace(
        base,
        name=f"office-nlos-{walls}walls",
        wall_loss_db=walls * wall_loss_db_per_wall,
    )


#: Speeds of the paper's Figure 23 mobility runs, in miles per hour.
MOBILITY_SPEEDS_MPH = {"walking": 3.4, "running": 5.3, "bicycle": 9.3}


def mobility_scenario(speed_mph, body_loss_db=13.0):
    """Track-and-field mobility: outdoor propagation plus body blockage.

    The moving sender adds Doppler fading and the carrier's body/bag
    blockage (the paper blames "blockage and vibration of bag, physical
    body and bicycle" for the mobile BER).  A human body costs on the
    order of 10-15 dB at 2.4 GHz and scatters the line of sight, hence
    the fixed ``body_loss_db`` budget and the low Rician K.
    """
    if speed_mph <= 0:
        raise ValueError("speed must be positive")
    base = SCENARIOS["outdoor"]
    return replace(
        base,
        name=f"mobile-{speed_mph}mph",
        speed_m_s=speed_mph * 0.44704,
        shadowing_sigma_db=4.0,
        delay_spread_ns=30.0,
        k_factor=1.0,
        wall_loss_db=body_loss_db,
    )
