"""Radio channel models.

These replace the paper's physical testbed sites: log-distance path loss
with shadowing and walls, multipath fading with Doppler for mobility, and
a WiFi interference traffic generator.  The named scenario presets map to
the paper's six evaluation areas (Figure 15), the NLOS office layout
(Figure 18), and the track-and-field mobility runs (Figure 23).
"""

from repro.channel.path_loss import (
    FREE_SPACE_REFERENCE_LOSS_DB,
    LogDistancePathLoss,
    free_space_path_loss_db,
)
from repro.channel.fading import (
    MultipathChannel,
    RayleighBlockFading,
    jakes_doppler_gain,
    doppler_frequency_hz,
)
from repro.channel.interference import InterferenceBurst, WifiInterferenceModel
from repro.channel.link import LinkChannel
from repro.channel.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    nlos_office_positions,
    mobility_scenario,
)

__all__ = [
    "FREE_SPACE_REFERENCE_LOSS_DB",
    "LogDistancePathLoss",
    "free_space_path_loss_db",
    "MultipathChannel",
    "RayleighBlockFading",
    "jakes_doppler_gain",
    "doppler_frequency_hz",
    "InterferenceBurst",
    "WifiInterferenceModel",
    "LinkChannel",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "nlos_office_positions",
    "mobility_scenario",
]
