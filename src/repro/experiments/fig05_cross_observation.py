"""Figures 3/5: cross-observation of a single ZigBee symbol at WiFi.

Renders symbol 6's baseband waveform, feeds it through the WiFi
idle-listening phase computation, and summarizes the phase pattern —
including the stable region the paper's Figure 5 highlights in gray.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_STABLE_PHASE, WIFI_SAMPLE_RATE_20MHZ
from repro.dsp.runs import longest_run
from repro.wifi.idle_listening import phase_differences
from repro.zigbee.oqpsk import OqpskModulator


@dataclass(frozen=True)
class CrossObservationResult:
    symbol: int
    phases: np.ndarray
    stable_run_samples: int
    stable_level: float
    discrete_levels: tuple


def run(symbol=6, sample_rate=WIFI_SAMPLE_RATE_20MHZ):
    """Cross-observe one ZigBee symbol in isolation (no CFO, no noise)."""
    mod = OqpskModulator(sample_rate)
    waveform = mod.modulate_symbols([symbol])
    lag = int(round(sample_rate * 0.8e-6))
    phases = phase_differences(waveform, lag)

    target = SYMBEE_STABLE_PHASE
    run_pos = longest_run(np.abs(phases - target) < 1e-9)
    run_neg = longest_run(np.abs(phases + target) < 1e-9)
    if run_pos >= run_neg:
        stable_run, level = run_pos, target
    else:
        stable_run, level = run_neg, -target

    amp_ok = np.abs(waveform[: phases.size]) > 1e-3
    levels = tuple(sorted(set(np.round(phases[amp_ok], 6))))
    return CrossObservationResult(
        symbol=symbol,
        phases=phases,
        stable_run_samples=stable_run,
        stable_level=level,
        discrete_levels=levels,
    )


def main():
    from repro.experiments.common import print_table

    result = run()
    print(f"\n== Fig 5: cross-observation of ZigBee symbol {result.symbol:X} ==")
    print(
        f"longest stable plateau: {result.stable_run_samples} samples at "
        f"{result.stable_level / np.pi:+.2f} pi "
        f"({result.stable_run_samples / 20:.2f} us at 20 Msps)"
    )
    rows = [
        (f"{level / np.pi:+.2f} pi", f"{level:+.4f}")
        for level in result.discrete_levels
    ]
    print_table(("phase level", "radians"), rows, title="observed discrete dp levels")
    return result


if __name__ == "__main__":
    main()
