"""Extension: residual carrier offset tolerance.

The paper's Appendix B only compensates channel-grid offsets; crystal
tolerances add up to +-40 ppm (+-100 kHz at 2.44 GHz).  This experiment
maps BER against residual offset with and without the preamble-based
offset tracking this repo adds, locating the tolerance envelope (the
bit-0 plateau reaches the +-pi wrap near +-100 kHz, where the absolute
sign test fails by construction).
"""

from dataclasses import dataclass

import numpy as np

from repro.core.link import SymBeeLink
from repro.experiments.common import scaled

CFO_GRID_HZ = (-80e3, -40e3, 0.0, 40e3, 60e3, 80e3)


@dataclass(frozen=True)
class ResidualCfoResult:
    cfo_hz: tuple
    ber_untracked: tuple
    ber_tracked: tuple
    snr_db: float


def run(seed=42, cfo_grid_hz=CFO_GRID_HZ, n_frames=None, snr_db=6.0,
        bits_per_frame=48):
    n_frames = scaled(10) if n_frames is None else n_frames
    untracked, tracked = [], []
    for cfo in cfo_grid_hz:
        for track, out in ((False, untracked), (True, tracked)):
            rng = np.random.default_rng(seed)
            link = SymBeeLink(
                tx_power_dbm=-95.0 + snr_db,
                residual_cfo_hz=cfo,
                track_residual_cfo=track,
            )
            errors = sent = 0
            for _ in range(n_frames):
                result = link.send_bits(
                    rng.integers(0, 2, bits_per_frame), rng
                )
                errors += result.n_bits - result.delivered_bits
                sent += result.n_bits
            out.append(errors / sent)
    return ResidualCfoResult(
        cfo_hz=tuple(cfo_grid_hz),
        ber_untracked=tuple(untracked),
        ber_tracked=tuple(tracked),
        snr_db=snr_db,
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (f"{cfo / 1e3:+.0f}", fmt(u, 3), fmt(t, 3))
        for cfo, u, t in zip(
            result.cfo_hz, result.ber_untracked, result.ber_tracked
        )
    ]
    print_table(
        ("residual CFO (kHz)", "BER untracked", "BER tracked"),
        rows,
        title=f"Extension: residual-CFO tolerance (SNR {result.snr_db:+.0f} dB)",
    )
    return result


if __name__ == "__main__":
    main()
