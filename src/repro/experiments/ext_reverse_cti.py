"""Extension: the reverse interference direction — WiFi under ZigBee.

The paper quantifies WiFi hurting ZigBee (its motivation cites 50%
ZigBee loss) and how SymBee survives WiFi bursts (Figs 20-21).  The
complementary question — how much a ZigBee/SymBee sender disturbs a
co-channel WiFi link — closes the coexistence picture.  A WiFi OFDM
packet is decoded while a ZigBee transmission overlaps it at a swept
signal-to-interference ratio.
"""

from dataclasses import dataclass

import numpy as np

from repro.dsp.noise import awgn
from repro.dsp.signal_ops import scale_to_power
from repro.experiments.common import scaled
from repro.wifi.front_end import WifiFrontEnd
from repro.wifi.ofdm import OfdmTransmitter
from repro.wifi.receiver import OfdmReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter

SIR_GRID_DB = (30.0, 20.0, 15.0, 10.0, 5.0, 0.0)


@dataclass(frozen=True)
class ReverseCtiResult:
    sir_db: tuple
    detection_rate: tuple
    ber_when_detected: tuple


def run(seed=43, sir_grid_db=SIR_GRID_DB, n_packets=None, snr_db=30.0,
        n_symbols=3):
    n_packets = scaled(8) if n_packets is None else n_packets
    rng = np.random.default_rng(seed)
    tx, rx = OfdmTransmitter(), OfdmReceiver()
    fe = WifiFrontEnd(channel=1)
    zigbee = ZigBeeTransmitter(channel=13)

    detection, ber = [], []
    for sir in sir_grid_db:
        detected = 0
        errors = decoded_bits = 0
        for _ in range(n_packets):
            bits = rng.integers(0, 2, 96 * n_symbols, dtype=np.int8)
            packet = tx.packet(bits)
            _, zigbee_wf = zigbee.transmit(
                rng.integers(0, 256, 40, dtype=np.uint8).tobytes()
            )
            interferer = fe.downconvert(
                scale_to_power(
                    zigbee_wf, tx.tx_power_watts / 10 ** (sir / 10)
                ),
                zigbee.center_frequency,
            )
            capture = np.concatenate(
                [np.zeros(600, complex), packet,
                 np.zeros(max(0, interferer.size - packet.size) + 600, complex)]
            )
            span = min(interferer.size, capture.size - 300)
            capture[300 : 300 + span] += interferer[:span]
            capture = awgn(capture, snr_db, rng,
                           reference_power=tx.tx_power_watts)
            reception = rx.receive(capture, n_symbols=n_symbols)
            if reception is None or reception.bits.size != bits.size:
                continue
            detected += 1
            errors += int(np.sum(reception.bits != bits))
            decoded_bits += bits.size
        detection.append(detected / n_packets)
        ber.append(errors / decoded_bits if decoded_bits else float("nan"))
    return ReverseCtiResult(
        sir_db=tuple(sir_grid_db),
        detection_rate=tuple(detection),
        ber_when_detected=tuple(ber),
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (sir, fmt(d, 2), fmt(b, 4) if not np.isnan(b) else "-")
        for sir, d, b in zip(
            result.sir_db, result.detection_rate, result.ber_when_detected
        )
    ]
    print_table(
        ("SIR (dB)", "WiFi detection rate", "BER when detected"),
        rows,
        title="Extension: WiFi link under ZigBee interference (reverse CTI)",
    )
    print(
        "Strong in-band ZigBee corrupts the Schmidl-Cox plateau before it "
        "corrupts data — packet *detection* is the failure mode, which is "
        "the asymmetry that makes explicit coordination valuable."
    )
    return result


if __name__ == "__main__":
    main()
