"""Extension: convergecast scaling (beyond the paper's single links).

The paper motivates SymBee with convergecast IoT traffic but evaluates
one link at a time.  This experiment grows a sensor cluster sharing one
channel under CSMA-CA and reports delivery, latency and aggregate
goodput — the deployment-scale picture.
"""

from dataclasses import dataclass

import numpy as np

from repro.channel.scenarios import get_scenario
from repro.experiments.common import scaled
from repro.network import ConvergecastNetwork, NodeConfig


@dataclass(frozen=True)
class NetworkScalingResult:
    cluster_sizes: tuple
    delivery_ratio: tuple
    collision_rate: tuple
    mean_latency_ms: tuple
    goodput_bps: tuple
    channel_utilization: tuple


def run(seed=41, cluster_sizes=(2, 4, 8, 16), sim_duration_s=None,
        scenario_name="office", data_bits=16):
    sim_duration_s = (
        min(1.0 * scaled(2), 6.0) if sim_duration_s is None else sim_duration_s
    )
    scenario = get_scenario(scenario_name)
    delivery, collisions, latency, goodput, utilization = [], [], [], [], []
    for n_nodes in cluster_sizes:
        rng = np.random.default_rng(seed)
        nodes = [
            NodeConfig(
                node_id=i,
                distance_m=float(rng.uniform(4.0, 18.0)),
                reading_interval_s=0.2,
                data_bits=data_bits,
            )
            for i in range(n_nodes)
        ]
        network = ConvergecastNetwork(
            nodes, scenario, sim_duration_s=sim_duration_s, seed=seed
        )
        result = network.run()
        delivery.append(result.delivery_ratio)
        collisions.append(result.collision_rate)
        latency.append(result.mean_latency_s * 1000.0)
        goodput.append(result.goodput_bps(data_bits))
        utilization.append(result.channel_utilization)
    return NetworkScalingResult(
        cluster_sizes=tuple(cluster_sizes),
        delivery_ratio=tuple(delivery),
        collision_rate=tuple(collisions),
        mean_latency_ms=tuple(latency),
        goodput_bps=tuple(goodput),
        channel_utilization=tuple(utilization),
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (n, fmt(d, 2), fmt(c, 2), fmt(l, 1), fmt(g, 0), fmt(u, 3))
        for n, d, c, l, g, u in zip(
            result.cluster_sizes,
            result.delivery_ratio,
            result.collision_rate,
            result.mean_latency_ms,
            result.goodput_bps,
            result.channel_utilization,
        )
    ]
    print_table(
        ("nodes", "delivery", "collisions", "latency ms", "goodput bps",
         "airtime"),
        rows,
        title="Extension: convergecast cluster scaling",
    )
    return result


if __name__ == "__main__":
    main()
