"""Figure 19: impact of transmission power.

A sender 5 m from the receiver sweeps TX power from -15 to 0 dBm, in a
quiet office ("at midnight" — the office propagation profile without
WiFi traffic) and outdoors.  Paper shape targets: BER <= 10% down to
-10 dBm and <= 23% at -15 dBm; indoor SNR lower than outdoor at equal
power because of multipath, hence higher indoor BER.
"""

from dataclasses import dataclass
from dataclasses import replace as dc_replace

import numpy as np

from repro.channel.scenarios import get_scenario
from repro.core.link import SymBeeLink
from repro.experiments.common import measure_link, scaled

TX_POWERS_DBM = (-15, -10, -5, 0)


@dataclass(frozen=True)
class TxPowerResult:
    tx_powers_dbm: tuple
    ber: dict                  # environment -> tuple per power
    snr_db: dict


def run(seed=19, n_frames=None, bits_per_frame=64, distance_m=5.0,
        tx_powers_dbm=TX_POWERS_DBM, noise_figure_db=26.0):
    """TX-power sweep.

    ``noise_figure_db`` models the paper's USRP B210 front end at a
    moderate gain setting (SDR noise figures of 20-30 dB are typical
    there, unlike the ~6 dB of a commercial WiFi chip); this is what puts
    the -15 dBm operating point near the decoding threshold, reproducing
    the paper's BER break.  See EXPERIMENTS.md.
    """
    rng = np.random.default_rng(seed)
    n_frames = scaled(20) if n_frames is None else n_frames

    office_midnight = dc_replace(
        get_scenario("office"), name="office-midnight", interference_duty=0.0
    )
    environments = {
        "office (midnight)": office_midnight,
        "outdoor": get_scenario("outdoor"),
    }
    ber, snr = {}, {}
    for env_name, scenario in environments.items():
        ber_row, snr_row = [], []
        for power in tx_powers_dbm:
            link = SymBeeLink(
                tx_power_dbm=power,
                link_channel=scenario.link(distance_m),
                interference=scenario.interference(),
                noise_figure_db=noise_figure_db,
            )
            stats = measure_link(
                link, rng, n_frames=n_frames, bits_per_frame=bits_per_frame
            )
            ber_row.append(stats.ber)
            snr_row.append(stats.mean_snr_db)
        ber[env_name] = tuple(ber_row)
        snr[env_name] = tuple(snr_row)
    return TxPowerResult(tx_powers_dbm=tuple(tx_powers_dbm), ber=ber, snr_db=snr)


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    headers = ("environment",) + tuple(f"{p} dBm" for p in result.tx_powers_dbm)
    print_table(
        headers,
        [(env,) + tuple(fmt(v, 3) for v in row) for env, row in result.ber.items()],
        title="Fig 19(a): BER vs TX power (5 m)",
    )
    print_table(
        headers,
        [(env,) + tuple(fmt(v, 1) for v in row) for env, row in result.snr_db.items()],
        title="Fig 19(b): received SNR (dB) vs TX power (5 m)",
    )
    return result


if __name__ == "__main__":
    main()
