"""Figure 21: BER vs SINR with and without Hamming(7,4) coding.

Trace-driven in the paper: clean SymBee captures mixed with recorded
802.11g signal at controlled SINR.  Here the interference generator
plays continuous WiFi bursts (90% duty) at the target SINR over a
high-SNR SymBee link, so interference — not noise — dominates, then the
same transmissions are repeated with Hamming(7,4) link-layer coding.
Paper shape targets: about 19.5% uncoded BER at -10 dB SINR, and coding
roughly halving the BER across the sweep.
"""

from dataclasses import dataclass

import numpy as np

from repro.channel.interference import WifiInterferenceModel
from repro.core.coding import hamming74_decode, hamming74_encode
from repro.experiments.common import link_at_snr, scaled

SINR_GRID_DB = (-10, -6, -3, 0, 3, 6, 10)


@dataclass(frozen=True)
class HammingResult:
    sinr_db: tuple
    ber_uncoded: tuple
    ber_coded: tuple


def _interference_at_sinr(sinr_db):
    return WifiInterferenceModel(
        duty_cycle=0.9,
        mean_sir_db=sinr_db,
        sir_sigma_db=0.0,
        burst_duration_range_s=(250e-6, 300e-6),
    )


def run(seed=21, sinr_grid_db=SINR_GRID_DB, n_frames=None, data_bits=56, snr_db=25.0):
    """Sweep SINR; measure raw and Hamming-coded BER.

    ``data_bits`` must be a multiple of 4 (Hamming blocks); the coded
    transmission carries ``data_bits / 4 * 7`` SymBee bits.
    """
    if data_bits % 4 != 0:
        raise ValueError("data_bits must be a multiple of 4")
    rng = np.random.default_rng(seed)
    n_frames = scaled(12) if n_frames is None else n_frames

    uncoded, coded = [], []
    for sinr in sinr_grid_db:
        errs_u = sent_u = errs_c = sent_c = 0
        for _ in range(n_frames):
            link = link_at_snr(snr_db)
            link.interference = _interference_at_sinr(sinr)
            bits = rng.integers(0, 2, data_bits)

            result = link.send_bits(bits, rng, decode_synchronized=False)
            errs_u += result.bit_errors
            sent_u += result.n_bits

            codeword = hamming74_encode(bits)
            result_c = link.send_bits(codeword, rng, decode_synchronized=False)
            if len(result_c.decoded_bits) == len(codeword):
                decoded, _ = hamming74_decode(np.array(result_c.decoded_bits))
                errs_c += int(np.sum(decoded != bits))
            else:
                errs_c += data_bits
            sent_c += data_bits
        uncoded.append(errs_u / sent_u)
        coded.append(errs_c / sent_c)

    return HammingResult(
        sinr_db=tuple(sinr_grid_db),
        ber_uncoded=tuple(uncoded),
        ber_coded=tuple(coded),
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (sinr, fmt(u, 4), fmt(c, 4))
        for sinr, u, c in zip(result.sinr_db, result.ber_uncoded, result.ber_coded)
    ]
    print_table(
        ("SINR (dB)", "BER no coding", "BER Hamming(7,4)"),
        rows,
        title="Fig 21: BER under WiFi interference, with and without coding",
    )
    return result


if __name__ == "__main__":
    main()
