"""Figures 6/7/8: the (6,7)/(E,F) stable phases and their optimality.

Reproduces the paper's Section IV-A claims:

* (6,7) and (E,F) yield +-4pi/5 stable plateaus of 84 phase values
  (4.2 us) at a 20 Msps receiver;
* those are the *longest* stable plateaus over all 256 ordered symbol
  pairs, and the two levels are the extreme (maximally distinct) ones.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_STABLE_PHASE, WIFI_SAMPLE_RATE_20MHZ
from repro.core.phase import stable_run_lengths


@dataclass(frozen=True)
class StablePhaseResult:
    bit1_run: int              # (6,7), +4pi/5 plateau length
    bit0_run: int              # (E,F), -4pi/5 plateau length
    best_other_run: int        # best plateau among all other pairs
    best_other_pair: tuple
    ranking: tuple             # top pairs by plateau length
    separation_rad: float      # distance between the two bit levels


def run(sample_rate=WIFI_SAMPLE_RATE_20MHZ, top=8):
    """Exhaustive stable-plateau sweep over all ordered symbol pairs."""
    scores = []
    for a in range(16):
        for b in range(16):
            neg, pos = stable_run_lengths((a, b), sample_rate)
            scores.append((max(neg, pos), (a, b), neg, pos))
    scores.sort(key=lambda item: (-item[0], item[1]))

    by_pair = {pair: (neg, pos) for _, pair, neg, pos in scores}
    bit1_run = by_pair[(0x6, 0x7)][1]
    bit0_run = by_pair[(0xE, 0xF)][0]
    others = [s for s in scores if s[1] not in ((0x6, 0x7), (0xE, 0xF))]
    best_other = others[0]
    return StablePhaseResult(
        bit1_run=bit1_run,
        bit0_run=bit0_run,
        best_other_run=best_other[0],
        best_other_pair=best_other[1],
        ranking=tuple(scores[:top]),
        separation_rad=2.0 * SYMBEE_STABLE_PHASE,
    )


def main():
    from repro.experiments.common import print_table

    result = run()
    print("\n== Fig 6/7: stable phases of the SymBee symbol pairs ==")
    print(f"(6,7) -> bit 1: +4pi/5 plateau of {result.bit1_run} samples")
    print(f"(E,F) -> bit 0: -4pi/5 plateau of {result.bit0_run} samples")
    print(
        f"best other pair {tuple(f'{s:X}' for s in result.best_other_pair)}: "
        f"{result.best_other_run} samples"
    )
    print(
        f"bit separation: {result.separation_rad / np.pi:.2f} pi "
        "(maximum possible = 8pi/5, paper Section IV-A)"
    )
    rows = [
        (
            f"({pair[0]:X},{pair[1]:X})",
            best,
            neg,
            pos,
        )
        for best, pair, neg, pos in result.ranking
    ]
    print_table(
        ("pair", "longest plateau", "-4pi/5 run", "+4pi/5 run"),
        rows,
        title="top symbol pairs by stable-plateau length",
    )
    return result


if __name__ == "__main__":
    main()
