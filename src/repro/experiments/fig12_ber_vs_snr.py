"""Figure 12: numerical bit error rate under different SNR.

The paper computes BER analytically (its Eq. 2) from an empirically
obtained per-value error probability Pr_eps.  Here both halves run:
Pr_eps comes from Monte Carlo over the identical phase computation, Eq. 2
turns it into BER, and a full-PHY simulated BER (ground-truth-timed
synchronized decoding, isolating the decoder from preamble capture, over
an AWGN link) cross-checks the analytic curve.

SNR convention: per-sample over the receiver's full 20 MHz sampling
bandwidth.  EXPERIMENTS.md discusses how this maps onto the paper's axis.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.analytics import ber_from_phase_error, phase_error_probability
from repro.experiments.common import link_at_snr, scaled


@dataclass(frozen=True)
class BerVsSnrResult:
    snr_db: tuple
    pr_eps: tuple
    ber_analytic: tuple
    ber_simulated: tuple


DEFAULT_SNR_GRID = (-10, -8, -6, -5, -4, -2, 0, 2, 4, 6)


def run(snr_grid_db=DEFAULT_SNR_GRID, seed=12, n_frames=None, bits_per_frame=64):
    """Sweep SNR; return Pr_eps, Eq.-2 BER, and simulated BER."""
    rng = np.random.default_rng(seed)
    n_frames = scaled(10) if n_frames is None else n_frames

    pr_eps, analytic, simulated = [], [], []
    for snr in snr_grid_db:
        p = phase_error_probability(snr, rng, n_samples=scaled(100_000))
        pr_eps.append(p)
        analytic.append(ber_from_phase_error(p))

        link = link_at_snr(snr)
        errors = sent = 0
        for _ in range(n_frames):
            bits = rng.integers(0, 2, bits_per_frame)
            result = link.send_bits(bits, rng, decode_synchronized=False)
            errors += result.bit_errors
            sent += result.n_bits
        simulated.append(errors / sent if sent else 0.0)

    return BerVsSnrResult(
        snr_db=tuple(snr_grid_db),
        pr_eps=tuple(pr_eps),
        ber_analytic=tuple(analytic),
        ber_simulated=tuple(simulated),
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (snr, fmt(p, 4), fmt(a, 4), fmt(s, 4))
        for snr, p, a, s in zip(
            result.snr_db, result.pr_eps, result.ber_analytic, result.ber_simulated
        )
    ]
    print_table(
        ("SNR (dB)", "Pr_eps", "BER Eq.2", "BER simulated"),
        rows,
        title="Fig 12: bit error rate vs SNR",
    )
    from repro.experiments.plotting import ascii_series

    print(ascii_series(
        result.snr_db,
        {"Eq.2": result.ber_analytic, "simulated": result.ber_simulated},
        x_label="SNR (dB)", y_label="BER, log scale", y_log=True,
    ))
    return result


if __name__ == "__main__":
    main()
