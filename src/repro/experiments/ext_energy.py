"""Extension: sender energy per delivered bit.

The paper claims SymBee is "energy-economic" mainly on the receiver side
(recycled idle listening).  On the sender side the argument is implicit:
moving 145x more bits per unit airtime must collapse the energy cost per
bit.  This experiment quantifies it with the TelosB/CC2420 radio model
for SymBee and every Figure-16 baseline.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.energy import energy_comparison


@dataclass(frozen=True)
class EnergyResult:
    rows: tuple                # (scheme, uJ/bit, on-air ms, idle ms)
    symbee_uj_per_bit: float
    best_baseline_uj_per_bit: float

    @property
    def advantage(self):
        return self.best_baseline_uj_per_bit / self.symbee_uj_per_bit


def run(seed=44, bits=256, tx_power_dbm=0.0):
    rng = np.random.default_rng(seed)
    budgets = energy_comparison(bits, rng, tx_power_dbm)
    rows = tuple(
        (
            budget.scheme,
            budget.energy_per_bit_j * 1e6,
            budget.on_air_s * 1e3,
            budget.idle_s * 1e3,
        )
        for budget in budgets
    )
    symbee = next(b for b in budgets if b.scheme == "SymBee")
    baselines = [b for b in budgets if b.scheme != "SymBee"]
    best = min(b.energy_per_bit_j for b in baselines)
    return EnergyResult(
        rows=rows,
        symbee_uj_per_bit=symbee.energy_per_bit_j * 1e6,
        best_baseline_uj_per_bit=best * 1e6,
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    print_table(
        ("scheme", "uJ per bit", "on-air ms", "forced idle ms"),
        [
            (name, fmt(uj, 2), fmt(air, 2), fmt(idle, 1))
            for name, uj, air, idle in result.rows
        ],
        title="Extension: sender energy per delivered bit (CC2420 model, 256 bits)",
    )
    print(
        f"SymBee: {result.symbee_uj_per_bit:.2f} uJ/bit — "
        f"{result.advantage:.0f}x cheaper than the best packet-level scheme."
    )
    return result


if __name__ == "__main__":
    main()
