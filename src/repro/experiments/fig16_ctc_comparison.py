"""Figure 16: SymBee versus packet-level ZigBee->WiFi CTC schemes.

The paper compares against FreeBee, A-FreeBee, EMF, DCTC and C-Morse in
the office setting (C-Morse's published number: 215 bps at 1.5 m) and
reports SymBee at 145.4x C-Morse.  Baseline rates here are *measured*
from their event-level simulators; SymBee's rate is measured over the
full-PHY link at 1.5 m in the office scenario.
"""

from dataclasses import dataclass

import numpy as np

from repro.baselines import all_baselines
from repro.channel.scenarios import get_scenario
from repro.core.link import SymBeeLink
from repro.experiments.common import measure_link, scaled


@dataclass(frozen=True)
class CtcComparisonResult:
    rows: tuple               # (scheme, throughput_bps)
    symbee_bps: float
    speedup_vs_cmorse: float


def run(seed=16, n_bits_baseline=None, n_frames=None, distance_m=1.5):
    rng = np.random.default_rng(seed)
    n_bits_baseline = scaled(512) if n_bits_baseline is None else n_bits_baseline
    n_frames = scaled(10) if n_frames is None else n_frames

    rows = []
    cmorse_bps = None
    for scheme in all_baselines():
        rate = scheme.measured_rate_bps(rng, n_bits=n_bits_baseline)
        rows.append((scheme.name, rate))
        if scheme.name == "C-Morse":
            cmorse_bps = rate

    scenario = get_scenario("office")
    link = SymBeeLink(
        link_channel=scenario.link(distance_m),
        interference=scenario.interference(),
    )
    stats = measure_link(link, rng, n_frames=n_frames, bits_per_frame=64)
    symbee_bps = stats.throughput_bps
    rows.append(("SymBee", symbee_bps))

    return CtcComparisonResult(
        rows=tuple(rows),
        symbee_bps=symbee_bps,
        speedup_vs_cmorse=symbee_bps / cmorse_bps if cmorse_bps else float("nan"),
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [(name, fmt(rate, 1)) for name, rate in result.rows]
    print_table(
        ("scheme", "throughput (bps)"),
        rows,
        title="Fig 16: comparison with packet-level CTC approaches (office)",
    )
    from repro.experiments.plotting import ascii_bars

    print(ascii_bars(
        [name for name, _ in result.rows],
        [rate for _, rate in result.rows],
        log=True,
    ))
    print(f"SymBee speedup over C-Morse: {result.speedup_vs_cmorse:.1f}x "
          "(paper: 145.4x)")
    return result


if __name__ == "__main__":
    main()
