"""Figure 18: none-line-of-sight office deployment.

Four senders S1-S4 at the positions of the paper's office floor plan;
walls add fixed penetration loss.  Paper shape targets: throughputs
29.5 / 28.2 / 27.9 / 27.3 kbps for S1-S4 — ordered S1 > S2 > S3 > S4,
with S2 beating S3 despite being farther because S3 sits behind more
walls.
"""

from dataclasses import dataclass

import numpy as np

from repro.channel.scenarios import nlos_office_positions, nlos_office_scenario
from repro.core.link import SymBeeLink
from repro.experiments.common import measure_link, scaled


@dataclass(frozen=True)
class NlosResult:
    rows: tuple               # (position, distance_m, walls, throughput_kbps, ber)
    ordering_ok: bool         # S1 > S2 > S3 > S4
    wall_effect_ok: bool      # S2 > S3 although S2 is farther


def run(seed=18, n_frames=None, bits_per_frame=64):
    rng = np.random.default_rng(seed)
    n_frames = scaled(25) if n_frames is None else n_frames

    rows = []
    throughput = {}
    for position, (distance, walls) in nlos_office_positions().items():
        scenario = nlos_office_scenario(walls)
        link = SymBeeLink(
            link_channel=scenario.link(distance),
            interference=scenario.interference(),
        )
        stats = measure_link(link, rng, n_frames=n_frames, bits_per_frame=bits_per_frame)
        throughput[position] = stats.throughput_bps / 1000.0
        rows.append(
            (position, distance, walls, throughput[position], stats.ber)
        )

    ordering_ok = (
        throughput["S1"] >= throughput["S2"] >= throughput["S3"] >= throughput["S4"]
    )
    wall_effect_ok = throughput["S2"] >= throughput["S3"]
    return NlosResult(rows=tuple(rows), ordering_ok=ordering_ok,
                      wall_effect_ok=wall_effect_ok)


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (pos, f"{d:.0f}", walls, fmt(tput, 2), fmt(ber, 3))
        for pos, d, walls, tput, ber in result.rows
    ]
    print_table(
        ("position", "distance (m)", "walls", "throughput (kbps)", "BER"),
        rows,
        title="Fig 18: NLOS office deployment",
    )
    print(f"S1 > S2 > S3 > S4 ordering holds: {result.ordering_ok}")
    print(f"S2 beats closer-but-walled S3: {result.wall_effect_ok}")
    return result


if __name__ == "__main__":
    main()
