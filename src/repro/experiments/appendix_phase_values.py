"""Appendices A and B: discrete phase levels and CFO compensation.

Appendix A derives that cross-observed phase differences of ZigBee
signal take 17 discrete values, +-i*pi/10 for i = 0..8 (in sinusoidal
regions).  Appendix B shows that for *every* overlapping WiFi/ZigBee
channel pair the centre-frequency offset is (3 + 5m) MHz and its effect
on dp is the same constant, compensated by adding +4pi/5.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_STABLE_PHASE
from repro.core.phase import cfo_compensation_phase, discrete_phase_levels
from repro.wifi.channels import WIFI_CHANNELS
from repro.zigbee.channels import ZIGBEE_CHANNELS, overlapping_wifi_channels


@dataclass(frozen=True)
class AppendixResult:
    observed_levels: tuple
    derived_levels: tuple
    derived_levels_present: bool   # all 17 paper levels observed
    extremes_are_stable_phase: bool  # min/max exactly -+4pi/5
    on_pi_over_20_grid: bool       # every observed level is k*pi/20
    cfo_rows: tuple            # (zigbee ch, wifi ch, offset MHz, correction/pi)
    correction_constant: bool  # all corrections equal +4pi/5


def run(sample_rate=20e6):
    """Appendix A/B measurements.

    Measurement nuance recorded in EXPERIMENTS.md: the paper's two-case
    derivation yields 17 levels on the pi/10 grid; direct measurement
    additionally finds intermediate pi/20 levels from sample spans that
    cross two branch-pulse boundaries.  All 17 derived levels appear, and
    the extremes are exactly -+4pi/5 — the property the bit design uses.
    """
    observed = discrete_phase_levels(sample_rate=sample_rate)
    derived = tuple(np.round(np.pi / 10.0 * i, 6) for i in range(-8, 9))
    observed_rounded = tuple(np.round(observed, 6))
    derived_present = set(derived) <= set(observed_rounded)
    extremes_ok = (
        abs(min(observed) + SYMBEE_STABLE_PHASE) < 1e-6
        and abs(max(observed) - SYMBEE_STABLE_PHASE) < 1e-6
    )
    grid_ok = all(
        abs(v / (np.pi / 20.0) - round(v / (np.pi / 20.0))) < 1e-4 for v in observed
    )

    lag = int(round(sample_rate * 0.8e-6))
    rows = []
    corrections = []
    for z_ch in sorted(ZIGBEE_CHANNELS):
        for w_ch in overlapping_wifi_channels(z_ch):
            offset = ZIGBEE_CHANNELS[z_ch] - WIFI_CHANNELS[w_ch]
            correction = cfo_compensation_phase(offset, lag, sample_rate)
            corrections.append(correction)
            rows.append((z_ch, w_ch, offset / 1e6, correction / np.pi))
    constant = all(
        abs(c - SYMBEE_STABLE_PHASE) < 1e-9 for c in corrections
    )
    return AppendixResult(
        observed_levels=observed_rounded,
        derived_levels=derived,
        derived_levels_present=derived_present,
        extremes_are_stable_phase=extremes_ok,
        on_pi_over_20_grid=grid_ok,
        cfo_rows=tuple(rows),
        correction_constant=constant,
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    print("\n== Appendix A: discrete cross-observed phase levels ==")
    print(f"observed levels ({len(result.observed_levels)}):",
          [f"{v / np.pi:+.2f}pi" for v in result.observed_levels])
    print(f"all 17 derived +-i*pi/10 levels observed: {result.derived_levels_present}")
    print(f"extremes are exactly -+4pi/5: {result.extremes_are_stable_phase}")
    print(f"every level on the pi/20 grid: {result.on_pi_over_20_grid}")

    rows = [
        (z, w, fmt(off, 1), f"{corr:+.2f} pi")
        for z, w, off, corr in result.cfo_rows[:12]
    ]
    print_table(
        ("ZigBee ch", "WiFi ch", "offset (MHz)", "correction"),
        rows,
        title="Appendix B: CFO compensation per channel pair (first 12)",
    )
    print(f"correction constant (+4pi/5) across all pairs: {result.correction_constant}")
    return result


if __name__ == "__main__":
    main()
