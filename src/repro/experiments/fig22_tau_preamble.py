"""Figure 22: impact of tau and of the SymBee preamble.

(a) sweeps the unsynchronized detector's error tolerance tau at a fixed
noisy operating point and measures false-positive and false-negative
rates — higher tau misses fewer bits but fires more often on noise,
with the paper picking tau = 10 as the balance point.

(b) compares BER with the preamble (folding capture + synchronized
majority voting) against BER without it (pure sliding-window detection)
across SNR; the paper reports 27.4% -> 7.6% at its -5 dB point.

SNR values use this repo's per-sample wideband convention; the qualitative
shapes (tau trade-off, large preamble gain) are the reproduction targets.
"""

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import link_at_snr, scaled


def _match_detections(detections, true_positions, bit_values, tolerance):
    """Match unsync detections against ground truth.

    Returns ``(misses, wrong_values, false_positives)``: true positions
    with no detection nearby, matched detections with the wrong bit, and
    detections matching no true position.
    """
    used = set()
    misses = wrong = 0
    for position, value in zip(true_positions, bit_values):
        best = None
        for i, det in enumerate(detections):
            if i in used or abs(det.index - position) > tolerance:
                continue
            if best is None or abs(det.index - position) < abs(
                detections[best].index - position
            ):
                best = i
        if best is None:
            misses += 1
        else:
            used.add(best)
            if detections[best].bit != value:
                wrong += 1
    false_positives = len(detections) - len(used)
    return misses, wrong, false_positives


@dataclass(frozen=True)
class TauSweepResult:
    taus: tuple
    false_negative_rate: tuple
    false_positive_rate: tuple
    snr_db: float


@dataclass(frozen=True)
class PreambleComparisonResult:
    snr_db: tuple
    ber_with_preamble: tuple
    ber_without_preamble: tuple


def run_tau_sweep(seed=22, taus=tuple(range(0, 21, 2)), snr_db=6.0,
                  n_frames=None, bits_per_frame=48):
    """Figure 22(a): F/N and F/P of unsynchronized detection vs tau."""
    rng = np.random.default_rng(seed)
    n_frames = scaled(8) if n_frames is None else n_frames
    link = link_at_snr(snr_db)
    tolerance = link.decoder.bit_period // 2

    # Collect phase streams once; re-detect per tau.
    captures = []
    for _ in range(n_frames):
        bits = list(rng.integers(0, 2, bits_per_frame))
        result = link.send_bits(bits, rng, keep_phases=True)
        positions = link.true_bit_positions(len(bits))
        captures.append((result.phases, positions, bits))

    fn_rates, fp_rates = [], []
    for tau in taus:
        misses = wrong = fps = total = 0
        for phases, positions, bits in captures:
            detections = link.decoder.detect_bits(phases, tau=tau)
            m, w, f = _match_detections(detections, positions, bits, tolerance)
            misses += m
            wrong += w
            fps += f
            total += len(bits)
        fn_rates.append((misses + wrong) / total)
        fp_rates.append(fps / total)
    return TauSweepResult(
        taus=tuple(taus),
        false_negative_rate=tuple(fn_rates),
        false_positive_rate=tuple(fp_rates),
        snr_db=snr_db,
    )


def run_preamble_comparison(seed=221, snr_grid_db=(0.0, 2.0, 4.0, 6.0, 8.0),
                            n_frames=None, bits_per_frame=48):
    """Figure 22(b): BER with vs without the SymBee preamble."""
    rng = np.random.default_rng(seed)
    n_frames = scaled(8) if n_frames is None else n_frames

    with_pre, without_pre = [], []
    for snr in snr_grid_db:
        link = link_at_snr(snr)
        tolerance = link.decoder.bit_period // 2
        errs_sync = errs_unsync = total = 0
        for _ in range(n_frames):
            bits = list(rng.integers(0, 2, bits_per_frame))
            result = link.send_bits(bits, rng, keep_phases=True)
            errs_sync += result.n_bits - result.delivered_bits

            detections = link.decoder.detect_bits(result.phases)
            positions = link.true_bit_positions(len(bits))
            m, w, _ = _match_detections(detections, positions, bits, tolerance)
            errs_unsync += m + w
            total += len(bits)
        with_pre.append(errs_sync / total)
        without_pre.append(errs_unsync / total)
    return PreambleComparisonResult(
        snr_db=tuple(snr_grid_db),
        ber_with_preamble=tuple(with_pre),
        ber_without_preamble=tuple(without_pre),
    )


def run(seed=22, **kwargs):
    """Both halves of Figure 22."""
    return run_tau_sweep(seed=seed, **kwargs), run_preamble_comparison(seed=seed + 199)


def main():
    from repro.experiments.common import fmt, print_table

    tau_result, preamble_result = run()
    print_table(
        ("tau", "F/N rate", "F/P rate"),
        [
            (tau, fmt(fn, 3), fmt(fp, 3))
            for tau, fn, fp in zip(
                tau_result.taus,
                tau_result.false_negative_rate,
                tau_result.false_positive_rate,
            )
        ],
        title=f"Fig 22(a): detection errors vs tau (SNR {tau_result.snr_db:+.0f} dB)",
    )
    print_table(
        ("SNR (dB)", "BER with preamble", "BER without preamble"),
        [
            (snr, fmt(w, 3), fmt(wo, 3))
            for snr, w, wo in zip(
                preamble_result.snr_db,
                preamble_result.ber_with_preamble,
                preamble_result.ber_without_preamble,
            )
        ],
        title="Fig 22(b): BER with vs without the SymBee preamble",
    )
    return tau_result, preamble_result


if __name__ == "__main__":
    main()
