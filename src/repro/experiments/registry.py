"""Registry mapping experiment ids to their run/main functions."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper result."""

    id: str
    title: str
    module: str

    def run(self, **kwargs):
        import importlib

        return importlib.import_module(self.module).run(**kwargs)

    def main(self):
        import importlib

        return importlib.import_module(self.module).main()


_ENTRIES = (
    ("table1", "Table I: symbol-to-chip mapping",
     "repro.experiments.table1_symbol_chips"),
    ("fig05", "Fig 3/5: cross-observation of a ZigBee symbol",
     "repro.experiments.fig05_cross_observation"),
    ("fig07", "Fig 6/7/8: stable phases and pair optimality",
     "repro.experiments.fig07_stable_phase"),
    ("fig12", "Fig 12: BER vs SNR (analytic + simulated)",
     "repro.experiments.fig12_ber_vs_snr"),
    ("fig13", "Fig 13: throughput across six scenarios",
     "repro.experiments.fig13_throughput_scenarios"),
    ("fig14", "Fig 14: BER across six scenarios",
     "repro.experiments.fig14_ber_scenarios"),
    ("fig16", "Fig 16: comparison with packet-level CTC",
     "repro.experiments.fig16_ctc_comparison"),
    ("fig17", "Fig 17: vote-count constellation",
     "repro.experiments.fig17_constellation"),
    ("fig18", "Fig 18: NLOS office deployment",
     "repro.experiments.fig18_nlos"),
    ("fig19", "Fig 19: impact of transmission power",
     "repro.experiments.fig19_tx_power"),
    ("fig20", "Fig 20: WiFi-interfered signal example",
     "repro.experiments.fig20_interference_example"),
    ("fig21", "Fig 21: Hamming(7,4) coding under interference",
     "repro.experiments.fig21_hamming"),
    ("fig22", "Fig 22: impact of tau and preamble",
     "repro.experiments.fig22_tau_preamble"),
    ("fig23", "Fig 23: mobility",
     "repro.experiments.fig23_mobility"),
    ("appendix", "Appendices A/B: phase levels and CFO compensation",
     "repro.experiments.appendix_phase_values"),
    ("ext-network", "Extension: convergecast cluster scaling",
     "repro.experiments.ext_network_scaling"),
    ("ext-cfo", "Extension: residual carrier-offset tolerance",
     "repro.experiments.ext_residual_cfo"),
    ("ext-reverse-cti", "Extension: WiFi under ZigBee interference",
     "repro.experiments.ext_reverse_cti"),
    ("ext-energy", "Extension: sender energy per delivered bit",
     "repro.experiments.ext_energy"),
)

EXPERIMENTS = {
    entry[0]: Experiment(id=entry[0], title=entry[1], module=entry[2])
    for entry in _ENTRIES
}


def get_experiment(experiment_id):
    """Look up an experiment; raises ``KeyError`` listing valid ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: {valid}"
        ) from None
