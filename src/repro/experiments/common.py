"""Shared experiment infrastructure: Monte-Carlo runners and printers.

Monte-Carlo sizes scale with the ``REPRO_SCALE`` environment variable
(default 1.0): benches run quickly at the default, and ``REPRO_SCALE=10``
reproduces with tight confidence intervals.  Trials run through
``repro.runtime`` — ``REPRO_JOBS`` (or the ``jobs=`` argument) selects
process-parallel execution, and every trial draws from its own
``SeedSequence`` child so results are bit-identical at any job count.
"""

import logging
import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.analytics import raw_bit_rate_bps
from repro.core.link import SymBeeLink
from repro.dsp.signal_ops import watts_to_dbm
from repro.obs.trace import TRACER
from repro.runtime import as_seed_sequence, run_trials
from repro.runtime.timing import StageTimings

#: Diagnostics go through the ``repro.*`` logger namespace (wire it up
#: with ``repro.obs.configure_logging`` or the CLI's ``-v``/``-q``);
#: experiment *table output* stays on stdout via :func:`print_table`.
log = logging.getLogger("repro.experiments")


def mc_scale():
    """Monte-Carlo scale factor from the environment (min 0.1)."""
    try:
        scale = float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        scale = 1.0
    return max(scale, 0.1)


def scaled(n):
    """Scale a nominal repetition count, keeping at least 2."""
    return max(2, int(round(n * mc_scale())))


@dataclass
class LinkStats:
    """Aggregated outcome of a batch of SymBee frames over one link."""

    frames: int = 0
    captures: int = 0
    bits_sent: int = 0
    bits_delivered: int = 0
    bit_errors: int = 0
    snr_samples: list = field(default_factory=list)
    #: Per-stage wall-clock breakdown of the trials behind these stats
    #: (merged across worker processes); excluded from equality so
    #: parallel and serial runs of the same seed compare equal.
    timings: StageTimings = field(default_factory=StageTimings, compare=False)

    def add(self, result):
        self.frames += 1
        self.captures += int(result.preamble_captured)
        self.bits_sent += result.n_bits
        self.bits_delivered += result.delivered_bits
        self.bit_errors += result.n_bits - result.delivered_bits
        self.snr_samples.append(result.snr_db)

    @property
    def capture_rate(self):
        return self.captures / self.frames if self.frames else 0.0

    @property
    def ber(self):
        """Errors per sent bit, counting lost frames as all-errored."""
        return self.bit_errors / self.bits_sent if self.bits_sent else 0.0

    @property
    def throughput_bps(self):
        """Raw symbol-level rate discounted by the delivered-bit fraction.

        This matches the paper's accounting: the 31.25 kbps figure is the
        in-payload rate, degraded by losses, not amortized over ZigBee
        header airtime.
        """
        if self.bits_sent == 0:
            return 0.0
        return raw_bit_rate_bps() * self.bits_delivered / self.bits_sent

    @property
    def mean_snr_db(self):
        return float(np.mean(self.snr_samples)) if self.snr_samples else float("nan")


def _link_trial(task):
    """One Monte-Carlo trial (module-level so it pickles to workers)."""
    link, seed, bits_per_frame, mac_sequence, send_kwargs = task
    rng = np.random.default_rng(seed)
    link.timings.reset()
    bits = rng.integers(0, 2, bits_per_frame)
    result = link.send_bits(bits, rng, mac_sequence=mac_sequence, **send_kwargs)
    return result, link.timings.as_dict()


def measure_link(link, rng, n_frames=20, bits_per_frame=64, jobs=None,
                 **send_kwargs):
    """Run ``n_frames`` random frames over a link and aggregate.

    Each trial gets its own child of ``rng``'s seed sequence and an
    explicit MAC sequence number (the trial index), so trial ``k`` is a
    pure function of the experiment seed — the same ``LinkStats`` comes
    back whether trials run serially or across ``jobs`` processes.
    """
    seeds = as_seed_sequence(rng).spawn(n_frames)
    tasks = [
        (link, seeds[k], bits_per_frame, k & 0xFF, send_kwargs)
        for k in range(n_frames)
    ]
    stats = LinkStats()
    with TRACER.span("measure_link", frames=n_frames, bits=bits_per_frame):
        for result, shard in run_trials(_link_trial, tasks, jobs=jobs):
            stats.add(result)
            stats.timings.merge(shard)
    log.debug(
        "measure_link: %d frames, capture %.2f, BER %.4f (%s)",
        stats.frames, stats.capture_rate, stats.ber, stats.timings.summary(),
    )
    return stats


def link_at_snr(snr_db, **link_kwargs):
    """A SymBee link whose per-sample wideband SNR is ``snr_db``.

    No path loss is applied; the transmit power is set so the received
    signal sits ``snr_db`` above the front end's noise floor over the
    full sampling bandwidth.  This is the repo's SNR convention (see
    EXPERIMENTS.md on how it maps to the paper's axis).
    """
    probe = SymBeeLink(**link_kwargs)
    noise_floor_dbm = watts_to_dbm(probe.front_end.noise_power_watts)
    return SymBeeLink(tx_power_dbm=noise_floor_dbm + snr_db, **link_kwargs)


#: Distances (metres) used across the paper's Figures 13/14.
DISTANCES_M = (5, 10, 15, 20, 25)

#: Scenario order as plotted in the paper.
SCENARIO_ORDER = ("outdoor", "classroom", "office", "dormitory", "library", "mall")


def scenario_sweep(rng, scenarios=SCENARIO_ORDER, distances=DISTANCES_M,
                   n_frames=20, bits_per_frame=64, jobs=None):
    """The Figure 13/14 sweep: per-scenario, per-distance link stats.

    Returns ``{scenario: {distance: LinkStats}}``.  Every (scenario,
    distance) cell derives its seed from ``rng`` in a fixed order, so the
    sweep is deterministic for any ``jobs`` setting.
    """
    from repro.channel.scenarios import get_scenario

    cells = [(name, distance) for name in scenarios for distance in distances]
    seeds = as_seed_sequence(rng).spawn(len(cells))
    results = {name: {} for name in scenarios}
    for (name, distance), seed in zip(cells, seeds):
        scenario = get_scenario(name)
        link = SymBeeLink(
            link_channel=scenario.link(distance),
            interference=scenario.interference(),
        )
        with TRACER.span("scenario_sweep.cell", scenario=name, distance_m=distance):
            cell = measure_link(
                link, seed, n_frames=n_frames, bits_per_frame=bits_per_frame,
                jobs=jobs,
            )
        results[name][distance] = cell
        log.info(
            "sweep %s @ %dm: %.2f kbps, BER %.4f",
            name, distance, cell.throughput_bps / 1000, cell.ber,
        )
    return results


def print_table(headers, rows, title=None):
    """Fixed-width ASCII table matching the repo's bench output style."""
    if title:
        print(f"\n== {title} ==")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value, digits=3):
    """Compact float formatting for table cells."""
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)
