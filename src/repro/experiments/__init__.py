"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning a structured result and a
``main()`` that prints the same rows/series the paper reports.  The
benchmarks package wraps these for ``pytest-benchmark``; the registry
maps experiment ids to run functions.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "get_experiment"]
