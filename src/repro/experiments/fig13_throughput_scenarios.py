"""Figure 13: SymBee throughput in the six evaluation scenarios.

Full-PHY Monte Carlo over the scenario presets at 5-25 m.  Paper shape
targets: outdoor best (31.25 kbps within 15 m, about 30 kbps at 25 m),
classroom second, then office above dormitory, library and mall worst
(>= 24.4 / 21 kbps within 25 m respectively).
"""

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    DISTANCES_M,
    SCENARIO_ORDER,
    scaled,
    scenario_sweep,
)


@dataclass(frozen=True)
class ScenarioSweepResult:
    scenarios: tuple
    distances: tuple
    throughput_kbps: dict      # scenario -> tuple aligned with distances
    ber: dict
    capture_rate: dict
    mean_snr_db: dict


def run(seed=13, n_frames=None, bits_per_frame=64, distances=DISTANCES_M,
        scenarios=SCENARIO_ORDER):
    """Run the sweep; shared by Figures 13 (throughput) and 14 (BER)."""
    rng = np.random.default_rng(seed)
    n_frames = scaled(20) if n_frames is None else n_frames
    raw = scenario_sweep(
        rng,
        scenarios=scenarios,
        distances=distances,
        n_frames=n_frames,
        bits_per_frame=bits_per_frame,
    )
    throughput, ber, capture, snr = {}, {}, {}, {}
    for name in scenarios:
        stats = [raw[name][d] for d in distances]
        throughput[name] = tuple(s.throughput_bps / 1000.0 for s in stats)
        ber[name] = tuple(s.ber for s in stats)
        capture[name] = tuple(s.capture_rate for s in stats)
        snr[name] = tuple(s.mean_snr_db for s in stats)
    return ScenarioSweepResult(
        scenarios=tuple(scenarios),
        distances=tuple(distances),
        throughput_kbps=throughput,
        ber=ber,
        capture_rate=capture,
        mean_snr_db=snr,
    )


def main(result=None):
    from repro.experiments.common import fmt, print_table

    result = run() if result is None else result
    headers = ("scenario",) + tuple(f"{d} m" for d in result.distances)
    rows = [
        (name,) + tuple(fmt(v, 2) for v in result.throughput_kbps[name])
        for name in result.scenarios
    ]
    print_table(headers, rows, title="Fig 13: throughput (kbps) by scenario and distance")
    return result


if __name__ == "__main__":
    main()
