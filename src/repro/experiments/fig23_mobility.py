"""Figure 23: mobile senders on a track and field.

ZigBee senders pass the WiFi receiver while walking (3.4 mph), running
(5.3 mph) and riding a bicycle (9.3 mph).  Paper measurements: BER of
7.15%, 8.48% and 8.9% respectively — all above the static outdoor BER,
growing with speed.  The channel model adds Doppler fading and the
body/bag shadowing the paper blames for the degradation.
"""

from dataclasses import dataclass

import numpy as np

from repro.channel.scenarios import MOBILITY_SPEEDS_MPH, mobility_scenario
from repro.core.link import SymBeeLink
from repro.experiments.common import measure_link, scaled


@dataclass(frozen=True)
class MobilityResult:
    rows: tuple               # (mode, speed_mph, ber, capture_rate)
    monotone_in_speed: bool


def run(seed=23, n_frames=None, bits_per_frame=64, distance_m=15.0):
    rng = np.random.default_rng(seed)
    n_frames = scaled(40) if n_frames is None else n_frames

    rows = []
    bers = []
    for mode, speed_mph in MOBILITY_SPEEDS_MPH.items():
        scenario = mobility_scenario(speed_mph)
        link = SymBeeLink(link_channel=scenario.link(distance_m))
        stats = measure_link(link, rng, n_frames=n_frames, bits_per_frame=bits_per_frame)
        rows.append((mode, speed_mph, stats.ber, stats.capture_rate))
        bers.append(stats.ber)
    monotone = all(b2 >= b1 - 0.02 for b1, b2 in zip(bers, bers[1:]))
    return MobilityResult(rows=tuple(rows), monotone_in_speed=monotone)


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = [
        (mode, speed, fmt(ber, 3), fmt(cap, 2))
        for mode, speed, ber, cap in result.rows
    ]
    print_table(
        ("mode", "speed (mph)", "BER", "capture rate"),
        rows,
        title="Fig 23: mobility impact (track & field)",
    )
    print(f"BER non-decreasing with speed (2% slack): {result.monotone_in_speed}")
    return result


if __name__ == "__main__":
    main()
