"""Figure 20: a WiFi-interfered SymBee signal still decodes.

The paper shows an all-ones SymBee segment hit by a 270 us 802.11g burst
at 0 dB SINR: the stable windows under the burst drop from 84 clean
votes to about 60, still above the 42-vote majority threshold, so every
bit decodes correctly.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.link import SymBeeLink
from repro.dsp.signal_ops import db_to_linear, scale_to_power
from repro.experiments.common import link_at_snr
from repro.wifi.ofdm import OfdmTransmitter


class SingleBurst:
    """Interference 'model' placing one WiFi burst at a fixed offset."""

    def __init__(self, start_index, duration_s, sinr_db):
        self.start_index = int(start_index)
        self.duration_s = float(duration_s)
        self.sinr_db = float(sinr_db)

    def contributions(self, n_samples, symbee_power_watts, rng, center_frequency):
        burst = OfdmTransmitter().burst(self.duration_s, rng)
        power = symbee_power_watts / db_to_linear(self.sinr_db)
        burst = scale_to_power(burst, power)
        return [(burst, self.start_index, center_frequency)]


@dataclass(frozen=True)
class InterferenceExampleResult:
    counts: tuple              # per-bit nonnegative votes
    clean_votes: int
    min_votes_under_burst: int
    threshold: int
    all_bits_correct: bool
    burst_duration_us: float
    sinr_db: float


def run(seed=20, n_bits=20, burst_duration_s=270e-6, sinr_db=0.0, snr_db=20.0):
    """All-ones message with one mid-message burst at the given SINR."""
    rng = np.random.default_rng(seed)
    probe = link_at_snr(snr_db)
    # Land the burst in the middle of the message region.
    mid_bit = n_bits // 2
    burst_start = probe.true_bit_positions(n_bits)[mid_bit] - 100

    link = link_at_snr(snr_db)
    link.interference = SingleBurst(burst_start, burst_duration_s, sinr_db)
    bits = [1] * n_bits
    result = link.send_bits(bits, rng)

    counts = result.counts
    window = link.decoder.window
    burst_bits = range(
        mid_bit, min(n_bits, mid_bit + int(np.ceil(burst_duration_s * 31250)) + 1)
    )
    min_under_burst = min((counts[k] for k in burst_bits), default=0)
    return InterferenceExampleResult(
        counts=counts,
        clean_votes=window,
        min_votes_under_burst=int(min_under_burst),
        threshold=link.decoder.tau_sync,
        all_bits_correct=result.bit_errors == 0 and result.preamble_captured,
        burst_duration_us=burst_duration_s * 1e6,
        sinr_db=sinr_db,
    )


def main():
    from repro.experiments.common import print_table

    result = run()
    print(
        f"\n== Fig 20: {result.burst_duration_us:.0f} us WiFi burst at "
        f"{result.sinr_db:.0f} dB SINR over all-ones SymBee ==")
    rows = [(k, c) for k, c in enumerate(result.counts)]
    print_table(("bit index", "nonnegative votes (of 84)"), rows)
    print(
        f"min votes under the burst: {result.min_votes_under_burst} "
        f"(clean: {result.clean_votes}, threshold: {result.threshold})"
    )
    print(f"all bits decoded correctly: {result.all_bits_correct}")
    return result


if __name__ == "__main__":
    main()
