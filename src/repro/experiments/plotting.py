"""Terminal plotting: ASCII charts for experiment output.

The benches run in CI-like environments without display servers, so the
figures are rendered as text — good enough to eyeball every shape the
paper's plots show (knees, crossovers, orderings).
"""

import math

import numpy as np

_MARKERS = "ox+*#@%&"


def ascii_series(x, series, width=64, height=14, x_label="", y_label="",
                 y_log=False):
    """Render one or more y(x) series as an ASCII chart string.

    ``series`` maps label -> list of y values (aligned with ``x``).
    ``y_log`` plots log10(y) with zeros clamped to the smallest positive
    value (handy for BER curves).
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0 or not series:
        return "(no data)"
    names = list(series)
    ys = {name: np.asarray(series[name], dtype=float) for name in names}

    if y_log:
        positive = [v for vals in ys.values() for v in vals if v > 0]
        floor = min(positive) / 10.0 if positive else 1e-6
        ys = {
            name: np.log10(np.maximum(vals, floor)) for name, vals in ys.items()
        }

    all_y = np.concatenate(list(ys.values()))
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, name in enumerate(names):
        marker = _MARKERS[index % len(_MARKERS)]
        for xv, yv in zip(x, ys[name]):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    def _fmt(value):
        if y_log:
            return f"1e{value:+.1f}"
        return f"{value:.3g}"

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _fmt(y_max)
        elif row_index == height - 1:
            label = _fmt(y_min)
        else:
            label = ""
        lines.append(f"{label:>8} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_min:<10.3g}{x_label:^{max(0, width - 20)}}{x_max:>10.3g}"
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * 9 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def ascii_bars(labels, values, width=50, log=False):
    """Horizontal bar chart string; ``log`` scales bars by log10(value)."""
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    if log:
        floor = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1.0
        scaled = [math.log10(max(v, floor / 10)) for v in values]
        low = min(scaled)
        spans = [s - low for s in scaled]
    else:
        spans = values
    top = max(spans) or 1.0
    name_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value, span in zip(labels, values, spans):
        bar = "#" * max(1, int(round(span / top * width)))
        lines.append(f"{str(label):>{name_width}} | {bar} {value:g}")
    return "\n".join(lines)
