"""Figure 17: constellation diagram of the decoder's vote counts.

The paper transmits the bit pair '01' 2500 times outdoors at 15 m and
plots, per decoded SymBee bit, the number of stable-phase values above
the decision boundary: bit-0 dots cluster near 0, bit-1 dots near 84,
and >= 98% land on the correct side of 42.
"""

from dataclasses import dataclass

import numpy as np

from repro.channel.scenarios import get_scenario
from repro.core.link import SymBeeLink
from repro.experiments.common import scaled


@dataclass(frozen=True)
class ConstellationResult:
    bit0_counts: tuple        # nonnegative-vote counts for sent 0s
    bit1_counts: tuple
    decode_success_rate: float
    threshold: int


def run(seed=17, n_pairs=None, distance_m=15.0, pairs_per_frame=28):
    """Send repeated '01' outdoors at 15 m; collect per-bit vote counts."""
    rng = np.random.default_rng(seed)
    n_pairs = scaled(250) if n_pairs is None else n_pairs

    scenario = get_scenario("outdoor")
    link = SymBeeLink(link_channel=scenario.link(distance_m))
    bits = [0, 1] * pairs_per_frame
    frames = max(1, int(np.ceil(n_pairs / pairs_per_frame)))

    bit0, bit1 = [], []
    correct = total = 0
    for _ in range(frames):
        result = link.send_bits(bits, rng)
        if not result.preamble_captured:
            total += len(bits)
            continue
        for sent, got, count in zip(
            result.sent_bits, result.decoded_bits, result.counts
        ):
            (bit0 if sent == 0 else bit1).append(count)
            correct += int(sent == got)
            total += 1

    return ConstellationResult(
        bit0_counts=tuple(bit0),
        bit1_counts=tuple(bit1),
        decode_success_rate=correct / total if total else 0.0,
        threshold=link.decoder.tau_sync,
    )


def main():
    from repro.experiments.common import fmt, print_table

    result = run()
    rows = []
    for name, counts in (("bit 0", result.bit0_counts), ("bit 1", result.bit1_counts)):
        counts = np.asarray(counts)
        rows.append(
            (
                name,
                len(counts),
                fmt(float(counts.mean()), 1) if counts.size else "-",
                int(counts.min()) if counts.size else "-",
                int(counts.max()) if counts.size else "-",
            )
        )
    print_table(
        ("sent bit", "n", "mean votes", "min", "max"),
        rows,
        title="Fig 17: constellation of nonnegative-vote counts (outdoor, 15 m)",
    )
    print(
        f"decision boundary: {result.threshold} votes; "
        f"decode success: {result.decode_success_rate:.3f} (paper: >= 0.98)"
    )
    return result


if __name__ == "__main__":
    main()
