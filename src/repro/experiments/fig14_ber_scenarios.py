"""Figure 14: SymBee bit error rate in the six evaluation scenarios.

Same sweep as Figure 13, reported as BER.  Paper shape targets: outdoor
<= 5% at all distances; indoor <= 10% within 10 m even in the mall and
library; BER grows with distance fastest in the cluttered sites.
"""

from repro.experiments.fig13_throughput_scenarios import run as _run_sweep


def run(seed=14, **kwargs):
    """The Figure 13/14 sweep keyed for BER reporting."""
    return _run_sweep(seed=seed, **kwargs)


def main(result=None):
    from repro.experiments.common import fmt, print_table

    result = run() if result is None else result
    headers = ("scenario",) + tuple(f"{d} m" for d in result.distances)
    rows = [
        (name,) + tuple(fmt(v, 3) for v in result.ber[name])
        for name in result.scenarios
    ]
    print_table(headers, rows, title="Fig 14: bit error rate by scenario and distance")
    return result


if __name__ == "__main__":
    main()
