"""Table I: the 802.15.4 symbol-to-chip-sequence mapping."""

from dataclasses import dataclass

from repro.zigbee.symbols import CHIP_TABLE


@dataclass(frozen=True)
class Table1Result:
    rows: tuple  # (symbol, chip string)
    cyclic_structure_ok: bool
    conjugate_structure_ok: bool


def run():
    """Reproduce Table I and check the table's generating structure."""
    rows = tuple(
        (f"{symbol:X}", "".join(str(c) for c in CHIP_TABLE[symbol]))
        for symbol in range(16)
    )
    base = CHIP_TABLE[0]
    cyclic_ok = all(
        CHIP_TABLE[s] == tuple(base[-4 * s :] + base[: -4 * s]) for s in range(1, 8)
    )
    conjugate_ok = all(
        all(
            (CHIP_TABLE[s + 8][i] == CHIP_TABLE[s][i]) == (i % 2 == 0)
            or CHIP_TABLE[s + 8][i] == CHIP_TABLE[s][i]
            for i in range(32)
        )
        for s in range(8)
    )
    return Table1Result(
        rows=rows, cyclic_structure_ok=cyclic_ok, conjugate_structure_ok=conjugate_ok
    )


def main():
    from repro.experiments.common import print_table

    result = run()
    print_table(
        ("symbol", "chip sequence (c0 first)"),
        result.rows,
        title="Table I: ZigBee (802.15.4) symbol to chip sequence mapping",
    )
    print(f"cyclic-shift structure verified: {result.cyclic_structure_ok}")
    print(f"odd-chip-conjugate structure verified: {result.conjugate_structure_ok}")
    return result


if __name__ == "__main__":
    main()
