"""Analog/digital front-end impairments.

The paper's receiver is a USRP; commodity WiFi front ends add DC offset,
I/Q imbalance and finite ADC resolution.  SymBee's decoding statistic —
the *difference* of phases 16 samples apart — is naturally robust to
several of these, and these models let tests quantify exactly how robust
(see ``tests/core/test_failure_injection.py``).

All functions are pure: they return new arrays.
"""

import numpy as np

from repro.dsp.signal_ops import db_to_linear


def apply_dc_offset(samples, offset):
    """Additive complex DC at baseband (LO leakage)."""
    return np.asarray(samples) + complex(offset)


def apply_iq_imbalance(samples, amplitude_db=0.5, phase_deg=2.0):
    """Gain/phase mismatch between the I and Q chains.

    Standard model: ``y = alpha * x + beta * conj(x)`` with

        alpha = (1 + g e^{j phi}) / 2,   beta = (1 - g e^{j phi}) / 2,

    where ``g`` is the amplitude ratio and ``phi`` the phase error.  The
    image-rejection ratio is ``|alpha|^2 / |beta|^2``; 0.5 dB / 2 degrees
    is a typical uncalibrated commodity front end (~35 dB IRR).
    """
    g = np.sqrt(db_to_linear(amplitude_db))
    phi = np.deg2rad(phase_deg)
    rotor = g * np.exp(1j * phi)
    alpha = (1.0 + rotor) / 2.0
    beta = (1.0 - rotor) / 2.0
    samples = np.asarray(samples)
    return alpha * samples + beta * np.conj(samples)


def image_rejection_ratio_db(amplitude_db, phase_deg):
    """IRR implied by an imbalance setting (diagnostic)."""
    g = np.sqrt(db_to_linear(amplitude_db))
    phi = np.deg2rad(phase_deg)
    rotor = g * np.exp(1j * phi)
    alpha = abs((1.0 + rotor) / 2.0)
    beta = abs((1.0 - rotor) / 2.0)
    if beta == 0:
        return float("inf")
    return float(20.0 * np.log10(alpha / beta))


def clip_magnitude(samples, level):
    """Saturating front end: magnitudes above ``level`` are clipped.

    Phase is preserved (limiter behaviour), which is the usual RF
    saturation model.
    """
    if level <= 0:
        raise ValueError("clip level must be positive")
    samples = np.asarray(samples)
    magnitude = np.abs(samples)
    over = magnitude > level
    out = samples.copy()
    with np.errstate(divide="ignore", invalid="ignore"):
        out[over] = samples[over] / magnitude[over] * level
    return out


def quantize(samples, bits, full_scale):
    """Uniform mid-rise ADC on I and Q separately.

    ``bits`` per component; inputs beyond ``full_scale`` saturate.  The
    interesting question for SymBee is how few bits the recycled phase
    stream survives on — see the failure-injection tests.
    """
    if bits < 1:
        raise ValueError("need at least 1 bit")
    if full_scale <= 0:
        raise ValueError("full scale must be positive")
    samples = np.asarray(samples)
    levels = 2 ** int(bits)
    step = 2.0 * full_scale / levels

    def _component(x):
        clipped = np.clip(x, -full_scale, full_scale - step / 2)
        return (np.floor(clipped / step) + 0.5) * step

    return _component(samples.real) + 1j * _component(samples.imag)
