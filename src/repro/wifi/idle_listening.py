"""Autocorrelation-based WiFi idle listening (paper Figure 4 (c)-(d)).

The module continuously computes the per-sample phase difference at the
STS lag,

    dp[n] = angle(x[n] * conj(x[n+L])),    L = 16 samples at 20 Msps,

and declares a WiFi packet when the phase stays near zero with high
autocorrelation energy for the Short Training Field duration (the
Schmidl-Cox plateau).  SymBee's receiver recycles the very same ``dp``
stream — that reuse is the paper's light-weight-decoding argument — so
this module is shared by the WiFi packet detector and the SymBee decoder.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    WIFI_AUTOCORR_LAG_20MHZ,
    WIFI_SAMPLE_RATE_20MHZ,
    WIFI_STF_DURATION,
)
from repro.dsp.runs import run_starts, sliding_window_sum


def phase_differences(samples, lag):
    """``dp[n] = angle(x[n] * conj(x[n + lag]))`` for every valid ``n``.

    With this sign convention a baseband tone ``exp(-j*2*pi*f*t)`` (the
    continuous sinusoid inside the (6,7) pair after downconversion) yields
    ``dp = +2*pi*f*lag*Ts``; see the paper's Section IV-B derivation.

    Contract: the result is always a ``float64`` array of length
    ``max(0, len(samples) - lag)``.  Inputs shorter than ``lag + 1``
    samples — which the streaming tail path produces for every block
    until the front end has buffered one full lag — yield an empty array,
    never an error; a non-positive ``lag`` raises ``ValueError``.
    """
    samples = np.asarray(samples)
    if lag <= 0:
        raise ValueError("lag must be positive")
    if samples.size <= lag:
        return np.empty(0, dtype=np.float64)
    return np.angle(samples[:-lag] * np.conj(samples[lag:])).astype(
        np.float64, copy=False
    )


def autocorrelation_metric(samples, lag, window=None):
    """Normalized Schmidl-Cox timing metric and correlation phase.

    ``m[n] = |P[n]|^2 / R[n]^2`` with ``P[n] = sum_{k<W} x[n+k] conj(x[n+k+lag])``
    and ``R[n] = sum_{k<W} |x[n+k+lag]|^2``, using the classical window
    ``W = lag`` unless overridden.  Values near 1 indicate a signal that
    repeats with period ``lag`` — a WiFi STF.  Returns ``(metric, angle(P))``;
    the windowed phase is robust where individual samples are near zero.

    The window sums run over every sample the receiver captures, so they
    are computed with O(N) cumulative sums rather than O(N*W)
    convolutions (identical up to float accumulation order).

    Contract: returns two independent ``float64`` arrays, each of length
    ``max(0, len(samples) - lag - window + 1)``.  Inputs shorter than
    ``lag + window`` samples — hit constantly by the streaming tail path
    while a block overlap is still filling — yield two distinct empty
    arrays, never an error; a non-positive ``lag`` or ``window`` raises
    ``ValueError``.
    """
    samples = np.asarray(samples)
    if lag <= 0:
        raise ValueError("lag must be positive")
    if window is None:
        window = lag
    if window <= 0:
        raise ValueError("window must be positive")
    if samples.size < lag + window:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
    prod = samples[:-lag] * np.conj(samples[lag:])
    energy = np.abs(samples[lag:]) ** 2
    p = sliding_window_sum(prod, window)
    r = sliding_window_sum(energy, window)
    with np.errstate(divide="ignore", invalid="ignore"):
        metric = np.abs(p) ** 2 / np.maximum(r, 1e-30) ** 2
    return (
        metric.astype(np.float64, copy=False),
        np.angle(p).astype(np.float64, copy=False),
    )


@dataclass(frozen=True)
class WifiDetection:
    """A detected WiFi packet candidate."""

    start_index: int
    plateau_length: int


class IdleListening:
    """The continuously running packet-search module of a WiFi receiver."""

    def __init__(
        self,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        metric_threshold=0.7,
        phase_tolerance=0.35,
    ):
        self.sample_rate = float(sample_rate)
        lag = self.sample_rate * 0.8e-6  # STS repetition period
        if abs(lag - round(lag)) > 1e-9:
            raise ValueError("sample rate must give an integer STS lag")
        #: Autocorrelation lag in samples (16 at 20 Msps, 32 at 40 Msps).
        self.lag = int(round(lag))
        if self.sample_rate == WIFI_SAMPLE_RATE_20MHZ:
            assert self.lag == WIFI_AUTOCORR_LAG_20MHZ
        self.metric_threshold = float(metric_threshold)
        self.phase_tolerance = float(phase_tolerance)
        #: Samples a Schmidl-Cox plateau must persist to call a WiFi packet.
        #: The STF lasts 8 us; the plateau is about one lag shorter, and we
        #: leave one further lag of margin for noisy edges.
        self.min_plateau = int(WIFI_STF_DURATION * self.sample_rate) - 3 * self.lag

    def phase_stream(self, samples):
        """The dp[n] stream SymBee recycles (paper Figure 4 (c))."""
        return phase_differences(samples, self.lag)

    def detect_wifi_packets(self, samples):
        """All STF plateaus in a capture, as :class:`WifiDetection` list.

        A WiFi packet needs both a high timing metric and near-zero phase
        difference sustained for the STF duration; a ZigBee signal keeps
        its phase at +-4pi/5 or other nonzero levels, so it never passes —
        the standard-compatibility property the paper leans on.
        """
        samples = np.asarray(samples)
        metric, corr_phase = autocorrelation_metric(samples, self.lag)
        if metric.size == 0:
            return []
        good = (metric > self.metric_threshold) & (
            np.abs(corr_phase) < self.phase_tolerance
        )
        starts = run_starts(good, self.min_plateau)
        detections = []
        for start in starts:
            end = start
            while end < good.size and good[end]:
                end += 1
            detections.append(
                WifiDetection(start_index=int(start), plateau_length=int(end - start))
            )
        return detections
