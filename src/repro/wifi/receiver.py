"""802.11a/g OFDM receiver (legacy 20 MHz PHY).

Counterpart of :class:`repro.wifi.ofdm.OfdmTransmitter`: packet detection
via idle listening, fine timing from the L-LTF cross-correlation, coarse
CFO from the L-STF autocorrelation, per-subcarrier channel estimation
from the two LTF repetitions, pilot-driven common-phase-error tracking,
and QPSK demapping.

Role in the reproduction: it closes the loop on the WiFi substrate (the
idle-listening module the paper recycles belongs to a receiver that must
actually receive WiFi), and it enables the *reverse* cross-technology
interference measurement — how a WiFi link fares while a ZigBee/SymBee
sender shares the band — used by tests and the coexistence example.
"""

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.wifi.idle_listening import IdleListening
from repro.wifi.ofdm import (
    CYCLIC_PREFIX,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    PILOT_SUBCARRIERS,
    _subcarriers_to_time,
    l_ltf,
)

#: Frequency-domain reference values of the L-LTF on its 52 subcarriers.
_LTF_REFERENCE = None


def _ltf_reference():
    """Cache the LTF's frequency-domain reference grid."""
    global _LTF_REFERENCE
    if _LTF_REFERENCE is None:
        symbol = l_ltf()[32:96]
        _LTF_REFERENCE = np.fft.fft(symbol) / (FFT_SIZE / np.sqrt(52.0))
    return _LTF_REFERENCE


@dataclass
class OfdmReception:
    """Decoded packet plus link diagnostics."""

    bits: np.ndarray
    start_index: int
    cfo_hz: float
    evm: float                  # RMS error-vector magnitude of data symbols

    @property
    def snr_estimate_db(self):
        """EVM-implied SNR (rough; assumes noise-dominated errors)."""
        if self.evm <= 0:
            return float("inf")
        return float(-20.0 * np.log10(self.evm))


class OfdmReceiver:
    """Decodes packets produced by :class:`OfdmTransmitter`."""

    def __init__(self, sample_rate=WIFI_SAMPLE_RATE_20MHZ):
        if sample_rate != WIFI_SAMPLE_RATE_20MHZ:
            raise ValueError("the legacy OFDM PHY is defined at 20 Msps")
        self.sample_rate = float(sample_rate)
        self.idle_listening = IdleListening(sample_rate)
        ltf = l_ltf()
        self._ltf_symbol = ltf[32:96]

    # -- synchronization ------------------------------------------------------

    def coarse_detect(self, capture):
        """STF-based detection; returns the approximate packet start."""
        detections = self.idle_listening.detect_wifi_packets(capture)
        if not detections:
            return None
        return detections[0].start_index

    def estimate_cfo(self, capture, start):
        """Coarse CFO from the STF's 16-sample periodicity."""
        stf = np.asarray(capture[start : start + 160])
        if stf.size < 32:
            return 0.0
        prod = np.sum(stf[:-16] * np.conj(stf[16:]))
        # x[n] ~ e^{j2pi f t}: x[n]x*[n+16] rotates by -2pi f 16 Ts.
        return float(-np.angle(prod) / (2.0 * np.pi * 16.0 / self.sample_rate))

    def fine_sync(self, capture, approximate_start):
        """Locate the first LTF symbol by cross-correlation.

        Searches a window around ``approximate_start + 192`` (STF 160 +
        LTF CP 32).  Returns the index of the first 64-sample LTF symbol.
        """
        capture = np.asarray(capture)
        nominal = approximate_start + 160 + 32
        lo = max(0, nominal - 48)
        hi = min(capture.size - 64, nominal + 48)
        if hi <= lo:
            return None
        segment = capture[lo : hi + 64]
        corr = fftconvolve(segment, np.conj(self._ltf_symbol[::-1]), mode="valid")
        return lo + int(np.argmax(np.abs(corr)))

    # -- decoding ---------------------------------------------------------------

    def _equalize(self, capture, ltf_start):
        """Channel estimate from the two LTF repetitions."""
        first = np.fft.fft(capture[ltf_start : ltf_start + 64])
        second = np.fft.fft(capture[ltf_start + 64 : ltf_start + 128])
        reference = _ltf_reference()
        scale = FFT_SIZE / np.sqrt(52.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            channel = (first + second) / (2.0 * scale * reference)
        channel[reference == 0] = 0.0
        return channel

    def decode_symbols(self, capture, data_start, n_symbols, channel):
        """Equalize and demap ``n_symbols`` OFDM data symbols."""
        bits = []
        errors = []
        span = FFT_SIZE + CYCLIC_PREFIX
        for k in range(n_symbols):
            start = data_start + k * span + CYCLIC_PREFIX
            if start + FFT_SIZE > len(capture):
                break
            spectrum = np.fft.fft(capture[start : start + FFT_SIZE]) / (
                FFT_SIZE / np.sqrt(52.0)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                equalized = np.where(channel != 0, spectrum / channel, 0.0)
            # Common phase error from the four pilots; the transmitter
            # sends polarity (1, 1, 1, -1) on subcarriers (-21, -7, 7, 21).
            pilot_ref = np.array([1.0, 1.0, 1.0, -1.0], dtype=complex)
            pilots = np.array(
                [equalized[p % FFT_SIZE] for p in PILOT_SUBCARRIERS]
            )
            cpe = np.angle(np.sum(pilots * np.conj(pilot_ref)))
            rotated = equalized * np.exp(-1j * cpe)
            for subcarrier in DATA_SUBCARRIERS:
                value = rotated[subcarrier % FFT_SIZE]
                bits.append(0 if value.real >= 0 else 1)
                bits.append(0 if value.imag >= 0 else 1)
                ideal = (
                    (1 - 2 * bits[-2]) + 1j * (1 - 2 * bits[-1])
                ) / np.sqrt(2.0)
                errors.append(abs(value - ideal) ** 2)
        evm = float(np.sqrt(np.mean(errors))) if errors else 1.0
        return np.array(bits, dtype=np.int8), evm

    def decode_signal_field(self, capture, signal_start, channel):
        """Decode the SIGNAL symbol; returns the DATA-symbol count or ``None``.

        BPSK demap on the equalized subcarriers, the standard 48-bit
        deinterleaver, Viterbi (the field's own tail terminates the
        trellis), then parity/tail validation.
        """
        from repro.core.convolutional import viterbi_decode
        from repro.wifi.ofdm import parse_signal_bits, signal_deinterleave

        start = signal_start + CYCLIC_PREFIX
        if start + FFT_SIZE > len(capture):
            return None
        spectrum = np.fft.fft(capture[start : start + FFT_SIZE]) / (
            FFT_SIZE / np.sqrt(52.0)
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            equalized = np.where(channel != 0, spectrum / channel, 0.0)
        hard = np.array(
            [0 if equalized[k % FFT_SIZE].real >= 0 else 1
             for k in DATA_SUBCARRIERS],
            dtype=np.int8,
        )
        decoded = viterbi_decode(signal_deinterleave(hard), n_bits=24)
        return parse_signal_bits(decoded)

    def receive(self, capture, n_symbols=None):
        """Full receive chain.  Returns :class:`OfdmReception` or ``None``.

        With ``n_symbols=None`` the DATA length is read from the packet's
        own SIGNAL field (parity/tail-checked); passing it explicitly
        overrides a damaged SIGNAL.
        """
        capture = np.asarray(capture)
        start = self.coarse_detect(capture)
        if start is None:
            return None
        cfo = self.estimate_cfo(capture, start)
        if cfo != 0.0:
            n = np.arange(capture.size)
            capture = capture * np.exp(-1j * 2.0 * np.pi * cfo * n / self.sample_rate)
        ltf_start = self.fine_sync(capture, start)
        if ltf_start is None:
            return None
        channel = self._equalize(capture, ltf_start)
        signal_start = ltf_start + 128
        announced = self.decode_signal_field(capture, signal_start, channel)
        if n_symbols is None:
            if announced is None:
                return None
            n_symbols = announced
        data_start = signal_start + FFT_SIZE + CYCLIC_PREFIX
        bits, evm = self.decode_symbols(capture, data_start, n_symbols, channel)
        if bits.size == 0:
            return None
        return OfdmReception(bits=bits, start_index=start, cfo_hz=cfo, evm=evm)
