"""WiFi RF front-end model: mixer + sampler (paper Figure 4 (a)-(b)).

A ZigBee transmission centred at f_z appears, after the WiFi mixer tuned
to f_w, as a baseband signal rotating at the centre-frequency offset
f_delta = f_z - f_w.  That residual rotation is exactly what the paper's
Appendix B compensates with the constant +4pi/5 term; the front-end here
applies the true offset so the compensation code has something real to
undo.
"""

import numpy as np

from repro.constants import (
    DEFAULT_NOISE_FIGURE_DB,
    THERMAL_NOISE_DBM_PER_HZ,
    WIFI_SAMPLE_RATE_20MHZ,
)
from repro.dsp.noise import complex_gaussian
from repro.dsp.signal_ops import dbm_to_watts, mix
from repro.wifi.channels import wifi_channel_frequency


def noise_floor_watts(bandwidth_hz, noise_figure_db=DEFAULT_NOISE_FIGURE_DB):
    """Receiver noise power over ``bandwidth_hz`` in watts."""
    dbm = THERMAL_NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db
    return float(dbm_to_watts(dbm))


class WifiFrontEnd:
    """Brings passband signals into the WiFi receiver's sampled baseband.

    Power convention matches :class:`repro.zigbee.ZigBeeTransmitter`:
    waveform mean power is in watts.  ``thermal_noise`` adds the receiver's
    own noise floor over the full sampling bandwidth, which is what makes a
    2 MHz ZigBee signal pay the paper's wideband-listening SNR penalty.
    """

    def __init__(
        self,
        channel=1,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        noise_figure_db=DEFAULT_NOISE_FIGURE_DB,
    ):
        self.channel = channel
        self.center_frequency = wifi_channel_frequency(channel)
        self.sample_rate = float(sample_rate)
        self.noise_figure_db = float(noise_figure_db)

    @property
    def noise_power_watts(self):
        """Noise floor over the full sampled bandwidth."""
        return noise_floor_watts(self.sample_rate, self.noise_figure_db)

    def frequency_offset(self, source_center_frequency):
        """Offset at which a source appears in this receiver's baseband."""
        return source_center_frequency - self.center_frequency

    def downconvert(self, waveform, source_center_frequency, initial_phase=0.0):
        """Mix a source's complex-baseband waveform into WiFi baseband.

        ``waveform`` must already be sampled at this front-end's rate (the
        modulators in this repo render at the receiver rate directly, which
        sidesteps resampling artefacts in the cross-observability study).
        """
        offset = self.frequency_offset(source_center_frequency)
        return mix(
            waveform, offset, self.sample_rate, initial_phase=initial_phase, cache=True
        )

    def capture(self, contributions, n_samples, rng=None, include_noise=True):
        """Assemble one baseband capture from multiple on-air sources.

        ``contributions`` is an iterable of ``(waveform, start_index,
        source_center_frequency)`` tuples; each is downconverted and added
        at its start offset, then receiver noise is applied.  Waveforms
        falling partly outside the capture are clipped.
        """
        # Start from the noise floor and add signals into it (float
        # addition commutes, so per-sample sums match noise-last order).
        if include_noise:
            if rng is None:
                raise ValueError("rng is required when include_noise=True")
            out = complex_gaussian(int(n_samples), self.noise_power_watts, rng)
        else:
            out = np.zeros(int(n_samples), dtype=np.complex128)
        for waveform, start, f_center in contributions:
            shifted = self.downconvert(np.asarray(waveform), f_center)
            start = int(start)
            if start >= out.size or start + shifted.size <= 0:
                continue
            src_lo = max(0, -start)
            dst_lo = max(0, start)
            span = min(shifted.size - src_lo, out.size - dst_lo)
            out[dst_lo : dst_lo + span] += shifted[src_lo : src_lo + span]
        return out
