"""2.4 GHz WiFi channel map."""

#: WiFi channel number (1-13) -> centre frequency in Hz.
WIFI_CHANNELS = {k: (2412 + 5 * (k - 1)) * 1_000_000.0 for k in range(1, 14)}


def wifi_channel_frequency(channel):
    """Centre frequency of a 2.4 GHz WiFi channel (1-13)."""
    try:
        return WIFI_CHANNELS[channel]
    except KeyError:
        raise ValueError(f"WiFi channel must be 1..13, got {channel}") from None
