"""802.11a/g OFDM transmitter (legacy 20 MHz PHY).

Purpose in this repo:

* generate standard L-STF/L-LTF preambles so the idle-listening detector
  can be validated against true WiFi packets, and
* synthesize WiFi interference bursts with the correct spectral footprint
  and preamble structure for the interference experiments (paper
  Section VIII-E and Figures 20-21).

The preamble is standard-exact, and the SIGNAL field is fully
implemented (rate-1/2 convolutional coding, the 48-bit BPSK interleaver,
parity/tail — decoded by :mod:`repro.wifi.receiver` to make packets
self-describing).  For the DATA field we map payload bits straight onto
the QPSK constellation without the convolutional coder/interleaver/
scrambler: spectrally and statistically equivalent for interference
purposes, which is all the evaluation needs.  This simplification is
recorded in DESIGN.md.
"""

import numpy as np

from repro.constants import WIFI_SAMPLE_RATE_20MHZ
from repro.dsp.signal_ops import scale_to_power

FFT_SIZE = 64
CYCLIC_PREFIX = 16
#: Indices (subcarrier numbers -26..26 excluding 0 and pilots) used for data.
PILOT_SUBCARRIERS = (-21, -7, 7, 21)
DATA_SUBCARRIERS = tuple(
    k
    for k in range(-26, 27)
    if k != 0 and k not in PILOT_SUBCARRIERS
)

_STF_PATTERN = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j,
    -4: 1 + 1j, 4: 1 + 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j,
    20: 1 + 1j, 24: 1 + 1j,
}

_LTF_PATTERN_LEFT = [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
                     1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1]
_LTF_PATTERN_RIGHT = [1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1,
                      -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1]


def _subcarriers_to_time(values_by_subcarrier):
    """Place subcarrier values onto a 64-point IFFT grid and transform."""
    grid = np.zeros(FFT_SIZE, dtype=np.complex128)
    for k, value in values_by_subcarrier.items():
        grid[k % FFT_SIZE] = value
    # Match the standard's scaling convention closely enough for unit power
    # normalization downstream.
    return np.fft.ifft(grid) * FFT_SIZE / np.sqrt(52.0)


def l_stf():
    """The 160-sample legacy Short Training Field (10 x 16-sample reps)."""
    values = {k: np.sqrt(13.0 / 6.0) * v for k, v in _STF_PATTERN.items()}
    symbol = _subcarriers_to_time(values)
    # Only every 4th subcarrier is occupied, so the symbol has period 16;
    # the STF is 160 samples of that periodic signal.
    period = symbol[:16]
    return np.tile(period, 10)


def l_ltf():
    """The 160-sample legacy Long Training Field (32-sample CP + 2 reps)."""
    values = {}
    for offset, v in zip(range(-26, 0), _LTF_PATTERN_LEFT):
        values[offset] = complex(v)
    for offset, v in zip(range(1, 27), _LTF_PATTERN_RIGHT):
        values[offset] = complex(v)
    symbol = _subcarriers_to_time(values)
    return np.concatenate([symbol[-32:], symbol, symbol])


def _qpsk_map(bits):
    """Gray-mapped QPSK, unit average power."""
    bits = np.asarray(bits, dtype=np.int8).reshape(-1, 2)
    i = 1.0 - 2.0 * bits[:, 0]
    q = 1.0 - 2.0 * bits[:, 1]
    return (i + 1j * q) / np.sqrt(2.0)


# --- SIGNAL field (standard 18.3.4 structure) -------------------------------

#: The RATE bits for 6 Mb/s (BPSK, rate 1/2) — the mode SIGNAL itself uses.
SIGNAL_RATE_BITS = (1, 1, 0, 1)


def signal_interleave(bits):
    """The standard BPSK interleaver for one 48-bit coded block.

    For N_CBPS = 48, N_BPSC = 1 the first permutation is
    ``i = 3 * (k mod 16) + floor(k / 16)`` and the second is identity.
    """
    bits = np.asarray(list(bits), dtype=np.int8)
    if bits.size != 48:
        raise ValueError("SIGNAL interleaver works on 48 bits")
    out = np.empty(48, dtype=np.int8)
    for k in range(48):
        out[3 * (k % 16) + k // 16] = bits[k]
    return out


def signal_deinterleave(bits):
    """Inverse of :func:`signal_interleave`."""
    bits = np.asarray(list(bits), dtype=np.int8)
    if bits.size != 48:
        raise ValueError("SIGNAL deinterleaver works on 48 bits")
    out = np.empty(48, dtype=np.int8)
    for k in range(48):
        out[k] = bits[3 * (k % 16) + k // 16]
    return out


def build_signal_bits(length):
    """The 24 uncoded SIGNAL bits: RATE, reserved, LENGTH, parity, tail.

    ``length`` is the PSDU length field (12 bits); this transmitter uses
    it to carry the number of DATA symbols (documented simplification —
    our DATA field is uncoded QPSK, so the standard's octet-count-to-
    symbol conversion does not apply).
    """
    if not 0 <= length < (1 << 12):
        raise ValueError("length must fit 12 bits")
    bits = list(SIGNAL_RATE_BITS) + [0]
    bits += [(length >> i) & 1 for i in range(12)]  # LSB first per standard
    parity = sum(bits) & 1
    bits.append(parity)
    bits += [0] * 6  # tail
    return np.array(bits, dtype=np.int8)


def parse_signal_bits(bits):
    """Validate parity/tail and extract the LENGTH field (or ``None``).

    Bit 17 is even parity over bits 0-16; bits 18-23 are the zero tail.
    """
    bits = np.asarray(list(bits), dtype=np.int8)
    if bits.size != 24:
        return None
    if int(np.sum(bits[:17]) & 1) != int(bits[17]):
        return None
    if np.any(bits[18:24]):
        return None
    length = 0
    for i in range(12):
        length |= int(bits[5 + i]) << i
    return length


class OfdmTransmitter:
    """Generates 802.11g-shaped packets and interference bursts."""

    def __init__(self, sample_rate=WIFI_SAMPLE_RATE_20MHZ, tx_power_watts=1e-3):
        if sample_rate != WIFI_SAMPLE_RATE_20MHZ:
            raise ValueError(
                "the legacy OFDM PHY is defined at 20 Msps; resample the "
                "output for other receiver rates"
            )
        self.sample_rate = float(sample_rate)
        self.tx_power_watts = float(tx_power_watts)
        self._pilot_polarity = np.array([1, 1, 1, -1], dtype=float)

    def signal_symbol(self, n_data_symbols):
        """The SIGNAL OFDM symbol announcing the packet's DATA length.

        Standard structure: 24 bits (RATE/reserved/LENGTH/parity/tail),
        rate-1/2 convolutional coding (the field's own tail terminates
        the trellis), the 48-bit BPSK interleaver, BPSK on the data
        subcarriers.  The LENGTH field carries the DATA symbol count
        (documented simplification; our DATA field is uncoded QPSK).
        """
        from repro.core.convolutional import conv_encode_raw

        coded = conv_encode_raw(build_signal_bits(n_data_symbols))
        interleaved = signal_interleave(coded)
        constellation = (1.0 - 2.0 * interleaved).astype(complex)
        values = dict(zip(DATA_SUBCARRIERS, constellation))
        for k, polarity in zip(PILOT_SUBCARRIERS, self._pilot_polarity):
            values[k] = complex(polarity)
        symbol = _subcarriers_to_time(values)
        return np.concatenate([symbol[-CYCLIC_PREFIX:], symbol])

    def data_symbol(self, bits):
        """One OFDM data symbol (CP + 64 samples) carrying 96 QPSK bits."""
        bits = np.asarray(bits, dtype=np.int8)
        needed = 2 * len(DATA_SUBCARRIERS)
        if bits.size != needed:
            raise ValueError(f"need exactly {needed} bits per symbol")
        constellation = _qpsk_map(bits)
        values = dict(zip(DATA_SUBCARRIERS, constellation))
        for k, polarity in zip(PILOT_SUBCARRIERS, self._pilot_polarity):
            values[k] = complex(polarity)
        symbol = _subcarriers_to_time(values)
        return np.concatenate([symbol[-CYCLIC_PREFIX:], symbol])

    def packet(self, payload_bits, rng=None):
        """A full packet: L-STF + L-LTF + OFDM data symbols.

        ``payload_bits`` is padded with random bits (from ``rng``) to a
        whole number of symbols; with ``rng=None`` zero-padding is used.
        """
        payload_bits = np.asarray(payload_bits, dtype=np.int8).ravel()
        per_symbol = 2 * len(DATA_SUBCARRIERS)
        remainder = (-payload_bits.size) % per_symbol
        if remainder:
            if rng is not None:
                pad = rng.integers(0, 2, remainder, dtype=np.int8)
            else:
                pad = np.zeros(remainder, dtype=np.int8)
            payload_bits = np.concatenate([payload_bits, pad])
        n_data_symbols = payload_bits.size // per_symbol
        blocks = [l_stf(), l_ltf(), self.signal_symbol(n_data_symbols)]
        for chunk in payload_bits.reshape(-1, per_symbol):
            blocks.append(self.data_symbol(chunk))
        waveform = np.concatenate(blocks)
        return scale_to_power(waveform, self.tx_power_watts)

    def burst(self, duration_seconds, rng):
        """An interference burst of roughly the requested duration.

        Includes the real preamble, so a WiFi receiver in the simulation
        sees legitimate packets, while a SymBee decoder sees the phase
        corruption the paper's Figure 20 illustrates.
        """
        total_samples = int(round(duration_seconds * self.sample_rate))
        preamble_samples = 400  # STF + LTF + SIGNAL
        symbol_samples = FFT_SIZE + CYCLIC_PREFIX
        n_symbols = max(1, int(np.ceil((total_samples - preamble_samples) / symbol_samples)))
        per_symbol = 2 * len(DATA_SUBCARRIERS)
        bits = rng.integers(0, 2, n_symbols * per_symbol, dtype=np.int8)
        waveform = self.packet(bits)
        return waveform[: max(total_samples, preamble_samples)]
