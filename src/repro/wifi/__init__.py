"""IEEE 802.11 (WiFi) substrate.

SymBee never demodulates WiFi frames; what it needs from the WiFi side is
(1) the RF front-end that carries a ZigBee passband signal into WiFi
baseband samples, and (2) the autocorrelation-based idle-listening module
whose phase-difference output SymBee recycles.  The OFDM transmitter
exists so idle-listening can be validated against real WiFi preambles and
so the interference experiments (paper Sections VIII-E) can mix in
standard-shaped 802.11g bursts.
"""

from repro.wifi.channels import WIFI_CHANNELS, wifi_channel_frequency
from repro.wifi.front_end import WifiFrontEnd, noise_floor_watts
from repro.wifi.idle_listening import (
    IdleListening,
    phase_differences,
    autocorrelation_metric,
)
from repro.wifi.ofdm import OfdmTransmitter, l_stf, l_ltf
from repro.wifi.receiver import OfdmReceiver, OfdmReception
from repro.wifi.impairments import (
    apply_dc_offset,
    apply_iq_imbalance,
    clip_magnitude,
    quantize,
    image_rejection_ratio_db,
)

__all__ = [
    "WIFI_CHANNELS",
    "wifi_channel_frequency",
    "WifiFrontEnd",
    "noise_floor_watts",
    "IdleListening",
    "phase_differences",
    "autocorrelation_metric",
    "OfdmTransmitter",
    "OfdmReceiver",
    "OfdmReception",
    "l_stf",
    "l_ltf",
    "apply_dc_offset",
    "apply_iq_imbalance",
    "clip_magnitude",
    "quantize",
    "image_rejection_ratio_db",
]
