"""SymBee decoding at the WiFi receiver (paper Sections IV-C, V, VI-B).

Two modes, both operating on the idle-listening phase stream:

* **Unsynchronized** (Section IV-C): slide a window of 84 phase values
  (168 at 40 Msps); if at least ``84 - tau`` are negative the window holds
  a SymBee bit 0, if at least ``84 - tau`` are nonnegative a bit 1, else
  nothing.  Consecutive firing windows belonging to the same plateau are
  clustered into one detection.
* **Synchronized** (Section V): once the preamble fixes bit timing, only
  the 84 samples at each expected bit position are examined and decoding
  becomes majority voting with ``tau_sync = 42`` (half the window).
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    SYMBEE_BIT_PERIOD_20MHZ,
    SYMBEE_DEFAULT_TAU,
    SYMBEE_STABLE_PHASE,
    SYMBEE_STABLE_WINDOW_20MHZ,
    WIFI_AUTOCORR_LAG_20MHZ,
    WIFI_SAMPLE_RATE_20MHZ,
)
from repro.core.phase import compensate_cfo
from repro.dsp.runs import sliding_count
from repro.wifi.idle_listening import phase_differences


@dataclass(frozen=True)
class BitDetection:
    """One unsynchronized bit detection.

    ``index`` is the first phase-stream index of the qualifying window
    cluster; ``count`` is the cluster's extreme nonnegative count (high
    for bit 1, low for bit 0).
    """

    index: int
    bit: int
    count: int


@dataclass(frozen=True)
class SyncDecodeResult:
    """Synchronized decode of a run of bits at fixed spacing."""

    bits: tuple
    counts: tuple          # nonnegative phase values per bit window
    positions: tuple       # phase-stream index of each bit window


class SymBeeDecoder:
    """Thresholding decoder over the recycled idle-listening phases."""

    def __init__(
        self,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        tau=None,
        tau_sync=None,
        cfo_correction=SYMBEE_STABLE_PHASE,
    ):
        scale = sample_rate / WIFI_SAMPLE_RATE_20MHZ
        if scale not in (1.0, 2.0):
            raise ValueError("sample_rate must be 20 or 40 Msps")
        scale = int(scale)
        self.sample_rate = float(sample_rate)
        #: Autocorrelation lag (16 at 20 Msps, 32 at 40 Msps).
        self.lag = WIFI_AUTOCORR_LAG_20MHZ * scale
        #: Stable-plateau window length (84 / 168).
        self.window = SYMBEE_STABLE_WINDOW_20MHZ * scale
        #: Phase samples between consecutive SymBee bits (640 / 1280).
        self.bit_period = SYMBEE_BIT_PERIOD_20MHZ * scale
        #: Error tolerance of the unsynchronized detector; the paper's
        #: operating point (tau = 10 at 20 Msps) scales with the window.
        self.tau = SYMBEE_DEFAULT_TAU * scale if tau is None else int(tau)
        if not 0 <= self.tau < self.window // 2:
            raise ValueError("tau must be in [0, window/2)")
        #: Majority threshold for synchronized decoding (window / 2).
        self.tau_sync = self.window // 2 if tau_sync is None else int(tau_sync)
        #: Appendix-B constant added to every phase before thresholding;
        #: ``None`` disables compensation (already-compensated input).
        self.cfo_correction = cfo_correction

    # -- phase extraction ---------------------------------------------------

    def phases(self, samples):
        """Compensated dp stream for a baseband capture."""
        dp = phase_differences(samples, self.lag)
        if self.cfo_correction is None or self.cfo_correction == 0.0:
            return dp
        return compensate_cfo(dp, self.cfo_correction)

    # -- unsynchronized detection (Section IV-C) -----------------------------

    def detect_bits(self, phases, tau=None):
        """All unsynchronized bit detections in a phase stream.

        A window fires for bit 1 when its nonnegative count is at least
        ``window - tau`` and for bit 0 when the count is at most ``tau``.
        Windows firing for the same bit value within one plateau (gaps
        smaller than the window) merge into a single :class:`BitDetection`
        anchored at the cluster's first index.
        """
        tau = self.tau if tau is None else int(tau)
        phases = np.asarray(phases)
        counts = sliding_count(phases >= 0, self.window)
        if counts.size == 0:
            return []
        detections = []
        for bit, firing in (
            (1, counts >= self.window - tau),
            (0, counts <= tau),
        ):
            indices = np.flatnonzero(firing)
            if indices.size == 0:
                continue
            splits = np.flatnonzero(np.diff(indices) > self.window) + 1
            for cluster in np.split(indices, splits):
                extreme = counts[cluster].max() if bit == 1 else counts[cluster].min()
                detections.append(
                    BitDetection(index=int(cluster[0]), bit=bit, count=int(extreme))
                )
        detections.sort(key=lambda d: d.index)
        return detections

    def decode_unsynchronized(self, phases, tau=None):
        """Bit sequence read off the detection stream, in time order."""
        return [d.bit for d in self.detect_bits(phases, tau=tau)]

    # -- synchronized decoding (Section V) -----------------------------------

    def decode_synchronized(self, phases, first_bit_index, n_bits):
        """Majority-vote decode of ``n_bits`` starting at a known index.

        ``first_bit_index`` is the phase-stream index where the first
        bit's stable window starts (the preamble capture provides it);
        subsequent bits are ``bit_period`` apart.  Bits whose window runs
        past the end of the stream are dropped.
        """
        phases = np.asarray(phases)
        nonneg = phases >= 0
        bits, counts, positions = [], [], []
        for k in range(n_bits):
            start = first_bit_index + k * self.bit_period
            end = start + self.window
            if start < 0 or end > phases.size:
                break
            count = int(nonneg[start:end].sum())
            bits.append(1 if count >= self.tau_sync else 0)
            counts.append(count)
            positions.append(start)
        return SyncDecodeResult(
            bits=tuple(bits), counts=tuple(counts), positions=tuple(positions)
        )
