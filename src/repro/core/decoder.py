"""SymBee decoding at the WiFi receiver (paper Sections IV-C, V, VI-B).

Two modes, both operating on the idle-listening phase stream:

* **Unsynchronized** (Section IV-C): slide a window of 84 phase values
  (168 at 40 Msps); if at least ``84 - tau`` are negative the window holds
  a SymBee bit 0, if at least ``84 - tau`` are nonnegative a bit 1, else
  nothing.  Consecutive firing windows belonging to the same plateau are
  clustered into one detection.
* **Synchronized** (Section V): once the preamble fixes bit timing, only
  the 84 samples at each expected bit position are examined and decoding
  becomes majority voting with ``tau_sync = 42`` (half the window).
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    SYMBEE_BIT_PERIOD_20MHZ,
    SYMBEE_DEFAULT_TAU,
    SYMBEE_STABLE_PHASE,
    SYMBEE_STABLE_WINDOW_20MHZ,
    WIFI_AUTOCORR_LAG_20MHZ,
    WIFI_SAMPLE_RATE_20MHZ,
)
from repro.core.phase import compensate_cfo
from repro.dsp.runs import sliding_count
from repro.obs.metrics import REGISTRY
from repro.wifi.idle_listening import phase_differences

#: Distance of each synchronized vote count from the majority threshold
#: (0 = coin flip, window/2 = unanimous); 84 covers the 40 Msps window.
_VOTE_MARGIN = REGISTRY.histogram(
    "decoder.vote_margin", edges=(0, 2, 5, 10, 15, 21, 28, 42, 63, 84)
)
#: Same-sign run lengths in the decoded phase stream; the plateaus the
#: decoder votes on are ~84 samples (168 at 40 Msps), a bit period 640.
_PHASE_RUN_LENGTH = REGISTRY.histogram(
    "decoder.phase_run_length",
    edges=(1, 2, 4, 8, 16, 32, 64, 84, 168, 320, 640, 1280),
)
_BITS_DECODED = REGISTRY.counter("decoder.bits_decoded")


@dataclass(frozen=True)
class BitDetection:
    """One unsynchronized bit detection.

    ``index`` is the first phase-stream index of the qualifying window
    cluster; ``count`` is the cluster's extreme nonnegative count (high
    for bit 1, low for bit 0).
    """

    index: int
    bit: int
    count: int


@dataclass(frozen=True)
class SyncDecodeResult:
    """Synchronized decode of a run of bits at fixed spacing."""

    bits: tuple
    counts: tuple          # nonnegative phase values per bit window
    positions: tuple       # phase-stream index of each bit window


class SymBeeDecoder:
    """Thresholding decoder over the recycled idle-listening phases."""

    def __init__(
        self,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        tau=None,
        tau_sync=None,
        cfo_correction=SYMBEE_STABLE_PHASE,
        decimation=1,
    ):
        scale = sample_rate / WIFI_SAMPLE_RATE_20MHZ
        if scale not in (1.0, 2.0):
            raise ValueError("sample_rate must be 20 or 40 Msps")
        scale = int(scale)
        self.sample_rate = float(sample_rate)
        #: Front-end decimation this decoder's stream was produced at: a
        #: decimating channelizer (``repro.stream``) hands over products
        #: formed on a ``decimation``-times slower sub-band stream, so
        #: every per-sample quantity below shrinks by the same factor.
        #: Must divide the lag and the bit period exactly (1, 2, 4 or 8
        #: at 20 Msps; additionally 16 at 40 Msps).  The vote window is
        #: *floored* when it does not divide evenly (84 -> 10 at
        #: decimation 8): voting then covers the first ``window *
        #: decimation`` full-rate positions of the stable plateau, which
        #: only trims the tail of the plateau and keeps the majority
        #: vote well-defined.
        self.decimation = int(decimation)
        if self.decimation < 1:
            raise ValueError("decimation must be >= 1")
        lag = WIFI_AUTOCORR_LAG_20MHZ * scale
        window = SYMBEE_STABLE_WINDOW_20MHZ * scale
        bit_period = SYMBEE_BIT_PERIOD_20MHZ * scale
        if lag % self.decimation or bit_period % self.decimation:
            raise ValueError(
                f"decimation {self.decimation} must divide the lag ({lag}) "
                f"and bit period ({bit_period}); at "
                f"{sample_rate / 1e6:g} Msps the valid factors are the "
                f"divisors of {np.gcd.reduce([lag, bit_period])}"
            )
        #: Autocorrelation lag (16 at 20 Msps, 32 at 40 Msps), divided by
        #: the decimation factor (the 0.8 us lag spans fewer samples).
        self.lag = lag // self.decimation
        #: Stable-plateau window length (84 / 168), decimation-scaled
        #: with flooring when the plateau does not divide evenly.
        self.window = window // self.decimation
        #: Phase samples between consecutive SymBee bits (640 / 1280,
        #: decimation-scaled).
        self.bit_period = bit_period // self.decimation
        #: Error tolerance of the unsynchronized detector; the paper's
        #: operating point (tau = 10 at 20 Msps) scales with the window.
        if tau is None:
            self.tau = max(1, SYMBEE_DEFAULT_TAU * scale // self.decimation)
        else:
            self.tau = int(tau)
        if not 0 <= self.tau < self.window // 2:
            raise ValueError("tau must be in [0, window/2)")
        #: Majority threshold for synchronized decoding (window / 2).
        self.tau_sync = self.window // 2 if tau_sync is None else int(tau_sync)
        #: Appendix-B constant added to every phase before thresholding;
        #: ``None`` disables compensation (already-compensated input).
        self.cfo_correction = cfo_correction

    # -- phase extraction ---------------------------------------------------

    def phases(self, samples):
        """Compensated dp stream for a baseband capture."""
        dp = phase_differences(samples, self.lag)
        if self.cfo_correction is None or self.cfo_correction == 0.0:
            return dp
        return compensate_cfo(dp, self.cfo_correction)

    @staticmethod
    def raw_products(samples, lag):
        """Uncompensated autocorrelation products ``x[n] * conj(x[n+lag])``.

        The channel-agnostic half of :meth:`phasor_stream` — everything
        before the CFO rotation.  Each product depends only on the two
        samples it pairs, so computing the stream block-by-block (with a
        ``lag``-sample tail carried across blocks, as
        ``repro.stream.StreamingFrontEnd`` does) is bit-identical to one
        whole-capture call.  Returns ``complex128`` of length
        ``max(0, len(samples) - lag)``.
        """
        samples = np.asarray(samples)
        if lag <= 0:
            raise ValueError("lag must be positive")
        if samples.size <= lag:
            return np.empty(0, dtype=np.complex128)
        # conjugate() allocates the output; finish in place on it.
        prod = np.conjugate(samples[lag:]).astype(np.complex128, copy=False)
        prod *= samples[:-lag]
        return prod

    @property
    def rotation(self):
        """Unit phasor ``exp(j*cfo_correction)``, or ``None`` when disabled.

        Multiplying raw products by this constant is exactly the
        compensation step of :meth:`phasor_stream`; streaming sessions
        apply it per block (``block * rotation`` matches the batch
        in-place ``stream *= rotation`` elementwise).
        """
        c = self.cfo_correction
        if c is None or c == 0.0:
            return None
        return complex(np.cos(c), np.sin(c))

    def phasor_stream(self, samples):
        """CFO-compensated autocorrelation products (the phasor-domain dp).

        ``out[n] = x[n] * conj(x[n + lag]) * exp(j * cfo_correction)``, so
        ``angle(out)`` equals :meth:`phases` (up to the wrap convention at
        exactly +-pi) without ever leaving the complex domain.  The fast
        decode path runs entirely on this stream: a sample's phase is
        nonnegative iff ``out[n].imag >= 0`` (``angle`` is 0 or pi on the
        real axis, both nonnegative), and unit phasors for preamble
        folding are ``out / |out|`` instead of ``exp(j*angle(out))``,
        skipping two transcendental passes per capture.
        """
        prod = self.raw_products(samples, self.lag)
        r = self.rotation
        if r is not None:
            prod *= r
        return prod

    def unit_phasors(self, phasor_stream):
        """Normalize a phasor stream to unit magnitude.

        Zero-amplitude samples (exact silence) take the phasor of phase
        zero **after** CFO compensation — ``exp(j*cfo_correction)`` —
        matching what ``exp(j*phases)`` yields there, so the phasor and
        angle folding paths agree everywhere.
        """
        magnitude = np.abs(phasor_stream)
        zero = magnitude == 0.0
        has_zero = bool(zero.any())
        if has_zero:
            magnitude = np.where(zero, 1.0, magnitude)
        # Multiply by the reciprocal: one divide pass over the real
        # magnitudes instead of two per complex element.
        np.reciprocal(magnitude, out=magnitude)
        unit = phasor_stream * magnitude
        if has_zero:
            c = self.cfo_correction
            fill = (
                complex(np.cos(c), np.sin(c))
                if c is not None and c != 0.0
                else 1.0 + 0.0j
            )
            unit[zero] = fill
        return unit

    # -- unsynchronized detection (Section IV-C) -----------------------------

    def detect_bits(self, phases, tau=None):
        """All unsynchronized bit detections in a phase stream.

        A window fires for bit 1 when its nonnegative count is at least
        ``window - tau`` and for bit 0 when the count is at most ``tau``.
        Windows firing for the same bit value within one plateau (gaps
        smaller than the window) merge into a single :class:`BitDetection`
        anchored at the cluster's first index.
        """
        tau = self.tau if tau is None else int(tau)
        phases = np.asarray(phases)
        counts = sliding_count(phases >= 0, self.window)
        if counts.size == 0:
            return []
        detections = []
        for bit, firing in (
            (1, counts >= self.window - tau),
            (0, counts <= tau),
        ):
            indices = np.flatnonzero(firing)
            if indices.size == 0:
                continue
            splits = np.flatnonzero(np.diff(indices) > self.window) + 1
            for cluster in np.split(indices, splits):
                extreme = counts[cluster].max() if bit == 1 else counts[cluster].min()
                detections.append(
                    BitDetection(index=int(cluster[0]), bit=bit, count=int(extreme))
                )
        detections.sort(key=lambda d: d.index)
        return detections

    def decode_unsynchronized(self, phases, tau=None):
        """Bit sequence read off the detection stream, in time order."""
        return [d.bit for d in self.detect_bits(phases, tau=tau)]

    # -- synchronized decoding (Section V) -----------------------------------

    def decode_synchronized(self, phases, first_bit_index, n_bits):
        """Majority-vote decode of ``n_bits`` starting at a known index.

        ``first_bit_index`` is the phase-stream index where the first
        bit's stable window starts (the preamble capture provides it);
        subsequent bits are ``bit_period`` apart.  Bits whose window runs
        past the end of the stream are dropped.
        """
        return self.decode_synchronized_mask(
            np.asarray(phases) >= 0, first_bit_index, n_bits
        )

    def decode_synchronized_mask(self, nonneg, first_bit_index, n_bits):
        """:meth:`decode_synchronized` on a precomputed nonnegative mask.

        The fast phasor path feeds ``phasor_stream(...).imag >= 0`` here
        directly, never materializing the angle stream.  All windows are
        counted in one cumulative-sum pass.
        """
        nonneg = np.asarray(nonneg, dtype=bool)
        if REGISTRY.enabled and nonneg.size:
            # Sign-run-length distribution of the stream being decoded —
            # the paper's diagnostic for plateau quality (long ~window
            # runs = clean plateaus, short runs = noise flips).
            changes = np.flatnonzero(nonneg[1:] != nonneg[:-1]) + 1
            boundaries = np.concatenate(([0], changes, [nonneg.size]))
            _PHASE_RUN_LENGTH.observe_array(np.diff(boundaries))
        # Window starts are monotonic, so the in-bounds windows form a
        # prefix (matching the original early-exit loop).
        n_fit = 0
        if first_bit_index >= 0 and nonneg.size >= first_bit_index + self.window:
            n_fit = 1 + (nonneg.size - self.window - first_bit_index) // self.bit_period
        n_fit = min(int(n_bits), n_fit)
        if n_fit <= 0:
            return SyncDecodeResult(bits=(), counts=(), positions=())
        starts = first_bit_index + self.bit_period * np.arange(n_fit)
        if n_fit * self.window <= nonneg.size:
            # Gather just the bit windows — far cheaper than a
            # cumulative sum over the whole stream.
            counts = nonneg[starts[:, None] + np.arange(self.window)].sum(axis=1)
        else:
            csum = np.empty(nonneg.size + 1, dtype=np.int64)
            csum[0] = 0
            np.cumsum(nonneg, dtype=np.int64, out=csum[1:])
            counts = csum[starts + self.window] - csum[starts]
        bits = counts >= self.tau_sync
        if REGISTRY.enabled:
            _BITS_DECODED.inc(n_fit)
            _VOTE_MARGIN.observe_array(
                np.abs(counts.astype(np.int64) - self.tau_sync)
            )
        return SyncDecodeResult(
            bits=tuple(int(b) for b in bits),
            counts=tuple(int(c) for c in counts),
            positions=tuple(int(s) for s in starts),
        )
