"""SymBee: the paper's primary contribution.

Encoding (ZigBee side) writes one byte per SymBee bit into a legitimate
802.15.4 payload — the (6,7) symbol pair for bit 1, (E,F) for bit 0 —
and decoding (WiFi side) thresholds the phase-difference stream the WiFi
idle-listening module computes anyway.  See DESIGN.md Section 2 for how
the paper's internal inconsistencies were resolved.
"""

from repro.core.encoder import SymBeeEncoder, PREAMBLE_BITS
from repro.core.phase import (
    compensate_cfo,
    cfo_compensation_phase,
    cross_observed_phases,
    stable_run_lengths,
    discrete_phase_levels,
)
from repro.core.decoder import SymBeeDecoder, BitDetection, SyncDecodeResult
from repro.core.preamble import capture_preamble, PreambleCapture
from repro.core.coding import (
    hamming74_encode,
    hamming74_decode,
    interleave,
    deinterleave,
)
from repro.core.scrambler import scramble, descramble, prbs7
from repro.core.adaptive import AdaptiveCoding, AdaptiveFec, LinkQualityEstimator
from repro.core.template import TemplateDecoder
from repro.core.energy import EnergyBudget, symbee_budget, energy_comparison
from repro.core.convolutional import conv_encode, viterbi_decode
from repro.core.frame import SymBeeFrame, build_frame_bits, parse_frame_bits
from repro.core.link import SymBeeLink, LinkResult
from repro.core.analytics import (
    phase_error_probability,
    ber_from_phase_error,
    analytic_ber_curve,
    raw_bit_rate_bps,
    packet_level_bandwidth_hz,
    symbol_level_bandwidth_hz,
)

__all__ = [
    "SymBeeEncoder",
    "PREAMBLE_BITS",
    "compensate_cfo",
    "cfo_compensation_phase",
    "cross_observed_phases",
    "stable_run_lengths",
    "discrete_phase_levels",
    "SymBeeDecoder",
    "BitDetection",
    "SyncDecodeResult",
    "capture_preamble",
    "PreambleCapture",
    "hamming74_encode",
    "hamming74_decode",
    "interleave",
    "deinterleave",
    "scramble",
    "descramble",
    "prbs7",
    "AdaptiveCoding",
    "AdaptiveFec",
    "LinkQualityEstimator",
    "TemplateDecoder",
    "EnergyBudget",
    "symbee_budget",
    "energy_comparison",
    "conv_encode",
    "viterbi_decode",
    "SymBeeFrame",
    "build_frame_bits",
    "parse_frame_bits",
    "SymBeeLink",
    "LinkResult",
    "phase_error_probability",
    "ber_from_phase_error",
    "analytic_ber_curve",
    "raw_bit_rate_bps",
    "packet_level_bandwidth_hz",
    "symbol_level_bandwidth_hz",
]
