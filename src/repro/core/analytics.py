"""Analytical models (paper Sections II-B and VII).

* ``phase_error_probability`` — Pr_eps, the chance a single stable-phase
  value crosses the zero decision boundary at a given SNR.  The paper
  obtained the distribution empirically from GNURadio; here it is
  estimated by Monte Carlo over the *identical* computation
  (angle(x[n] x*[n+16]) of a noisy 0.5 MHz tone), plus a closed-form
  Gaussian approximation for cross-checking.
* ``ber_from_phase_error`` — the paper's Eq. 2: decoding is majority
  voting over 84 values, so BER is a binomial tail.
* Rate arithmetic: the 31.25 kbps raw rate, the packet-level
  1.736 kHz vs symbol-level 62.5 kHz bandwidth argument, and the
  145.4x speedup figure.
"""

import numpy as np
from scipy import stats

from repro.constants import (
    SYMBEE_BIT_DURATION,
    SYMBEE_RAW_BIT_RATE,
    SYMBEE_STABLE_PHASE,
    SYMBEE_STABLE_WINDOW_20MHZ,
    WIFI_SAMPLE_RATE_20MHZ,
    ZIGBEE_SYMBOL_DURATION,
)
from repro.dsp.noise import complex_gaussian
from repro.dsp.signal_ops import db_to_linear


def phase_error_probability(snr_db, rng, n_samples=200_000, lag=16):
    """Monte-Carlo Pr_eps at a given SNR.

    Simulates the continuous sinusoid inside a SymBee bit 1 (phase
    +4pi/5), adds noise at ``snr_db`` over the sampling bandwidth, and
    counts how often the observed phase difference falls below the zero
    boundary (wrapping past pi counts too, exactly as a real decoder
    would see it).  By symmetry the same value applies to bit 0.
    """
    n = n_samples + lag
    t = np.arange(n) / WIFI_SAMPLE_RATE_20MHZ
    tone = -np.exp(-1j * 2.0 * np.pi * 0.5e6 * t)
    noise = complex_gaussian(n, 1.0 / db_to_linear(snr_db), rng)
    x = tone + noise
    dp = np.angle(x[:-lag] * np.conj(x[lag:]))
    return float(np.mean(dp < 0.0))


def phase_error_probability_gaussian(snr_db, lag=16):
    """Closed-form Gaussian approximation of Pr_eps.

    Each sample's phase error is approximately Normal(0, 1/(2*SNR)) at
    moderate SNR; the difference of two independent phase errors has
    variance 1/SNR.  An error occurs when the difference pushes the
    nominal +-4pi/5 across the nearer decision boundary — the zero
    boundary is 4pi/5 away, the wrap boundary (pi) only pi/5 away, so
    both tails contribute.  Accurate above roughly 0 dB; the Monte-Carlo
    estimator is authoritative below that.
    """
    snr = db_to_linear(snr_db)
    sigma = np.sqrt(1.0 / snr)
    to_zero = SYMBEE_STABLE_PHASE
    to_wrap = np.pi - SYMBEE_STABLE_PHASE
    return float(stats.norm.sf(to_zero / sigma) + stats.norm.sf(to_wrap / sigma))


def ber_from_phase_error(pr_eps, window=SYMBEE_STABLE_WINDOW_20MHZ, threshold=None):
    """Paper Eq. 2: binomial tail of the majority vote.

    ``BER = sum_{l=threshold..window} C(window, l) p^l (1-p)^(window-l)``
    with the paper's threshold of half the window (42 of 84).
    """
    if not 0.0 <= pr_eps <= 1.0:
        raise ValueError("pr_eps must be a probability")
    if threshold is None:
        threshold = window // 2
    return float(stats.binom.sf(threshold - 1, window, pr_eps))


def analytic_ber_curve(snr_grid_db, rng, n_samples=200_000):
    """BER(SNR) by Eq. 2 over Monte-Carlo Pr_eps — the paper's Figure 12."""
    return [
        ber_from_phase_error(phase_error_probability(snr, rng, n_samples))
        for snr in snr_grid_db
    ]


def raw_bit_rate_bps():
    """SymBee's raw rate: one bit per two ZigBee symbols = 31.25 kbps."""
    return SYMBEE_RAW_BIT_RATE


def packet_level_bandwidth_hz(packet_duration_s=576e-6):
    """Modulation bandwidth of packet-level CTC (Section II-B: 1.736 kHz)."""
    if packet_duration_s <= 0:
        raise ValueError("packet duration must be positive")
    return 1.0 / packet_duration_s


def symbol_level_bandwidth_hz():
    """Modulation bandwidth of symbol-level CTC (Section II-B: 62.5 kHz)."""
    return 1.0 / ZIGBEE_SYMBOL_DURATION


def shannon_gain_factor(packet_duration_s=576e-6):
    """The paper's "36x" bandwidth expansion from packet to symbol level."""
    return symbol_level_bandwidth_hz() / packet_level_bandwidth_hz(packet_duration_s)


def speedup_versus(baseline_bps):
    """SymBee's raw-rate multiple over a baseline (145.4x over C-Morse)."""
    if baseline_bps <= 0:
        raise ValueError("baseline rate must be positive")
    return raw_bit_rate_bps() / baseline_bps


def bit_airtime_seconds():
    """On-air time of one SymBee bit (32 us)."""
    return SYMBEE_BIT_DURATION


def effective_throughput_bps(data_bits, include_mac=True, ifs_seconds=192e-6):
    """Sustained rate after protocol overheads (what a deployment sees).

    The paper's 31.25 kbps is the in-payload symbol rate.  A continuous
    sender also pays, per packet: the PHY header (SHR + PHR, 6 bytes),
    the MAC header + FCS (11 bytes), the SymBee preamble (4 bits = 4
    payload bytes), the SymBee frame header/CRC (40 bits), and the
    inter-frame spacing (LIFS, 40 symbols = 640 us for long frames; the
    default here uses the 192 us SIFS-like value for short ones —
    overridable).  ``data_bits`` is the application payload per frame.
    """
    from repro.core.frame import frame_overhead_bits
    from repro.zigbee.frame import ppdu_duration_seconds
    from repro.zigbee.mac import MAC_OVERHEAD_BYTES

    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    payload_bytes = 4 + frame_overhead_bits() + data_bits  # 1 byte per bit
    mac_bytes = MAC_OVERHEAD_BYTES if include_mac else 0
    airtime = ppdu_duration_seconds(payload_bytes + mac_bytes) + ifs_seconds
    return data_bits / airtime
