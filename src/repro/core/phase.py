"""Cross-observed phase extraction and CFO compensation.

This module glues the WiFi idle-listening output to SymBee semantics:

* :func:`cross_observed_phases` — the dp[n] stream for a capture;
* :func:`compensate_cfo` — the paper's Appendix-B correction.  Because
  ZigBee channels are spaced 5 MHz and every overlapping WiFi/ZigBee
  centre-frequency offset is (3 + 5m) MHz, the offset's contribution to
  dp is the *same* modulo 2*pi for every channel pair, and adding the
  constant +4*pi/5 cancels it;
* stable-phase analysis helpers used by the Appendix-A reproduction and
  the symbol-pair ablation.
"""

import numpy as np

from repro.constants import SYMBEE_STABLE_PHASE
from repro.dsp.runs import longest_run
from repro.dsp.signal_ops import wrap_phase
from repro.wifi.idle_listening import phase_differences


def cross_observed_phases(samples, lag):
    """The idle-listening phase stream dp[n] for a baseband capture."""
    return phase_differences(samples, lag)


def cfo_compensation_phase(frequency_offset_hz, lag, sample_rate):
    """Phase to *add* to dp to undo a centre-frequency offset.

    dp'[n] = dp[n] - 2*pi*f_delta*lag*Ts, so the correction is
    ``+2*pi*f_delta*lag/fs`` wrapped to (-pi, pi].  For every overlapping
    ZigBee/WiFi channel pair this equals +4*pi/5 (paper Appendix B).
    """
    return float(wrap_phase(2.0 * np.pi * frequency_offset_hz * lag / sample_rate))


def compensate_cfo(phases, correction=SYMBEE_STABLE_PHASE):
    """Apply the constant Appendix-B correction and re-wrap."""
    return wrap_phase(np.asarray(phases) + correction)


def pair_phase_stream(symbol_pair, sample_rate=20e6, lag=None):
    """Noiseless dp stream of one two-symbol ZigBee waveform.

    The pair is rendered in isolation at baseband (no CFO), so the stream
    is exactly what a CFO-compensated WiFi receiver would see.
    """
    from repro.zigbee.oqpsk import OqpskModulator

    if lag is None:
        lag = int(round(sample_rate * 0.8e-6))
    mod = OqpskModulator(sample_rate)
    waveform = mod.modulate_symbols(list(symbol_pair))
    return cross_observed_phases(waveform, lag)


def stable_run_lengths(symbol_pair, sample_rate=20e6, tolerance=1e-6):
    """Longest exact-plateau runs at -4pi/5 and +4pi/5 for a symbol pair.

    Returns ``(negative_run, positive_run)``.  The paper's claim (Section
    IV-A) is that (6,7) and (E,F) maximize these over all pairs; the
    ablation bench verifies it exhaustively.
    """
    dp = pair_phase_stream(symbol_pair, sample_rate)
    neg = longest_run(np.abs(dp + SYMBEE_STABLE_PHASE) < tolerance)
    pos = longest_run(np.abs(dp - SYMBEE_STABLE_PHASE) < tolerance)
    return neg, pos


def sign_run_lengths(symbol_pair, sample_rate=20e6):
    """Longest same-sign runs (what the sign-threshold decoder truly sees)."""
    dp = pair_phase_stream(symbol_pair, sample_rate)
    return longest_run(dp < 0), longest_run(dp >= 0)


def discrete_phase_levels(sample_rate=20e6, amplitude_floor=1e-3, decimals=6):
    """Observed discrete dp levels across all 256 symbol pairs.

    Appendix A derives 17 possible values, +-i*pi/10 for i = 0..8, for
    samples inside sinusoidal regions.  Samples near pulse zero-crossings
    have ill-defined angles and are excluded via ``amplitude_floor``
    (relative to peak amplitude).
    """
    from repro.zigbee.oqpsk import OqpskModulator

    lag = int(round(sample_rate * 0.8e-6))
    mod = OqpskModulator(sample_rate)
    levels = set()
    for a in range(16):
        for b in range(16):
            x = mod.modulate_symbols([a, b])
            valid = (np.abs(x[:-lag]) > amplitude_floor) & (
                np.abs(x[lag:]) > amplitude_floor
            )
            dp = np.angle(x[:-lag] * np.conj(x[lag:]))
            for value in np.round(dp[valid], decimals):
                levels.add(float(value))
    return sorted(levels)
