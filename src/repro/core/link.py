"""End-to-end SymBee link: ZigBee sender -> channel -> WiFi receiver.

This is the harness every experiment drives.  One ``send_bits`` call runs
the full paper pipeline:

1. encode the bits (plus preamble) into a legitimate 802.15.4 packet,
2. modulate at the ZigBee channel frequency,
3. apply the link channel (path loss / fading / Doppler),
4. assemble the WiFi baseband capture: downconversion with the true
   centre-frequency offset, co-channel WiFi interference bursts, and the
   receiver noise floor over the full sampling bandwidth,
5. recycle idle listening for the phase stream, capture the preamble by
   folding, and majority-vote decode the message bits.
"""

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import (
    DEFAULT_NOISE_FIGURE_DB,
    DEFAULT_TX_POWER_DBM,
    SYMBEE_BIT0_SYMBOLS,
    SYMBEE_PREAMBLE_BITS,
    SYMBEE_STABLE_PHASE,
    WIFI_SAMPLE_RATE_20MHZ,
)
from repro.core.decoder import SymBeeDecoder
from repro.core.encoder import SymBeeEncoder
from repro.core.phase import cfo_compensation_phase
from repro.core.preamble import capture_preamble
from repro.dsp.signal_ops import linear_to_db, signal_power, watts_to_dbm
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.runtime.timing import StageTimings
from repro.wifi.front_end import WifiFrontEnd
from repro.zigbee.channels import frequency_offset_hz
from repro.zigbee.frame import PHY_OVERHEAD_BYTES
from repro.zigbee.transmitter import ZigBeeTransmitter

#: Link-level frame/bit accounting and the symbol-error taxonomy: a
#: decoded 1 that was sent as 0 (``zero_as_one``), the converse, bits
#: dropped because the decode window ran off the capture (``truncated``),
#: and whole frames lost to a preamble miss.
_M_FRAMES = REGISTRY.counter("link.frames")
_M_FRAMES_LOST = REGISTRY.counter("link.frames.lost")
_M_BITS_SENT = REGISTRY.counter("link.bits.sent")
_M_BITS_DELIVERED = REGISTRY.counter("link.bits.delivered")
_M_ERR_ZERO_AS_ONE = REGISTRY.counter("link.errors.zero_as_one")
_M_ERR_ONE_AS_ZERO = REGISTRY.counter("link.errors.one_as_zero")
_M_ERR_TRUNCATED = REGISTRY.counter("link.errors.truncated_bits")
_M_SNR = REGISTRY.gauge("link.snr_db")


@lru_cache(maxsize=4)
def stable_window_offset(sample_rate=WIFI_SAMPLE_RATE_20MHZ):
    """Offset of the stable plateau inside a SymBee bit's 640 samples.

    Measured once from a noiseless (E,F)(E,F) rendering; used for
    ground-truth bit positions in evaluations (the receiver itself never
    needs it — the preamble provides timing).
    """
    from repro.dsp.runs import run_starts
    from repro.wifi.idle_listening import phase_differences
    from repro.zigbee.oqpsk import OqpskModulator

    mod = OqpskModulator(sample_rate)
    pair = list(SYMBEE_BIT0_SYMBOLS)
    waveform = mod.modulate_symbols(pair + pair)
    lag = int(round(sample_rate * 0.8e-6))
    dp = phase_differences(waveform, lag)
    window = int(84 * sample_rate / WIFI_SAMPLE_RATE_20MHZ)
    stable = np.abs(dp - (-SYMBEE_STABLE_PHASE)) < 1e-9
    starts = run_starts(stable, window)
    if starts.size == 0:
        raise RuntimeError("stable plateau not found — modulator regression")
    return int(starts[0])


@dataclass
class LinkResult:
    """Outcome of one SymBee frame transmission."""

    sent_bits: tuple
    decoded_bits: tuple
    preamble_captured: bool
    bit_errors: int
    counts: tuple               # nonnegative phase count per decoded bit
    rx_power_dbm: float
    snr_db: float
    captured_data_start: "int | None"
    true_data_start: int
    phases: "np.ndarray | None" = None

    @property
    def n_bits(self):
        return len(self.sent_bits)

    @property
    def ber(self):
        """Bit error rate; a lost frame (no preamble) counts all bits."""
        if self.n_bits == 0:
            return 0.0
        if not self.preamble_captured:
            return 1.0
        return self.bit_errors / self.n_bits

    @property
    def delivered_bits(self):
        """Correctly decoded bits (zero when the preamble was missed)."""
        if not self.preamble_captured:
            return 0
        return self.n_bits - self.bit_errors


class SymBeeLink:
    """A configured sender/receiver pair plus its channel."""

    def __init__(
        self,
        zigbee_channel=13,
        wifi_channel=1,
        sample_rate=WIFI_SAMPLE_RATE_20MHZ,
        tx_power_dbm=DEFAULT_TX_POWER_DBM,
        link_channel=None,
        interference=None,
        noise_figure_db=DEFAULT_NOISE_FIGURE_DB,
        include_noise=True,
        tau=None,
        tau_sync=None,
        nibble_order="low-first",
        lead_in_samples=2000,
        tail_samples=1000,
        residual_cfo_hz=0.0,
        track_residual_cfo=False,
    ):
        self.transmitter = ZigBeeTransmitter(
            channel=zigbee_channel,
            tx_power_dbm=tx_power_dbm,
            sample_rate=sample_rate,
            nibble_order=nibble_order,
        )
        self.front_end = WifiFrontEnd(
            channel=wifi_channel,
            sample_rate=sample_rate,
            noise_figure_db=noise_figure_db,
        )
        self.encoder = SymBeeEncoder(nibble_order=nibble_order)
        offset = frequency_offset_hz(zigbee_channel, wifi_channel)
        lag = int(round(sample_rate * 0.8e-6))
        correction = cfo_compensation_phase(offset, lag, sample_rate)
        self.decoder = SymBeeDecoder(
            sample_rate=sample_rate,
            tau=tau,
            tau_sync=tau_sync,
            cfo_correction=correction,
        )
        self.link_channel = link_channel
        self.interference = interference
        self.include_noise = include_noise
        self.lead_in_samples = int(lead_in_samples)
        self.tail_samples = int(tail_samples)
        #: Carrier offset beyond the channel grid (crystal ppm error of
        #: the ZigBee transmitter); an impairment the paper's Appendix B
        #: does not cover.  +-40 ppm at 2.44 GHz is about +-100 kHz.
        self.residual_cfo_hz = float(residual_cfo_hz)
        #: When True, the decoder estimates the residual offset from the
        #: captured preamble's mean fold angle (which a clean preamble
        #: pins at -4pi/5) and de-rotates the phase stream before the
        #: majority vote — an extension beyond the paper.
        self.track_residual_cfo = bool(track_residual_cfo)
        #: Wall-clock per-stage counters (modulate / channel / front_end
        #: / decode), accumulated across ``send_bits`` calls; the
        #: Monte-Carlo runtime merges worker shards into one breakdown.
        self.timings = StageTimings()

    # -- geometry -------------------------------------------------------------

    def _payload_start_samples(self):
        """Samples from packet start to the first payload byte.

        PHY overhead (SHR + PHR) plus the 9 MAC header bytes precede the
        SymBee payload; each byte spans one bit period.
        """
        header_bytes = PHY_OVERHEAD_BYTES + 9
        return header_bytes * self.decoder.bit_period

    def true_bit_positions(self, n_bits):
        """Ground-truth stable-window start of each message bit.

        Index 0 is the first *message* bit (after the preamble), in
        phase-stream coordinates of a capture built by :meth:`send_bits`.
        """
        base = (
            self.lead_in_samples
            + self._payload_start_samples()
            + SYMBEE_PREAMBLE_BITS * self.decoder.bit_period
            + stable_window_offset(self.decoder.sample_rate)
        )
        return [base + k * self.decoder.bit_period for k in range(n_bits)]

    # -- transmission -----------------------------------------------------------

    def send_bits(
        self,
        bits,
        rng,
        keep_phases=False,
        decode_synchronized=True,
        mac_sequence=None,
    ):
        """Send one SymBee frame of raw message bits and decode it.

        ``decode_synchronized=False`` skips preamble capture and uses the
        ground-truth timing (used by ablation studies isolating the
        decoder from the capture stage).  ``mac_sequence`` pins the MAC
        sequence number instead of consuming the transmitter's counter —
        the parallel runtime uses it so a trial's frame bytes depend only
        on the trial index, not on which worker runs it.

        The receive side runs on the decoder's phasor stream: votes are
        sign tests on the rotated autocorrelation products and preamble
        folding consumes unit phasors, so the angle stream is only
        materialized when ``keep_phases`` or residual-CFO tracking needs
        it.  Decisions are identical to the angle-domain formulation.
        """
        timings = self.timings
        with timings.stage("modulate"), TRACER.span("link.modulate"):
            bits = tuple(int(b) for b in bits)
            payload = self.encoder.encode_message(bits)
            if mac_sequence is None:
                frame = self.transmitter.build_frame(payload)
            else:
                frame = self.transmitter.build_frame(
                    payload, sequence=int(mac_sequence) & 0xFF
                )
            waveform = self.transmitter.transmit_frame(frame)

        with timings.stage("channel"), TRACER.span("link.channel"):
            if self.link_channel is not None:
                rx_waveform = self.link_channel.apply(waveform, rng)
            else:
                rx_waveform = waveform
            if self.residual_cfo_hz != 0.0:
                from repro.dsp.signal_ops import mix

                rx_waveform = mix(
                    rx_waveform, self.residual_cfo_hz, self.decoder.sample_rate
                )

        with timings.stage("front_end"), TRACER.span("link.front_end"):
            rx_power = signal_power(rx_waveform)
            rx_power_dbm = float(watts_to_dbm(rx_power))
            snr_db = float(
                linear_to_db(rx_power / self.front_end.noise_power_watts)
            )

            total = self.lead_in_samples + rx_waveform.size + self.tail_samples
            contributions = [
                (rx_waveform, self.lead_in_samples, self.transmitter.center_frequency)
            ]
            if self.interference is not None:
                contributions += self.interference.contributions(
                    total, rx_power, rng, self.front_end.center_frequency
                )
            capture = self.front_end.capture(
                contributions, total, rng=rng, include_noise=self.include_noise
            )

        with timings.stage("decode"), TRACER.span("link.decode"):
            phasors = self.decoder.phasor_stream(capture)
            phases = None

            true_start = self.true_bit_positions(1)[0]
            if decode_synchronized:
                pre = capture_preamble(
                    None, self.decoder, unit_phasors=self.decoder.unit_phasors(phasors)
                )
                captured = pre is not None
                data_start = pre.data_start if captured else None
            else:
                captured = True
                data_start = true_start

            if captured and decode_synchronized and self.track_residual_cfo:
                from repro.dsp.signal_ops import wrap_phase

                deviation = wrap_phase(pre.mean_angle + SYMBEE_STABLE_PHASE)
                phases = wrap_phase(self.decoder.phases(capture) - deviation)

            if captured:
                if phases is not None:
                    result = self.decoder.decode_synchronized(
                        phases, data_start, len(bits)
                    )
                else:
                    result = self.decoder.decode_synchronized_mask(
                        phasors.imag >= 0.0, data_start, len(bits)
                    )
                decoded = result.bits
                counts = result.counts
                errors = sum(
                    1 for sent, got in zip(bits, decoded) if sent != got
                ) + max(0, len(bits) - len(decoded))
            else:
                decoded, counts, errors = (), (), len(bits)

            if keep_phases and phases is None:
                # The exact angle-path stream (wrap convention included),
                # since tests assert on stored phase values.
                phases = self.decoder.phases(capture)

        if REGISTRY.enabled:
            _M_FRAMES.inc()
            _M_BITS_SENT.inc(len(bits))
            _M_SNR.set(snr_db)
            if captured:
                zero_as_one = one_as_zero = 0
                for sent, got in zip(bits, decoded):
                    if sent != got:
                        if got:
                            zero_as_one += 1
                        else:
                            one_as_zero += 1
                _M_ERR_ZERO_AS_ONE.inc(zero_as_one)
                _M_ERR_ONE_AS_ZERO.inc(one_as_zero)
                _M_ERR_TRUNCATED.inc(max(0, len(bits) - len(decoded)))
                _M_BITS_DELIVERED.inc(len(bits) - errors)
            else:
                _M_FRAMES_LOST.inc()

        return LinkResult(
            sent_bits=bits,
            decoded_bits=decoded,
            preamble_captured=captured,
            bit_errors=errors,
            counts=counts,
            rx_power_dbm=rx_power_dbm,
            snr_db=snr_db,
            captured_data_start=data_start if captured else None,
            true_data_start=true_start,
            phases=phases if keep_phases else None,
        )

    def send_frame(self, data_bits, sequence=0, rng=None, **kwargs):
        """Send a full SymBee frame (header + CRC) and parse it back.

        Returns ``(LinkResult, SymBeeFrame | None)``; the frame is ``None``
        when the preamble was missed or the stream was too mangled to
        parse.  The CRC verdict is in ``frame.crc_ok``.
        """
        from repro.core.frame import build_frame_bits, parse_frame_bits

        if rng is None:
            raise ValueError("rng is required")
        frame_bits = build_frame_bits(list(data_bits), sequence=sequence)
        result = self.send_bits(frame_bits, rng, **kwargs)
        frame = parse_frame_bits(result.decoded_bits) if result.preamble_captured else None
        return result, frame
