"""Energy accounting: the paper's "energy-economic" claim, quantified.

Two claims to check numerically:

* **Sender side** — SymBee moves 145x more bits per packet than
  packet-level CTC, so the TX energy *per delivered bit* collapses.
  The radio model uses TelosB/CC2420 datasheet currents (the paper's
  sender hardware).
* **Receiver side** — decoding recycles the idle-listening output the
  WiFi chip computes anyway, so the marginal receive cost is a handful
  of integer comparisons per bit (measured in
  ``benchmarks/test_bench_components.py`` as far-faster-than-realtime).

This module provides the sender-side model and per-scheme comparisons.
"""

from dataclasses import dataclass

from repro.constants import SYMBEE_BIT_DURATION

#: CC2420 current draw at selected TX power settings (datasheet), amps.
CC2420_TX_CURRENT_A = {
    0: 17.4e-3,
    -1: 16.5e-3,
    -3: 15.2e-3,
    -5: 13.9e-3,
    -7: 12.5e-3,
    -10: 11.2e-3,
    -15: 9.9e-3,
    -25: 8.5e-3,
}

#: TelosB supply voltage.
SUPPLY_VOLTAGE_V = 3.0

#: CC2420 idle (RX-off, oscillator on) current — charged to the gaps a
#: modulation scheme forces between its packets.
IDLE_CURRENT_A = 0.426e-3


def tx_current_a(tx_power_dbm):
    """Interpolated CC2420 TX current for a power setting."""
    points = sorted(CC2420_TX_CURRENT_A)
    if tx_power_dbm <= points[0]:
        return CC2420_TX_CURRENT_A[points[0]]
    if tx_power_dbm >= points[-1]:
        return CC2420_TX_CURRENT_A[points[-1]]
    for low, high in zip(points, points[1:]):
        if low <= tx_power_dbm <= high:
            fraction = (tx_power_dbm - low) / (high - low)
            return (
                CC2420_TX_CURRENT_A[low]
                + fraction * (CC2420_TX_CURRENT_A[high] - CC2420_TX_CURRENT_A[low])
            )
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class EnergyBudget:
    """Sender energy for delivering one message."""

    scheme: str
    bits: int
    on_air_s: float
    idle_s: float
    tx_power_dbm: float

    @property
    def tx_energy_j(self):
        return tx_current_a(self.tx_power_dbm) * SUPPLY_VOLTAGE_V * self.on_air_s

    @property
    def idle_energy_j(self):
        return IDLE_CURRENT_A * SUPPLY_VOLTAGE_V * self.idle_s

    @property
    def total_energy_j(self):
        return self.tx_energy_j + self.idle_energy_j

    @property
    def energy_per_bit_j(self):
        if self.bits <= 0:
            return float("inf")
        return self.total_energy_j / self.bits


def symbee_budget(bits, tx_power_dbm=0.0, overhead_bits=44):
    """Energy to deliver ``bits`` over SymBee frames.

    ``overhead_bits`` covers the SymBee preamble + frame header/CRC; the
    ZigBee PHY/MAC header airtime is included via the byte accounting
    (15 header bytes per packet at one bit period each).
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    payload_bits = bits + overhead_bits
    header_bytes = 15 + 2  # SHR+PHR+MAC header + FCS
    on_air = (payload_bits + header_bytes) * SYMBEE_BIT_DURATION
    return EnergyBudget(
        scheme="SymBee",
        bits=bits,
        on_air_s=on_air,
        idle_s=0.0,
        tx_power_dbm=tx_power_dbm,
    )


def packet_level_budget(scheme, bits, rng, tx_power_dbm=0.0):
    """Energy for a packet-level CTC scheme from its event schedule.

    On-air time is the sum of scheduled packet durations; the enforced
    gaps between them (the modulation's own dead time) are charged at
    idle current.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    message = rng.integers(0, 2, bits)
    events, total_duration = scheme.encode(message, rng)
    on_air = sum(e.duration_s for e in events)
    idle = max(0.0, total_duration - on_air)
    return EnergyBudget(
        scheme=scheme.name,
        bits=bits,
        on_air_s=on_air,
        idle_s=idle,
        tx_power_dbm=tx_power_dbm,
    )


def energy_comparison(bits, rng, tx_power_dbm=0.0):
    """Per-bit sender energy, SymBee vs every Figure-16 baseline."""
    from repro.baselines import all_baselines

    rows = [symbee_budget(bits, tx_power_dbm)]
    rows += [
        packet_level_budget(scheme, bits, rng, tx_power_dbm)
        for scheme in all_baselines()
    ]
    return rows
