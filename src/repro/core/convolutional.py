"""Rate-1/2 K=7 convolutional code with hard-decision Viterbi decoding.

The industry-standard code (generators 133/171 octal — the same pair
802.11 uses) as a stronger FEC option for SymBee links than Hamming(7,4):
at a slightly lower rate (1/2 vs 4/7) it corrects scattered *and* short
bursty errors, trading decoder state for robustness.  The FEC ablation
bench (`benchmarks/test_bench_ablation_fec.py`) measures where each code
wins on the real link.

Encoding appends K-1 = 6 tail zeros so the trellis terminates in state 0;
the decoder assumes and exploits that.
"""

import numpy as np

CONSTRAINT_LENGTH = 7
_G0 = 0o133
_G1 = 0o171
_N_STATES = 1 << (CONSTRAINT_LENGTH - 1)   # 64


def _parity(value):
    return bin(value).count("1") & 1


def _build_tables():
    """Per (state, input): next state and the two output bits."""
    next_state = np.zeros((_N_STATES, 2), dtype=np.int64)
    outputs = np.zeros((_N_STATES, 2, 2), dtype=np.int8)
    for state in range(_N_STATES):
        for bit in (0, 1):
            register = (bit << (CONSTRAINT_LENGTH - 1)) | state
            next_state[state, bit] = register >> 1
            outputs[state, bit, 0] = _parity(register & _G0)
            outputs[state, bit, 1] = _parity(register & _G1)
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_tables()

# Reverse view for the Viterbi add-compare-select: for each state s, the
# two (previous state, input bit) pairs that lead into s.
_PREDECESSORS = [[] for _ in range(_N_STATES)]
for _s in range(_N_STATES):
    for _b in (0, 1):
        _PREDECESSORS[_NEXT_STATE[_s, _b]].append((_s, _b))
_PREV_STATE = np.array(
    [[p[0] for p in preds] for preds in _PREDECESSORS], dtype=np.int64
)
_PREV_BIT = np.array(
    [[p[1] for p in preds] for preds in _PREDECESSORS], dtype=np.int8
)


def conv_encode_raw(bits):
    """Encode without appending a tail.

    The caller's bit stream must end in at least K-1 zeros for
    :func:`viterbi_decode`'s terminated-trellis assumption to hold (the
    802.11 SIGNAL field carries its own 6 tail bits, for example).
    """
    bits = np.asarray(list(bits), dtype=np.int8)
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must be 0 or 1")
    out = np.empty(2 * bits.size, dtype=np.int8)
    state = 0
    for i, bit in enumerate(bits):
        out[2 * i] = _OUTPUTS[state, bit, 0]
        out[2 * i + 1] = _OUTPUTS[state, bit, 1]
        state = _NEXT_STATE[state, bit]
    return out


def conv_encode(bits):
    """Encode ``bits``; output length is ``2 * (len(bits) + 6)``."""
    bits = np.asarray(list(bits), dtype=np.int8)
    padded = np.concatenate([bits, np.zeros(CONSTRAINT_LENGTH - 1, dtype=np.int8)])
    return conv_encode_raw(padded)


def viterbi_decode(coded, n_bits=None):
    """Hard-decision Viterbi decode of a terminated codeword.

    ``coded`` must have even length; ``n_bits`` (default: inferred from
    the tail-terminated length) selects how many data bits to return.
    """
    coded = np.asarray(list(coded), dtype=np.int8)
    if coded.size % 2 != 0:
        raise ValueError("coded length must be even")
    n_steps = coded.size // 2
    if n_steps < CONSTRAINT_LENGTH - 1:
        raise ValueError("codeword shorter than the tail")
    if n_bits is None:
        n_bits = n_steps - (CONSTRAINT_LENGTH - 1)
    if not 0 <= n_bits <= n_steps:
        raise ValueError("n_bits out of range")

    observations = coded.reshape(n_steps, 2)
    metrics = np.full(_N_STATES, 1 << 30, dtype=np.int64)
    metrics[0] = 0  # encoder starts in state 0
    survivors = np.zeros((n_steps, _N_STATES), dtype=np.int8)

    # Branch outputs viewed from the destination state.
    out0 = _OUTPUTS[_PREV_STATE[:, 0], _PREV_BIT[:, 0]]   # (_N_STATES, 2)
    out1 = _OUTPUTS[_PREV_STATE[:, 1], _PREV_BIT[:, 1]]

    for step in range(n_steps):
        observed = observations[step]
        cost0 = metrics[_PREV_STATE[:, 0]] + np.sum(out0 != observed, axis=1)
        cost1 = metrics[_PREV_STATE[:, 1]] + np.sum(out1 != observed, axis=1)
        choose1 = cost1 < cost0
        metrics = np.where(choose1, cost1, cost0)
        survivors[step] = np.where(choose1, 1, 0)

    # Trace back from state 0 (the terminated trellis end).
    state = 0
    decoded = np.empty(n_steps, dtype=np.int8)
    for step in range(n_steps - 1, -1, -1):
        which = survivors[step, state]
        decoded[step] = _PREV_BIT[state, which]
        state = _PREV_STATE[state, which]
    return decoded[:n_bits]


def conv_code_rate():
    """Asymptotic information rate (ignoring the 6-bit tail)."""
    return 0.5
