"""SymBee payload encoding — the ZigBee-side half of the CTC.

Encoding is deliberately trivial (that is the paper's point): every
SymBee bit becomes one payload byte whose two nibbles are the ZigBee
symbol pair (6,7) for bit 1 or (E,F) for bit 0.  Any commodity ZigBee
stack can do this from application code.
"""

from repro.constants import (
    SYMBEE_BIT0_SYMBOLS,
    SYMBEE_BIT1_SYMBOLS,
    SYMBEE_PREAMBLE_BITS,
)
from repro.zigbee.symbols import bytes_to_symbols, symbols_to_bytes

#: The SymBee preamble: four consecutive bit 0 (paper Section V).
PREAMBLE_BITS = (0,) * SYMBEE_PREAMBLE_BITS


class SymBeeEncoder:
    """Bits -> ZigBee payload bytes (and back, for the ZigBee-side decode).

    ``nibble_order`` controls which byte value produces the on-air symbol
    order; ``"low-first"`` (the 802.15.4 standard) yields 0x76/0xFE,
    ``"high-first"`` yields the paper's printed 0x67/0xEF.  The on-air
    symbols — and thus everything the WiFi side sees — are identical.
    """

    def __init__(self, nibble_order="low-first"):
        if nibble_order not in ("low-first", "high-first"):
            raise ValueError(f"unknown nibble_order: {nibble_order!r}")
        self.nibble_order = nibble_order
        self._bit_bytes = {
            0: symbols_to_bytes(list(SYMBEE_BIT0_SYMBOLS), nibble_order)[0],
            1: symbols_to_bytes(list(SYMBEE_BIT1_SYMBOLS), nibble_order)[0],
        }
        self._byte_bits = {v: k for k, v in self._bit_bytes.items()}

    def byte_for_bit(self, bit):
        """The payload byte encoding one SymBee bit."""
        try:
            return self._bit_bytes[int(bit)]
        except KeyError:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}") from None

    def encode_bits(self, bits):
        """One payload byte per SymBee bit, no preamble added."""
        return bytes(self.byte_for_bit(b) for b in bits)

    def encode_message(self, bits, include_preamble=True):
        """Payload for a SymBee transmission: preamble then message bits."""
        prefix = PREAMBLE_BITS if include_preamble else ()
        return self.encode_bits(list(prefix) + list(bits))

    def decode_payload(self, payload):
        """ZigBee-side decode (paper Section VI-A, cross-tech broadcast).

        A standard ZigBee node receives the packet normally and maps each
        payload byte back to a SymBee bit at the application layer.
        Returns ``None`` if any byte is not a SymBee codeword; callers
        wanting partial decodes should filter bytes themselves.
        """
        bits = []
        for byte in bytes(payload):
            if byte not in self._byte_bits:
                return None
            bits.append(self._byte_bits[byte])
        return bits

    def find_preamble(self, payload):
        """Index of the SymBee preamble in a received ZigBee payload.

        Searches for four consecutive bit-0 bytes and returns the index of
        the first message byte after them, or ``None``.
        """
        payload = bytes(payload)
        needle = bytes([self._bit_bytes[0]] * len(PREAMBLE_BITS))
        index = payload.find(needle)
        if index < 0:
            return None
        return index + len(needle)

    def symbols_for_bit(self, bit):
        """The ZigBee symbol pair a bit maps to (for tests/inspection)."""
        byte = self.byte_for_bit(bit)
        return tuple(bytes_to_symbols(bytes([byte]), self.nibble_order))
