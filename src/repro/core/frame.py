"""SymBee frame format.

The paper fixes only the budget ("maximum payload to 127 including 2
bytes control information, 1 byte data sequence and 2 bytes check sum",
Section VIII); the exact layout is this reproduction's choice, recorded
in DESIGN.md Section 2.  The over-the-air SymBee frame, one bit per
ZigBee payload byte, is::

    | preamble 4 bits (0000) | control 16 bits | sequence 8 bits
    | data bits (variable)   | CRC-16 over header+data |

control = version (4 bits) | frame type (4 bits) | data length in bits
(8 bits).  The CRC is the same ITU-T CRC-16 the 802.15.4 FCS uses,
computed over the packed header+data bits.
"""

from dataclasses import dataclass

from repro.core.encoder import PREAMBLE_BITS
from repro.zigbee.crc import crc16_itut

#: Protocol version carried in every frame.
VERSION = 1

#: Frame types: application data, channel-coordination control, ACK.
FRAME_TYPE_DATA = 0
FRAME_TYPE_CONTROL = 1
FRAME_TYPE_ACK = 2

#: Transport-layer data fragments (``repro.transport``): the FEC scheme
#: protecting the fragment rides in the frame type itself —
#: ``FRAME_TYPE_TRANSPORT_BASE + scheme_id`` for scheme ids 0 (uncoded),
#: 1 (Hamming(7,4)) and 2 (K=7 convolutional).  Keeping the scheme out
#: of the coded region lets the receiver pick the right decoder even
#: when the payload arrived damaged; a corrupted type field simply fails
#: the transport's inner checksum, which covers it implicitly.
FRAME_TYPE_TRANSPORT_BASE = 4
N_TRANSPORT_SCHEMES = 3

#: Highest frame type any current receiver should accept.
MAX_KNOWN_FRAME_TYPE = FRAME_TYPE_TRANSPORT_BASE + N_TRANSPORT_SCHEMES - 1


def transport_frame_type(scheme_id):
    """Frame type carrying a transport fragment coded with ``scheme_id``."""
    if not 0 <= scheme_id < N_TRANSPORT_SCHEMES:
        raise ValueError(f"unknown transport scheme id {scheme_id}")
    return FRAME_TYPE_TRANSPORT_BASE + scheme_id


def transport_scheme_id(frame_type):
    """Inverse of :func:`transport_frame_type`; ``None`` for other types."""
    scheme_id = frame_type - FRAME_TYPE_TRANSPORT_BASE
    if 0 <= scheme_id < N_TRANSPORT_SCHEMES:
        return scheme_id
    return None

_HEADER_BITS = 24  # control(16) + sequence(8)
_CRC_BITS = 16

#: Data-bit capacity when the whole frame must fit one ZigBee MAC payload
#: (116 bytes): 116 - 4 (preamble) - 24 (header) - 16 (CRC).
MAX_DATA_BITS = 116 - len(PREAMBLE_BITS) - _HEADER_BITS - _CRC_BITS


def _int_to_bits(value, width):
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def _bits_to_int(bits):
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def _pack_bits(bits):
    """MSB-first packing into bytes, zero-padded to a byte boundary."""
    bits = list(bits)
    out = bytearray()
    for start in range(0, len(bits), 8):
        chunk = bits[start : start + 8]
        chunk += [0] * (8 - len(chunk))
        out.append(_bits_to_int(chunk))
    return bytes(out)


@dataclass(frozen=True)
class SymBeeFrame:
    """A parsed SymBee frame."""

    data_bits: tuple
    sequence: int
    frame_type: int = FRAME_TYPE_DATA
    version: int = VERSION
    crc_ok: bool = True


def build_frame_bits(data_bits, sequence, frame_type=FRAME_TYPE_DATA):
    """Frame bits (without preamble — the encoder prepends that)."""
    data_bits = [int(b) for b in data_bits]
    if any(b not in (0, 1) for b in data_bits):
        raise ValueError("data bits must be 0/1")
    if len(data_bits) > 255:
        raise ValueError("data length field is 8 bits (max 255 bits)")
    if not 0 <= sequence <= 0xFF:
        raise ValueError("sequence must fit one byte")
    if not 0 <= frame_type <= 0xF:
        raise ValueError("frame type must fit 4 bits")
    header = (
        _int_to_bits(VERSION, 4)
        + _int_to_bits(frame_type, 4)
        + _int_to_bits(len(data_bits), 8)
        + _int_to_bits(sequence, 8)
    )
    body = header + data_bits
    crc = crc16_itut(_pack_bits(body))
    return body + _int_to_bits(crc, 16)


def parse_frame_bits(bits):
    """Parse frame bits back into a :class:`SymBeeFrame`.

    Returns ``None`` when the stream is too short or the declared length
    is inconsistent; a CRC mismatch yields a frame with ``crc_ok=False``
    so callers can still inspect best-effort contents.
    """
    bits = [int(b) for b in bits]
    if len(bits) < _HEADER_BITS + _CRC_BITS:
        return None
    version = _bits_to_int(bits[0:4])
    frame_type = _bits_to_int(bits[4:8])
    length = _bits_to_int(bits[8:16])
    sequence = _bits_to_int(bits[16:24])
    end = _HEADER_BITS + length
    if len(bits) < end + _CRC_BITS:
        return None
    data_bits = bits[_HEADER_BITS:end]
    received_crc = _bits_to_int(bits[end : end + _CRC_BITS])
    expected_crc = crc16_itut(_pack_bits(bits[:end]))
    return SymBeeFrame(
        data_bits=tuple(data_bits),
        sequence=sequence,
        frame_type=frame_type,
        version=version,
        crc_ok=received_crc == expected_crc,
    )


def frame_overhead_bits():
    """Header + CRC bits charged against every frame (preamble excluded)."""
    return _HEADER_BITS + _CRC_BITS
