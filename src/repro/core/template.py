"""Template-correlation decoding — what full-waveform matching buys.

The paper's decoder uses 84 of the 640 phase values per bit and only
their *signs*.  The remaining 556 values are not noise: they follow a
deterministic pattern fixed by the symbol pair (up to neighbour-bit
effects at the byte boundaries).  A matched decoder correlates the whole
bit period against per-bit phase templates on the unit circle:

    score_b = sum_n  cos( dp[n] - T_b[n] ),   b in {0, 1},

over the template positions that are invariant to neighbouring bits, and
picks the larger score.  This is the optimum coherent detector for
phase-only observations with von-Mises-ish noise.

Positioning: an *ablation*, not a replacement — it quantifies the SNR
the paper trades for its near-zero-cost sign test (the ablation bench
measures the gap).  Complexity is ~6x the vote decoder and it needs the
templates stored, which is exactly the "intrusion" the paper's design
avoids.
"""

from functools import lru_cache
from itertools import product

import numpy as np

from repro.constants import SYMBEE_BIT_PERIOD_20MHZ, WIFI_SAMPLE_RATE_20MHZ
from repro.core.decoder import SyncDecodeResult
from repro.core.encoder import SymBeeEncoder
from repro.core.link import stable_window_offset
from repro.wifi.idle_listening import phase_differences
from repro.zigbee.oqpsk import OqpskModulator


@lru_cache(maxsize=4)
def bit_templates(sample_rate=WIFI_SAMPLE_RATE_20MHZ):
    """Phase templates and neighbour-invariant masks for both bits.

    Returns ``(templates, mask)``: ``templates[b]`` is the bit-period
    phase pattern for bit ``b`` anchored like the decoder's windows
    (index 0 = stable-window start), and ``mask`` marks positions whose
    value is identical across all four neighbour-bit contexts.
    """
    scale = int(sample_rate / WIFI_SAMPLE_RATE_20MHZ)
    period = SYMBEE_BIT_PERIOD_20MHZ * scale
    lag = 16 * scale
    offset = stable_window_offset(sample_rate)
    encoder = SymBeeEncoder()
    modulator = OqpskModulator(sample_rate)

    templates, masks = [], []
    for bit in (0, 1):
        contexts = []
        for left, right in product((0, 1), repeat=2):
            symbols = []
            for b in (left, bit, right):
                symbols.extend(encoder.symbols_for_bit(b))
            waveform = modulator.modulate_symbols(symbols)
            dp = phase_differences(waveform, lag)
            # The middle byte starts one period in; align to its
            # stable-window start.
            start = period + offset
            contexts.append(dp[start : start + period])
        contexts = np.array(contexts)
        reference = contexts[0]
        spread = np.max(
            np.abs(np.angle(np.exp(1j * (contexts - reference[None, :])))), axis=0
        )
        masks.append(spread < 1e-6)
        templates.append(reference)

    mask = masks[0] & masks[1]
    return (np.array(templates), mask)


class TemplateDecoder:
    """Coherent full-period decoder sharing SymBeeDecoder's geometry."""

    def __init__(self, decoder):
        #: The vote decoder whose lag/period/anchoring this shares.
        self.decoder = decoder
        self.templates, self.mask = bit_templates(decoder.sample_rate)
        self._phasors = np.exp(-1j * self.templates[:, self.mask])

    def decode_synchronized(self, phases, first_bit_index, n_bits):
        """Template-score decode; mirrors SymBeeDecoder's API.

        ``counts`` in the result carries the score margin (scaled to the
        0..window range for rough comparability with vote counts).
        """
        phases = np.asarray(phases)
        period = self.decoder.bit_period
        bits, margins, positions = [], [], []
        for k in range(n_bits):
            start = first_bit_index + k * period
            end = start + period
            if start < 0 or end > phases.size:
                break
            window = np.exp(1j * phases[start:end])[self.mask]
            scores = (window[None, :] * self._phasors).real.sum(axis=1)
            bit = int(np.argmax(scores))
            bits.append(bit)
            margins.append(int(abs(scores[1] - scores[0])))
            positions.append(start)
        return SyncDecodeResult(
            bits=tuple(bits), counts=tuple(margins), positions=tuple(positions)
        )
