"""Folding-based SymBee preamble capture (paper Section V).

The preamble is four consecutive bit 0 — four (E,F) pairs — so the phase
stream contains four stable-phase plateaus exactly one bit period (640
samples) apart.  Folding the stream at that period adds the plateaus
coherently while noise averages out, letting the ordinary bit-0 decision
rule find the bit start at SNRs where a single plateau is unreliable.

Three refinements over the paper's literal description, all recorded in
DESIGN.md (the paper's testbed sent fixed '01' patterns and never
documents how capture avoids the packet's own header, so these gaps had
to be engineered here):

* **Circular folding.**  The paper sums raw phase *values* column-wise.
  Because the bit-0 plateau (-4pi/5) sits near the -pi wrap boundary,
  noisy values wrap to +pi and cancel the sum, so the literal fold loses
  most of its gain exactly when it is needed.  We fold unit phasors
  instead (:func:`repro.dsp.folding.circular_folded_profile`): the angle
  of the phasor sum is the wrap-safe average and its magnitude a free
  coherence measure.  The literal column sum remains available as
  ``mode="sum"`` for the ablation bench.
* **Relative coherence gate.**  Fold windows straddling the header and
  the true preamble ("pre-ghosts", e.g. three preamble plateaus plus a
  0x00 header byte) can reach a full negative count, but mix unequal
  phases: their fold coherence tops out near 0.8 while four identical
  plateaus give 1.0.  Requiring coherence within ``coherence_slack`` of
  the best count-qualifying window rejects every pre-ghost at any SNR.
  (The 802.15.4 PHY preamble — symbol 0 x 8, exactly four bit-periods of
  repeated structure — folds perfectly coherently too, but its phase
  pattern holds at most 70 of 84 negatives, safely under the
  ``window - tau = 74`` count floor once folding is circular.)
  Windows over four identical *message* zeros are indistinguishable from
  a preamble by construction — no detector could separate them — and are
  handled by earliest-capture-wins, which models a continuously
  listening receiver.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_PREAMBLE_BITS, SYMBEE_STABLE_PHASE
from repro.dsp.folding import circular_folded_profile, folded_profile
from repro.dsp.runs import sliding_count

_STABLE = SYMBEE_STABLE_PHASE


@dataclass(frozen=True)
class PreambleCapture:
    """A captured preamble.

    ``index`` is the phase-stream index of the first preamble bit's stable
    window (the paper's ``n0``); ``data_start`` is where the first message
    bit's window begins (``n0 + folds * bit_period``); ``coherence`` is the
    mean fold coherence of the winning window (1.0 = perfectly repeated).
    """

    index: int
    data_start: int
    negative_count: int
    coherence: float
    #: Circular-mean phase of the captured window.  For a clean preamble
    #: this is -4pi/5; any deviation measures residual carrier offset
    #: (crystal ppm error) and can be subtracted from the phase stream
    #: before decoding — see SymBeeLink(track_residual_cfo=True).
    mean_angle: float = -_STABLE


def capture_preamble(
    phases,
    decoder,
    folds=SYMBEE_PREAMBLE_BITS,
    tau=None,
    coherence_slack=0.2,
    coherence_min=0.5,
    mode="circular",
):
    """Scan a phase stream for the SymBee preamble.

    Returns the earliest window that (1) has at least ``window - tau``
    negative fold angles and (2) whose mean fold coherence is at least
    ``max(best_qualifying_coherence - coherence_slack, coherence_min)``,
    as a :class:`PreambleCapture`; ``None`` when nothing qualifies.
    ``mode="sum"`` is the paper-literal column sum (count test only).
    """
    tau = decoder.tau if tau is None else int(tau)
    phases = np.asarray(phases)

    if mode == "circular":
        profile = circular_folded_profile(phases, decoder.bit_period, folds)
        if profile.size < decoder.window:
            return None
        negative = np.angle(profile) < 0
        kernel = np.ones(decoder.window)
        coherence = (
            np.convolve(np.abs(profile) / folds, kernel, mode="valid")
            / decoder.window
        )
        # Within-window angle concentration: a real preamble window holds
        # one phase level (concentration ~1), while 802.15.4-header
        # windows — even perfectly fold-coherent ones like the PHY
        # preamble — spread across several discrete levels (~0.5).  The
        # statistic is rotation-invariant, so it also rejects header
        # ghosts under residual carrier offsets that push their negative
        # counts over the floor.
        unit = profile / np.maximum(np.abs(profile), 1e-12)
        concentration = (
            np.abs(np.convolve(unit, kernel, mode="valid")) / decoder.window
        )
    elif mode == "sum":
        summed = folded_profile(phases, decoder.bit_period, folds)
        if summed.size < decoder.window:
            return None
        negative = summed < 0
        coherence = None
        concentration = None
    else:
        raise ValueError(f"unknown fold mode: {mode!r}")

    counts = sliding_count(negative, decoder.window)
    floor = decoder.window - tau
    best_count = int(counts.max()) if counts.size else 0
    if best_count < floor:
        return None
    qualifying = counts >= floor

    if coherence is not None:
        best_coherence = float(coherence[qualifying].max())
        qualifying &= coherence >= max(
            best_coherence - coherence_slack, coherence_min
        )
        if not qualifying.any():
            return None
        best_concentration = float(concentration[qualifying].max())
        qualifying &= concentration >= max(
            best_concentration - coherence_slack, 0.6
        )

    indices = np.flatnonzero(qualifying)
    if indices.size == 0:
        return None
    # Anchor inside the first qualifying cluster at its count peak: the
    # leading window qualifies while still sliding onto the plateau (up
    # to tau samples early), whereas the peak marks the plateau proper.
    first = int(indices[0])
    breaks = np.flatnonzero(np.diff(indices) > 1)
    cluster_end = int(indices[breaks[0]]) if breaks.size else int(indices[-1])
    cluster = np.arange(first, cluster_end + 1)
    n0 = int(cluster[np.argmax(counts[cluster])])
    if mode == "circular":
        # Average the central half of the window: the edges mix in
        # junction samples whose phase is adjacent to, but not on, the
        # plateau, which would bias the residual-CFO estimate.
        quarter = decoder.window // 4
        window_sum = profile[n0 + quarter : n0 + decoder.window - quarter].sum()
        mean_angle = float(np.angle(window_sum))
    else:
        mean_angle = -SYMBEE_STABLE_PHASE
    return PreambleCapture(
        index=n0,
        data_start=n0 + folds * decoder.bit_period,
        negative_count=int(counts[n0]),
        coherence=float(coherence[n0]) if coherence is not None else 1.0,
        mean_angle=mean_angle,
    )
