"""Folding-based SymBee preamble capture (paper Section V).

The preamble is four consecutive bit 0 — four (E,F) pairs — so the phase
stream contains four stable-phase plateaus exactly one bit period (640
samples) apart.  Folding the stream at that period adds the plateaus
coherently while noise averages out, letting the ordinary bit-0 decision
rule find the bit start at SNRs where a single plateau is unreliable.

Three refinements over the paper's literal description, all recorded in
DESIGN.md (the paper's testbed sent fixed '01' patterns and never
documents how capture avoids the packet's own header, so these gaps had
to be engineered here):

* **Circular folding.**  The paper sums raw phase *values* column-wise.
  Because the bit-0 plateau (-4pi/5) sits near the -pi wrap boundary,
  noisy values wrap to +pi and cancel the sum, so the literal fold loses
  most of its gain exactly when it is needed.  We fold unit phasors
  instead (:func:`repro.dsp.folding.circular_folded_profile`): the angle
  of the phasor sum is the wrap-safe average and its magnitude a free
  coherence measure.  The literal column sum remains available as
  ``mode="sum"`` for the ablation bench.
* **Relative coherence gate.**  Fold windows straddling the header and
  the true preamble ("pre-ghosts", e.g. three preamble plateaus plus a
  0x00 header byte) can reach a full negative count, but mix unequal
  phases: their fold coherence tops out near 0.8 while four identical
  plateaus give 1.0.  Requiring coherence within ``coherence_slack`` of
  the best count-qualifying window rejects every pre-ghost at any SNR.
  (The 802.15.4 PHY preamble — symbol 0 x 8, exactly four bit-periods of
  repeated structure — folds perfectly coherently too, but its phase
  pattern holds at most 70 of 84 negatives, safely under the
  ``window - tau = 74`` count floor once folding is circular.)
  Windows over four identical *message* zeros are indistinguishable from
  a preamble by construction — no detector could separate them — and are
  handled by earliest-capture-wins, which models a continuously
  listening receiver.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBEE_PREAMBLE_BITS, SYMBEE_STABLE_PHASE
from repro.dsp.folding import folded_profile, phasor_folded_profile
from repro.dsp.runs import sliding_count, sliding_window_sum
from repro.obs.metrics import REGISTRY

_STABLE = SYMBEE_STABLE_PHASE

#: Capture outcome taxonomy: one hit counter plus one miss counter per
#: rejection stage, so a BER regression separates "never reached the
#: count floor" (low SNR) from "killed by the coherence gate" (ghosts).
_HIT = REGISTRY.counter("decoder.preamble.hit")
_MISS_SHORT = REGISTRY.counter("decoder.preamble.miss.short_stream")
_MISS_COUNT = REGISTRY.counter("decoder.preamble.miss.count_floor")
_MISS_COHERENCE = REGISTRY.counter("decoder.preamble.miss.coherence")
_MISS_CONCENTRATION = REGISTRY.counter("decoder.preamble.miss.concentration")
_COHERENCE = REGISTRY.histogram(
    "decoder.preamble.coherence",
    edges=(0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0),
)


@dataclass(frozen=True)
class PreambleCapture:
    """A captured preamble.

    ``index`` is the phase-stream index of the first preamble bit's stable
    window (the paper's ``n0``); ``data_start`` is where the first message
    bit's window begins (``n0 + folds * bit_period``); ``coherence`` is the
    mean fold coherence of the winning window (1.0 = perfectly repeated).
    """

    index: int
    data_start: int
    negative_count: int
    coherence: float
    #: Circular-mean phase of the captured window.  For a clean preamble
    #: this is -4pi/5; any deviation measures residual carrier offset
    #: (crystal ppm error) and can be subtracted from the phase stream
    #: before decoding — see SymBeeLink(track_residual_cfo=True).
    mean_angle: float = -_STABLE


def capture_preamble(
    phases,
    decoder,
    folds=SYMBEE_PREAMBLE_BITS,
    tau=None,
    coherence_slack=0.2,
    coherence_min=0.5,
    mode="circular",
    unit_phasors=None,
):
    """Scan a phase stream for the SymBee preamble.

    Returns the earliest window that (1) has at least ``window - tau``
    negative fold angles and (2) whose mean fold coherence is at least
    ``max(best_qualifying_coherence - coherence_slack, coherence_min)``,
    as a :class:`PreambleCapture`; ``None`` when nothing qualifies.
    ``mode="sum"`` is the paper-literal column sum (count test only).

    Circular mode accepts ``unit_phasors`` (``exp(j*phases)``, e.g. from
    ``SymBeeDecoder.unit_phasors``) in place of ``phases``; the fast
    receive path hands the phasor stream over directly so the angle
    stream is never materialized.  Window statistics run on O(N)
    cumulative sums, and a capture with no count-qualifying window
    returns early before any coherence work.
    """
    tau = decoder.tau if tau is None else int(tau)

    if mode == "circular":
        if unit_phasors is None:
            unit_phasors = np.exp(1j * np.asarray(phases, dtype=float))
        else:
            unit_phasors = np.asarray(unit_phasors)
        profile = phasor_folded_profile(unit_phasors, decoder.bit_period, folds)
        if profile.size < decoder.window:
            _MISS_SHORT.inc()
            return None
        # angle(profile) < 0 without computing angles: atan2 is negative
        # iff imag < 0, or exactly -pi for (-0.0 imag, negative real).
        negative = profile.imag < 0.0
        if (profile.imag == 0.0).any():
            negative |= (
                np.signbit(profile.imag)
                & (profile.imag == 0.0)
                & (profile.real < 0.0)
            )
    elif mode == "sum":
        summed = folded_profile(phases, decoder.bit_period, folds)
        if summed.size < decoder.window:
            _MISS_SHORT.inc()
            return None
        negative = summed < 0
        profile = None
    else:
        raise ValueError(f"unknown fold mode: {mode!r}")

    counts = sliding_count(negative, decoder.window)
    floor = decoder.window - tau
    best_count = int(counts.max()) if counts.size else 0
    if best_count < floor:
        _MISS_COUNT.inc()
        return None
    indices = np.flatnonzero(counts >= floor)
    coherence_at = {}

    if mode == "circular":
        # Coherence/concentration are only consulted at count-qualifying
        # windows, which are a tiny fraction of the stream — gather just
        # those windows instead of running full sliding sums.  When the
        # candidate set is unusually dense (clean captures full of zero
        # bits), the gather would exceed the stream size and the O(N)
        # cumulative-sum path wins, so fall back to it.
        window = decoder.window
        if indices.size * window <= profile.size:
            win = profile[indices[:, None] + np.arange(window)]
            win_mag = np.abs(win)
            coherence_q = win_mag.sum(axis=1) / (folds * window)
        else:
            magnitude = np.abs(profile)
            win = win_mag = None
            coherence_q = (
                sliding_window_sum(magnitude, window)[indices] / (folds * window)
            )
        best_coherence = float(coherence_q.max())
        keep = coherence_q >= max(best_coherence - coherence_slack, coherence_min)
        if not keep.any():
            _MISS_COHERENCE.inc()
            return None
        indices = indices[keep]
        coherence_q = coherence_q[keep]
        # Within-window angle concentration: a real preamble window holds
        # one phase level (concentration ~1), while 802.15.4-header
        # windows — even perfectly fold-coherent ones like the PHY
        # preamble — spread across several discrete levels (~0.5).  The
        # statistic is rotation-invariant, so it also rejects header
        # ghosts under residual carrier offsets that push their negative
        # counts over the floor.
        if win is not None:
            unit_win = win[keep] / np.maximum(win_mag[keep], 1e-12)
            concentration_q = np.abs(unit_win.sum(axis=1)) / window
        else:
            unit = profile / np.maximum(magnitude, 1e-12)
            concentration_q = (
                np.abs(sliding_window_sum(unit, window)[indices]) / window
            )
        best_concentration = float(concentration_q.max())
        keep = concentration_q >= max(best_concentration - coherence_slack, 0.6)
        if not keep.any():
            _MISS_CONCENTRATION.inc()
            return None
        indices = indices[keep]
        coherence_at = dict(zip(indices.tolist(), coherence_q[keep].tolist()))

    if indices.size == 0:
        _MISS_COUNT.inc()
        return None
    # Anchor inside the first qualifying cluster at its count peak: the
    # leading window qualifies while still sliding onto the plateau (up
    # to tau samples early), whereas the peak marks the plateau proper.
    first = int(indices[0])
    breaks = np.flatnonzero(np.diff(indices) > 1)
    cluster_end = int(indices[breaks[0]]) if breaks.size else int(indices[-1])
    cluster = np.arange(first, cluster_end + 1)
    n0 = int(cluster[np.argmax(counts[cluster])])
    if mode == "circular":
        # Average the central half of the window: the edges mix in
        # junction samples whose phase is adjacent to, but not on, the
        # plateau, which would bias the residual-CFO estimate.
        quarter = decoder.window // 4
        window_sum = profile[n0 + quarter : n0 + decoder.window - quarter].sum()
        mean_angle = float(np.angle(window_sum))
    else:
        mean_angle = -SYMBEE_STABLE_PHASE
    _HIT.inc()
    _COHERENCE.observe(coherence_at.get(n0, 1.0))
    return PreambleCapture(
        index=n0,
        data_start=n0 + folds * decoder.bit_period,
        negative_count=int(counts[n0]),
        coherence=coherence_at.get(n0, 1.0),
        mean_angle=mean_angle,
    )
