"""Link adaptation on top of SymBee (extension beyond the paper).

The paper's decoder throws away useful soft information: each decoded
bit comes with a vote count out of 84 whose distance from the 42-vote
boundary measures link quality.  This module turns those counts into a
live BER estimate and drives a simple rate-adaptation policy — enable
Hamming(7,4) (paying the 4/7 rate) only when the estimated BER says the
coding gain is worth it.  This is the natural "link layer coding" follow
up the paper's Section VIII-E gestures at.
"""

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.constants import SYMBEE_STABLE_WINDOW_20MHZ
from repro.core.analytics import ber_from_phase_error
from repro.core.coding import code_rate


class LinkQualityEstimator:
    """Estimates per-value phase error probability from vote counts.

    A bit decoded as 1 with ``count`` nonnegative votes out of ``window``
    had ``window - count`` erroneous values (and symmetrically for 0), so
    the pooled error fraction across bits estimates Pr_eps, from which
    Eq. 2 gives the operating BER.
    """

    def __init__(self, window=SYMBEE_STABLE_WINDOW_20MHZ):
        self.window = int(window)
        self._errors = 0
        self._values = 0

    def observe(self, decoded_bits, counts):
        """Fold one frame's decode into the estimate.

        Vectorized: a decoded 1 contributes ``window - count`` erroneous
        values and a decoded 0 contributes ``count``, summed in one numpy
        reduction over the frame instead of a per-bit Python loop.
        """
        bits = np.asarray(decoded_bits)
        counts = np.asarray(counts)
        n = min(bits.size, counts.size)
        if n == 0:
            return
        bits, counts = bits[:n], counts[:n]
        errors = np.where(bits == 1, self.window - counts, counts)
        self._errors += int(errors.sum())
        self._values += self.window * n

    @property
    def samples(self):
        return self._values

    @property
    def phase_error_probability(self):
        """Pooled Pr_eps estimate (0.5 prior when unobserved)."""
        if self._values == 0:
            return 0.5
        return self._errors / self._values

    @property
    def estimated_ber(self):
        """Eq.-2 BER implied by the current Pr_eps estimate."""
        return ber_from_phase_error(
            min(self.phase_error_probability, 1.0), window=self.window
        )

    def confidence_interval(self, level=0.95):
        """Wilson interval on Pr_eps."""
        if self._values == 0:
            return (0.0, 1.0)
        z = stats.norm.ppf(0.5 + level / 2.0)
        n, p = self._values, self.phase_error_probability
        denom = 1 + z**2 / n
        centre = (p + z**2 / (2 * n)) / denom
        margin = z * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2)) / denom
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def reset(self):
        self._errors = 0
        self._values = 0


class WindowedLinkQuality(LinkQualityEstimator):
    """Sliding-window variant tracking *time-varying* channels.

    The pooled estimator above converges on the long-run average — the
    right tool for a stationary link, and exactly the wrong one for the
    bursty, ramping channels AdaComm showed dominate CTC deployments: an
    hour-old clean spell would forever mask a fade happening now.  This
    variant pools only the most recent ``max_frames`` frames, so the
    estimate follows the channel with a bounded memory; it is the
    tracker behind ``repro.transport``'s per-session rate adaptation.
    """

    def __init__(self, window=SYMBEE_STABLE_WINDOW_20MHZ, max_frames=24):
        super().__init__(window=window)
        if max_frames < 1:
            raise ValueError("max_frames must be positive")
        self.max_frames = int(max_frames)
        self._frames = deque()

    def observe(self, decoded_bits, counts):
        before_e, before_v = self._errors, self._values
        super().observe(decoded_bits, counts)
        self._frames.append(
            (self._errors - before_e, self._values - before_v)
        )
        while len(self._frames) > self.max_frames:
            errors, values = self._frames.popleft()
            self._errors -= errors
            self._values -= values

    @property
    def frames(self):
        """Frames currently inside the window."""
        return len(self._frames)

    def reset(self):
        super().reset()
        self._frames.clear()


@dataclass(frozen=True)
class CodingDecision:
    """What the policy chose and why."""

    use_coding: bool
    estimated_ber: float
    goodput_uncoded: float      # expected delivered data bits per airtime bit
    goodput_coded: float
    #: Selected scheme name when using :class:`AdaptiveFec` ("uncoded",
    #: "hamming" or "conv"); the binary policy leaves it implied.
    scheme: str = ""


class AdaptiveCoding:
    """Chooses Hamming(7,4) on/off to maximize expected *frame* goodput.

    Frames are all-or-nothing (the CRC rejects any residual error), so
    per airtime bit the uncoded link delivers ``(1-BER)^L`` and the coded
    link ``(4/7) * block_ok^(L/4)`` with ``block_ok`` the probability a
    (7,4) block survives (at most one of its 7 bits errs).  Rate-4/7
    never wins a *per-bit* comparison — its value is exactly that frames
    survive, which is why the policy reasons at frame granularity.
    """

    def __init__(self, frame_bits=48, min_samples=84 * 8):
        if frame_bits <= 0 or frame_bits % 4 != 0:
            raise ValueError("frame_bits must be a positive multiple of 4")
        #: Data bits per frame the link transports.
        self.frame_bits = int(frame_bits)
        #: Votes to accumulate before trusting the estimate.
        self.min_samples = int(min_samples)

    def _uncoded_goodput(self, ber):
        return (1.0 - ber) ** self.frame_bits

    def _coded_goodput(self, ber):
        block_ok = (1 - ber) ** 7 + 7 * ber * (1 - ber) ** 6
        return code_rate() * block_ok ** (self.frame_bits // 4)

    def decide(self, estimator):
        """Policy decision from the current estimate.

        Before enough evidence accumulates the safe default is coding on
        (robustness first, as the paper's Figure 21 recommends).
        """
        ber = estimator.estimated_ber
        uncoded = self._uncoded_goodput(ber)
        coded = self._coded_goodput(ber)
        if estimator.samples < self.min_samples:
            return CodingDecision(
                use_coding=True,
                estimated_ber=ber,
                goodput_uncoded=uncoded,
                goodput_coded=coded,
            )
        return CodingDecision(
            use_coding=coded > uncoded,
            estimated_ber=ber,
            goodput_uncoded=uncoded,
            goodput_coded=coded,
        )


class AdaptiveFec(AdaptiveCoding):
    """Three-way scheme selection: uncoded / Hamming(7,4) / K=7 conv.

    Extends the binary policy with the rate-1/2 convolutional option
    (:mod:`repro.core.convolutional`).  Post-Viterbi error probability is
    approximated with the dominant union-bound term for the 133/171 code
    (free distance 10, multiplicity 11, hard decisions):

        p_out ~= 11 * (2 * sqrt(p (1 - p)))^10,

    accurate in the waterfall region where the decision actually matters.
    """

    #: Free distance and its multiplicity for the K=7 133/171 code.
    _D_FREE = 10
    _A_DFREE = 11

    def _conv_goodput(self, ber):
        p = min(max(ber, 0.0), 0.5)
        z = 2.0 * np.sqrt(p * (1.0 - p))
        p_out = min(1.0, self._A_DFREE * z**self._D_FREE)
        frame_ok = (1.0 - p_out) ** self.frame_bits
        return 0.5 * frame_ok

    def decide(self, estimator):
        ber = estimator.estimated_ber
        options = {
            "uncoded": self._uncoded_goodput(ber),
            "hamming": self._coded_goodput(ber),
            "conv": self._conv_goodput(ber),
        }
        if estimator.samples < self.min_samples:
            scheme = "conv"  # robustness-first default
        else:
            scheme = max(options, key=options.get)
        return CodingDecision(
            use_coding=scheme != "uncoded",
            estimated_ber=ber,
            goodput_uncoded=options["uncoded"],
            goodput_coded=options[scheme] if scheme != "uncoded" else max(
                options["hamming"], options["conv"]
            ),
            scheme=scheme,
        )
