"""PRBS whitening for SymBee messages.

Why this exists: the SymBee preamble is four consecutive bit 0, and four
consecutive *message* zeros are physically indistinguishable from it
(DESIGN.md Section 4b).  Applications that repeatedly send the same
payload — e.g. a sensor reporting a constant value — would produce the
dangerous pattern deterministically on every frame.  XOR-ing the message
with a PRBS-7 sequence (polynomial x^7 + x^4 + 1, the classic 802-family
scrambler) makes long same-bit runs data-independent: they still occur
with probability 2^-4 per position, but never systematically, so the
earliest-capture rule plus the frame CRC handle them.

The operation is additive and self-inverse: descrambling is scrambling
again with the same seed.
"""

import numpy as np

#: Default scrambler seed (must be nonzero, 7 bits).
DEFAULT_SEED = 0x5B


def prbs7(length, seed=DEFAULT_SEED):
    """``length`` bits of the PRBS-7 sequence for a 7-bit nonzero seed."""
    if length < 0:
        raise ValueError("length must be nonnegative")
    state = int(seed) & 0x7F
    if state == 0:
        raise ValueError("seed must be nonzero")
    out = np.empty(length, dtype=np.int8)
    for i in range(length):
        bit = ((state >> 6) ^ (state >> 3)) & 1
        state = ((state << 1) | bit) & 0x7F
        out[i] = bit
    return out


def scramble(bits, seed=DEFAULT_SEED):
    """XOR ``bits`` with the PRBS-7 stream (self-inverse)."""
    bits = np.asarray(list(bits), dtype=np.int8)
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must be 0 or 1")
    return bits ^ prbs7(bits.size, seed)


def descramble(bits, seed=DEFAULT_SEED):
    """Alias of :func:`scramble` — the whitening is additive."""
    return scramble(bits, seed)


def longest_same_bit_run(bits):
    """Longest run of identical bits (diagnostic for preamble mimicry)."""
    bits = list(bits)
    if not bits:
        return 0
    best = current = 1
    for previous, value in zip(bits, bits[1:]):
        current = current + 1 if value == previous else 1
        best = max(best, current)
    return best
