"""Hamming(7,4) link-layer coding (paper Section VIII-E, Figure 21).

Systematic Hamming code: data bits d1..d4, parity p1..p3 with

    p1 = d1 ^ d2 ^ d4
    p2 = d1 ^ d3 ^ d4
    p3 = d2 ^ d3 ^ d4

transmitted as ``[p1, p2, d1, p3, d2, d3, d4]`` so the syndrome read as a
binary number directly names the erroneous position — the classic
(7,4) construction.  Corrects any single bit error per codeword.
"""

import numpy as np

_CODEWORD_LEN = 7
_DATA_LEN = 4

# Position (1-indexed) -> what it carries, in the classic layout.
_DATA_POSITIONS = (3, 5, 6, 7)
_PARITY_POSITIONS = (1, 2, 4)


def _as_bit_array(bits):
    """Bits as an int8 array, without copying an existing ndarray.

    Lists/tuples/generators take the materializing path; ndarray inputs
    (the transport hot path encodes numpy PDUs) convert in place when the
    dtype already matches.
    """
    if isinstance(bits, np.ndarray):
        return bits.astype(np.int8, copy=False)
    return np.asarray(list(bits), dtype=np.int8)


def hamming74_encode(bits):
    """Encode a bit sequence; length must be a multiple of 4.

    Returns a numpy int8 array of 7 bits per 4 input bits.
    """
    bits = _as_bit_array(bits)
    if bits.size % _DATA_LEN != 0:
        raise ValueError("input length must be a multiple of 4")
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must be 0 or 1")
    blocks = bits.reshape(-1, _DATA_LEN)
    out = np.zeros((blocks.shape[0], _CODEWORD_LEN), dtype=np.int8)
    d1, d2, d3, d4 = (blocks[:, i] for i in range(4))
    out[:, 0] = d1 ^ d2 ^ d4          # p1 at position 1
    out[:, 1] = d1 ^ d3 ^ d4          # p2 at position 2
    out[:, 2] = d1                    # position 3
    out[:, 3] = d2 ^ d3 ^ d4          # p3 at position 4
    out[:, 4] = d2                    # position 5
    out[:, 5] = d3                    # position 6
    out[:, 6] = d4                    # position 7
    return out.ravel()


def hamming74_decode(bits):
    """Decode with single-error correction per 7-bit codeword.

    Returns ``(data_bits, corrections)`` where ``corrections`` counts the
    codewords in which a single-bit error was fixed.  Double errors decode
    wrongly (the code's limit — the paper makes the same point).
    """
    bits = _as_bit_array(bits)
    if bits.size % _CODEWORD_LEN != 0:
        raise ValueError("input length must be a multiple of 7")
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must be 0 or 1")
    blocks = bits.reshape(-1, _CODEWORD_LEN).copy()
    # Syndrome bits: s1 checks positions {1,3,5,7}, s2 {2,3,6,7}, s4 {4,5,6,7}.
    s1 = blocks[:, 0] ^ blocks[:, 2] ^ blocks[:, 4] ^ blocks[:, 6]
    s2 = blocks[:, 1] ^ blocks[:, 2] ^ blocks[:, 5] ^ blocks[:, 6]
    s4 = blocks[:, 3] ^ blocks[:, 4] ^ blocks[:, 5] ^ blocks[:, 6]
    syndrome = s1 + 2 * s2 + 4 * s4
    errors = syndrome > 0
    rows = np.flatnonzero(errors)
    cols = syndrome[rows] - 1
    blocks[rows, cols] ^= 1
    data = blocks[:, [p - 1 for p in _DATA_POSITIONS]]
    return data.ravel(), int(errors.sum())


def code_rate():
    """Information rate of the code (4/7)."""
    return _DATA_LEN / _CODEWORD_LEN


def interleave(bits, depth):
    """Block interleaver: write row-wise into ``depth`` rows, read column-wise.

    Why: WiFi interference arrives in *bursts* — a 270 us burst covers
    about 8 consecutive SymBee bits, defeating Hamming(7,4)'s
    single-error correction (visible in the paper's Figure 21 at low
    SINR).  Interleaving with depth >= the burst span scatters a burst's
    errors into distinct codewords where each is correctable.  Length
    must be a multiple of ``depth``; the operation is a pure permutation
    (rate 1).
    """
    bits = np.asarray(list(bits), dtype=np.int8)
    if depth < 1:
        raise ValueError("depth must be positive")
    if bits.size % depth != 0:
        raise ValueError("length must be a multiple of the depth")
    return bits.reshape(depth, -1).T.ravel()


def deinterleave(bits, depth):
    """Inverse of :func:`interleave` for the same ``depth``."""
    bits = np.asarray(list(bits), dtype=np.int8)
    if depth < 1:
        raise ValueError("depth must be positive")
    if bits.size % depth != 0:
        raise ValueError("length must be a multiple of the depth")
    return bits.reshape(-1, depth).T.ravel()
