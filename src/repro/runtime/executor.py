"""Process-pool trial executor with a serial fallback.

``run_trials`` runs one picklable function over a list of task tuples
and returns the results **in task order**, which together with
:mod:`repro.runtime.seeding` makes parallel runs reproduce serial runs
exactly.  The worker count comes from the ``REPRO_JOBS`` environment
variable (``1`` = serial, ``auto``/``0`` = all cores) unless a call
overrides it.

The serial path never touches ``concurrent.futures``, so ``jobs=1``
keeps the exact call profile (and debuggability) of the original code.

When the :mod:`repro.obs` metrics registry is enabled, each worker runs
its task with a freshly reset registry, snapshots the delta, and ships
that shard back alongside the task result; the parent merges every shard
into its own registry in task order.  Counters and histograms therefore
aggregate to identical totals whether a run is serial (instruments fire
directly in the parent) or parallel — the same contract ``StageTimings``
shards follow.
"""

import os
from functools import partial
from math import ceil

from repro.obs.metrics import REGISTRY


def default_jobs():
    """Worker count from ``REPRO_JOBS`` (default 1; ``auto``/``0`` = cores)."""
    raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return max(1, jobs)


def resolve_jobs(jobs=None):
    """Normalize a ``jobs`` argument (``None`` defers to ``REPRO_JOBS``)."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def _sharded_trial(fn, task):
    """Run one task in a worker, returning ``(result, metrics shard)``.

    The worker's process-wide registry is enabled (spawn-started workers
    begin disabled; fork-started workers inherit parent values) and reset
    so the shard holds exactly this task's increments.
    """
    REGISTRY.enable()
    REGISTRY.reset()
    result = fn(task)
    return result, REGISTRY.snapshot()


def run_trials(fn, tasks, jobs=None, chunk_size=None):
    """Apply ``fn`` to every task, serially or across a process pool.

    ``tasks`` is a sequence of picklable argument objects; ``fn`` must be
    a module-level function (picklable by reference).  Results come back
    in task order.  ``jobs=1`` (or a single task) runs inline with no
    pool overhead.  With the metrics registry enabled, worker metric
    shards are merged into the parent registry in task order.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]

    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(tasks))
    if chunk_size is None:
        # ~4 chunks per worker bounds both scheduling overhead and the
        # tail-latency cost of one straggler chunk.
        chunk_size = max(1, ceil(len(tasks) / (workers * 4)))
    collect_metrics = REGISTRY.enabled
    worker_fn = partial(_sharded_trial, fn) if collect_metrics else fn
    with ProcessPoolExecutor(max_workers=workers) as pool:
        out = list(pool.map(worker_fn, tasks, chunksize=chunk_size))
    if not collect_metrics:
        return out
    results = []
    for result, shard in out:
        REGISTRY.merge(shard)
        results.append(result)
    return results
