"""Process-pool trial executor with a serial fallback.

``run_trials`` runs one picklable function over a list of task tuples
and returns the results **in task order**, which together with
:mod:`repro.runtime.seeding` makes parallel runs reproduce serial runs
exactly.  The worker count comes from the ``REPRO_JOBS`` environment
variable (``1`` = serial, ``auto``/``0`` = all cores) unless a call
overrides it.

The serial path never touches ``concurrent.futures``, so ``jobs=1``
keeps the exact call profile (and debuggability) of the original code.
"""

import os
from math import ceil


def default_jobs():
    """Worker count from ``REPRO_JOBS`` (default 1; ``auto``/``0`` = cores)."""
    raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return max(1, jobs)


def resolve_jobs(jobs=None):
    """Normalize a ``jobs`` argument (``None`` defers to ``REPRO_JOBS``)."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def run_trials(fn, tasks, jobs=None, chunk_size=None):
    """Apply ``fn`` to every task, serially or across a process pool.

    ``tasks`` is a sequence of picklable argument objects; ``fn`` must be
    a module-level function (picklable by reference).  Results come back
    in task order.  ``jobs=1`` (or a single task) runs inline with no
    pool overhead.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]

    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(tasks))
    if chunk_size is None:
        # ~4 chunks per worker bounds both scheduling overhead and the
        # tail-latency cost of one straggler chunk.
        chunk_size = max(1, ceil(len(tasks) / (workers * 4)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks, chunksize=chunk_size))
