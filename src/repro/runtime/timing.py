"""Per-stage wall-clock counters for the link pipeline.

``StageTimings`` is a tiny accumulator of ``stage -> (seconds, calls)``
that travels with a :class:`repro.core.SymBeeLink` through pickling, so
parallel workers can report where their time went and the parent can
merge the shards into one breakdown.  The canonical link stages are
``modulate``, ``channel``, ``front_end`` and ``decode``; arbitrary stage
names are accepted so other pipelines can reuse the counter.
"""

import time
from contextlib import contextmanager

#: Canonical link-pipeline stage order (used for stable reporting).
LINK_STAGES = ("modulate", "channel", "front_end", "decode")


class StageTimings:
    """Accumulates wall-clock seconds and call counts per pipeline stage."""

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds = {}
        self.calls = {}

    def add(self, stage, dt, calls=1):
        """Record ``dt`` seconds spent in ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + float(dt)
        self.calls[stage] = self.calls.get(stage, 0) + int(calls)

    @contextmanager
    def stage(self, name):
        """Context manager timing one pass through a stage."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def merge(self, other):
        """Fold another ``StageTimings`` (or its ``as_dict``) into this one."""
        if isinstance(other, StageTimings):
            items = (
                (stage, other.seconds[stage], other.calls.get(stage, 0))
                for stage in other.seconds
            )
        else:
            items = (
                (stage, entry["seconds"], entry["calls"])
                for stage, entry in other.items()
            )
        for stage, seconds, calls in items:
            self.add(stage, seconds, calls)
        return self

    def reset(self):
        self.seconds.clear()
        self.calls.clear()

    @property
    def total_seconds(self):
        return sum(self.seconds.values())

    def _ordered_stages(self):
        known = [s for s in LINK_STAGES if s in self.seconds]
        extra = sorted(s for s in self.seconds if s not in LINK_STAGES)
        return known + extra

    def as_dict(self):
        """``{stage: {"seconds": s, "calls": c}}`` in canonical order."""
        return {
            stage: {"seconds": self.seconds[stage], "calls": self.calls.get(stage, 0)}
            for stage in self._ordered_stages()
        }

    def summary(self):
        """One-line human-readable breakdown."""
        total = self.total_seconds
        if total <= 0.0:
            return "no stages timed"
        parts = [
            f"{stage} {self.seconds[stage] * 1e3:.1f} ms"
            f" ({100.0 * self.seconds[stage] / total:.0f}%)"
            for stage in self._ordered_stages()
        ]
        return ", ".join(parts)

    def __repr__(self):
        return f"StageTimings({self.summary()})"
