"""Deterministic per-trial seeding for Monte-Carlo experiments.

The contract: a trial's random stream depends only on (experiment seed,
trial index).  ``SeedSequence.spawn`` guarantees statistically
independent child streams, and because the children are enumerated in
trial order, serial and parallel executions of the same experiment see
bit-identical randomness regardless of worker scheduling.
"""

import numpy as np


def as_seed_sequence(seed):
    """Coerce ``seed`` into a ``numpy.random.SeedSequence``.

    Accepts a ``SeedSequence`` (returned as is), a ``Generator``
    (entropy is drawn from it, advancing its state deterministically —
    this is how legacy ``rng``-taking call sites join the runtime), an
    integer, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        entropy = [int(v) for v in seed.integers(0, 2**63, size=2)]
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(seed)


def spawn_seeds(seed, n):
    """``n`` independent child ``SeedSequence`` objects, in trial order."""
    if n < 0:
        raise ValueError("n must be nonnegative")
    return as_seed_sequence(seed).spawn(n)


def spawn_generators(seed, n):
    """``n`` independent ``numpy.random.Generator`` objects, in trial order."""
    return [np.random.default_rng(child) for child in spawn_seeds(seed, n)]
