"""Monte-Carlo runtime: deterministic parallel trial execution.

Every figure reproduction is thousands of independent ``send_bits``
trials.  This package makes that embarrassingly parallel workload fast
without giving up reproducibility:

* :mod:`repro.runtime.seeding` — per-trial ``numpy`` generators derived
  with ``SeedSequence.spawn``, so a trial's randomness depends only on
  the experiment seed and the trial index, never on worker scheduling;
* :mod:`repro.runtime.executor` — a ``ProcessPoolExecutor``-backed trial
  runner (``REPRO_JOBS`` env var, serial fallback at ``jobs=1``) that
  returns results in trial order, making parallel and serial runs of the
  same experiment *identical*;
* :mod:`repro.runtime.timing` — per-stage wall-clock counters
  (modulate / channel / front_end / decode) so speedups are measurable;
* :mod:`repro.runtime.workerpool` — the streaming counterpart to the
  trial executor: a persistent shared-memory block worker pool
  (spawn-once workers, publish-once zero-copy blocks, pipelined bounded
  handoff) behind parallel :meth:`repro.stream.StreamEngine.run`.
"""

from repro.runtime.executor import default_jobs, run_trials
from repro.runtime.seeding import as_seed_sequence, spawn_generators, spawn_seeds
from repro.runtime.timing import StageTimings
from repro.runtime.workerpool import BlockWorkerPool

__all__ = [
    "BlockWorkerPool",
    "StageTimings",
    "as_seed_sequence",
    "default_jobs",
    "run_trials",
    "spawn_generators",
    "spawn_seeds",
]
