"""Persistent shared-memory block worker pool for streaming fan-out.

The PR-1 trial executor (:func:`repro.runtime.executor.run_trials`) is
built for *finite batches*: every task tuple is pickled into the pool,
so fanning a block stream out to per-channel workers re-serializes the
whole capture once per channel — the exact shape of the PR-5 ``jobs=2``
regression.  :class:`BlockWorkerPool` is the streaming counterpart:

* **workers are spawned once** per pool and each builds its consumers
  from a picklable ``factory(config, key)`` up front, so per-block cost
  is a queue message, not a process-pool task;
* **blocks are published once** into :mod:`multiprocessing.shared_memory`
  segments; every worker maps the segment and hands its consumers a
  zero-copy read-only ``np.frombuffer`` view.  The parent refcounts each
  segment and unlinks it after *all* workers have acked the block, so
  steady-state shared memory is bounded by ``workers x queue_blocks``
  segments regardless of stream length;
* **handoff is pipelined** through bounded per-worker queues: the parent
  publishes block ``n+1`` (or reads it from the source) while workers
  are still chewing on block ``n``, and a slow consumer exerts
  backpressure by filling its queue instead of deadlocking — pair
  :meth:`BlockWorkerPool.can_accept` with a
  :class:`repro.stream.ring.RingBufferSource` to convert that
  backpressure into explicit overrun accounting.

Determinism contract, mirroring the executor: results come back keyed
and are reordered to the caller's original ``keys`` order, and worker
metric shards (the :class:`repro.obs.metrics.MetricsRegistry`
enable/reset/snapshot protocol) are merged in worker-index order.
Stream shards carry only counters and histograms, whose merge is
commutative addition, so totals are identical to a serial run no matter
how keys were partitioned across workers.

Live telemetry (PR 7): with ``telemetry_blocks=N`` each worker also
ships a :func:`repro.obs.metrics.snapshot_delta` of its registry every N
processed blocks over a **side queue**, which the parent drains with
:meth:`BlockWorkerPool.drain_telemetry` and merges into a live preview
(delta merging is commutative addition, so the arrival order across
workers does not matter).  The side channel never touches the
end-of-run path — workers still ship their full final snapshot with the
``done`` message, and :meth:`join` still merges those in worker-index
order, so the bit-identical serial/parallel totals contract is intact;
a consumer of the live preview (``repro.obs.live.LiveCollector``) must
simply discard it once :meth:`join` has merged the authoritative
totals.

Consumers must not retain references to the block view after
``process`` returns — the parent may unlink the segment as soon as the
block is acked.  A retained view keeps the *mapping* alive (the worker's
``shm.close`` is deferred, never crashed) but is a leak, not a
correctness guarantee.

Multi-tenant serving (PR 9) adds three orthogonal capabilities, all off
by default so the demux fan-out contract above is untouched:

* **dynamic keys** (``dynamic=True``): the pool may start with zero
  keys; :meth:`BlockWorkerPool.open_key` builds a consumer on the
  least-loaded worker (ties break to the lowest worker index, so
  placement is deterministic given the open/close sequence) and
  :meth:`BlockWorkerPool.close_key` finishes it mid-stream, shipping its
  result back on the emissions queue.  :meth:`join` then returns a
  ``{key: result}`` dict for whichever keys are still open;
* **targeted publish** (``publish(block, key=...)``): the segment is
  shipped only to the worker owning ``key`` (refcount 1) and consumed
  only by that key's consumer — per-tenant streams stay isolated while
  sharing the pool.  ``can_accept(key=...)`` checks just that worker's
  queue, so one slow tenant backpressures itself, not the fleet;
* **emissions** (``emissions=True``): a ``process`` return value that is
  not ``None`` is shipped to the parent on an unbounded side queue and
  drained with :meth:`BlockWorkerPool.drain_emitted` — incremental
  results (e.g. reassembled transport messages) flow out mid-run instead
  of waiting for :meth:`join`.  Existing consumers return ``None`` and
  ship nothing.

Fair scheduling across tenants falls out of the structure: static keys
are partitioned round-robin, dynamic keys go to the least-loaded worker,
every worker queue is bounded, and a keyed producer (the gateway pumps
tenant rings round-robin) interleaves one block per tenant per pass.
"""

import queue as queue_mod
import time
import traceback
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.obs.metrics import REGISTRY, snapshot_delta, snapshot_is_empty

_POOL_BLOCKS = REGISTRY.counter("runtime.pool.blocks_published")
_POOL_BYTES = REGISTRY.counter("runtime.pool.bytes_shared")
_POOL_SEGMENTS = REGISTRY.gauge("runtime.pool.segments_inflight")
#: Deepest per-worker descriptor queue at the last publish — the live
#: backpressure signal: a queue pinned at its bound means that worker is
#: the realtime bottleneck.
_POOL_QDEPTH = REGISTRY.gauge("runtime.pool.queue_depth")
#: Wall seconds :meth:`BlockWorkerPool.publish` spent handing one block
#: to every worker (shm copy + queue puts).  A fat tail here means the
#: producer is stalling on full worker queues.
_PUBLISH_STALL = REGISTRY.histogram(
    "runtime.pool.publish_stall_seconds",
    edges=(0.0005, 0.002, 0.01, 0.05, 0.2, 1.0, 5.0),
)

#: Default bound on each worker's descriptor queue — deep enough to keep
#: a worker busy while the parent reads the next block from the source,
#: shallow enough that in-flight shared memory stays small.
DEFAULT_QUEUE_BLOCKS = 4

#: Seconds between liveness checks while blocked on a full worker queue
#: or an idle result queue.  Short enough that a crashed worker surfaces
#: promptly; long enough to stay off the hot path.
_POLL_S = 0.2


def _attach_readonly(name, count, dtype):
    """Map a published segment; return ``(shm, read-only ndarray view)``.

    The parent owns every segment's lifecycle: create registers it with
    the (shared) resource tracker once, unlink unregisters it once.  A
    worker attach must therefore not touch the tracker at all — Python
    <= 3.12 registers attaches unconditionally, and because tracker
    messages from different processes are unordered, both a worker-side
    ``unregister`` *and* a plain tracked attach race the parent's unlink
    into spurious tracker tracebacks.  3.13+ exposes ``track=False`` for
    exactly this; older versions need the register shim.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    view = np.frombuffer(shm.buf, dtype=dtype, count=count)
    view.flags.writeable = False
    return shm, view


def _close_quietly(shm):
    """Close a worker's mapping; tolerate views that still export it."""
    try:
        shm.close()
    except BufferError:
        # A consumer retained a view.  The mapping stays alive until the
        # process exits (harmless: unlink-while-mapped is safe on POSIX),
        # and the parent's refcount protocol is unaffected.
        pass


def _worker_main(
    worker_index,
    factory,
    config,
    keys,
    in_queue,
    ack_queue,
    out_queue,
    metrics_enabled,
    telemetry_blocks=None,
    telemetry_queue=None,
    emit_queue=None,
):
    """Worker loop: build consumers once, then map/consume/ack per block.

    Module-level so the pool works under every start method.  The final
    message is ``("done", worker_index, [(key, result), ...], shard)``;
    any failure ships ``("error", worker_index, traceback_text)`` instead
    so the parent can re-raise with the worker's stack.

    In-queue messages (all parent-originated):

    * ``None`` — end of stream; finish remaining consumers and report.
    * ``("open", key, config_or_None)`` — build a consumer mid-stream
      (``None`` config falls back to the pool config).
    * ``("close", key)`` — finish one consumer now; its result ships on
      the emissions queue as ``("closed", worker_index, key, result)``.
    * ``("block", seq, name, count, dtype_str, target)`` — one published
      block; ``target=None`` fans it to every consumer (demux), a key
      routes it to that consumer alone (tenant stream).

    With ``telemetry_blocks`` set, every N-th processed block also ships
    a registry delta (vs the last shipped snapshot) on the side queue —
    a live preview that never alters the final ``done`` shard.  With an
    ``emit_queue``, any non-``None`` return from ``consumer.process``
    ships as ``("emit", worker_index, key, value)``.
    """
    try:
        if metrics_enabled:
            # Spawn-started workers begin disabled; fork-started workers
            # inherit parent values.  Enable + reset normalizes both so
            # the shard holds exactly this worker's increments.
            REGISTRY.enable()
            REGISTRY.reset()
        consumers = {key: factory(config, key) for key in keys}
        blocks_done = 0
        last_shipped = {"counters": {}, "gauges": {}, "histograms": {}}

        def maybe_ship_delta():
            nonlocal blocks_done, last_shipped
            blocks_done += 1
            if telemetry_queue is None or blocks_done % telemetry_blocks:
                return
            snapshot = REGISTRY.snapshot()
            delta = snapshot_delta(snapshot, last_shipped)
            last_shipped = snapshot
            if not snapshot_is_empty(delta):
                telemetry_queue.put((worker_index, delta))

        def consume(view, target):
            if target is None:
                items = list(consumers.items())
            else:
                consumer = consumers.get(target)
                # A block racing a close is dropped, never crashed —
                # the parent stops routing to a key before closing it,
                # so this only fires on a parent-side protocol bug.
                items = [(target, consumer)] if consumer is not None else []
            for key, consumer in items:
                emitted = consumer.process(view)
                if emit_queue is not None and emitted is not None:
                    emit_queue.put(("emit", worker_index, key, emitted))

        while True:
            message = in_queue.get()
            if message is None:
                break
            kind = message[0]
            if kind == "open":
                _kind, key, open_config = message
                consumers[key] = factory(
                    config if open_config is None else open_config, key
                )
                continue
            if kind == "close":
                _kind, key = message
                result = consumers.pop(key).finish()
                if emit_queue is not None:
                    emit_queue.put(("closed", worker_index, key, result))
                continue
            _kind, seq, name, count, dtype_str, target = message
            if name is None:
                block = np.empty(0, dtype=np.dtype(dtype_str))
                block.flags.writeable = False  # same contract as shm views
                consume(block, target)
                ack_queue.put(seq)
                maybe_ship_delta()
                continue
            shm, view = _attach_readonly(name, count, np.dtype(dtype_str))
            try:
                consume(view, target)
            finally:
                del view
                _close_quietly(shm)
                ack_queue.put(seq)
            maybe_ship_delta()
        results = [(key, consumer.finish()) for key, consumer in consumers.items()]
        shard = REGISTRY.snapshot() if metrics_enabled else None
        out_queue.put(("done", worker_index, results, shard))
    except BaseException:
        out_queue.put(("error", worker_index, traceback.format_exc()))


class BlockWorkerPool:
    """Spawn-once workers consuming a stream of shared-memory blocks.

    ``factory(config, key)`` (module-level, picklable) builds one
    consumer per key; a consumer exposes ``process(block)`` (called once
    per published block, with a read-only view) and ``finish()`` (called
    once at :meth:`join`, returns that key's result).  Keys are
    partitioned round-robin across ``min(jobs, len(keys))`` workers.

    ``dynamic=True`` relaxes the static-key contract for serving: the
    pool may start empty, sizes itself to ``jobs`` workers, admits keys
    via :meth:`open_key` / retires them via :meth:`close_key`, and
    :meth:`join` returns a ``{key: result}`` dict for keys still open.
    ``emissions=True`` (implied by ``dynamic``) adds the unbounded
    side queue that carries non-``None`` ``process`` returns and
    ``close_key`` results to :meth:`drain_emitted`.
    """

    def __init__(
        self,
        factory,
        config,
        keys,
        jobs,
        queue_blocks=DEFAULT_QUEUE_BLOCKS,
        mp_context=None,
        telemetry_blocks=None,
        dynamic=False,
        emissions=False,
    ):
        keys = list(keys)
        if not keys and not dynamic:
            raise ValueError("BlockWorkerPool needs at least one key")
        jobs = max(1, int(jobs))
        queue_blocks = int(queue_blocks)
        if queue_blocks <= 0:
            raise ValueError("queue_blocks must be positive")
        if telemetry_blocks is not None:
            telemetry_blocks = int(telemetry_blocks)
            if telemetry_blocks <= 0:
                raise ValueError("telemetry_blocks must be positive")
        self._keys = keys
        self._queue_blocks = queue_blocks
        self._telemetry_blocks = telemetry_blocks
        self._dynamic = bool(dynamic)
        ctx = get_context(mp_context)
        n_workers = jobs if dynamic else min(jobs, len(keys))
        self._in_queues = [
            ctx.Queue(maxsize=queue_blocks) for _ in range(n_workers)
        ]
        self._ack_queue = ctx.Queue()
        self._out_queue = ctx.Queue()
        metrics_enabled = REGISTRY.enabled
        # The side queue only exists when a live consumer asked for it
        # (and metrics are on, else every delta would be empty); it is
        # unbounded so workers never block on telemetry.
        self._telemetry_queue = (
            ctx.Queue()
            if telemetry_blocks is not None and metrics_enabled
            else None
        )
        # Emissions queue: incremental process() returns + close_key
        # results.  Unbounded so workers never block on delivery.
        self._emit_queue = ctx.Queue() if (emissions or dynamic) else None
        #: key -> owning worker index (route for targeted publishes).
        self._worker_of = {
            key: index % n_workers for index, key in enumerate(keys)
        }
        #: open consumers per worker — the least-loaded placement signal.
        self._open_counts = [0] * n_workers
        for index in self._worker_of.values():
            self._open_counts[index] += 1
        self._processes = []
        for index in range(n_workers):
            process = ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    factory,
                    config,
                    keys[index::n_workers],
                    self._in_queues[index],
                    self._ack_queue,
                    self._out_queue,
                    metrics_enabled,
                    telemetry_blocks,
                    self._telemetry_queue,
                    self._emit_queue,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        #: seq -> [SharedMemory, outstanding ack count]
        self._segments = {}
        self._seq = 0
        self._closed = False
        self._joined = False
        self.blocks_published = 0
        self.samples_published = 0
        self.bytes_shared = 0
        self.peak_segments = 0
        self.peak_queue_depth = 0
        self.telemetry_shards_drained = 0
        self.emitted_drained = 0

    # -- publication --------------------------------------------------------

    def publish(self, block, key=None):
        """Ship one block; blocks on full worker queues.

        With ``key=None`` the block fans out to every worker (demux
        broadcast).  With a key it travels only to the worker owning
        that key and is consumed only by that key's consumer — the
        segment refcount is 1, so targeted blocks release as soon as
        their single receiver acks.

        The block is copied once into a fresh shared-memory segment (as
        its own dtype — the caller canonicalizes) and only descriptors
        travel through the queues.  Raises if a worker has died.
        """
        if self._closed:
            raise ValueError("publish on a closed pool")
        t_publish = time.perf_counter()
        self._drain_acks()
        if key is None:
            receivers = list(range(len(self._processes)))
        else:
            worker_index = self._worker_of.get(key)
            if worker_index is None:
                raise KeyError(f"publish to unknown key {key!r}")
            receivers = [worker_index]
        block = np.ascontiguousarray(block)
        seq = self._seq
        self._seq += 1
        if block.size == 0:
            descriptor = ("block", seq, None, 0, block.dtype.str, key)
        else:
            shm = shared_memory.SharedMemory(create=True, size=block.nbytes)
            staging = np.frombuffer(shm.buf, dtype=block.dtype, count=block.size)
            staging[:] = block.ravel()
            del staging
            self._segments[seq] = [shm, len(receivers)]
            self.peak_segments = max(self.peak_segments, len(self._segments))
            self.bytes_shared += int(block.nbytes)
            _POOL_BYTES.inc(int(block.nbytes))
            _POOL_SEGMENTS.set(len(self._segments))
            descriptor = (
                "block", seq, shm.name, int(block.size), block.dtype.str, key
            )
        for index in receivers:
            self._put(self._in_queues[index], self._processes[index], descriptor)
        self.blocks_published += 1
        self.samples_published += int(block.size)
        _POOL_BLOCKS.inc()
        _PUBLISH_STALL.observe(time.perf_counter() - t_publish)
        self._observe_queue_depth()

    def can_accept(self, key=None):
        """True when the receiving worker queue(s) have room for one more.

        With ``key=None`` every worker queue must have room (a broadcast
        touches them all); with a key only that key's worker is checked,
        so one slow tenant backpressures its own stream, not the fleet.
        The pool is single-producer, so a non-full queue cannot fill
        underneath the caller — ``can_accept() -> publish()`` will not
        block.  This is the hook a bounded ring producer uses to turn
        slow-worker backpressure into overrun accounting instead of a
        stalled producer.
        """
        self._drain_acks()
        self._check_worker_failure()
        if key is None:
            return all(not q.full() for q in self._in_queues)
        worker_index = self._worker_of.get(key)
        if worker_index is None:
            raise KeyError(f"can_accept for unknown key {key!r}")
        return not self._in_queues[worker_index].full()

    def try_publish(self, block, key=None):
        """Publish without blocking; returns ``False`` when backpressured."""
        if not self.can_accept(key):
            return False
        self.publish(block, key=key)
        return True

    # -- dynamic keys --------------------------------------------------------

    def open_key(self, key, config=None):
        """Build a consumer for ``key`` mid-stream; returns its worker index.

        The key lands on the least-loaded worker (fewest open consumers,
        ties to the lowest index — deterministic given the open/close
        history).  ``config=None`` reuses the pool's config; a dict (or
        any picklable) overrides it for this key only, which is how
        per-tenant engine configuration stays isolated.
        """
        if self._closed:
            raise ValueError("open_key on a closed pool")
        if key in self._worker_of:
            raise ValueError(f"key {key!r} already open")
        worker_index = min(
            range(len(self._processes)), key=lambda i: (self._open_counts[i], i)
        )
        self._worker_of[key] = worker_index
        self._open_counts[worker_index] += 1
        self._keys.append(key)
        self._put(
            self._in_queues[worker_index],
            self._processes[worker_index],
            ("open", key, config),
        )
        return worker_index

    def close_key(self, key):
        """Finish ``key``'s consumer now; its result ships via emissions.

        The caller must stop publishing to ``key`` first.  The finished
        consumer's result arrives on :meth:`drain_emitted` as
        ``("closed", key, result)`` once the worker drains the blocks
        already queued ahead of the close message.
        """
        if self._closed:
            raise ValueError("close_key on a closed pool")
        worker_index = self._worker_of.pop(key, None)
        if worker_index is None:
            raise KeyError(f"close_key for unknown key {key!r}")
        self._open_counts[worker_index] -= 1
        self._keys.remove(key)
        self._put(
            self._in_queues[worker_index],
            self._processes[worker_index],
            ("close", key),
        )

    def drain_emitted(self):
        """Drain pending emissions (never blocks).

        Returns ``[(kind, key, value), ...]`` in arrival order, where
        ``kind`` is ``"emit"`` (a non-``None`` ``process`` return) or
        ``"closed"`` (a :meth:`close_key` result).  Per-key order is the
        worker's processing order; cross-key interleaving follows queue
        arrival.  Empty list when the pool has no emissions queue.
        """
        emitted = []
        if self._emit_queue is None:
            return emitted
        while True:
            try:
                kind, _worker_index, key, value = self._emit_queue.get_nowait()
            except queue_mod.Empty:
                break
            emitted.append((kind, key, value))
        self.emitted_drained += len(emitted)
        return emitted

    # -- live telemetry ------------------------------------------------------

    def drain_telemetry(self):
        """Drain pending worker metric-delta shards (never blocks).

        Returns a list of :func:`~repro.obs.metrics.snapshot_delta`
        dicts in arrival order.  The shards are a *preview* of the
        workers' registries — additive and order-tolerant, but strictly
        superseded by the full shards :meth:`join` merges; a consumer
        must drop everything it accumulated from here once the join-time
        merge lands.  Empty list when the pool was built without
        ``telemetry_blocks`` (or with metrics disabled).
        """
        shards = []
        if self._telemetry_queue is None:
            return shards
        while True:
            try:
                _worker_index, shard = self._telemetry_queue.get_nowait()
            except queue_mod.Empty:
                break
            shards.append(shard)
        self.telemetry_shards_drained += len(shards)
        return shards

    def _observe_queue_depth(self):
        """Sample the deepest worker queue into gauge + watermark.

        ``Queue.qsize`` is approximate (and unimplemented on some
        platforms) — fine for a health signal, never for control flow.
        """
        try:
            depth = max(q.qsize() for q in self._in_queues)
        except NotImplementedError:
            return
        self.peak_queue_depth = max(self.peak_queue_depth, depth)
        _POOL_QDEPTH.set(depth)

    # -- completion ---------------------------------------------------------

    def join(self):
        """Send end-of-stream, gather results, merge metric shards.

        Returns per-key results in the constructor's ``keys`` order —
        or, for a ``dynamic`` pool, a ``{key: result}`` dict covering
        the keys still open (results for keys retired earlier via
        :meth:`close_key` already shipped through the emissions queue).
        Shards merge in worker-index order; stream shards are counters
        and histograms only, so totals are partition-independent.
        """
        if self._joined:
            raise ValueError("pool already joined")
        for process, in_queue in zip(self._processes, self._in_queues):
            self._put(in_queue, process, None)
        pending = set(range(len(self._processes)))
        pairs_by_worker = {}
        shard_by_worker = {}
        while pending:
            self._drain_acks()
            try:
                message = self._out_queue.get(timeout=_POLL_S)
            except queue_mod.Empty:
                self._check_liveness(pending)
                continue
            if message[0] == "error":
                self._raise_worker_error(message)
            _kind, worker_index, pairs, shard = message
            pairs_by_worker[worker_index] = pairs
            shard_by_worker[worker_index] = shard
            pending.discard(worker_index)
        # Every worker acked every block before sending "done", so the
        # remaining acks are already queued — drain to release segments.
        while self._segments:
            self._drain_acks(blocking=True)
        # Undrained live deltas are superseded by the full shards below;
        # discard them so a late drain cannot double-count.
        if self._telemetry_queue is not None:
            while True:
                try:
                    self._telemetry_queue.get_nowait()
                except queue_mod.Empty:
                    break
        self._joined = True
        for worker_index in sorted(shard_by_worker):
            shard = shard_by_worker[worker_index]
            if shard is not None:
                REGISTRY.merge(shard)
        results_by_key = {
            key: result
            for pairs in pairs_by_worker.values()
            for key, result in pairs
        }
        if self._dynamic:
            return {key: results_by_key[key] for key in self._keys}
        return [results_by_key[key] for key in self._keys]

    def close(self):
        """Tear the pool down; safe after errors and idempotent."""
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            if process.is_alive() and not self._joined:
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
        for shm, _refcount in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        _POOL_SEGMENTS.set(0)
        queues = [*self._in_queues, self._ack_queue, self._out_queue]
        if self._telemetry_queue is not None:
            queues.append(self._telemetry_queue)
        if self._emit_queue is not None:
            queues.append(self._emit_queue)
        for q in queues:
            q.close()
            q.cancel_join_thread()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def stats(self):
        return {
            "workers": len(self._processes),
            "queue_blocks": self._queue_blocks,
            "blocks_published": self.blocks_published,
            "samples_published": self.samples_published,
            "bytes_shared": self.bytes_shared,
            "peak_inflight_segments": self.peak_segments,
            "inflight_segments": len(self._segments),
            "peak_queue_depth": self.peak_queue_depth,
            "telemetry_shards_drained": self.telemetry_shards_drained,
            "open_keys": len(self._worker_of),
            "emitted_drained": self.emitted_drained,
        }

    # -- internals ----------------------------------------------------------

    def _put(self, in_queue, process, message):
        """Bounded put with liveness checks — never hangs on a dead worker."""
        while True:
            try:
                in_queue.put(message, timeout=_POLL_S)
                return
            except queue_mod.Full:
                self._drain_acks()
                self._check_worker_failure()
                if not process.is_alive():
                    raise RuntimeError(
                        "pool worker died with its queue full"
                    ) from None

    def _drain_acks(self, blocking=False):
        """Release every segment whose last consumer has acked it.

        ``blocking=True`` waits for acks until no segment is outstanding
        (bounded: workers flush their ack queue before reporting done, so
        a long silence here means a protocol bug, not a slow consumer).
        """
        polls_left = 50
        while True:
            try:
                if blocking and self._segments:
                    seq = self._ack_queue.get(timeout=_POLL_S)
                else:
                    seq = self._ack_queue.get_nowait()
            except queue_mod.Empty:
                if blocking and self._segments:
                    polls_left -= 1
                    if polls_left <= 0:
                        raise RuntimeError(
                            "timed out waiting for block acks; "
                            f"{len(self._segments)} segment(s) outstanding"
                        )
                    continue
                return
            entry = self._segments.get(seq)
            if entry is None:
                continue
            entry[1] -= 1
            if entry[1] == 0:
                shm, _ = entry
                shm.close()
                shm.unlink()
                del self._segments[seq]
                _POOL_SEGMENTS.set(len(self._segments))

    def _check_worker_failure(self):
        """Surface an early worker error without consuming 'done' results."""
        try:
            message = self._out_queue.get_nowait()
        except queue_mod.Empty:
            return
        if message[0] == "error":
            self._raise_worker_error(message)
        # A "done" sneaking in mid-stream would mean a protocol bug; put
        # it back for join() rather than dropping the result.
        self._out_queue.put(message)

    def _check_liveness(self, pending):
        dead = [
            index
            for index, process in enumerate(self._processes)
            if index in pending and not process.is_alive()
        ]
        if dead:
            raise RuntimeError(
                f"pool worker(s) {dead} exited without reporting a result"
            )

    def _raise_worker_error(self, message):
        _kind, worker_index, text = message
        raise RuntimeError(
            f"pool worker {worker_index} failed:\n{text}"
        )


__all__ = ["BlockWorkerPool", "DEFAULT_QUEUE_BLOCKS"]
