"""Mode-switched DSP kernels: ``exact`` vs ``fast``.

The streaming receive path promises *bit-exact block-size invariance*
in its default configuration, which forces every float in the chain
through single-rounding real ufunc ops (numpy's native complex multiply,
``np.convolve`` and SIMD ``np.exp`` all change their last bit with array
length or alignment — see ``repro.stream.frontend``).  Those decomposed
kernels leave throughput on the table: the native fused kernels are
2-5x faster on the same data.

This module holds both implementations behind one ``mode`` switch:

* ``"exact"`` — the decomposed single-rounding kernels.  Deterministic
  for any blocking, alignment or SIMD path; the block-size-invariance
  guarantee (and its tests) rests on them.
* ``"fast"`` — numpy's native complex kernels, a BLAS-backed
  sliding-window matmul for FIR/decimation, and an overlap-save FFT FIR
  for long filters.  Results agree with ``exact`` to normal float
  rounding (~1 ulp per op), which is orders of magnitude below every
  decode threshold — validated end-to-end by decode-equivalence tests,
  not bit-equivalence.

Fast mode optionally runs in a float32 working dtype (``complex64``):
half the memory traffic on the front-end hot loops, still ~7 decimal
digits — far beyond what a +-4pi/5 phase-sign decision needs.
"""

import numpy as np

#: The two kernel modes every switched function accepts.
KERNEL_MODES = ("exact", "fast")


def validate_mode(mode):
    """Return ``mode`` if known, raise ``ValueError`` otherwise."""
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    return mode


# -- complex multiply --------------------------------------------------------


def exact_cmul(a, b):
    """Complex multiply decomposed into single-rounding real ops.

    numpy's native complex-multiply kernel contracts its internal
    multiply-adds into FMAs whose peel/remainder lanes depend on buffer
    alignment and length, so ``a * b`` can differ by one ulp between two
    calls over the *same* element — enough to break bit-exact block-size
    invariance.  Real multiply/add/subtract ufuncs are each a single
    correctly-rounded IEEE operation in every lane, so building the
    product from them is deterministic for any blocking, alignment or
    SIMD path.  (The result is the textbook four-multiply form, which an
    FMA kernel does *not* reproduce — consistency, not agreement with
    ``np.multiply``, is the point.)
    """
    ar, ai = a.real, a.imag
    br, bi = b.real, b.imag
    out = np.empty(np.broadcast_shapes(np.shape(a), np.shape(b)), dtype=np.complex128)
    out.real = ar * br - ai * bi
    out.imag = ar * bi + ai * br
    return out


def cmul(a, b, mode="exact"):
    """``a * b`` through the selected kernel mode."""
    if mode == "exact":
        return exact_cmul(a, b)
    validate_mode(mode)
    return np.multiply(a, b)


# -- lagged autocorrelation products ----------------------------------------


def exact_lagged_products(x, lag):
    """Deterministic ``x[n] * conj(x[n + lag])`` (see :func:`exact_cmul`).

    Semantically :meth:`repro.core.decoder.SymBeeDecoder.raw_products`,
    but decomposed into real ufunc ops so every element matches scalar
    complex arithmetic bit-for-bit regardless of array length or
    alignment — the property the streaming front ends' invariance
    guarantee rests on.
    """
    lag = int(lag)
    if lag <= 0:
        raise ValueError("lag must be positive")
    n = x.size - lag
    if n <= 0:
        return np.empty(0, dtype=np.complex128)
    a, b = x[:n], x[lag:]
    out = np.empty(n, dtype=np.complex128)
    # conj folded in: (ar + j*ai) * (br - j*bi)
    out.real = a.real * b.real + a.imag * b.imag
    out.imag = a.imag * b.real - a.real * b.imag
    return out


def lagged_products(x, lag, mode="exact"):
    """Autocorrelation products through the selected kernel mode.

    Fast mode keeps the input's complex dtype (``complex64`` stays
    ``complex64``); exact mode always yields ``complex128``.
    """
    if mode == "exact":
        return exact_lagged_products(x, lag)
    validate_mode(mode)
    lag = int(lag)
    if lag <= 0:
        raise ValueError("lag must be positive")
    n = x.size - lag
    if n <= 0:
        return np.empty(0, dtype=x.dtype if x.dtype.kind == "c" else np.complex128)
    return x[:n] * np.conjugate(x[lag:])


def stream_lagged_products(x_new, carry, lag, mode="fast"):
    """Continue ``p[n] = x[n] * conj(x[n + lag])`` across a block boundary.

    The stream so far ends with ``carry`` (its last ``min(lag, total)``
    samples, every earlier product already emitted) and now grows by
    ``x_new``.  Returns ``(products, new_carry)`` where ``products`` are
    exactly the newly computable outputs, in stream order, and
    ``new_carry`` is the updated tail (always an owned copy, never a
    view into ``x_new`` — callers may hand in borrowed blocks, e.g.
    shared-memory views).

    This is the streaming front ends' inner loop fused into one kernel
    call: the seam products (pairs straddling the boundary, at most
    ``lag`` of them) read ``carry`` directly and the interior products
    read ``x_new`` in place, so the per-block
    ``concatenate(tail, block)`` pass — a full copy of every sample just
    to make the pairing contiguous — disappears.  Element values are
    unchanged: both kernel modes compute each product elementwise from
    the same two samples as the concatenated form (the exact mode by its
    scalar-exact decomposition, the fast mode by numpy's elementwise
    complex multiply), so per-element bit-identity — and with it the
    front ends' blocking-invariance guarantee — carries over.
    """
    validate_mode(mode)
    lag = int(lag)
    if lag <= 0:
        raise ValueError("lag must be positive")
    if carry.size > lag:
        raise ValueError("carry longer than lag: products were skipped")
    if mode == "exact":
        dtype = np.dtype(np.complex128)
    else:
        dtype = x_new.dtype if x_new.dtype.kind == "c" else np.dtype(np.complex128)
    c = carry.size
    n = c + x_new.size - lag
    if n <= 0:
        new_carry = np.empty(c + x_new.size, dtype=carry.dtype)
        new_carry[:c] = carry
        new_carry[c:] = x_new
        return np.empty(0, dtype=dtype), new_carry
    seam_n = min(c, n)
    out = np.empty(n, dtype=dtype)
    if seam_n:
        a = carry[:seam_n]
        b = x_new[lag - c : lag - c + seam_n]
        if mode == "exact":
            s = out[:seam_n]
            s.real = a.real * b.real + a.imag * b.imag
            s.imag = a.imag * b.real - a.real * b.imag
        else:
            np.multiply(a, np.conjugate(b), out=out[:seam_n])
    main_n = n - seam_n
    if main_n:
        a = x_new[:main_n]
        b = x_new[lag : lag + main_n]
        if mode == "exact":
            s = out[seam_n:]
            s.real = a.real * b.real + a.imag * b.imag
            s.imag = a.imag * b.real - a.real * b.imag
        else:
            np.multiply(a, np.conjugate(b), out=out[seam_n:])
    if x_new.size >= lag:
        new_carry = x_new[x_new.size - lag :].astype(carry.dtype, copy=True)
    else:
        keep = lag - x_new.size
        new_carry = np.empty(lag, dtype=carry.dtype)
        new_carry[:keep] = carry[c - keep :]
        new_carry[keep:] = x_new
    return out, new_carry


# -- FIR filtering -----------------------------------------------------------


def fir_exact(z, taps):
    """Valid-mode FIR with a blocking-independent accumulation order.

    ``out[k] = sum_j taps[j] * z[k + ntaps - 1 - j]`` accumulated
    tap-by-tap on the real/imag planes (fixed tap order) rather than via
    ``np.convolve``, whose internal summation order changes with input
    length — every output element is the same fixed sequence of
    single-rounding real multiply-adds no matter how the stream was
    blocked.  Returns ``max(0, len(z) - ntaps + 1)`` outputs.
    """
    z = np.asarray(z)
    ntaps = len(taps)
    m = z.size - ntaps + 1
    if m <= 0:
        return np.empty(0, dtype=np.complex128)
    acc_r = np.zeros(m, dtype=np.float64)
    acc_i = np.zeros(m, dtype=np.float64)
    for j in range(ntaps):
        shift = ntaps - 1 - j
        s = z[shift : shift + m]
        acc_r += taps[j] * s.real
        acc_i += taps[j] * s.imag
    out = np.empty(m, dtype=np.complex128)
    out.real = acc_r
    out.imag = acc_i
    return out


def fir_fft(z, taps, fft_size=None):
    """Valid-mode FIR via overlap-save FFT convolution.

    O(N log L) instead of O(N * ntaps): the input is processed in
    ``fft_size`` segments overlapping by ``ntaps - 1`` samples, each
    filtered as ``ifft(fft(segment) * fft(taps))`` with the circular
    wrap-around region discarded.  Wins over the direct form once the
    filter is long (>~48 taps at typical block sizes); float rounding
    differs from :func:`fir_exact` by FFT accumulation error (~1e-13
    relative), so this is a ``fast``-mode kernel only.
    """
    z = np.asarray(z, dtype=np.complex128)
    taps = np.asarray(taps)
    ntaps = taps.size
    m = z.size - ntaps + 1
    if m <= 0:
        return np.empty(0, dtype=np.complex128)
    if fft_size is None:
        # Power of two at least 8x the filter span amortizes the
        # per-segment FFT cost without blowing the cache.
        fft_size = 1 << max(10, int(np.ceil(np.log2(8 * ntaps))))
    if fft_size < 2 * ntaps:
        raise ValueError("fft_size must be at least twice the filter length")
    h = np.fft.fft(taps, fft_size)
    step = fft_size - (ntaps - 1)
    out = np.empty(m, dtype=np.complex128)
    for lo in range(0, m, step):
        seg = z[lo : lo + fft_size]
        if seg.size < fft_size:
            seg = np.concatenate(
                (seg, np.zeros(fft_size - seg.size, dtype=np.complex128))
            )
        filt = np.fft.ifft(np.fft.fft(seg) * h)
        take = min(step, m - lo)
        out[lo : lo + take] = filt[ntaps - 1 : ntaps - 1 + take]
    return out


def fir_fast(z, taps):
    """Valid-mode FIR through the fastest native path for the size.

    Short filters go through a BLAS matvec over a zero-copy sliding
    window view (one fused pass, no Python-level tap loop); long filters
    switch to :func:`fir_fft`.  Complex64 input stays complex64 on the
    matmul path.
    """
    z = np.asarray(z)
    ntaps = len(taps)
    if z.size - ntaps + 1 <= 0:
        return np.empty(0, dtype=np.complex128)
    if ntaps > 48:
        return fir_fft(z, taps)
    win = np.lib.stride_tricks.sliding_window_view(z, ntaps)
    rev = np.asarray(taps)[::-1]
    if z.dtype == np.complex64:
        rev = rev.astype(np.complex64)
    return win @ rev


def fir(z, taps, mode="exact"):
    """Valid-mode FIR through the selected kernel mode."""
    if mode == "exact":
        return fir_exact(z, taps)
    validate_mode(mode)
    return fir_fast(z, taps)


# -- polyphase decimating FIR ------------------------------------------------


def polyphase_decimate_exact(z, taps, decimation, offset=0):
    """Decimated valid-mode FIR with blocking-independent rounding.

    Computes ``fir_exact(z, taps)[offset::decimation]`` without ever
    materializing the non-kept outputs: for each tap the strided input
    slice is accumulated in the same fixed tap order as
    :func:`fir_exact`, so every kept output is **bit-identical** to the
    corresponding full-rate output — the decimated exact path is
    literally a subsample of the full-rate exact path.
    """
    z = np.asarray(z)
    decimation = int(decimation)
    if decimation < 1:
        raise ValueError("decimation must be >= 1")
    ntaps = len(taps)
    total = z.size - ntaps + 1
    if total <= offset:
        return np.empty(0, dtype=np.complex128)
    m = 1 + (total - 1 - offset) // decimation
    acc_r = np.zeros(m, dtype=np.float64)
    acc_i = np.zeros(m, dtype=np.float64)
    for j in range(ntaps):
        shift = offset + ntaps - 1 - j
        s = z[shift : shift + (m - 1) * decimation + 1 : decimation]
        acc_r += taps[j] * s.real
        acc_i += taps[j] * s.imag
    out = np.empty(m, dtype=np.complex128)
    out.real = acc_r
    out.imag = acc_i
    return out


def polyphase_decimate_fast(z, taps, decimation, offset=0, trailing="dot"):
    """Decimated valid-mode FIR via a polyphase block-reshape matmul.

    ``decimation == 1`` is a plain BLAS matvec over a zero-copy sliding
    window view.  For ``decimation > 1`` the strided window view defeats
    BLAS's packed kernels (each gather walks non-unit strides), so the
    computation is rephrased on *contiguous* blocks instead: with the
    reversed taps zero-padded to ``nb * D`` and reshaped to ``W`` of
    shape ``(nb, D)``, and the input cut into contiguous non-overlapping
    ``D``-blocks ``B[r] = z[offset + r*D : offset + (r+1)*D]``,

        out[m] = sum_b (B[m + b] . W[b]) = sum_b V[m + b, b]

    where ``V = B @ W.T`` is one fully-contiguous GEMM.  The diagonal
    band sum over the tiny ``nb`` axis costs ``nb`` vector adds.  Complex
    taps are supported (the decimating channelizer folds its mixer into
    the taps); complex64 input stays complex64.

    ``trailing`` controls outputs whose zero-padded block window runs
    past the end of ``z`` (at most one, since the padding is shorter
    than ``D``): ``"dot"`` (default) finishes them with a direct dot —
    full valid-mode output, but a direct dot rounds differently than the
    GEMM band sum, so *which* positions got the dot leaks the block
    boundary into the result at the ulp level.  ``"defer"`` omits them
    instead, so every returned output went through the identical GEMM
    arithmetic; streaming callers keep the unconsumed samples buffered
    and emit the withheld outputs next block (or at end-of-stream, where
    the boundary is no longer blocking-dependent).
    """
    z = np.asarray(z)
    decimation = int(decimation)
    if decimation < 1:
        raise ValueError("decimation must be >= 1")
    if trailing not in ("dot", "defer"):
        raise ValueError("trailing must be 'dot' or 'defer'")
    ntaps = len(taps)
    if z.size - ntaps + 1 <= offset:
        return np.empty(0, dtype=np.complex128)
    rev = np.asarray(taps)[::-1]
    if z.dtype == np.complex64:
        rev = rev.astype(np.complex64)
    if decimation == 1:
        # No zero-padding, hence no trailing outputs to defer.
        win = np.lib.stride_tricks.sliding_window_view(z, ntaps)[offset:]
        return win @ rev
    m_out = 1 + (z.size - ntaps - offset) // decimation
    zo = z[offset:]
    nb = -(-ntaps // decimation)  # ceil: padded tap blocks
    n_blocks = zo.size // decimation
    m_main = n_blocks - nb + 1
    if m_main < 1:
        if trailing == "defer":
            return np.empty(0, dtype=rev.dtype if z.dtype.kind == "c" else np.complex128)
        # Input barely covers a window; the strided view is fine here.
        win = np.lib.stride_tricks.sliding_window_view(z, ntaps)[offset::decimation]
        return win @ rev
    w = np.zeros(nb * decimation, dtype=rev.dtype)
    w[:ntaps] = rev
    w = w.reshape(nb, decimation)
    st = zo.strides[0]
    blocks = np.lib.stride_tricks.as_strided(
        zo, (n_blocks, decimation), (decimation * st, st)
    )
    v = blocks @ w.T
    out_dtype = v.dtype
    m_main = min(m_main, m_out)
    out = np.empty(m_main if trailing == "defer" else m_out, dtype=out_dtype)
    main = out[:m_main]
    main[:] = v[:m_main, 0]
    for b in range(1, nb):
        main += v[b : m_main + b, b]
    # The zero-padding makes the block form need up to D-1 samples past
    # the true window end, so at most one trailing output falls outside
    # the GEMM; finish it with a direct dot (unless deferred).
    for m in range(m_main, out.size):
        lo = m * decimation
        out[m] = zo[lo : lo + ntaps] @ rev
    return out


def polyphase_decimate(z, taps, decimation, offset=0, mode="exact", trailing="dot"):
    """Decimated valid-mode FIR through the selected kernel mode.

    ``trailing`` is a fast-mode knob (see
    :func:`polyphase_decimate_fast`); exact mode computes every output
    with the same fixed-order accumulation and ignores it.
    """
    if mode == "exact":
        return polyphase_decimate_exact(z, taps, decimation, offset)
    validate_mode(mode)
    return polyphase_decimate_fast(z, taps, decimation, offset, trailing=trailing)


# -- preamble comb fold ------------------------------------------------------


def preamble_fold_exact(u, bit_period, folds):
    """Circular preamble fold profile with blocking-independent rounding.

    ``out[i] = sum_k u[i + k * bit_period]`` for ``k in [0, folds)`` —
    the cross-correlation of the unit-phasor stream with the preamble's
    bit-period comb, evaluated at every position whose full fold span
    fits inside ``u`` (``len(out) = len(u) - (folds - 1) * bit_period``).
    The sum runs in fixed fold order ``((u0 + u1) + u2) + ...``
    elementwise, so every output depends only on its own ``folds``
    inputs and the profile is bit-identical for any stream blocking —
    the same contract :func:`exact_lagged_products` gives the product
    stream.  This is the exact reference the scanner's derived caches
    are built from.
    """
    bit_period = int(bit_period)
    folds = int(folds)
    if folds < 1:
        raise ValueError("folds must be >= 1")
    n = u.size - (folds - 1) * bit_period
    if n <= 0:
        return u[:0].copy()
    if folds == 1:
        return u[:n].copy()
    out = u[:n] + u[bit_period : bit_period + n]
    for k in range(2, folds):
        out += u[k * bit_period : k * bit_period + n]
    return out


def preamble_fold_fft(u, bit_period, folds, fft_size=None):
    """Overlap-save FFT preamble cross-correlation.

    Same output positions as :func:`preamble_fold_exact`, computed as an
    overlap-save convolution with the time-reversed bit-period comb
    (``folds`` unit taps spaced ``bit_period`` apart, span ``(folds - 1)
    * bit_period + 1``): each FFT segment contributes ``fft_size -
    span`` outputs after discarding the circular wrap-around region,
    exactly like :func:`fir_fft`.  Values differ from the exact profile
    by FFT accumulation error (~1e-13 relative in float64), so this is
    a ``fast``-mode backend only; input precision is preserved
    (complex64 streams come back complex64).

    Honest benchmark note: the comb has only ``folds`` non-zero taps
    (4 for the SymBee preamble), so the direct profile is ``folds - 1``
    vector adds per output while the FFT path pays two full transforms
    per segment — the FFT only wins for preambles long enough that
    ``folds`` approaches ``log2(fft_size)`` territory.  It exists as a
    registry backend so that trade is measured, not assumed.
    """
    u = np.asarray(u)
    bit_period = int(bit_period)
    folds = int(folds)
    if folds < 1:
        raise ValueError("folds must be >= 1")
    span = (folds - 1) * bit_period
    n = u.size - span
    if n <= 0:
        return u[:0].copy()
    if folds == 1:
        return u[:n].copy()
    out_dtype = u.dtype if u.dtype == np.complex64 else np.complex128
    ntaps = span + 1
    if fft_size is None:
        # Power of two at least 4x the comb span: the comb is sparse, so
        # larger segments only amortize transform setup, not tap count.
        fft_size = 1 << max(10, int(np.ceil(np.log2(4 * ntaps))))
    if fft_size < 2 * ntaps:
        raise ValueError("fft_size must be at least twice the comb span")
    # Time-reversed comb: taps[span - k * bit_period] = 1 makes the
    # causal convolution output at index span equal the correlation
    # output at index 0.
    taps = np.zeros(ntaps, dtype=np.complex128)
    taps[span - bit_period * np.arange(folds)] = 1.0
    h = np.fft.fft(taps, fft_size)
    step = fft_size - span
    out = np.empty(n, dtype=out_dtype)
    z = np.asarray(u, dtype=np.complex128)
    for lo in range(0, n, step):
        seg = z[lo : lo + fft_size]
        if seg.size < fft_size:
            seg = np.concatenate(
                (seg, np.zeros(fft_size - seg.size, dtype=np.complex128))
            )
        filt = np.fft.ifft(np.fft.fft(seg) * h)
        take = min(step, n - lo)
        out[lo : lo + take] = filt[span : span + take]
    return out


def preamble_fold(u, bit_period, folds, mode="exact"):
    """Preamble comb correlation through the selected kernel mode."""
    if mode == "exact":
        return preamble_fold_exact(u, bit_period, folds)
    validate_mode(mode)
    return preamble_fold_fft(u, bit_period, folds)


__all__ = [
    "KERNEL_MODES",
    "validate_mode",
    "cmul",
    "exact_cmul",
    "exact_lagged_products",
    "lagged_products",
    "stream_lagged_products",
    "fir",
    "fir_exact",
    "fir_fft",
    "fir_fast",
    "polyphase_decimate",
    "polyphase_decimate_exact",
    "polyphase_decimate_fast",
    "preamble_fold",
    "preamble_fold_exact",
    "preamble_fold_fft",
]
