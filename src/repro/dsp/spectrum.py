"""Spectrum estimation utilities.

Used to validate the frequency-domain claims the whole design rests on:
ZigBee occupies ~2 MHz, WiFi ~16.6 MHz of its 20 MHz channel, and the
front-end mixer places a source at its centre-frequency offset.  Thin
wrappers over Welch's method plus occupied-bandwidth measurement.
"""

import numpy as np
from scipy import signal as sp_signal


def power_spectral_density(samples, sample_rate, nperseg=1024):
    """Two-sided Welch PSD of a complex baseband capture.

    Returns ``(frequencies, psd)`` sorted by frequency, with frequencies
    spanning ``(-fs/2, fs/2]``.
    """
    samples = np.asarray(samples)
    if samples.size < 8:
        raise ValueError("capture too short for a PSD estimate")
    nperseg = min(nperseg, samples.size)
    freqs, psd = sp_signal.welch(
        samples,
        fs=sample_rate,
        nperseg=nperseg,
        return_onesided=False,
        detrend=False,
    )
    order = np.argsort(freqs)
    return freqs[order], psd[order]


def occupied_bandwidth(samples, sample_rate, fraction=0.99, nperseg=1024):
    """Bandwidth containing ``fraction`` of the total power (OBW).

    The standard N%-power measurement: integrate the PSD outward from
    both edges until ``(1 - fraction) / 2`` of the power is excluded per
    side; the span between the crossing frequencies is the OBW.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    freqs, psd = power_spectral_density(samples, sample_rate, nperseg)
    total = psd.sum()
    if total <= 0:
        return 0.0
    tail = (1.0 - fraction) / 2.0 * total
    cumulative = np.cumsum(psd)
    low_index = int(np.searchsorted(cumulative, tail))
    high_index = int(np.searchsorted(cumulative, total - tail))
    low_index = min(low_index, freqs.size - 1)
    high_index = min(high_index, freqs.size - 1)
    return float(freqs[high_index] - freqs[low_index])


def spectral_centroid(samples, sample_rate, nperseg=1024):
    """Power-weighted mean frequency — locates a source in the band."""
    freqs, psd = power_spectral_density(samples, sample_rate, nperseg)
    total = psd.sum()
    if total <= 0:
        return 0.0
    return float(np.sum(freqs * psd) / total)
