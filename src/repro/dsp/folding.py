"""Folding: periodic-signal detection by coherent summation.

This is the technique SymBee borrows (paper Section V, citing Staelin's
fast folding algorithm) to capture its preamble under heavy noise: a vector
containing ``folds`` repetitions of a length-``period`` pattern is sliced
into subvectors of that period and summed column-wise, so the periodic
component grows linearly with the number of folds while zero-mean noise
grows only with its square root.
"""

import numpy as np


def fold(values, period, folds):
    """Stack ``folds`` consecutive period-sized slices into a matrix.

    Returns an array of shape ``(folds, period)``.  Raises ``ValueError`` if
    ``values`` is too short to supply ``folds * period`` samples.
    """
    values = np.asarray(values)
    if period <= 0:
        raise ValueError("period must be positive")
    if folds <= 0:
        raise ValueError("folds must be positive")
    needed = period * folds
    if values.size < needed:
        raise ValueError(
            f"need {needed} samples to fold {folds}x{period}, got {values.size}"
        )
    return values[:needed].reshape(folds, period)


def fold_sum(values, period, folds):
    """Column-wise sum of the folded matrix: ``sum_i values[n + period*i]``.

    This is exactly the paper's "Fold Sum" (Section V) for a window starting
    at ``values[0]``.
    """
    return fold(values, period, folds).sum(axis=0)


def circular_folded_profile(angles, period, folds):
    """Sliding circular (phasor) fold of an angle stream.

    ``out[n] = sum_{i=0..folds-1} exp(j * angles[n + period*i])``.

    For angle data near the +-pi wrap boundary — exactly where SymBee's
    -4pi/5 plateau lives — the plain column sum of angles self-cancels
    when noise wraps individual values, while the phasor sum accumulates
    coherently: its angle estimates the common phase and its magnitude
    (up to ``folds``) measures how coherent the ``folds`` repetitions are.
    Returns the complex profile; callers take ``np.angle``/``np.abs``.
    """
    angles = np.asarray(angles, dtype=float)
    if period <= 0:
        raise ValueError("period must be positive")
    if folds <= 0:
        raise ValueError("folds must be positive")
    if angles.size <= period * (folds - 1):
        return np.empty(0, dtype=np.complex128)
    return phasor_folded_profile(np.exp(1j * angles), period, folds)


def phasor_folded_profile(phasors, period, folds):
    """Sliding phasor fold of an already-exponentiated stream.

    Same output as :func:`circular_folded_profile` given
    ``phasors = exp(j*angles)``; receivers that carry the complex
    autocorrelation products around (see
    ``SymBeeDecoder.phasor_stream``) fold their unit phasors directly
    and skip the angle -> exp round trip.
    """
    phasors = np.asarray(phasors, dtype=np.complex128)
    if period <= 0:
        raise ValueError("period must be positive")
    if folds <= 0:
        raise ValueError("folds must be positive")
    span = period * (folds - 1)
    if phasors.size <= span:
        return np.empty(0, dtype=np.complex128)
    out_len = phasors.size - span
    if folds == 1:
        return phasors[:out_len].copy()
    out = phasors[:out_len] + phasors[period : period + out_len]
    for i in range(2, folds):
        out += phasors[i * period : i * period + out_len]
    return out


def folded_profile(values, period, folds):
    """Sliding fold-sum over every start offset.

    ``out[n] = sum_{i=0..folds-1} values[n + period*i]`` for every ``n`` such
    that the last term exists.  Computed via a strided sum so the preamble
    detector can scan an entire capture in O(folds * N).
    """
    values = np.asarray(values, dtype=float)
    if period <= 0:
        raise ValueError("period must be positive")
    if folds <= 0:
        raise ValueError("folds must be positive")
    span = period * (folds - 1)
    if values.size <= span:
        return np.empty(0, dtype=float)
    out_len = values.size - span
    out = np.zeros(out_len, dtype=float)
    for i in range(folds):
        out += values[i * period : i * period + out_len]
    return out
