"""Run-length and sliding-window counting utilities.

SymBee decoding reduces to questions about runs of same-sign phase values
("84 consecutive negative values", "at least 84 - tau nonnegative values in
a window"), so these helpers are on the decoder's hot path and are written
with vectorized numpy throughout.
"""

import numpy as np


def longest_run(mask):
    """Length of the longest run of ``True`` in a boolean vector."""
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return 0
    padded = np.concatenate(([False], mask, [False])).astype(np.int8)
    edges = np.diff(padded)
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    if starts.size == 0:
        return 0
    return int((ends - starts).max())


def run_starts(mask, min_length):
    """Start indices of maximal ``True`` runs at least ``min_length`` long."""
    mask = np.asarray(mask, dtype=bool)
    if min_length <= 0:
        raise ValueError("min_length must be positive")
    if mask.size == 0:
        return np.empty(0, dtype=int)
    padded = np.concatenate(([False], mask, [False])).astype(np.int8)
    edges = np.diff(padded)
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    keep = (ends - starts) >= min_length
    return starts[keep]


def sliding_window_sum(values, window):
    """Sum of every length-``window`` sliding window, in O(N).

    ``out[n] = sum(values[n : n + window])`` with
    ``len(values) - window + 1`` entries, computed from a cumulative sum
    instead of a convolution.  Works for real and complex input (the
    output keeps the accumulated dtype).  Float results can differ from
    a direct per-window summation by cumulative rounding of order
    ``len(values) * eps`` relative — negligible for the detector
    thresholds this feeds.
    """
    values = np.asarray(values)
    if window <= 0:
        raise ValueError("window must be positive")
    if values.size < window:
        return np.empty(0, dtype=np.result_type(values.dtype, np.float64))
    csum = np.cumsum(values)
    out = csum[window - 1 :].copy()
    out[1:] -= csum[: -window]
    return out


def sliding_count(mask, window):
    """Number of ``True`` values in every length-``window`` sliding window.

    ``out[n] = sum(mask[n : n + window])``; the result has
    ``len(mask) - window + 1`` entries (empty if the input is shorter than
    the window).
    """
    mask = np.asarray(mask, dtype=bool)
    if window <= 0:
        raise ValueError("window must be positive")
    if mask.size < window:
        return np.empty(0, dtype=int)
    # int32 accumulation runs ~3x faster than summing the bool directly
    # and cannot overflow below 2**31 samples.
    csum = np.empty(mask.size + 1, dtype=np.int32)
    csum[0] = 0
    np.cumsum(mask.astype(np.int32), out=csum[1:])
    return csum[window:] - csum[:-window]
