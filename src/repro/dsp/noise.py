"""Additive white Gaussian noise generation with calibrated power.

All generators take an explicit ``numpy.random.Generator`` so experiments
are reproducible; none of them touch global random state.
"""

import numpy as np

from repro.dsp.signal_ops import db_to_linear, signal_power


def complex_gaussian(n, power, rng):
    """Circularly-symmetric complex Gaussian samples with mean power ``power``.

    The real and imaginary parts each carry half the power.
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    if power < 0:
        raise ValueError("power must be nonnegative")
    sigma = np.sqrt(power / 2.0)
    # One interleaved draw viewed as complex: the same i.i.d. Gaussian
    # ensemble as drawing real and imaginary parts separately, with no
    # strided writes and no complex temporaries.
    raw = rng.standard_normal(2 * n)
    raw *= sigma
    return raw.view(np.complex128)


def noise_for_snr(signal, snr_db, rng, reference_power=None):
    """Noise vector sized to give ``signal`` the requested SNR.

    ``reference_power`` overrides the measured signal power, which matters
    for bursty signals whose mean power over the whole vector underestimates
    the on-air power (e.g. a packet padded with leading silence).
    """
    signal = np.asarray(signal)
    p_sig = signal_power(signal) if reference_power is None else reference_power
    p_noise = p_sig / db_to_linear(snr_db)
    return complex_gaussian(signal.size, p_noise, rng)


def awgn(signal, snr_db, rng, reference_power=None):
    """Return ``signal`` plus white Gaussian noise at the requested SNR."""
    return np.asarray(signal) + noise_for_snr(
        signal, snr_db, rng, reference_power=reference_power
    )
