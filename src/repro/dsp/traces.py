"""Capture trace I/O and trace mixing.

The paper's Section VIII-E runs a *trace-driven* experiment: clean SymBee
captures recorded on a USRP are mixed with recorded 802.11g signal at
controlled SINR.  These helpers provide the same workflow for simulated
captures: save/load complex baseband traces with their metadata, and mix
a signal trace with an interference trace at a target SINR.
"""

import json

import numpy as np

from repro.dsp.signal_ops import db_to_linear, scale_to_power, signal_power

_FORMAT_VERSION = 1


def save_capture(path, samples, sample_rate, metadata=None):
    """Persist a complex capture with metadata to an ``.npz`` file."""
    samples = np.asarray(samples, dtype=np.complex128)
    meta = dict(metadata or {})
    np.savez_compressed(
        path,
        samples=samples,
        sample_rate=float(sample_rate),
        metadata=json.dumps(meta),
        format_version=_FORMAT_VERSION,
    )


def load_capture(path):
    """Load a capture saved by :func:`save_capture`.

    Returns ``(samples, sample_rate, metadata)``.
    """
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        samples = np.asarray(archive["samples"], dtype=np.complex128)
        sample_rate = float(archive["sample_rate"])
        metadata = json.loads(str(archive["metadata"]))
    return samples, sample_rate, metadata


def mix_at_sinr(signal, interference, sinr_db, offset=0):
    """Add ``interference`` onto ``signal`` at a target SINR.

    The interference trace is rescaled so that
    ``power(signal) / power(interference) == sinr_db`` and added starting
    at ``offset``; it is clipped (or the tail ignored) to fit.  Returns a
    new array; inputs are untouched.
    """
    signal = np.asarray(signal, dtype=np.complex128)
    interference = np.asarray(interference, dtype=np.complex128)
    if interference.size == 0 or signal.size == 0:
        return signal.copy()
    if not 0 <= offset < signal.size:
        raise ValueError("offset must fall inside the signal trace")
    target_power = signal_power(signal) / db_to_linear(sinr_db)
    scaled = scale_to_power(interference, target_power)
    out = signal.copy()
    span = min(scaled.size, out.size - offset)
    out[offset : offset + span] += scaled[:span]
    return out
