"""Elementary complex-baseband signal operations.

Conventions:

* Signals are one-dimensional ``numpy`` arrays of ``complex128`` samples.
* Power is the mean squared magnitude of the samples (unit load assumed).
* Phases are expressed in radians and wrapped to the interval (-pi, pi].
"""

import numpy as np


def db_to_linear(value_db):
    """Convert a power ratio in decibels to a linear ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value):
    """Convert a linear power ratio to decibels.

    Zero or negative input is clamped to -inf dB rather than raising, so
    measurement code can safely take the dB of an empty band.
    """
    value = np.asarray(value, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(value)


def dbm_to_watts(power_dbm):
    """Convert dBm to watts."""
    return 10.0 ** ((np.asarray(power_dbm, dtype=float) - 30.0) / 10.0)


def watts_to_dbm(power_watts):
    """Convert watts to dBm."""
    power_watts = np.asarray(power_watts, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(power_watts) + 30.0


def signal_power(x):
    """Mean power (mean squared magnitude) of a sampled signal."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    flat = x.ravel()
    if np.iscomplexobj(flat):
        # One BLAS pass instead of abs -> square -> mean (and no sqrt).
        return float(np.vdot(flat, flat).real) / flat.size
    if flat.dtype.kind == "f":
        return float(np.dot(flat, flat)) / flat.size
    return float(np.mean(np.abs(x) ** 2))


def normalize_power(x):
    """Scale ``x`` to unit mean power.  A zero signal is returned unchanged."""
    p = signal_power(x)
    if p == 0.0:
        return np.array(x, copy=True)
    return np.asarray(x) / np.sqrt(p)


def scale_to_power(x, target_power):
    """Scale ``x`` so its mean power equals ``target_power`` (linear units)."""
    if target_power < 0:
        raise ValueError("target_power must be nonnegative")
    p = signal_power(x)
    if p == 0.0:
        return np.asarray(x) * np.sqrt(target_power)
    return np.asarray(x) * np.sqrt(target_power / p)


#: LRU of precomputed mixer phasor tables; entries are ~1 MB at typical
#: frame lengths, so the table is kept deliberately small.
_ROTATOR_CACHE = {}
_ROTATOR_CACHE_MAX = 8


def mixer_rotator(frequency_offset_hz, sample_rate_hz, n, initial_phase=0.0):
    """The length-``n`` mixer phasor ``exp(j*(2*pi*f*t + phase0))``, memoized.

    Monte-Carlo trials downconvert same-length waveforms at the same
    centre-frequency offset thousands of times; the complex exponential
    dominates the mixer cost, so it is cached (read-only) and reused.
    """
    key = (
        float(frequency_offset_hz),
        float(sample_rate_hz),
        int(n),
        float(initial_phase),
    )
    rotator = _ROTATOR_CACHE.get(key)
    if rotator is None:
        t = np.arange(int(n))
        rotator = np.exp(
            1j
            * (2.0 * np.pi * frequency_offset_hz * t / sample_rate_hz + initial_phase)
        )
        rotator.setflags(write=False)
        while len(_ROTATOR_CACHE) >= _ROTATOR_CACHE_MAX:
            _ROTATOR_CACHE.pop(next(iter(_ROTATOR_CACHE)))
        _ROTATOR_CACHE[key] = rotator
    return rotator


def mix(x, frequency_offset_hz, sample_rate_hz, initial_phase=0.0, cache=False):
    """Frequency-shift a complex baseband signal.

    Multiplies ``x`` by ``exp(j*(2*pi*f*t + phase0))``, which models a mixer
    moving the signal by ``frequency_offset_hz``.  A positive offset moves
    the spectrum up.  With ``cache=True`` the phasor table is memoized
    across calls (hot receive paths mix fixed-length waveforms at a fixed
    offset every trial); the output is identical either way.
    """
    x = np.asarray(x)
    if cache:
        return x * mixer_rotator(
            frequency_offset_hz, sample_rate_hz, x.size, initial_phase
        )
    n = np.arange(x.size)
    rotator = np.exp(
        1j * (2.0 * np.pi * frequency_offset_hz * n / sample_rate_hz + initial_phase)
    )
    return x * rotator


def wrap_phase(phi):
    """Wrap angles to the interval (-pi, pi]."""
    phi = np.asarray(phi, dtype=float)
    wrapped = np.mod(phi + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps odd multiples of pi to -pi; the convention here is +pi.
    if wrapped.ndim == 0:
        return float(np.pi) if wrapped == -np.pi else float(wrapped)
    wrapped[wrapped == -np.pi] = np.pi
    return wrapped


def measured_snr_db(signal, noisy):
    """Estimate the SNR in dB of ``noisy`` given the clean ``signal``.

    Both arrays must be aligned sample-for-sample; the difference is treated
    as noise.  Used by tests to validate noise calibration.
    """
    signal = np.asarray(signal)
    noisy = np.asarray(noisy)
    if signal.shape != noisy.shape:
        raise ValueError("signal and noisy must have the same shape")
    noise = noisy - signal
    noise_power = signal_power(noise)
    if noise_power == 0.0:
        return float("inf")
    return float(linear_to_db(signal_power(signal) / noise_power))
