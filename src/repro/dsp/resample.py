"""Rational-rate resampling of complex baseband captures.

The modulators in this repo render directly at the receiver rate, so the
main pipeline never resamples.  This exists for the workflows that do
cross rates: replaying a stored 20 Msps trace into a 40 MHz receiver
(Section VI-B style), or feeding the 20 Msps OFDM interference generator
into a 40 Msps capture.  Polyphase filtering via
``scipy.signal.resample_poly``.
"""

from math import gcd

import numpy as np
from scipy.signal import resample_poly


def resample(samples, rate_in, rate_out):
    """Resample a capture from ``rate_in`` to ``rate_out`` samples/s.

    The ratio must be rational with small terms (it always is between
    the 20/40 Msps rates used here).  Output length is
    ``round(len(samples) * rate_out / rate_in)`` up to polyphase edge
    effects; complex inputs are filtered as I and Q independently.
    """
    if rate_in <= 0 or rate_out <= 0:
        raise ValueError("rates must be positive")
    samples = np.asarray(samples)
    if rate_in == rate_out:
        return samples.copy()
    # Express the ratio as up/down in integers.
    scale = 1
    up, down = rate_out, rate_in
    while (abs(up - round(up)) > 1e-9 or abs(down - round(down)) > 1e-9) and scale < 1e6:
        scale *= 10
        up, down = rate_out * scale, rate_in * scale
    up, down = int(round(up)), int(round(down))
    divisor = gcd(up, down)
    up //= divisor
    down //= divisor
    if max(up, down) > 10_000:
        raise ValueError(
            f"rate ratio {rate_out}/{rate_in} is not a small rational"
        )
    if np.iscomplexobj(samples):
        return (
            resample_poly(samples.real, up, down)
            + 1j * resample_poly(samples.imag, up, down)
        )
    return resample_poly(samples, up, down)
