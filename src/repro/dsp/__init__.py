"""Signal-processing substrate: conversions, noise, folding, runs.

These are the low-level numeric primitives that every other subpackage
builds on.  They are deliberately free of any ZigBee/WiFi semantics.
"""

from repro.dsp.signal_ops import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    signal_power,
    normalize_power,
    scale_to_power,
    mix,
    wrap_phase,
    measured_snr_db,
)
from repro.dsp.noise import awgn, noise_for_snr, complex_gaussian
from repro.dsp.folding import fold, fold_sum, folded_profile
from repro.dsp.kernels import (
    KERNEL_MODES,
    cmul,
    exact_cmul,
    exact_lagged_products,
    fir,
    fir_exact,
    fir_fast,
    fir_fft,
    lagged_products,
    polyphase_decimate,
    polyphase_decimate_exact,
    polyphase_decimate_fast,
    validate_mode,
)
from repro.dsp.runs import longest_run, run_starts, sliding_count
from repro.dsp.traces import save_capture, load_capture, mix_at_sinr
from repro.dsp.resample import resample
from repro.dsp.spectrum import (
    power_spectral_density,
    occupied_bandwidth,
    spectral_centroid,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "signal_power",
    "normalize_power",
    "scale_to_power",
    "mix",
    "wrap_phase",
    "measured_snr_db",
    "awgn",
    "noise_for_snr",
    "complex_gaussian",
    "fold",
    "fold_sum",
    "folded_profile",
    "KERNEL_MODES",
    "cmul",
    "exact_cmul",
    "exact_lagged_products",
    "fir",
    "fir_exact",
    "fir_fast",
    "fir_fft",
    "lagged_products",
    "polyphase_decimate",
    "polyphase_decimate_exact",
    "polyphase_decimate_fast",
    "validate_mode",
    "longest_run",
    "run_starts",
    "sliding_count",
    "save_capture",
    "load_capture",
    "mix_at_sinr",
    "resample",
    "power_spectral_density",
    "occupied_bandwidth",
    "spectral_centroid",
]
