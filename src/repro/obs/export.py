"""Sinks and readers for the live telemetry time series.

The :class:`repro.obs.live.LiveCollector` fans each periodic sample out
to pluggable sinks; this module holds the built-in ones plus the reader
the CLI (``obs tail`` / ``obs summary``) and ``bench trajectory`` use:

* :class:`JsonlSink` — one JSON object per tick, appended to a file.
  The **live-sample schema** (``schema_version`` 1)::

      {"type": "live", "schema_version": 1, "seq": 0,
       "t_unix": 1754640000.0, "elapsed_s": 0.5, "dt_s": 0.5,
       "final": false,
       "counters":   {name: cumulative int},
       "rates":      {name: counter delta per second over dt_s},
       "gauges":     {name: float},
       "histograms": {name: {"count": int, "total": float}}}

  ``counters`` / ``histograms`` are cumulative since collector start, so
  the final record's totals equal the end-of-run registry snapshot;
  ``rates`` are the per-second deltas of the tick.  The last record of a
  clean run has ``"final": true``.
* :class:`PrometheusFileSink` — a Prometheus text-exposition file
  rewritten atomically per tick, for node-exporter-style file scraping
  (full bucket layout, cumulative ``le`` convention).
* :func:`read_metrics_stream` / :func:`summarize_metrics_stream` — parse
  a JSONL time series back (one-line, path-prefixed errors on malformed
  input, matching ``obs summary``'s contract) and render the per-rate
  min/mean/max overview.
* :func:`format_live_line` — the one-line dashboard rendering shared by
  ``listen --live`` and ``obs tail``.
"""

import json
import math
import os

#: Bump when a backwards-incompatible live-sample field change lands.
LIVE_SCHEMA_VERSION = 1

#: The realtime target every margin figure is quoted against (Msps).
TARGET_MSPS = 20.0


class JsonlSink:
    """Append each live sample as one JSON line; flushed per tick.

    Flushing per tick is the point: the file is a *live* feed that an
    ``obs tail --follow`` in another process reads while the run is
    still going.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def emit(self, sample, snapshot=None):
        self._fh.write(json.dumps(sample, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self):
        if not self._fh.closed:
            self._fh.close()


def _prom_name(name, prefix="repro_"):
    """Metric name -> Prometheus-legal name (dots/dashes to underscores)."""
    return prefix + name.replace(".", "_").replace("-", "_")


def render_prometheus(snapshot, rates=None, prefix="repro_"):
    """Registry snapshot -> Prometheus text exposition format.

    Counters and gauges map directly; histograms use the cumulative
    ``_bucket{le=...}`` convention with ``+Inf``, ``_sum`` and
    ``_count``.  When ``rates`` (the live sample's per-second counter
    deltas) are given they export as companion ``*_per_second`` gauges,
    so a dumb scraper gets rates without PromQL.
    """
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted((rates or {}).items()):
        metric = _prom_name(name, prefix) + "_per_second"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        if value != value:  # skip unset (nan) gauges
            continue
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{edge:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{metric}_sum {data['total']:g}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"


class PrometheusFileSink:
    """Rewrite a text-exposition file atomically on every tick.

    Write-then-rename keeps a concurrent scraper from ever reading a
    half-written exposition.
    """

    def __init__(self, path, prefix="repro_"):
        self.path = path
        self.prefix = prefix

    def emit(self, sample, snapshot=None):
        if snapshot is None:
            # Degrade to what the sample itself carries (no bucket detail).
            snapshot = {
                "counters": sample.get("counters", {}),
                "gauges": sample.get("gauges", {}),
                "histograms": {},
            }
        text = render_prometheus(
            snapshot, rates=sample.get("rates"), prefix=self.prefix
        )
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, self.path)

    def close(self):
        pass


def format_live_line(sample, target_msps=TARGET_MSPS):
    """One dashboard line for a live sample: throughput, margin, health.

    Shared by the ``listen --live`` TTY sink and ``obs tail`` so a live
    run and a replayed time series read identically.
    """
    rates = sample.get("rates", {})
    counters = sample.get("counters", {})
    gauges = sample.get("gauges", {})
    msps = rates.get("stream.engine.samples_in", 0.0) / 1e6
    margin = gauges.get("stream.realtime_margin")
    frames = counters.get("stream.engine.frames", 0)
    frame_rate = rates.get("stream.engine.frames", 0.0)
    crc_failed = counters.get("stream.session.crc_failed", 0)
    overruns = counters.get("stream.ring.overruns", 0)
    queue_depth = gauges.get("runtime.pool.queue_depth")
    parts = [
        f"t={sample.get('elapsed_s', 0.0):8.2f}s",
        f"{msps:7.2f} Msps ({msps / target_msps:5.2f}x of {target_msps:g})",
        (
            f"margin {margin:5.2f}x"
            if margin is not None and margin == margin
            else "margin     -"
        ),
        f"frames {frames} ({frame_rate:.1f}/s)",
        f"crc_fail {crc_failed}",
        f"ring_ovr {overruns}",
    ]
    if queue_depth is not None and queue_depth == queue_depth:
        parts.append(f"pool_q {queue_depth:.0f}")
    if sample.get("final"):
        parts.append("[final]")
    return " | ".join(parts)


def parse_live_record(line, path="<stream>", lineno=0):
    """One JSONL line -> live sample dict, ``None`` for other record types.

    Blank lines and records of other ``type``s (a mixed file) come back
    as ``None``; malformed JSON raises ``ValueError`` with the PR-3
    one-line path-prefixed message the CLI prints verbatim.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"{path}:{lineno}: not valid JSONL ({error.msg})"
        ) from error
    if not isinstance(record, dict):
        raise ValueError(
            f"{path}:{lineno}: expected a JSON object, got "
            f"{type(record).__name__}"
        )
    return record if record.get("type") == "live" else None


def read_metrics_stream(path):
    """Parse a ``--metrics-stream`` JSONL file into live sample dicts.

    Non-live records (e.g. a manifest sharing the file) are skipped;
    malformed lines raise ``ValueError`` with a one-line path-prefixed
    message.  ``OSError`` propagates for missing/unreadable paths.
    """
    samples = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            record = parse_live_record(line, path=path, lineno=lineno)
            if record is not None:
                samples.append(record)
    return samples


def summarize_metrics_stream(samples, path=None):
    """Human-readable overview of a live time series.

    Duration and tick count, then per-rate min/mean/max across ticks
    (zero-dt ticks are excluded from rate statistics) and the final
    cumulative counters — the ``obs summary`` rendering for the live
    schema.
    """
    if not samples:
        raise ValueError("no live records to summarize")
    last = samples[-1]
    lines = []
    where = f" {path}" if path else ""
    lines.append(
        f"live telemetry stream{where}: {len(samples)} sample(s) over "
        f"{last.get('elapsed_s', 0.0):.2f}s"
        + (" (final)" if last.get("final") else " (no final record)")
    )
    rate_names = sorted({
        name for sample in samples for name in sample.get("rates", {})
    })
    timed = [s for s in samples if s.get("dt_s", 0.0) > 0.0]
    if rate_names and timed:
        lines.append(f"rates over {len(timed)} timed tick(s) [/s]:")
        width = max(len(name) for name in rate_names)
        for name in rate_names:
            values = [s.get("rates", {}).get(name, 0.0) for s in timed]
            mean = sum(values) / len(values)
            lines.append(
                f"  {name.ljust(width)}  min={min(values):12.1f}  "
                f"mean={mean:12.1f}  max={max(values):12.1f}"
            )
    counters = last.get("counters", {})
    if counters:
        lines.append(f"final counters ({len(counters)}):")
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            lines.append(f"  {name.ljust(width)}  {value}")
    gauges = last.get("gauges", {})
    if gauges:
        lines.append(f"final gauges ({len(gauges)}):")
        for name, value in sorted(gauges.items()):
            rendered = "nan" if value != value else f"{value:.3f}"
            lines.append(f"  {name}  {rendered}")
    histograms = last.get("histograms", {})
    if histograms:
        lines.append(f"final histograms ({len(histograms)}):")
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            mean = data.get("total", 0.0) / count if count else math.nan
            lines.append(f"  {name}  count={count}  mean={mean:.3f}")
    return "\n".join(lines)


__all__ = [
    "LIVE_SCHEMA_VERSION",
    "TARGET_MSPS",
    "JsonlSink",
    "PrometheusFileSink",
    "format_live_line",
    "parse_live_record",
    "read_metrics_stream",
    "render_prometheus",
    "summarize_metrics_stream",
]
