"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is **off by default** and every instrument checks one flag
before doing any work, so instrumented hot paths cost a single attribute
load + branch per event when telemetry is disabled.  Call sites register
their instruments once at import time and keep the returned object:

    from repro.obs.metrics import REGISTRY

    _FRAMES = REGISTRY.counter("link.frames")
    ...
    _FRAMES.inc()          # no-op unless REGISTRY.enable() was called

Instruments live for the life of the process; :meth:`MetricsRegistry.reset`
zeroes their values in place (references stay valid), and
:meth:`MetricsRegistry.snapshot` exports plain picklable dicts that
:meth:`MetricsRegistry.merge` folds back in — the contract the parallel
trial executor uses to ship worker shards to the parent, mirroring how
``StageTimings`` shards merge today.

Histograms use **fixed** upper-edge buckets declared at registration, so
two processes that register the same metric always agree on the layout
and shard merging is plain elementwise addition.
"""

from bisect import bisect_left

import numpy as np

#: Default histogram edges: powers of two, good enough for counts and
#: sample lengths when a call site does not pick domain-specific edges.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name, registry):
        self.name = name
        self.value = 0
        self._registry = registry

    def inc(self, n=1):
        if self._registry._enabled:
            self.value += n

    def _reset(self):
        self.value = 0


class Gauge:
    """Last-observed value (e.g. a rate or level); ``nan`` until set."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name, registry):
        self.name = name
        self.value = float("nan")
        self._registry = registry

    def set(self, value):
        if self._registry._enabled:
            self.value = float(value)

    def _reset(self):
        self.value = float("nan")


class Histogram:
    """Fixed-bucket histogram of nonnegative observations.

    ``edges`` are inclusive upper bounds; an observation lands in the
    first bucket whose edge is >= the value, with one extra overflow
    bucket past the last edge.  ``count`` / ``total`` track the running
    count and sum so means survive shard merging.
    """

    __slots__ = (
        "name", "edges", "counts", "count", "total", "_registry",
        "_int_cuts", "_int_cap",
    )

    def __init__(self, name, registry, edges=DEFAULT_BUCKETS):
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self._registry = registry
        # Integer-edge histograms get a bincount fast path in
        # observe_array: segment cut points [0, e0+1, e1+1, ...] so
        # np.add.reduceat folds a per-value bincount into the buckets.
        # Bounded by the last edge since bincount allocates that many slots.
        if all(e == int(e) for e in edges) and edges[-1] < 1 << 20:
            self._int_cap = int(edges[-1]) + 1
            self._int_cuts = np.concatenate(
                ([0], np.asarray(edges, dtype=np.int64) + 1)
            )
        else:
            self._int_cap = None
            self._int_cuts = None

    def observe(self, value):
        if not self._registry._enabled:
            return
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    def observe_array(self, values):
        """Vectorized :meth:`observe` for a numpy array of values."""
        if not self._registry._enabled:
            return
        values = np.asarray(values)
        if values.size == 0:
            return
        if (
            self._int_cuts is not None
            and values.dtype.kind in "iu"
            and (values.dtype.kind == "u" or values.min() >= 0)
        ):
            # bincount over the raw (clipped) integers then fold the
            # per-value counts into buckets — much cheaper than a
            # searchsorted when values repeat heavily (run lengths do).
            per_value = np.bincount(
                np.minimum(values, self._int_cap), minlength=self._int_cap + 1
            )
            binned = np.add.reduceat(per_value, self._int_cuts)
        else:
            values = np.asarray(values, dtype=float)
            idx = np.searchsorted(self.edges, values, side="left")
            binned = np.bincount(idx, minlength=len(self.edges) + 1)
        for i, n in enumerate(binned):
            self.counts[i] += int(n)
        self.count += int(values.size)
        self.total += float(values.sum())

    @property
    def mean(self):
        return self.total / self.count if self.count else float("nan")

    def _reset(self):
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0


class MetricsRegistry:
    """Named instruments plus enable/disable, snapshot and shard merge."""

    def __init__(self):
        self._enabled = False
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- lifecycle ----------------------------------------------------------

    @property
    def enabled(self):
        return self._enabled

    def enable(self):
        self._enabled = True

    def disable(self):
        self._enabled = False

    def reset(self):
        """Zero every instrument in place (registrations survive)."""
        for group in (self._counters, self._gauges, self._histograms):
            for instrument in group.values():
                instrument._reset()

    # -- registration -------------------------------------------------------

    def counter(self, name):
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name, self)
            return c

    def gauge(self, name):
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name, self)
            return g

    def histogram(self, name, edges=DEFAULT_BUCKETS):
        try:
            h = self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name, self, edges)
            return h
        if h.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} re-registered with different edges"
            )
        return h

    # -- export / merge -----------------------------------------------------

    def snapshot(self, include_zero=False):
        """Plain-dict export of every instrument's current value.

        Untouched instruments are skipped unless ``include_zero`` — a
        worker shard should only carry what the trial actually recorded.
        The layout is stable and JSON/pickle friendly::

            {"counters":   {name: int},
             "gauges":     {name: float},
             "histograms": {name: {"edges": [...], "counts": [...],
                                   "count": int, "total": float}}}
        """
        counters = {
            c.name: c.value
            for c in self._counters.values()
            if include_zero or c.value
        }
        gauges = {
            g.name: g.value
            for g in self._gauges.values()
            if include_zero or g.value == g.value  # skip untouched (nan)
        }
        histograms = {
            h.name: {
                "edges": list(h.edges),
                "counts": list(h.counts),
                "count": h.count,
                "total": h.total,
            }
            for h in self._histograms.values()
            if include_zero or h.count
        }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, shard):
        """Fold a :meth:`snapshot` dict back into this registry.

        Counters and histograms add; gauges take the shard's value
        (last merged wins).  Instruments the parent has not registered
        yet are created on the fly, so merging works even when the
        recording module was only imported in the worker.  Merging
        bypasses the enabled flag: a disabled parent still aggregates
        shards handed to it explicitly.
        """
        for name, value in shard.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in shard.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, data in shard.get("histograms", {}).items():
            h = self.histogram(name, data["edges"])
            if list(h.edges) != [float(e) for e in data["edges"]]:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket edges differ"
                )
            for i, n in enumerate(data["counts"]):
                h.counts[i] += n
            h.count += data["count"]
            h.total += data["total"]
        return self


def snapshot_delta(current, previous):
    """Shard-shaped difference of two :meth:`MetricsRegistry.snapshot` dicts.

    ``current - previous`` for counters and histograms (instruments that
    only grew are kept; untouched ones are dropped so the delta stays as
    small as the activity it describes); gauges carry the *current*
    value, since a gauge delta has no meaning.  The result is a valid
    :meth:`MetricsRegistry.merge` shard — the contract the worker pool's
    live telemetry side queue rides on: a worker periodically ships
    ``snapshot_delta(now, last_shipped)`` and the parent merges the
    deltas in any order, because counter/histogram merging is plain
    addition.
    """
    prev_counters = previous.get("counters", {})
    counters = {
        name: value - prev_counters.get(name, 0)
        for name, value in current.get("counters", {}).items()
        if value - prev_counters.get(name, 0)
    }
    gauges = dict(current.get("gauges", {}))
    prev_histograms = previous.get("histograms", {})
    histograms = {}
    for name, data in current.get("histograms", {}).items():
        prev = prev_histograms.get(name)
        if prev is None:
            if data["count"]:
                histograms[name] = {
                    "edges": list(data["edges"]),
                    "counts": list(data["counts"]),
                    "count": data["count"],
                    "total": data["total"],
                }
            continue
        delta_count = data["count"] - prev["count"]
        if not delta_count:
            continue
        histograms[name] = {
            "edges": list(data["edges"]),
            "counts": [
                now - before
                for now, before in zip(data["counts"], prev["counts"])
            ],
            "count": delta_count,
            "total": data["total"] - prev["total"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def snapshot_is_empty(shard):
    """True when a snapshot/delta shard carries no recorded activity."""
    return not (
        shard.get("counters")
        or shard.get("gauges")
        or shard.get("histograms")
    )


#: The process-wide registry every instrumented module shares.
REGISTRY = MetricsRegistry()
