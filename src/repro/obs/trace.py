"""Nested, labeled trace spans over the link pipeline.

``TRACER.span("link.decode")`` generalizes ``StageTimings.stage`` from a
flat ``name -> seconds`` accumulator into an ordered stream of span
records carrying nesting depth and free-form labels, so a run can be
replayed as a timeline (``modulate -> channel -> front_end -> decode``
under each ``measure_link`` parent) instead of only a per-stage total.

Tracing is **off by default**: ``span()`` then returns a shared no-op
context manager, costing one method call per instrumented block.  Spans
record into a bounded in-process buffer (records beyond ``max_records``
are counted, not stored) and :meth:`Tracer.drain` hands them over as
plain dicts ready for JSONL export.

Spans are per-process by design: parallel workers do not ship span
streams back to the parent (aggregate per-stage timing already travels
via ``StageTimings`` / metric shards), so a traced parallel run shows
the orchestration spans while a serial run shows the full pipeline.
"""

import time


class _NullSpan:
    """Reentrant do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "labels", "depth", "start_s", "_t0")

    def __init__(self, tracer, name, labels):
        self._tracer = tracer
        self.name = name
        self.labels = labels

    def __enter__(self):
        tracer = self._tracer
        self.depth = len(tracer._stack)
        tracer._stack.append(self.name)
        self.start_s = time.perf_counter() - tracer._origin
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] == self.name:
            stack.pop()
        record = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(duration, 6),
            "depth": self.depth,
            "parent": stack[-1] if stack else None,
            "error": exc_type.__name__ if exc_type is not None else None,
        }
        if self.labels:
            record["labels"] = self.labels
        tracer._record(record)
        return False


class Tracer:
    """Collects :class:`_Span` records; disabled unless :meth:`enable`\\ d."""

    def __init__(self, max_records=100_000):
        self._enabled = False
        self._stack = []
        self._records = []
        self._origin = time.perf_counter()
        self.max_records = int(max_records)
        self.dropped = 0

    @property
    def enabled(self):
        return self._enabled

    def enable(self):
        self._enabled = True

    def disable(self):
        self._enabled = False

    def reset(self):
        self._records.clear()
        self._stack.clear()
        self.dropped = 0
        self._origin = time.perf_counter()

    def span(self, name, **labels):
        """Context manager timing one labeled block (no-op when disabled)."""
        if not self._enabled:
            return _NULL_SPAN
        return _Span(self, name, labels)

    def _record(self, record):
        if len(self._records) >= self.max_records:
            self.dropped += 1
            return
        self._records.append(record)

    def drain(self):
        """Return and clear the recorded spans (chronological exit order)."""
        records = self._records
        self._records = []
        return records

    def peek(self):
        """Return the recorded spans without clearing the buffer.

        Lets a live summary (e.g. the CLI profiler's span tree) render
        the stream while a later ``drain`` still exports it in full.
        """
        return list(self._records)

    def totals(self):
        """Aggregate ``name -> {"calls": n, "seconds": s}`` over the buffer.

        The flat view matching ``StageTimings``; useful for quick span
        summaries without exporting the whole stream.
        """
        out = {}
        for record in self._records:
            entry = out.setdefault(record["name"], {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += record["duration_s"]
        return out


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()
