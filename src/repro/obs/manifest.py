"""Run manifests and JSONL export for telemetry streams.

A *manifest* is one JSON record that makes a run reproducible and
auditable after the fact: what ran (experiment ids, status, wall time),
under which configuration (``REPRO_SCALE`` / ``REPRO_JOBS``, resolved
worker count), from which code (git revision, package/python/numpy
versions), and what the metrics registry saw (full snapshot inline).

``write_run_jsonl`` streams the manifest plus optional per-metric and
per-span records to one JSONL file — schema documented in
``docs/observability.md``:

    {"type": "manifest", "schema_version": 1, ...}
    {"type": "metric", "kind": "counter", "name": ..., "value": ...}
    {"type": "span", "name": ..., "start_s": ..., "duration_s": ..., ...}
"""

import json
import os
import platform
import subprocess
import sys
import time

#: Bump when a backwards-incompatible field change lands.
SCHEMA_VERSION = 1


def git_revision():
    """Short git revision of the source tree, or ``None`` off-checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def runtime_config():
    """The environment knobs that shape a run, plus the resolved job count."""
    from repro.runtime import default_jobs

    return {
        "REPRO_SCALE": os.environ.get("REPRO_SCALE"),
        "REPRO_JOBS": os.environ.get("REPRO_JOBS"),
        "jobs_resolved": default_jobs(),
    }


def build_manifest(experiments=(), seed=None, metrics=None, argv=None,
                   n_spans=0):
    """Assemble the manifest record for one run.

    ``experiments`` is a sequence of ``{"id", "status", "elapsed_seconds",
    "error"}`` dicts (``error`` is ``None`` on success); ``metrics`` is a
    ``MetricsRegistry.snapshot()`` dict; ``seed`` is whatever seed the
    caller pinned (experiments bake their own defaults, so it may be
    ``None``).
    """
    import numpy as np

    from repro import __version__

    return {
        "type": "manifest",
        "schema_version": SCHEMA_VERSION,
        "tool": "repro",
        "version": __version__,
        "created_unix": round(time.time(), 3),
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "seed": seed,
        "experiments": list(experiments),
        "config": runtime_config(),
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "metrics": metrics if metrics is not None else {},
        "n_spans": int(n_spans),
    }


def metric_records(snapshot):
    """Flatten a registry snapshot into one JSONL record per instrument."""
    records = []
    for name, value in snapshot.get("counters", {}).items():
        records.append(
            {"type": "metric", "kind": "counter", "name": name, "value": value}
        )
    for name, value in snapshot.get("gauges", {}).items():
        records.append(
            {"type": "metric", "kind": "gauge", "name": name, "value": value}
        )
    for name, data in snapshot.get("histograms", {}).items():
        records.append(
            {"type": "metric", "kind": "histogram", "name": name, **data}
        )
    return records


def write_run_jsonl(path, manifest, snapshot=None, spans=None):
    """Write manifest + optional metric/span streams as one JSONL file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest, sort_keys=True) + "\n")
        if snapshot:
            for record in metric_records(snapshot):
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        for span in spans or ():
            fh.write(json.dumps({"type": "span", **span}, sort_keys=True) + "\n")
    return path


def read_run_jsonl(path):
    """Parse a run JSONL file into ``(manifest, metric_records, spans)``.

    Raises ``ValueError`` with a one-line, path-prefixed message when the
    file is empty, malformed, or holds no manifest record (``OSError``
    propagates for missing/unreadable paths) — the CLI prints these
    verbatim, so they must make sense on their own.
    """
    manifest, metrics, spans = None, [], []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSONL ({error.msg})"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            kind = record.get("type")
            if kind == "manifest" and manifest is None:
                manifest = record
            elif kind == "metric":
                metrics.append(record)
            elif kind == "span":
                spans.append(record)
    if manifest is None:
        raise ValueError(
            f"{path}: no manifest record found — is this a "
            "'run --metrics-out' JSONL file?"
        )
    return manifest, metrics, spans


def summarize_manifest(manifest, metrics=(), spans=(), top=10):
    """Human-readable multi-line summary of a parsed run manifest."""
    lines = []
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(manifest.get("created_unix", 0))
    )
    rev = manifest.get("git_rev") or "unknown"
    lines.append(
        f"repro {manifest.get('version', '?')} run @ git {rev} — {created}"
    )
    config = manifest.get("config", {})
    lines.append(
        "config: "
        + " ".join(
            f"{k}={v}" for k, v in config.items() if v is not None
        )
    )
    experiments = manifest.get("experiments", [])
    if experiments:
        lines.append("experiments:")
        for entry in experiments:
            status = entry.get("status", "?")
            line = (
                f"  {entry.get('id', '?'):<16} {status:<5} "
                f"{entry.get('elapsed_seconds', 0.0):8.2f}s"
            )
            if entry.get("error"):
                line += f"  {entry['error']}"
            lines.append(line)
    snapshot = manifest.get("metrics", {})
    namespaces = sorted(
        {
            name.split(".", 1)[0]
            for kind in ("counters", "gauges", "histograms")
            for name in snapshot.get(kind, {})
            if "." in name
        }
    )
    if namespaces:
        lines.append(
            "namespaces: " + " ".join(f"{ns}.*" for ns in namespaces)
        )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(f"counters ({len(counters)}):")
        ranked = sorted(counters.items(), key=lambda kv: -kv[1])[:top]
        width = max(len(name) for name, _ in ranked)
        for name, value in ranked:
            lines.append(f"  {name.ljust(width)}  {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append(f"gauges ({len(gauges)}):")
        for name, value in sorted(gauges.items())[:top]:
            lines.append(f"  {name}  {value:.3f}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append(f"histograms ({len(histograms)}):")
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            mean = data.get("total", 0.0) / count if count else float("nan")
            lines.append(f"  {name}  count={count}  mean={mean:.3f}")
    n_spans = manifest.get("n_spans", 0) or len(spans)
    if n_spans:
        lines.append(f"spans: {n_spans} recorded")
    return "\n".join(lines)
